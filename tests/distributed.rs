//! End-to-end distributed stencil: multi-locality runs must be
//! bit-identical to the single-locality futurized runs, parcel books
//! must balance at quiescence, and a dying locality must settle — not
//! hang — everything that depended on it.

use grain::net::bootstrap::Fabric;
use grain::runtime::{Runtime, RuntimeConfig, TaskError};
use grain::stencil::distributed::{run_distributed_loopback, DistStencil};
use grain::stencil::futurized::run_futurized;
use grain::stencil::StencilParams;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(20);

fn futurized_oracle(params: &StencilParams) -> Vec<f64> {
    let rt = Runtime::with_workers(2);
    run_futurized(&rt, params)
}

#[test]
fn two_localities_match_futurized_bit_exactly() {
    let params = StencilParams::new(8, 6, 10);
    let expect = futurized_oracle(&params);
    let got = run_distributed_loopback(2, 2, &params);
    assert_eq!(got, expect, "distributed result must be bit-identical");
}

#[test]
fn many_shapes_match_futurized_bit_exactly() {
    // Ragged blocks, single-point partitions, np == world, zero steps.
    for (world, nx, np, nt) in [
        (2, 1, 5, 8),
        (3, 7, 7, 6),
        (2, 3, 2, 12),
        (4, 5, 9, 5),
        (3, 4, 11, 0),
    ] {
        let params = StencilParams::new(nx, np, nt);
        let expect = futurized_oracle(&params);
        let got = run_distributed_loopback(world, 1, &params);
        assert_eq!(got, expect, "world={world} nx={nx} np={np} nt={nt}");
    }
}

#[test]
fn parcel_books_balance_after_a_distributed_run() {
    let world = 3;
    let params = StencilParams::new(6, 7, 9);
    let fabric = Fabric::loopback(world, |_| RuntimeConfig::with_workers(1));
    let instances: Vec<DistStencil> = (0..world)
        .map(|k| DistStencil::install(fabric.locality(k), params))
        .collect();
    for inst in &instances {
        inst.start();
    }
    // Wait until every locality's block has settled: at that point every
    // issued call has been answered.
    for inst in &instances {
        inst.local_result_timeout(WAIT).expect("block settled");
    }
    // The last replies may still be a hair away from dispatch (writer
    // thread -> handler); poll until the books balance, bounded.
    let deadline = std::time::Instant::now() + WAIT;
    loop {
        let sent: u64 = (0..world)
            .map(|k| fabric.locality(k).parcels().sent.get())
            .sum();
        let received: u64 = (0..world)
            .map(|k| fabric.locality(k).parcels().received.get())
            .sum();
        if sent == received && sent > 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "books never balanced: sent {sent} vs received {received}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // Each locality issued 2 edge fetches per step: nt calls x 2
    // directions x world localities, each with exactly one reply.
    let sent: u64 = (0..world)
        .map(|k| fabric.locality(k).parcels().sent.get())
        .sum();
    assert_eq!(sent as usize, 2 * 2 * params.nt * world);
    fabric.shutdown();
}

#[test]
fn killing_a_locality_settles_the_stencil_with_its_name() {
    let world = 3;
    let params = StencilParams::new(4, 6, 8);
    let fabric = Fabric::loopback(world, |_| RuntimeConfig::with_workers(1));
    let instances: Vec<DistStencil> = (0..world)
        .map(|k| DistStencil::install(fabric.locality(k), params))
        .collect();
    // Locality 1 registers its actions but never starts producing: its
    // neighbours' edge fetches stay outstanding... until we kill it.
    instances[0].start();
    instances[2].start();
    fabric.kill(1);

    for k in [0, 2] {
        let err = instances[k]
            .local_result_timeout(WAIT)
            .expect_err("a dead neighbour must fail the block, not hang it");
        // The cause chain must name the dead locality.
        let rendered = err.to_string();
        assert!(
            rendered.contains("locality#1"),
            "error on locality {k} does not name the dead peer: {rendered}"
        );
        assert!(
            !matches!(err, TaskError::Timeout { .. }),
            "settled by timeout rather than by disconnect: {err:?}"
        );
    }
    fabric.shutdown();
}

#[test]
fn runtime_thread_counters_live_under_their_locality_instance() {
    let fabric = Fabric::loopback(2, |_| RuntimeConfig::with_workers(1));
    fabric.locality(1).register_action("noop", |x: u64| x);
    let fut = fabric.locality(0).async_remote::<u64, u64>(1, "noop", &0);
    let _ = fut.wait_timeout(WAIT).expect("settled");
    fabric.locality(1).runtime().wait_idle();
    // The action body ran as a first-class task on locality 1's
    // scheduler, under locality 1's counter namespace.
    let v = fabric
        .locality(1)
        .runtime()
        .registry()
        .query("/threads{locality#1/total}/count/cumulative")
        .expect("locality-1 thread counters registered");
    assert!(v.value >= 1.0, "no tasks recorded: {}", v.value);
    fabric.shutdown();
}
