//! Property-based tests over the core invariants, using proptest.

use grain::counters::{CounterPath, SampleStats};
use grain::metrics::equations;
use grain::runtime::Runtime;
use grain::sim::{simulate, SimConfig};
use grain::stencil::{
    run_futurized, run_sequential, stencil_workload, total_heat, StencilParams,
};
use grain::topology::presets;
use grain::topology::NumaTopology;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The futurized dataflow execution is bit-identical to the
    /// sequential oracle for arbitrary problem shapes and worker counts.
    #[test]
    fn futurized_matches_sequential(
        nx in 1usize..48,
        np in 1usize..24,
        nt in 0usize..12,
        workers in 1usize..5,
    ) {
        let params = StencilParams::new(nx, np, nt);
        let rt = Runtime::with_workers(workers);
        let fut = run_futurized(&rt, &params);
        let seq = run_sequential(&params);
        prop_assert_eq!(fut, seq);
    }

    /// The ring scheme conserves total heat for any shape.
    #[test]
    fn heat_is_conserved(
        nx in 1usize..64,
        np in 1usize..32,
        nt in 0usize..20,
    ) {
        let params = StencilParams::new(nx, np, nt);
        let grid = run_sequential(&params);
        let expect: f64 = (0..params.total_points())
            .map(|g| (g / params.nx) as f64)
            .sum();
        let got = total_heat([&grid[..]]);
        prop_assert!((got - expect).abs() <= 1e-9 * expect.max(1.0) * nt.max(1) as f64);
    }

    /// Diffusion is a contraction: the value range never widens.
    #[test]
    fn diffusion_never_widens_the_range(
        nx in 1usize..32,
        np in 2usize..16,
        nt in 1usize..16,
    ) {
        let params = StencilParams::new(nx, np, nt);
        let grid = run_sequential(&params);
        let lo = grid.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = grid.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo >= 0.0 - 1e-12);
        prop_assert!(hi <= (np - 1) as f64 + 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Counter paths round-trip through parse/format for arbitrary
    /// well-formed components.
    #[test]
    fn counter_path_roundtrip(
        object in "[a-z][a-z0-9-]{0,10}",
        name1 in "[a-z][a-z0-9-]{0,10}",
        name2 in proptest::option::of("[a-z][a-z0-9-]{0,10}"),
        worker in proptest::option::of(0usize..64),
    ) {
        let name = match name2 {
            Some(n2) => format!("{name1}/{n2}"),
            None => name1,
        };
        let mut path = CounterPath::new(object, name);
        if let Some(w) = worker {
            path = path.with_instance(CounterPath::worker_instance(w));
        }
        let s = path.to_string();
        let parsed: CounterPath = s.parse().unwrap();
        prop_assert_eq!(parsed, path);
    }

    /// Welford merge equals sequential accumulation for any split point.
    #[test]
    fn stats_merge_is_split_invariant(
        data in proptest::collection::vec(-1e6f64..1e6, 1..64),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let whole = SampleStats::from_iter(data.iter().copied());
        let mut a = SampleStats::from_iter(data[..split].iter().copied());
        let b = SampleStats::from_iter(data[split..].iter().copied());
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * whole.mean().abs().max(1.0));
        prop_assert!((a.stddev() - whole.stddev()).abs() < 1e-6 * whole.stddev().abs().max(1.0));
    }

    /// Eqs. 1–3 identities: t_d + t_o reconstructs Σt_func / n_t, and the
    /// idle-rate equals t_o / (t_d + t_o).
    #[test]
    fn equations_are_mutually_consistent(
        sum_exec in 0u64..1_000_000_000,
        extra in 0u64..1_000_000_000,
        tasks in 1u64..1_000_000,
    ) {
        let sum_func = sum_exec + extra;
        let td = equations::task_duration_ns(sum_exec, tasks);
        let to = equations::task_overhead_ns(sum_exec, sum_func, tasks);
        let ir = equations::idle_rate(sum_exec, sum_func);
        prop_assert!(((td + to) * tasks as f64 - sum_func as f64).abs() < 1.0);
        if sum_func > 0 {
            prop_assert!((ir - to / (td + to).max(f64::MIN_POSITIVE)).abs() < 1e-9);
        }
        // Eq. 6 consistency with Eq. 5.
        let tw = equations::wait_per_task_ns(td, 100.0);
        let tw_total = equations::wait_time_s(td, 100.0, tasks, 4);
        prop_assert!((tw_total - tw * tasks as f64 / 4.0 * 1e-9).abs() < 1e-9 * tw.abs().max(1.0));
    }

    /// NUMA block placement always partitions workers completely and
    /// near-evenly.
    #[test]
    fn numa_block_partitions_workers(
        workers in 1usize..128,
        domains in 1usize..8,
    ) {
        let t = NumaTopology::block(workers, domains);
        prop_assert_eq!(t.workers(), workers);
        let counts: Vec<usize> = (0..t.domains()).map(|d| t.workers_in(d).count()).collect();
        prop_assert_eq!(counts.iter().sum::<usize>(), workers);
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        prop_assert!(max - min <= 1, "uneven split {counts:?}");
        // Peer sets partition all other workers.
        for w in 0..workers {
            let mut all = t.same_domain_peers(w);
            all.extend(t.remote_domain_peers(w));
            all.sort_unstable();
            let expect: Vec<usize> = (0..workers).filter(|&x| x != w).collect();
            prop_assert_eq!(all, expect);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The simulator completes every valid stencil DAG, is deterministic,
    /// and preserves the counter invariants.
    #[test]
    fn simulator_invariants(
        nx in 1_000usize..200_000,
        steps in 1usize..6,
        workers in 1usize..16,
        seed in 0u64..1_000,
    ) {
        let params = StencilParams::for_total(400_000, nx, steps);
        let wl = stencil_workload(&params);
        let cfg = SimConfig { seed, ..SimConfig::default() };
        let a = simulate(&presets::haswell(), workers, &wl, &cfg);
        prop_assert_eq!(a.tasks as usize, params.total_tasks());
        prop_assert!(a.sum_func_ns >= a.sum_exec_ns);
        prop_assert!(a.pending_accesses >= a.pending_misses);
        prop_assert!(a.staged_accesses >= a.staged_misses);
        prop_assert!(a.converted == a.tasks);
        prop_assert!(a.wall_ns > 0.0);
        prop_assert_eq!(a.tasks_per_worker.iter().sum::<u64>(), a.tasks);
        // Determinism.
        let b = simulate(&presets::haswell(), workers, &wl, &cfg);
        prop_assert_eq!(a, b);
    }

    /// Adding workers never makes the simulated stencil dramatically
    /// slower (steal costs are bounded), and at medium grain it helps.
    #[test]
    fn more_workers_do_not_catastrophically_hurt(
        workers in 2usize..24,
    ) {
        let params = StencilParams::for_total(2_000_000, 25_000, 4);
        let wl = stencil_workload(&params);
        let cfg = SimConfig::default();
        let one = simulate(&presets::haswell(), 1, &wl, &cfg);
        let many = simulate(&presets::haswell(), workers, &wl, &cfg);
        prop_assert!(many.wall_ns < one.wall_ns * 1.2,
            "{} workers: {} vs 1 worker {}", workers, many.wall_ns, one.wall_ns);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary layered DAGs execute correctly on the native runtime:
    /// each task computes `index + Σ(dep values)`; the dataflow execution
    /// must match a sequential topological evaluation, and the native and
    /// simulated engines must agree on the task count.
    #[test]
    fn random_dags_execute_correctly_on_both_engines(
        layers in 1usize..6,
        width in 1usize..10,
        seed in 0u64..500,
        workers in 1usize..4,
    ) {
        use grain::sim::SimWorkload;
        let wl = SimWorkload::layered_random(layers, width, 10, seed);
        wl.validate().unwrap();

        // Sequential reference.
        let mut reference = vec![0u64; wl.len()];
        for (i, t) in wl.tasks.iter().enumerate() {
            reference[i] = i as u64 + t.deps.iter().map(|&d| reference[d as usize]).sum::<u64>();
        }

        // Native dataflow execution of the same DAG.
        let rt = Runtime::with_workers(workers);
        let mut futures: Vec<grain::runtime::SharedFuture<u64>> = Vec::with_capacity(wl.len());
        for (i, t) in wl.tasks.iter().enumerate() {
            let deps: Vec<_> = t.deps.iter().map(|&d| futures[d as usize].clone()).collect();
            futures.push(rt.dataflow(&deps, move |_, vals| {
                i as u64 + vals.iter().map(|v| **v).sum::<u64>()
            }));
        }
        for (i, f) in futures.iter().enumerate() {
            prop_assert_eq!(*f.get(), reference[i], "task {}", i);
        }
        rt.wait_idle();
        prop_assert_eq!(rt.counters().tasks.sum() as usize, wl.len());

        // Simulated execution of the same DAG completes the same tasks.
        let report = simulate(
            &presets::haswell(),
            workers.min(presets::haswell().usable_cores),
            &wl,
            &SimConfig::default(),
        );
        prop_assert_eq!(report.tasks as usize, wl.len());
    }

    /// parallel_reduce equals the sequential fold for any range/grain.
    #[test]
    fn parallel_reduce_matches_sequential(
        len in 0usize..2_000,
        grain in 1usize..500,
        workers in 1usize..4,
    ) {
        use grain::runtime::algorithms::parallel_reduce;
        let rt = Runtime::with_workers(workers);
        let sum = parallel_reduce(&rt, 0..len, grain, 0u64, |i| (i as u64) * 3 + 1, |a, b| a + b);
        let expect: u64 = (0..len).map(|i| (i as u64) * 3 + 1).sum();
        prop_assert_eq!(*sum.get(), expect);
    }
}
