//! Randomized-property tests over the core invariants.
//!
//! The seed used `proptest` here; to keep tier-1 builds offline these are
//! now plain seeded sweeps over the in-repo [`Pcg32`] generator: each test
//! draws a few dozen random configurations from a fixed seed (fully
//! deterministic, so failures reproduce) and asserts the same invariants
//! the proptest versions did. On failure the offending configuration is
//! part of the panic message.

use grain::counters::{CounterPath, SampleStats};
use grain::metrics::equations;
use grain::runtime::Runtime;
use grain::sim::rng::Pcg32;
use grain::sim::{simulate, SimConfig, SimWorkload};
use grain::stencil::{run_futurized, run_sequential, stencil_workload, total_heat, StencilParams};
use grain::topology::presets;
use grain::topology::NumaTopology;

/// Draw a usize uniformly from `[lo, hi)`.
fn draw(rng: &mut Pcg32, lo: usize, hi: usize) -> usize {
    lo + rng.range_u64((hi - lo) as u64) as usize
}

/// The futurized dataflow execution is bit-identical to the sequential
/// oracle for arbitrary problem shapes and worker counts.
#[test]
fn futurized_matches_sequential() {
    let mut rng = Pcg32::seed_from_u64(0xF07);
    for case in 0..32 {
        let nx = draw(&mut rng, 1, 48);
        let np = draw(&mut rng, 1, 24);
        let nt = draw(&mut rng, 0, 12);
        let workers = draw(&mut rng, 1, 5);
        let params = StencilParams::new(nx, np, nt);
        let rt = Runtime::with_workers(workers);
        let fut = run_futurized(&rt, &params);
        let seq = run_sequential(&params);
        assert_eq!(
            fut, seq,
            "case {case}: nx={nx} np={np} nt={nt} workers={workers}"
        );
    }
}

/// The ring scheme conserves total heat for any shape.
#[test]
fn heat_is_conserved() {
    let mut rng = Pcg32::seed_from_u64(0x4EA7);
    for case in 0..32 {
        let nx = draw(&mut rng, 1, 64);
        let np = draw(&mut rng, 1, 32);
        let nt = draw(&mut rng, 0, 20);
        let params = StencilParams::new(nx, np, nt);
        let grid = run_sequential(&params);
        let expect: f64 = (0..params.total_points())
            .map(|g| (g / params.nx) as f64)
            .sum();
        let got = total_heat([&grid[..]]);
        assert!(
            (got - expect).abs() <= 1e-9 * expect.max(1.0) * nt.max(1) as f64,
            "case {case}: nx={nx} np={np} nt={nt}: {got} vs {expect}"
        );
    }
}

/// Diffusion is a contraction: the value range never widens.
#[test]
fn diffusion_never_widens_the_range() {
    let mut rng = Pcg32::seed_from_u64(0xD1FF);
    for case in 0..32 {
        let nx = draw(&mut rng, 1, 32);
        let np = draw(&mut rng, 2, 16);
        let nt = draw(&mut rng, 1, 16);
        let params = StencilParams::new(nx, np, nt);
        let grid = run_sequential(&params);
        let lo = grid.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = grid.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo >= 0.0 - 1e-12, "case {case}: nx={nx} np={np} nt={nt}");
        assert!(
            hi <= (np - 1) as f64 + 1e-12,
            "case {case}: nx={nx} np={np} nt={nt}"
        );
    }
}

/// Counter paths round-trip through parse/format for arbitrary
/// well-formed components.
#[test]
fn counter_path_roundtrip() {
    let mut rng = Pcg32::seed_from_u64(0xBA7);
    let word = |rng: &mut Pcg32| {
        let len = 1 + rng.range_u64(10) as usize;
        let mut s = String::new();
        for i in 0..len {
            let c = if i == 0 {
                b'a' + rng.range_u64(26) as u8
            } else {
                // [a-z0-9-]
                match rng.range_u64(37) {
                    d @ 0..=25 => b'a' + d as u8,
                    d @ 26..=35 => b'0' + (d - 26) as u8,
                    _ => b'-',
                }
            };
            s.push(c as char);
        }
        s
    };
    for case in 0..64 {
        let object = word(&mut rng);
        let mut name = word(&mut rng);
        if rng.next_f64() < 0.5 {
            name = format!("{name}/{}", word(&mut rng));
        }
        let mut path = CounterPath::new(object, name);
        if rng.next_f64() < 0.5 {
            let w = rng.range_u64(64) as usize;
            path = path.with_instance(CounterPath::worker_instance(w));
        }
        let s = path.to_string();
        let parsed: CounterPath = s.parse().unwrap();
        assert_eq!(parsed, path, "case {case}: `{s}`");
    }
}

/// Welford merge equals sequential accumulation for any split point.
#[test]
fn stats_merge_is_split_invariant() {
    let mut rng = Pcg32::seed_from_u64(0x57A7);
    for case in 0..64 {
        let len = draw(&mut rng, 1, 64);
        let data: Vec<f64> = (0..len).map(|_| rng.range_f64(-1e6, 1e6)).collect();
        let split = draw(&mut rng, 0, len + 1);
        let whole = SampleStats::from_iter(data.iter().copied());
        let mut a = SampleStats::from_iter(data[..split].iter().copied());
        let b = SampleStats::from_iter(data[split..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), whole.count(), "case {case}");
        assert!(
            (a.mean() - whole.mean()).abs() < 1e-6 * whole.mean().abs().max(1.0),
            "case {case}: split {split}/{len}"
        );
        assert!(
            (a.stddev() - whole.stddev()).abs() < 1e-6 * whole.stddev().abs().max(1.0),
            "case {case}: split {split}/{len}"
        );
    }
}

/// Eqs. 1–3 identities: t_d + t_o reconstructs Σt_func / n_t, and the
/// idle-rate equals t_o / (t_d + t_o).
#[test]
fn equations_are_mutually_consistent() {
    let mut rng = Pcg32::seed_from_u64(0xE95);
    for case in 0..64 {
        let sum_exec = rng.range_u64(1_000_000_000);
        let extra = rng.range_u64(1_000_000_000);
        let tasks = 1 + rng.range_u64(999_999);
        let sum_func = sum_exec + extra;
        let td = equations::task_duration_ns(sum_exec, tasks);
        let to = equations::task_overhead_ns(sum_exec, sum_func, tasks);
        let ir = equations::idle_rate(sum_exec, sum_func);
        assert!(
            ((td + to) * tasks as f64 - sum_func as f64).abs() < 1.0,
            "case {case}"
        );
        if sum_func > 0 {
            assert!(
                (ir - to / (td + to).max(f64::MIN_POSITIVE)).abs() < 1e-9,
                "case {case}"
            );
        }
        // Eq. 6 consistency with Eq. 5.
        let tw = equations::wait_per_task_ns(td, 100.0);
        let tw_total = equations::wait_time_s(td, 100.0, tasks, 4);
        assert!(
            (tw_total - tw * tasks as f64 / 4.0 * 1e-9).abs() < 1e-9 * tw.abs().max(1.0),
            "case {case}"
        );
    }
}

/// NUMA block placement always partitions workers completely and
/// near-evenly.
#[test]
fn numa_block_partitions_workers() {
    let mut rng = Pcg32::seed_from_u64(0x40A1);
    for case in 0..64 {
        let workers = draw(&mut rng, 1, 128);
        let domains = draw(&mut rng, 1, 8);
        let t = NumaTopology::block(workers, domains);
        assert_eq!(t.workers(), workers, "case {case}");
        let counts: Vec<usize> = (0..t.domains()).map(|d| t.workers_in(d).count()).collect();
        assert_eq!(counts.iter().sum::<usize>(), workers, "case {case}");
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1, "case {case}: uneven split {counts:?}");
        // Peer sets partition all other workers.
        for w in 0..workers {
            let mut all = t.same_domain_peers(w);
            all.extend(t.remote_domain_peers(w));
            all.sort_unstable();
            let expect: Vec<usize> = (0..workers).filter(|&x| x != w).collect();
            assert_eq!(all, expect, "case {case}: worker {w}");
        }
    }
}

/// The simulator completes every valid stencil DAG, is deterministic,
/// and preserves the counter invariants.
#[test]
fn simulator_invariants() {
    let mut rng = Pcg32::seed_from_u64(0x51AB);
    for case in 0..16 {
        let nx = draw(&mut rng, 1_000, 200_000);
        let steps = draw(&mut rng, 1, 6);
        let workers = draw(&mut rng, 1, 16);
        let seed = rng.range_u64(1_000);
        let params = StencilParams::for_total(400_000, nx, steps);
        let wl = stencil_workload(&params);
        let cfg = SimConfig {
            seed,
            ..SimConfig::default()
        };
        let a = simulate(&presets::haswell(), workers, &wl, &cfg);
        let ctx = format!("case {case}: nx={nx} steps={steps} workers={workers} seed={seed}");
        assert_eq!(a.tasks as usize, params.total_tasks(), "{ctx}");
        assert!(a.sum_func_ns >= a.sum_exec_ns, "{ctx}");
        assert!(a.pending_accesses >= a.pending_misses, "{ctx}");
        assert!(a.staged_accesses >= a.staged_misses, "{ctx}");
        assert!(a.converted == a.tasks, "{ctx}");
        assert!(a.wall_ns > 0.0, "{ctx}");
        assert_eq!(a.tasks_per_worker.iter().sum::<u64>(), a.tasks, "{ctx}");
        // Determinism.
        let b = simulate(&presets::haswell(), workers, &wl, &cfg);
        assert_eq!(a, b, "{ctx}");
    }
}

/// Adding workers never makes the simulated stencil dramatically slower
/// (steal costs are bounded), and at medium grain it helps.
#[test]
fn more_workers_do_not_catastrophically_hurt() {
    let params = StencilParams::for_total(2_000_000, 25_000, 4);
    let wl = stencil_workload(&params);
    let cfg = SimConfig::default();
    let one = simulate(&presets::haswell(), 1, &wl, &cfg);
    let mut rng = Pcg32::seed_from_u64(0xC04E);
    for case in 0..8 {
        let workers = draw(&mut rng, 2, 24);
        let many = simulate(&presets::haswell(), workers, &wl, &cfg);
        assert!(
            many.wall_ns < one.wall_ns * 1.2,
            "case {case}: {workers} workers: {} vs 1 worker {}",
            many.wall_ns,
            one.wall_ns
        );
    }
}

/// Arbitrary layered DAGs execute correctly on the native runtime: each
/// task computes `index + Σ(dep values)`; the dataflow execution must
/// match a sequential topological evaluation, and the native and
/// simulated engines must agree on the task count.
#[test]
fn random_dags_execute_correctly_on_both_engines() {
    let mut rng = Pcg32::seed_from_u64(0xDA6);
    for case in 0..24 {
        let layers = draw(&mut rng, 1, 6);
        let width = draw(&mut rng, 1, 10);
        let seed = rng.range_u64(500);
        let workers = draw(&mut rng, 1, 4);
        let ctx =
            format!("case {case}: layers={layers} width={width} seed={seed} workers={workers}");
        let wl = SimWorkload::layered_random(layers, width, 10, seed);
        wl.validate().unwrap();

        // Sequential reference.
        let mut reference = vec![0u64; wl.len()];
        for (i, t) in wl.tasks.iter().enumerate() {
            reference[i] = i as u64 + t.deps.iter().map(|&d| reference[d as usize]).sum::<u64>();
        }

        // Native dataflow execution of the same DAG.
        let rt = Runtime::with_workers(workers);
        let mut futures: Vec<grain::runtime::SharedFuture<u64>> = Vec::with_capacity(wl.len());
        for (i, t) in wl.tasks.iter().enumerate() {
            let deps: Vec<_> = t
                .deps
                .iter()
                .map(|&d| futures[d as usize].clone())
                .collect();
            futures.push(rt.dataflow(&deps, move |_, vals| {
                i as u64 + vals.iter().map(|v| **v).sum::<u64>()
            }));
        }
        for (i, f) in futures.iter().enumerate() {
            assert_eq!(*f.get(), reference[i], "{ctx}: task {i}");
        }
        rt.wait_idle();
        assert_eq!(rt.counters().tasks.sum() as usize, wl.len(), "{ctx}");

        // Simulated execution of the same DAG completes the same tasks.
        let report = simulate(
            &presets::haswell(),
            workers.min(presets::haswell().usable_cores),
            &wl,
            &SimConfig::default(),
        );
        assert_eq!(report.tasks as usize, wl.len(), "{ctx}");
    }
}

/// Under any seeded overload storm the job ledger conserves —
/// `admitted + rejected + shed (+ queued timeouts) == submitted` — and
/// the in-flight task budget is exactly restored at quiescence. Runs
/// both with the resilience layer on (queued expiries become sheds) and
/// off (queued expiries become timeouts); the ledger must balance
/// either way.
#[test]
fn storms_conserve_job_accounting_and_restore_the_budget() {
    use grain::service::{
        AdmissionConfig, FailurePolicy, JobService, JobSpec, JobState, ServiceConfig,
    };
    use grain::sim::{StormPlan, TenantStorm};
    use std::time::{Duration, Instant};

    // 10 ms of real time per virtual second keeps the sweep quick.
    const SCALE: f64 = 0.01;
    let mut seeds = Pcg32::seed_from_u64(0x570B);
    for case in 0..4 {
        let seed = seeds.next_u64();
        let resilience = case % 2 == 0;
        let tenants = vec![
            TenantStorm::steady(
                "alpha",
                Duration::from_millis(40),
                (1, 6),
                (Duration::from_millis(5), Duration::from_millis(20)),
            )
            .deadline(Duration::from_secs(1)),
            TenantStorm::steady(
                "beta",
                Duration::from_millis(60),
                (2, 8),
                (Duration::from_millis(10), Duration::from_millis(30)),
            ),
            TenantStorm::steady(
                "chaos",
                Duration::from_millis(20),
                (1, 3),
                (Duration::from_millis(5), Duration::from_millis(10)),
            )
            .faulting_during(0.0, 0.5),
        ];
        let plan = StormPlan::generate(seed, Duration::from_secs(2), &tenants);
        let mut config = ServiceConfig {
            admission: AdmissionConfig {
                max_in_flight_tasks: 8,
                max_queued_jobs: 16,
                ..AdmissionConfig::default()
            },
            poll_interval: Duration::from_micros(200),
            ..ServiceConfig::with_workers(2)
        };
        config.pressure.enabled = resilience;
        config.breaker.enabled = resilience;
        config.breaker.min_samples = 4;
        config.breaker.open_for = Duration::from_millis(20);
        let service = JobService::new(config);

        let started = Instant::now();
        let handles: Vec<_> = plan
            .events
            .iter()
            .map(|e| {
                if let Some(sleep) = e.at.mul_f64(SCALE).checked_sub(started.elapsed()) {
                    std::thread::sleep(sleep);
                }
                let mut spec = JobSpec::new(e.name.clone(), e.tenant.clone());
                if let Some(d) = e.deadline {
                    spec = spec.deadline(d.mul_f64(SCALE));
                }
                if e.faulty {
                    spec = spec.failure_policy(FailurePolicy::RetryWithBackoff {
                        max_attempts: 2,
                        base: Duration::from_micros(200),
                        cap: Duration::from_millis(1),
                    });
                }
                let (faulty, tasks, grain) = (e.faulty, e.tasks, e.grain.mul_f64(SCALE));
                service.submit(spec, move |ctx| {
                    if faulty {
                        panic!("storm fault");
                    }
                    for _ in 0..tasks {
                        ctx.spawn(move |_| {
                            let t0 = Instant::now();
                            while t0.elapsed() < grain {
                                std::hint::spin_loop();
                            }
                        });
                    }
                })
            })
            .collect();
        service.wait_all();

        let ctx = format!("case {case}: seed {seed:#x} resilience={resilience}");
        // A job that times out while still queued was never admitted and
        // occupies its own ledger column (only reachable with the
        // pressure layer off; on, the dispatcher sheds it instead).
        let mut queued_timeouts = 0u64;
        for (i, h) in handles.iter().enumerate() {
            let o = h.wait();
            assert!(o.state.is_terminal(), "{ctx}: job {i} not terminal");
            if o.state == JobState::TimedOut && o.tasks_spawned == 0 {
                queued_timeouts += 1;
            }
        }
        let c = service.counters();
        assert_eq!(c.submitted.get(), handles.len() as u64, "{ctx}");
        assert_eq!(
            c.admitted.get() + c.rejected.get() + c.shed.get() + queued_timeouts,
            c.submitted.get(),
            "{ctx}: admitted {} + rejected {} + shed {} + queued timeouts \
             {queued_timeouts} must equal submitted {}",
            c.admitted.get(),
            c.rejected.get(),
            c.shed.get(),
            c.submitted.get()
        );
        assert_eq!(service.queue_len(), 0, "{ctx}: queue not drained");
        assert_eq!(service.running_len(), 0, "{ctx}: running set not drained");
        let in_use = service
            .registry()
            .query("/service/tasks/budget-in-use")
            .expect("registered")
            .value;
        assert_eq!(in_use, 0.0, "{ctx}: in-flight budget not restored");
    }
}

/// parallel_reduce equals the sequential fold for any range/grain.
#[test]
fn parallel_reduce_matches_sequential() {
    use grain::runtime::algorithms::parallel_reduce;
    let mut rng = Pcg32::seed_from_u64(0x4ED);
    for case in 0..24 {
        let len = draw(&mut rng, 0, 2_000);
        let grain = draw(&mut rng, 1, 500);
        let workers = draw(&mut rng, 1, 4);
        let rt = Runtime::with_workers(workers);
        let sum = parallel_reduce(
            &rt,
            0..len,
            grain,
            0u64,
            |i| (i as u64) * 3 + 1,
            |a, b| a + b,
        );
        let expect: u64 = (0..len).map(|i| (i as u64) * 3 + 1).sum();
        assert_eq!(
            *sum.get(),
            expect,
            "case {case}: len={len} grain={grain} workers={workers}"
        );
    }
}

// ---------------------------------------------------------------------
// Wire-codec properties (grain-net)
// ---------------------------------------------------------------------

use grain::net::codec::{self, Frame, WireFault};

/// Draw a random ASCII string of length `[0, max)`.
fn draw_string(rng: &mut Pcg32, max: usize) -> String {
    let len = draw(rng, 0, max);
    (0..len)
        .map(|_| char::from(b' ' + (rng.range_u64(95)) as u8))
        .collect()
}

/// Draw a random byte payload of length `[0, max)`.
fn draw_bytes(rng: &mut Pcg32, max: usize) -> Vec<u8> {
    let len = draw(rng, 0, max);
    (0..len).map(|_| rng.next_u32() as u8).collect()
}

/// Draw a random frame covering every variant and every fault kind.
fn draw_frame(rng: &mut Pcg32) -> Frame {
    match rng.range_u64(7) {
        0 => Frame::Hello {
            listen_addr: draw_string(rng, 40),
        },
        1 => Frame::Welcome {
            locality_id: rng.next_u32(),
            world: rng.next_u32(),
            peers: (0..draw(rng, 0, 5))
                .map(|_| (rng.next_u32(), draw_string(rng, 24)))
                .collect(),
        },
        2 => Frame::PeerHello {
            locality_id: rng.next_u32(),
        },
        3 => Frame::Call {
            call_id: rng.next_u64(),
            origin: rng.next_u32(),
            action: draw_string(rng, 32),
            args: draw_bytes(rng, 64),
        },
        4 => Frame::Reply {
            call_id: rng.next_u64(),
            outcome: Ok(draw_bytes(rng, 64)),
        },
        5 => Frame::Reply {
            call_id: rng.next_u64(),
            outcome: Err(match rng.range_u64(6) {
                0 => WireFault::Panicked(draw_string(rng, 48)),
                1 => WireFault::Cancelled,
                2 => WireFault::BrokenPromise,
                3 => WireFault::UnknownAction(draw_string(rng, 24)),
                4 => WireFault::BadArguments(draw_string(rng, 24)),
                _ => WireFault::Other(draw_string(rng, 48)),
            }),
        },
        _ => Frame::Goodbye {
            locality_id: rng.next_u32(),
        },
    }
}

/// Encode → decode is the identity for every frame type.
#[test]
fn codec_frames_roundtrip() {
    let mut rng = Pcg32::seed_from_u64(0xC0DEC);
    for case in 0..200 {
        let frame = draw_frame(&mut rng);
        let bytes = frame.encode();
        let back = Frame::decode(&bytes)
            .unwrap_or_else(|e| panic!("case {case}: decode failed: {e} ({frame:?})"));
        assert_eq!(back, frame, "case {case}");
    }
}

/// Every strict prefix of a valid frame is an error — never a panic,
/// never a bogus success.
#[test]
fn codec_truncation_always_errors() {
    let mut rng = Pcg32::seed_from_u64(0x7A11);
    for case in 0..50 {
        let frame = draw_frame(&mut rng);
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            assert!(
                Frame::decode(&bytes[..cut]).is_err(),
                "case {case}: prefix of {cut}/{} decoded",
                bytes.len()
            );
        }
    }
}

/// Randomly corrupted frames must never panic the decoder; corrupting
/// the header always yields an error.
#[test]
fn codec_corruption_never_panics() {
    let mut rng = Pcg32::seed_from_u64(0xBADF);
    for case in 0..200 {
        let frame = draw_frame(&mut rng);
        let mut bytes = frame.encode();
        let idx = draw(&mut rng, 0, bytes.len());
        let flip = (rng.range_u64(255) + 1) as u8;
        bytes[idx] ^= flip;
        // Total decoder: any outcome is fine except a panic. A payload
        // flip may still decode (to a different frame) — that is a
        // transport-integrity concern, not a codec one.
        let result = Frame::decode(&bytes);
        if idx < 5 {
            // Magic (4 bytes) or version byte corrupted: must reject.
            assert!(result.is_err(), "case {case}: corrupted header accepted");
        }
        // Appending garbage after a valid frame must also reject.
        let mut extended = frame.encode();
        extended.push(flip);
        assert!(
            Frame::decode(&extended).is_err(),
            "case {case}: trailing byte accepted"
        );
    }
}

/// NetPlan-style stream chaos — seeded drop, duplicate, and bounded
/// reorder of *whole frames* — never corrupts framing: every message
/// that survives still decodes to exactly the frame it was encoded
/// from, because each frame is a self-contained envelope and the chaos
/// fabric (like TCP beneath the real parcelport) only permutes and
/// copies messages, never splices them.
#[test]
fn codec_stream_chaos_preserves_every_surviving_frame() {
    let mut rng = Pcg32::seed_from_u64(0x57A6);
    for case in 0..40 {
        let originals: Vec<Frame> = (0..draw(&mut rng, 4, 24))
            .map(|_| draw_frame(&mut rng))
            .collect();
        // Each message remembers which original it carries.
        let mut stream: Vec<(usize, Vec<u8>)> = originals
            .iter()
            .enumerate()
            .map(|(i, f)| (i, f.encode()))
            .collect();
        // Drop (p = 0.2), then duplicate (p = 0.2) — the dup rides
        // directly behind its original, like a fabric re-send.
        stream.retain(|_| rng.next_f64() >= 0.2);
        let mut shaken: Vec<(usize, Vec<u8>)> = Vec::new();
        for m in stream {
            let dup = rng.next_f64() < 0.2;
            shaken.push(m.clone());
            if dup {
                shaken.push(m);
            }
        }
        // Bounded reorder: swap adjacent messages with p = 0.5.
        let mut i = 0;
        while i + 1 < shaken.len() {
            if rng.next_f64() < 0.5 {
                shaken.swap(i, i + 1);
            }
            i += 1;
        }
        for (idx, bytes) in &shaken {
            let back = Frame::decode(bytes)
                .unwrap_or_else(|e| panic!("case {case}: surviving frame {idx} broke: {e}"));
            assert_eq!(
                back, originals[*idx],
                "case {case}: frame {idx} mutated in flight"
            );
        }
    }
}

/// Corrupting payload bytes (anything past magic + version + tag) must
/// never change *which variant* a frame parses as, and any successful
/// decode must stay canonical: re-encoding reproduces the mutated bytes
/// exactly. A flipped length prefix or inner tag errors out; it never
/// reinterprets a Call as a Reply.
#[test]
fn codec_payload_mutations_never_switch_variants() {
    let mut rng = Pcg32::seed_from_u64(0xF1A7);
    let mut survived = 0u32;
    for case in 0..400 {
        let frame = draw_frame(&mut rng);
        let mut bytes = frame.encode();
        // Mutate 1–3 bytes strictly inside the payload (index >= 6).
        if bytes.len() <= 6 {
            continue;
        }
        for _ in 0..draw(&mut rng, 1, 4) {
            let idx = draw(&mut rng, 6, bytes.len());
            bytes[idx] ^= (rng.range_u64(255) + 1) as u8;
        }
        match Frame::decode(&bytes) {
            Err(_) => {} // rejected cleanly — always acceptable
            Ok(mutant) => {
                survived += 1;
                assert_eq!(
                    std::mem::discriminant(&mutant),
                    std::mem::discriminant(&frame),
                    "case {case}: payload corruption switched {frame:?} into {mutant:?}"
                );
                assert_eq!(
                    mutant.encode(),
                    bytes,
                    "case {case}: decode accepted a non-canonical encoding"
                );
            }
        }
    }
    // The corpus must actually exercise the accepted-mutant path (value
    // flips inside fixed-width fields survive decoding).
    assert!(survived > 0, "mutation corpus never produced a survivor");
}

/// Splicing two frames into one buffer must error (`Trailing`), never
/// silently decode the first and discard the second — a dedup or replay
/// defense cannot work if concatenation smuggles frames past it.
#[test]
fn codec_spliced_frames_rejected() {
    let mut rng = Pcg32::seed_from_u64(0x5711C);
    for case in 0..50 {
        let a = draw_frame(&mut rng);
        let b = draw_frame(&mut rng);
        let mut spliced = a.encode();
        spliced.extend_from_slice(&b.encode());
        assert!(
            Frame::decode(&spliced).is_err(),
            "case {case}: spliced {a:?}+{b:?} decoded"
        );
    }
}

// ---------------------------------------------------------------------
// Taskbench graph-generator properties (grain-taskbench)
// ---------------------------------------------------------------------

use grain::taskbench::{GraphKind, GraphSpec};

/// Draw a random graph spec covering every family with bounded shapes.
fn draw_spec(rng: &mut Pcg32) -> GraphSpec {
    let kind = match rng.range_u64(5) {
        0 => GraphKind::Stencil1d {
            width: draw(rng, 1, 12),
            steps: draw(rng, 0, 10),
        },
        1 => GraphKind::Butterfly {
            width: draw(rng, 1, 33),
        },
        2 => GraphKind::TreeReduce {
            leaves: draw(rng, 1, 40),
            fanout: draw(rng, 2, 5),
        },
        3 => GraphKind::RandomDag {
            width: draw(rng, 1, 10),
            steps: draw(rng, 0, 10),
            max_deps: draw(rng, 1, 5),
        },
        _ => GraphKind::Sweep {
            width: draw(rng, 1, 12),
            steps: draw(rng, 0, 10),
        },
    };
    GraphSpec::shape(kind, rng.next_u64())
        .grain(rng.range_u64(100))
        .payload(rng.range_u64(512) as u32)
}

/// The same seed reproduces the graph bit-identically — nodes, edges,
/// and per-edge payload sizes — while a different seed changes the
/// fingerprint.
#[test]
fn taskbench_same_seed_rebuilds_identical_graphs() {
    let mut rng = Pcg32::seed_from_u64(0x6EA9);
    for case in 0..32 {
        let spec = draw_spec(&mut rng);
        let a = spec.build();
        let b = spec.build();
        let ctx = format!("case {case}: {spec:?}");
        assert_eq!(a.nodes, b.nodes, "{ctx}");
        assert_eq!(a.edges, b.edges, "{ctx}: edges (incl. payload sizes)");
        assert_eq!(a.fingerprint(), b.fingerprint(), "{ctx}");
        assert_eq!(a.checksum_reference(), b.checksum_reference(), "{ctx}");
        let reseeded = GraphSpec {
            seed: spec.seed ^ 1,
            ..spec
        }
        .build();
        assert_ne!(a.fingerprint(), reseeded.fingerprint(), "{ctx}: reseed");
    }
}

/// Every generated graph is acyclic (edges go strictly forward, between
/// adjacent levels) and width-bounded: no level is wider than the
/// spec-derived bound.
#[test]
fn taskbench_graphs_are_acyclic_and_width_bounded() {
    let mut rng = Pcg32::seed_from_u64(0xDA61);
    for case in 0..32 {
        let spec = draw_spec(&mut rng);
        let g = spec.build();
        let ctx = format!("case {case}: {spec:?}");
        assert!(!g.nodes.is_empty(), "{ctx}");
        for e in &g.edges {
            assert!(e.src < e.dst, "{ctx}: edge {e:?} not forward");
            assert_eq!(
                g.nodes[e.src as usize].step + 1,
                g.nodes[e.dst as usize].step,
                "{ctx}: edge {e:?} skips a level"
            );
        }
        assert!(
            g.max_level_width() <= g.width_bound(),
            "{ctx}: level width {} exceeds bound {}",
            g.max_level_width(),
            g.width_bound()
        );
        // Node ids are level-ordered, so id order is a topological order.
        for w in g.nodes.windows(2) {
            assert!(w[0].step <= w[1].step, "{ctx}: ids not level-ordered");
        }
    }
}

/// `Wire` values — including every f64 bit pattern — roundtrip exactly.
#[test]
fn codec_wire_values_roundtrip() {
    let mut rng = Pcg32::seed_from_u64(0xB175);
    for case in 0..200 {
        // f64 via raw bit patterns: NaNs, infinities, subnormals.
        let bits = rng.next_u64();
        let x = f64::from_bits(bits);
        let back: f64 = codec::from_bytes(&codec::to_bytes(&x))
            .unwrap_or_else(|e| panic!("case {case}: f64 decode failed: {e}"));
        assert_eq!(back.to_bits(), bits, "case {case}: f64 bits changed");

        let v: Vec<u64> = (0..draw(&mut rng, 0, 16)).map(|_| rng.next_u64()).collect();
        let back: Vec<u64> = codec::from_bytes(&codec::to_bytes(&v)).expect("vec roundtrip");
        assert_eq!(back, v, "case {case}");

        let pair = (draw_string(&mut rng, 20), rng.next_u64());
        let back: (String, u64) =
            codec::from_bytes(&codec::to_bytes(&pair)).expect("tuple roundtrip");
        assert_eq!(back, pair, "case {case}");

        let opt = if rng.next_f64() < 0.5 {
            None
        } else {
            Some(rng.next_u32())
        };
        let back: Option<u32> = codec::from_bytes(&codec::to_bytes(&opt)).expect("option");
        assert_eq!(back, opt, "case {case}");
    }
}
