//! Cross-crate integration tests: the whole pipeline from task runtime
//! through stencil, simulator, metrics, and adaptation.

use grain::metrics::sweep::{run_sweep, NativeEngine, SimEngine, StencilEngine};
use grain::metrics::{EngineKind, RunRecord};
use grain::runtime::{Runtime, RuntimeConfig};
use grain::sim::{simulate, SimConfig};
use grain::stencil::{run_futurized, run_sequential, stencil_workload, StencilParams};
use grain::topology::presets;

#[test]
fn native_and_simulated_engines_agree_on_structure() {
    // Both engines must execute exactly the same task DAG: same task
    // count, same conversion count, both with Σt_func ≥ Σt_exec.
    let nx = 2_000;
    let native = NativeEngine::scaled(100_000, 5);
    let sim = SimEngine::scaled(presets::haswell(), 100_000, 5);

    let a: RunRecord = native.run(nx, 2, 0);
    let b: RunRecord = sim.run(nx, 2, 0);

    assert_eq!(a.meta.engine, EngineKind::Native);
    assert_eq!(b.meta.engine, EngineKind::Simulated);
    assert_eq!(a.tasks, b.tasks, "same DAG, same task count");
    assert_eq!(a.converted, b.converted);
    assert_eq!(a.meta.np, b.meta.np);
    assert!(a.sum_func_ns >= a.sum_exec_ns);
    assert!(b.sum_func_ns >= b.sum_exec_ns);
}

#[test]
fn full_pipeline_stencil_to_metrics() {
    let params = StencilParams::new(1_000, 50, 5);
    let rt = Runtime::with_workers(2);
    let t0 = std::time::Instant::now();
    let grid = run_futurized(&rt, &params);
    let rec = RunRecord::from_native(&rt, t0.elapsed().as_secs_f64(), &params);

    assert_eq!(grid.len(), params.total_points());
    assert_eq!(rec.tasks as usize, params.total_tasks());
    assert!(rec.idle_rate() >= 0.0 && rec.idle_rate() <= 1.0);
    assert!(rec.task_duration_ns() > 0.0);
    // Eq. 4 bounded by wall time × workers.
    assert!(rec.thread_management_s() <= rec.wall_s * 2.0 + 1e-9);
}

#[test]
fn u_curve_emerges_in_simulation() {
    // The paper's central qualitative result: fine and coarse extremes
    // both lose badly to a medium granularity.
    let engine = SimEngine::scaled(presets::haswell(), 10_000_000, 10);
    let fine = engine.run(100, 16, 0).wall_s;
    let medium = engine.run(20_000, 16, 0).wall_s;
    let coarse = engine.run(10_000_000, 16, 0).wall_s;
    assert!(
        fine > 2.0 * medium,
        "fine-grained overhead blow-up missing: fine={fine} medium={medium}"
    );
    assert!(
        coarse > 2.0 * medium,
        "coarse-grained starvation missing: coarse={coarse} medium={medium}"
    );
}

#[test]
fn u_curve_emerges_natively() {
    // The same shape on the real runtime (coarse = single partition
    // serializes; fine = task-management dominated).
    let total = 400_000;
    let steps = 6;
    let engine = NativeEngine::scaled(total, steps);
    let fine = engine.run(50, 2, 0).wall_s; // 8000 partitions of 50 pts
    let medium = engine.run(10_000, 2, 0).wall_s;
    assert!(
        fine > 1.5 * medium,
        "fine-grained native overhead missing: fine={fine} medium={medium}"
    );
}

#[test]
fn idle_rate_extremes_in_simulation() {
    let engine = SimEngine::scaled(presets::haswell(), 10_000_000, 10);
    let fine = engine.run(100, 28, 0);
    let medium = engine.run(100_000, 28, 0);
    let coarse = engine.run(10_000_000, 28, 0);
    assert!(fine.idle_rate() > 0.6, "fine idle {}", fine.idle_rate());
    assert!(
        medium.idle_rate() < 0.3,
        "medium idle {}",
        medium.idle_rate()
    );
    assert!(
        coarse.idle_rate() > 0.6,
        "coarse idle {}",
        coarse.idle_rate()
    );
}

#[test]
fn wait_time_grows_with_cores_in_simulation() {
    // Eq. 5 at medium grain: more cores → more bandwidth contention →
    // larger per-task wait (Fig. 6).
    let engine = SimEngine::paper(presets::haswell());
    let td1 = engine.run(50_000, 1, 0).task_duration_ns();
    let td8 = engine.run(50_000, 8, 0).task_duration_ns();
    let td28 = engine.run(50_000, 28, 0).task_duration_ns();
    assert!(td8 > td1, "8-core wait missing");
    assert!(td28 > td8, "28-core wait must exceed 8-core wait");
}

#[test]
fn negative_wait_time_at_coarse_grain() {
    // §II-A: "wait time can be negative since behaviors such as caching
    // effects can cause the time for one core to be larger than that for
    // multiple cores" — reproduced through the first-touch striping model.
    let engine = SimEngine::paper(presets::haswell());
    let td1 = engine.run(100_000_000, 1, 0).task_duration_ns();
    let td28 = engine.run(100_000_000, 28, 0).task_duration_ns();
    assert!(
        td28 < td1,
        "single-partition tasks should run faster on the parallel run (td1={td1}, td28={td28})"
    );
}

#[test]
fn sweep_cells_cover_both_engines() {
    let sim = SimEngine::scaled(presets::sandy_bridge(), 200_000, 3);
    let sweep = run_sweep(&sim, &[1_000, 50_000], &[1, 4], 2, None);
    assert_eq!(sweep.cells.len(), 4);
    let native = NativeEngine::scaled(50_000, 3);
    let sweep = run_sweep(&native, &[1_000, 25_000], &[1, 2], 1, None);
    assert_eq!(sweep.cells.len(), 4);
    for c in &sweep.cells {
        assert!(c.agg.wall_s.mean() > 0.0);
        assert!(c.td1_ns > 0.0);
    }
}

#[test]
fn adaptive_pipeline_improves_from_fine_start() {
    use grain::adaptive::{adapt, ThresholdTuner, TunerConfig};
    let engine = SimEngine::scaled(presets::haswell(), 4_000_000, 5);
    let mut tuner = ThresholdTuner::new(TunerConfig {
        initial_nx: 200,
        ..TunerConfig::default()
    });
    let trace = adapt(&engine, 16, &mut tuner, 20);
    assert!(trace.final_nx > 200);
    assert!(trace.speedup() > 1.3, "speedup {}", trace.speedup());
}

#[test]
fn counters_visible_through_facade_registry() {
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let params = StencilParams::new(500, 20, 3);
    let _ = run_futurized(&rt, &params);
    rt.wait_idle();
    let v = rt
        .registry()
        .query("/threads{locality#0/total}/count/cumulative")
        .unwrap();
    assert_eq!(v.value as usize, params.total_tasks());
    let ir = rt
        .registry()
        .query("/threads{locality#0/total}/idle-rate")
        .unwrap();
    assert!((0.0..=1.0).contains(&ir.value));
}

#[test]
fn simulated_platforms_rank_sensibly() {
    // Same workload, full node each: the Phi is slowest per Fig. 3;
    // all Xeon parts land within a factor of a few of each other.
    let params = StencilParams::for_total(5_000_000, 50_000, 5);
    let wl = stencil_workload(&params);
    let mut results = Vec::new();
    for p in presets::table1() {
        let r = simulate(&p, p.usable_cores, &wl, &SimConfig::default());
        results.push((p.name.clone(), r.wall_seconds()));
    }
    let phi = results.iter().find(|(n, _)| n == "Xeon Phi").unwrap().1;
    for (name, t) in &results {
        if name != "Xeon Phi" {
            assert!(phi > *t, "Phi should be slowest: {results:?}");
        }
    }
}

#[test]
fn sequential_oracle_matches_futurized_at_scale() {
    let params = StencilParams::new(257, 31, 17); // awkward shapes on purpose
    let rt = Runtime::with_workers(3);
    assert_eq!(run_futurized(&rt, &params), run_sequential(&params));
}
