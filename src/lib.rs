//! # Grain — task-granularity characterization runtime
//!
//! Facade crate re-exporting the whole workspace. See the README for a
//! tour; this is a from-scratch Rust reproduction of Grubel et al.,
//! *"The Performance Implication of Task Size for Applications on the HPX
//! Runtime System"* (IEEE CLUSTER 2015).

pub use grain_adaptive as adaptive;
pub use grain_autotune as autotune;
pub use grain_counters as counters;
pub use grain_fleet as fleet;
pub use grain_metrics as metrics;
pub use grain_net as net;
pub use grain_runtime as runtime;
pub use grain_service as service;
pub use grain_sim as sim;
pub use grain_stencil as stencil;
pub use grain_taskbench as taskbench;
pub use grain_topology as topology;
