#!/usr/bin/env sh
# The repo's verification gate: formatting, lints, release build, tests.
# Run from the repository root. Fully offline — the workspace has no
# external dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> cargo test (hot-path feature matrix)"
# The three hot-path levers (DESIGN.md §15) must each pass the tier-1
# suite alone and all together. Per-lever runs cover the crate that owns
# the lever plus the cross-crate golden-checksum pin (bit-identity of
# results with the lever on); the combined run covers the whole
# workspace with everything on at once.
cargo test -p grain-runtime --features task-slab --offline -q
cargo test -p grain-runtime --features coarse-clock --offline -q
cargo test -p grain-net --features parcel-reuse --offline -q
cargo test -p grain-taskbench --features grain-runtime/task-slab \
    --offline -q --test executors pinned_golden
cargo test --workspace --offline -q \
    --features grain-runtime/task-slab,grain-runtime/coarse-clock,grain-net/parcel-reuse

echo "==> cargo test (fault-inject)"
# The deterministic fault-injection hooks are compiled out by default;
# exercise the injected-panic/delay/spurious-wake paths and the seeded
# replay tests with the feature on.
cargo test -p grain-runtime --features fault-inject --offline -q

echo "==> chaos soak (bounded)"
# Replay one seeded multi-tenant storm (2x oversubmission, a panicking
# tenant) with the resilience layer off and on, and assert the ledger
# conservation / budget-restoration / breaker-recovery invariants. The
# virtual horizon is scaled down to real time, so this stays bounded
# (tens of seconds) while covering 30 virtual seconds of load.
cargo run --release -p grain-bench --bin soak --offline -- \
    --virtual-seconds 30 --seed 7

echo "==> queue bench smoke"
# Bounded run of the scheduler-queue microbenchmark: asserts
# pop-after-push FIFO sanity internally (non-zero exit on violation) and
# records the lockfree-vs-mutex throughput table plus the fine-grain
# stencil sweep for before/after comparison.
mkdir -p results
cargo run --release -p grain-bench --bin queue_bench --offline -- --quick \
    | tee results/queue_bench.txt
grep -q '^OK$' results/queue_bench.txt || {
    echo "queue_bench did not complete" >&2
    exit 1
}
# The same bounded run with the hot-path levers on, appending the
# "after" half of the before/after pair (EXPERIMENTS.md, hot-path
# section) to results/BENCH_queue.json.
cargo run --release -p grain-bench --features hotpath --bin queue_bench \
    --offline -- --quick > results/queue_bench_hotpath.txt
grep -q '^OK$' results/queue_bench_hotpath.txt || {
    echo "queue_bench (hotpath) did not complete" >&2
    exit 1
}

echo "==> dist smoke"
# The distribution layer end to end: a 2-locality in-process stencil
# must be bit-identical to the single-runtime run (asserted inside the
# test), then a bounded dist_bench sweep re-checks correctness against
# the oracle and the sent==received parcel balance per configuration.
cargo test --offline -q --test distributed
cargo run --release -p grain-bench --bin dist_bench --offline -- --quick \
    | tee results/dist_bench.txt
grep -q '^OK$' results/dist_bench.txt || {
    echo "dist_bench did not complete" >&2
    exit 1
}
# "After" half of the hot-path pair for the parcel path.
cargo run --release -p grain-bench --features hotpath --bin dist_bench \
    --offline -- --quick > results/dist_bench_hotpath.txt
grep -q '^OK$' results/dist_bench_hotpath.txt || {
    echo "dist_bench (hotpath) did not complete" >&2
    exit 1
}

echo "==> netstorm replay determinism"
# The chaos headline: a 3-locality taskbench storm over the simulated
# network fabric (drop/dup/reorder + a partition/heal cycle + a
# kill-under-partition), with exactly-once settlement counted and the
# parcel ledger conserved — asserted inside the binary. The binary
# already replays itself once in-process; running it twice as separate
# processes and diffing proves the report is deterministic across
# process boundaries too (no address, timing, or thread-id leakage).
cargo run --release -p grain-bench --bin netstorm --offline -- --quick \
    | tee results/netstorm.txt
grep -q '^OK$' results/netstorm.txt || {
    echo "netstorm did not complete" >&2
    exit 1
}
cargo run --release -p grain-bench --bin netstorm --offline -- --quick \
    > results/netstorm_replay.txt
cmp -s results/netstorm.txt results/netstorm_replay.txt || {
    echo "netstorm reports diverged across processes" >&2
    diff results/netstorm.txt results/netstorm_replay.txt >&2 || true
    exit 1
}

echo "==> taskbench smoke"
# The dependency-graph workload surface end to end: five graph families
# generated from one seed, swept over grain and payload on the local
# executor with Eqs. 1-6 emitted per cell, then one random DAG checked
# for checksum equality across all three executors (runtime / service /
# 2 loopback localities; asserted internally, non-zero exit on
# divergence) and the run appended to results/BENCH_taskbench.json.
cargo run --release -p grain-bench --bin taskbench --offline -- --quick \
    | tee results/taskbench.txt
grep -q '^OK$' results/taskbench.txt || {
    echo "taskbench did not complete" >&2
    exit 1
}
# "After" half of the hot-path pair for the task spawn/dispatch path.
cargo run --release -p grain-bench --features hotpath --bin taskbench \
    --offline -- --quick > results/taskbench_hotpath.txt
grep -q '^OK$' results/taskbench_hotpath.txt || {
    echo "taskbench (hotpath) did not complete" >&2
    exit 1
}

echo "==> BENCH trajectory stamps"
# Every bench above appended features-stamped snapshots; assert each
# trajectory actually gained a commit-stamped before (baseline) and
# after (all levers) entry from this tree, so a stale results/ dir or a
# silently-skipped append can't masquerade as a recorded pair.
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
for b in queue dist taskbench; do
    for feats in 'baseline' 'task-slab+coarse-clock+parcel-reuse'; do
        grep -q "\"commit\":\"$commit\".*\"features\":\"$feats\"" \
            "results/BENCH_$b.json" || {
            echo "BENCH_$b.json has no $feats snapshot for $commit" >&2
            exit 1
        }
    done
done

echo "==> fleetstorm replay determinism"
# The fleet headline: a multi-tenant storm routed through the gateway
# across three worker localities while the harness kills, drains, and
# partitions them — exactly-once completion accounting asserted per
# batch (ledger conserved, fault windows exact), plus six targeted
# failover stages (orphan re-dispatch, duplicate fencing, drain
# hand-back, stale-epoch fence after partition/heal, quorum shedding,
# remote-reject origin). The binary replays itself once in-process;
# running it twice as separate processes and diffing proves the report
# is deterministic across process boundaries too.
cargo run --release -p grain-bench --bin fleetstorm --offline -- --quick \
    | tee results/fleetstorm.txt
grep -q '^OK$' results/fleetstorm.txt || {
    echo "fleetstorm did not complete" >&2
    exit 1
}
cargo run --release -p grain-bench --bin fleetstorm --offline -- --quick \
    > results/fleetstorm_replay.txt
cmp -s results/fleetstorm.txt results/fleetstorm_replay.txt || {
    echo "fleetstorm reports diverged across processes" >&2
    diff results/fleetstorm.txt results/fleetstorm_replay.txt >&2 || true
    exit 1
}

echo "==> autotune convergence replay determinism"
# Online granularity control (DESIGN.md §16): three tenants starting at
# pathological grains converge under the deterministic cost-model storm
# (≤8 jobs, t_o within 10% of the grid-searched optimum — asserted
# inside the binary, non-zero exit + FAIL lines on violation). Stdout
# carries only modeled, host-independent numbers; running the binary
# twice and byte-comparing proves no wall-clock measurement leaks into
# a controller decision. The measured autotune-on/off phase goes to
# stderr and appends results/BENCH_autotune.json.
cargo run --release -p grain-bench --bin autotune --offline -- --quick \
    2>results/autotune.log | tee results/autotune.txt
grep -q '^OK$' results/autotune.txt || {
    echo "autotune did not complete" >&2
    exit 1
}
cargo run --release -p grain-bench --bin autotune --offline -- --quick \
    2>>results/autotune.log > results/autotune_replay.txt
cmp -s results/autotune.txt results/autotune_replay.txt || {
    echo "autotune convergence reports diverged across processes" >&2
    diff results/autotune.txt results/autotune_replay.txt >&2 || true
    exit 1
}
grep -q "\"commit\":\"$commit\"" results/BENCH_autotune.json || {
    echo "BENCH_autotune.json has no snapshot for $commit" >&2
    exit 1
}

echo "==> unwrap-free hot paths"
# The worker dispatch loop, the scheduler search, the lock-free queue,
# the service dispatcher, and the overload path (admission + pressure)
# must not use unwrap(): a poisoned-lock or bad-option unwrap there
# takes down a worker or wedges every tenant.
# Enforced by clippy at deny level; assert the attributes stay in place.
# The parcelport and wire codec join the list: an unwrap there lets one
# hostile or truncated frame take down a network thread (and with it
# every future routed over that link). So do the taskbench generator and
# executors: a panic inside a node task or the edge board poisons a
# whole measured sweep (and, distributed, wedges remote edge waiters).
# The chaos layer joins too: the locality's dispatch/dedup/monitor
# paths, the transport seam, and the simulated fabric's pump thread all
# run on threads whose panic silently kills delivery for a whole world.
# And the whole fleet crate: the gateway pump and the worker's
# submit/push handlers run on threads whose panic strands every leased
# job — exactly the hang the plane exists to prevent.
# The task-body slab joins: it holds every pooled task frame, so an
# unwrap there corrupts spawns across all workers at once.
# The autotune crate and the strategy engines join: the policy hook and
# counter closures run inside the service's settle path and the stats
# sampler — a panic there turns a mis-tuned grain into a dead dispatcher.
for f in crates/runtime/src/worker.rs crates/runtime/src/queue.rs \
    crates/runtime/src/slab.rs \
    crates/runtime/src/scheduler.rs crates/service/src/service.rs \
    crates/service/src/admission.rs crates/service/src/pressure.rs \
    crates/net/src/parcelport.rs crates/net/src/codec.rs \
    crates/net/src/locality.rs crates/net/src/transport.rs \
    crates/sim/src/fabric.rs crates/sim/src/netplan.rs \
    crates/taskbench/src/graph.rs crates/taskbench/src/exec_local.rs \
    crates/taskbench/src/exec_service.rs crates/taskbench/src/exec_net.rs \
    crates/fleet/src/wire.rs crates/fleet/src/stats.rs \
    crates/fleet/src/breaker.rs crates/fleet/src/worker.rs \
    crates/fleet/src/gateway.rs \
    crates/adaptive/src/strategy.rs crates/autotune/src/lib.rs \
    crates/autotune/src/autotune.rs crates/autotune/src/controller.rs \
    crates/autotune/src/model.rs crates/autotune/src/shape.rs; do
    grep -q 'deny(clippy::unwrap_used)' "$f" || {
        echo "missing #![deny(clippy::unwrap_used)] in $f" >&2
        exit 1
    }
done

echo "==> OK"
