#!/usr/bin/env sh
# The repo's verification gate: formatting, lints, release build, tests.
# Run from the repository root. Fully offline — the workspace has no
# external dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> cargo test (fault-inject)"
# The deterministic fault-injection hooks are compiled out by default;
# exercise the injected-panic/delay/spurious-wake paths and the seeded
# replay tests with the feature on.
cargo test -p grain-runtime --features fault-inject --offline -q

echo "==> unwrap-free hot paths"
# The worker dispatch loop and the service dispatcher must not use
# unwrap(): a poisoned-lock or bad-option unwrap there takes down a
# worker or wedges every tenant. Enforced by clippy at deny level;
# assert the attributes stay in place.
for f in crates/runtime/src/worker.rs crates/service/src/service.rs; do
    grep -q 'deny(clippy::unwrap_used)' "$f" || {
        echo "missing #![deny(clippy::unwrap_used)] in $f" >&2
        exit 1
    }
done

echo "==> OK"
