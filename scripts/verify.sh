#!/usr/bin/env sh
# The repo's verification gate: formatting, lints, release build, tests.
# Run from the repository root. Fully offline — the workspace has no
# external dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> OK"
