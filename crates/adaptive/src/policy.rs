//! A counter-driven policy engine — the integration the paper's
//! conclusion describes: *"an initial implementation of the policy engine
//! from the APEX prototype \[has\] been integrated with HPX. We plan to
//! apply our findings to drive the policy engine with our metrics for
//! adapting thread granularity and scheduling policies"* (§VI).
//!
//! Policies observe one monitoring window's metrics and emit [`Action`]s;
//! the engine merges them and the driver applies them to a live runtime:
//! re-partitioning the grid (grain adaptation) and/or throttling the
//! worker pool (Porterfield-style core adaptation, §V).

use crate::tuner::{Observation, ThresholdTuner, Tuner};
use grain_counters::Snapshot;
use grain_runtime::Runtime;
use grain_stencil::{collect_result, partition_grid, run_steps_from};

/// What the counters looked like over one monitoring window.
#[derive(Debug, Clone, Copy)]
pub struct PolicyContext {
    /// Windowed idle-rate (Eq. 1).
    pub idle_rate: f64,
    /// Useful throughput over the window, points/s.
    pub throughput: f64,
    /// Ready parallelism: partitions per *active* worker.
    pub tasks_per_core: f64,
    /// Current partition size.
    pub nx: usize,
    /// Workers currently allowed to take work.
    pub active_workers: usize,
    /// Pool size.
    pub max_workers: usize,
}

/// Something a policy can ask the driver to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Re-partition to this size at the next epoch boundary.
    SetGrain(usize),
    /// Throttle (or un-throttle) the worker pool.
    SetActiveWorkers(usize),
}

/// A rule evaluated once per monitoring window.
pub trait Policy {
    /// Name for traces.
    fn name(&self) -> &str;
    /// Look at the window, optionally demand actions.
    fn evaluate(&mut self, ctx: &PolicyContext) -> Vec<Action>;
}

/// Grain adaptation as a policy: wraps a [`ThresholdTuner`].
pub struct GrainPolicy {
    tuner: ThresholdTuner,
}

impl GrainPolicy {
    /// Wrap a tuner.
    pub fn new(tuner: ThresholdTuner) -> Self {
        Self { tuner }
    }
}

impl Policy for GrainPolicy {
    fn name(&self) -> &str {
        "grain"
    }
    fn evaluate(&mut self, ctx: &PolicyContext) -> Vec<Action> {
        let next = self.tuner.observe(Observation {
            idle_rate: ctx.idle_rate,
            points_per_s: ctx.throughput,
            tasks_per_core: ctx.tasks_per_core,
        });
        if next != ctx.nx {
            vec![Action::SetGrain(next)]
        } else {
            Vec::new()
        }
    }
}

/// Core throttling: when the workload cannot feed every active worker
/// (partitions per worker below `min_slack`), park the surplus; when
/// parallel slack returns, re-activate. The energy-oriented adaptation of
/// Porterfield et al. (§V), driven by this paper's counters.
pub struct ThrottlePolicy {
    /// Minimum partitions-per-worker before throttling kicks in.
    pub min_slack: f64,
    /// Never throttle below this many workers.
    pub min_workers: usize,
}

impl Default for ThrottlePolicy {
    fn default() -> Self {
        Self {
            min_slack: 1.0,
            min_workers: 1,
        }
    }
}

impl Policy for ThrottlePolicy {
    fn name(&self) -> &str {
        "throttle"
    }
    fn evaluate(&mut self, ctx: &PolicyContext) -> Vec<Action> {
        let partitions = (ctx.tasks_per_core * ctx.active_workers as f64).round() as usize;
        let want = partitions.max(self.min_workers).min(ctx.max_workers).max(1);
        if (ctx.tasks_per_core < self.min_slack && want < ctx.active_workers)
            || (want > ctx.active_workers && ctx.tasks_per_core >= self.min_slack)
        {
            vec![Action::SetActiveWorkers(want)]
        } else {
            Vec::new()
        }
    }
}

/// Evaluates a set of policies and merges their actions (later policies
/// win conflicts of the same kind).
pub struct PolicyEngine {
    policies: Vec<Box<dyn Policy>>,
}

impl PolicyEngine {
    /// Engine over the given policies.
    pub fn new(policies: Vec<Box<dyn Policy>>) -> Self {
        Self { policies }
    }

    /// One evaluation round: returns the merged `(grain, active_workers)`
    /// requests, if any.
    pub fn evaluate(&mut self, ctx: &PolicyContext) -> (Option<usize>, Option<usize>) {
        let mut grain = None;
        let mut workers = None;
        for p in &mut self.policies {
            for a in p.evaluate(ctx) {
                match a {
                    Action::SetGrain(g) => grain = Some(g),
                    Action::SetActiveWorkers(w) => workers = Some(w),
                }
            }
        }
        (grain, workers)
    }
}

/// One window of a policy-driven run.
#[derive(Debug, Clone)]
pub struct PolicyEpoch {
    /// Partition size in this window.
    pub nx: usize,
    /// Active workers during this window.
    pub active_workers: usize,
    /// Windowed idle-rate.
    pub idle_rate: f64,
    /// Window wall time, seconds.
    pub wall_s: f64,
    /// Core-seconds consumed (active workers × wall) — the energy proxy
    /// throttling tries to reduce.
    pub core_seconds: f64,
}

/// Result of a policy-driven run.
#[derive(Debug, Clone)]
pub struct PolicyRun {
    /// Per-window records.
    pub epochs: Vec<PolicyEpoch>,
    /// Final grid values.
    pub grid: Vec<f64>,
}

impl PolicyRun {
    /// Total core-seconds (energy proxy) across the run.
    pub fn total_core_seconds(&self) -> f64 {
        self.epochs.iter().map(|e| e.core_seconds).sum()
    }
}

const EXEC_PATH: &str = "/threads{locality#0/total}/time/cumulative-exec";
const FUNC_PATH: &str = "/threads{locality#0/total}/time/cumulative-func";

/// Run heat diffusion under a policy engine: `epochs × steps_per_epoch`
/// steps over `grid`, with the engine deciding partition size and active
/// worker count between windows.
pub fn run_policy_driven(
    rt: &Runtime,
    mut grid: Vec<f64>,
    coeff: f64,
    initial_nx: usize,
    steps_per_epoch: usize,
    epochs: usize,
    engine: &mut PolicyEngine,
) -> PolicyRun {
    assert!(!grid.is_empty() && steps_per_epoch > 0);
    let mut nx = initial_nx.clamp(1, grid.len());
    let mut records = Vec::new();

    for _ in 0..epochs {
        let parts = partition_grid(&grid, nx);
        let np = parts.len();
        let active = rt.active_workers();

        let before = Snapshot::capture_all(rt.registry());
        let t0 = std::time::Instant::now();
        let out = run_steps_from(rt, parts, steps_per_epoch, coeff);
        grid = collect_result(&out);
        rt.wait_idle();
        let wall_s = t0.elapsed().as_secs_f64();
        let after = Snapshot::capture_all(rt.registry());
        let idle_rate = before
            .delta(&after)
            .windowed_ratio(EXEC_PATH, FUNC_PATH)
            .unwrap_or(0.0);

        records.push(PolicyEpoch {
            nx,
            active_workers: active,
            idle_rate,
            wall_s,
            core_seconds: active as f64 * wall_s,
        });

        let ctx = PolicyContext {
            idle_rate,
            throughput: if wall_s > 0.0 {
                (grid.len() * steps_per_epoch) as f64 / wall_s
            } else {
                0.0
            },
            tasks_per_core: np as f64 / active as f64,
            nx,
            active_workers: active,
            max_workers: rt.num_workers(),
        };
        let (new_grain, new_workers) = engine.evaluate(&ctx);
        if let Some(g) = new_grain {
            nx = g.clamp(1, grid.len());
        }
        if let Some(w) = new_workers {
            rt.set_active_workers(w);
        }
    }
    PolicyRun {
        epochs: records,
        grid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::TunerConfig;
    use grain_stencil::{run_sequential, StencilParams};

    fn ctx(idle: f64, tpc: f64, active: usize, max: usize) -> PolicyContext {
        PolicyContext {
            idle_rate: idle,
            throughput: 1e9,
            tasks_per_core: tpc,
            nx: 1_000,
            active_workers: active,
            max_workers: max,
        }
    }

    #[test]
    fn throttle_policy_parks_surplus_workers() {
        let mut p = ThrottlePolicy::default();
        // 2 partitions on 8 active workers → park down to 2.
        let actions = p.evaluate(&ctx(0.8, 0.25, 8, 8));
        assert_eq!(actions, vec![Action::SetActiveWorkers(2)]);
    }

    #[test]
    fn throttle_policy_reactivates_when_slack_returns() {
        let mut p = ThrottlePolicy::default();
        // 64 partitions on 2 active workers of an 8-pool → open up.
        let actions = p.evaluate(&ctx(0.1, 32.0, 2, 8));
        assert_eq!(actions, vec![Action::SetActiveWorkers(8)]);
    }

    #[test]
    fn throttle_policy_holds_when_balanced() {
        let mut p = ThrottlePolicy::default();
        assert!(p.evaluate(&ctx(0.2, 4.0, 8, 8)).is_empty());
    }

    #[test]
    fn engine_merges_policies() {
        let grain = GrainPolicy::new(ThresholdTuner::new(TunerConfig {
            initial_nx: 1_000,
            ..TunerConfig::default()
        }));
        let mut engine =
            PolicyEngine::new(vec![Box::new(grain), Box::new(ThrottlePolicy::default())]);
        // High idle-rate at fine grain with plenty of slack: grain grows,
        // throttle holds.
        let (g, w) = engine.evaluate(&ctx(0.9, 50.0, 8, 8));
        assert_eq!(g, Some(2_000));
        assert_eq!(w, None);
    }

    #[test]
    fn policy_driven_run_preserves_physics() {
        let params = StencilParams::new(16, 16, 12);
        let rt = Runtime::with_workers(4);
        let grid0: Vec<f64> = (0..params.total_points())
            .map(|g| (g / params.nx) as f64)
            .collect();
        let mut engine = PolicyEngine::new(vec![
            Box::new(GrainPolicy::new(ThresholdTuner::new(TunerConfig {
                initial_nx: 8,
                ..TunerConfig::default()
            }))),
            Box::new(ThrottlePolicy::default()),
        ]);
        let run = run_policy_driven(&rt, grid0, params.coefficient(), 8, 3, 4, &mut engine);
        assert_eq!(run.grid, run_sequential(&params));
        assert_eq!(run.epochs.len(), 4);
    }

    #[test]
    fn policy_driven_run_throttles_on_coarse_grain() {
        // 2 partitions on a 4-worker pool: the throttle policy must cut
        // the pool after the first window.
        let rt = Runtime::with_workers(4);
        let grid0 = vec![1.0; 4_096];
        let mut engine = PolicyEngine::new(vec![Box::new(ThrottlePolicy::default())]);
        let run = run_policy_driven(&rt, grid0, 0.5, 2_048, 5, 3, &mut engine);
        assert_eq!(run.epochs[0].active_workers, 4);
        assert!(
            run.epochs.last().unwrap().active_workers <= 2,
            "expected throttling: {:?}",
            run.epochs
                .iter()
                .map(|e| e.active_workers)
                .collect::<Vec<_>>()
        );
        assert_eq!(rt.active_workers(), 2);
    }
}

/// Engine-generic policy loop: like [`run_policy_driven`] but over any
/// [`grain_metrics::StencilEngine`] (e.g. a simulated Table I platform),
/// where "throttling" selects the worker count of the next epoch. Used
/// for the energy experiments: core-seconds with vs without the throttle
/// policy.
pub fn run_policy_epochs(
    engine: &dyn grain_metrics::StencilEngine,
    initial_nx: usize,
    initial_workers: usize,
    epochs: usize,
    policy_engine: &mut PolicyEngine,
) -> Vec<PolicyEpoch> {
    let mut nx = initial_nx;
    let mut workers = initial_workers.clamp(1, engine.max_workers());
    let mut records = Vec::new();
    for e in 0..epochs {
        let rec = engine.run(nx, workers, e);
        let params = engine.params_for(nx);
        records.push(PolicyEpoch {
            nx,
            active_workers: workers,
            idle_rate: rec.idle_rate(),
            wall_s: rec.wall_s,
            core_seconds: workers as f64 * rec.wall_s,
        });
        let ctx = PolicyContext {
            idle_rate: rec.idle_rate(),
            throughput: if rec.wall_s > 0.0 {
                (params.total_points() * params.nt) as f64 / rec.wall_s
            } else {
                0.0
            },
            tasks_per_core: params.np as f64 / workers as f64,
            nx,
            active_workers: workers,
            max_workers: initial_workers.clamp(1, engine.max_workers()),
        };
        let (new_grain, new_workers) = policy_engine.evaluate(&ctx);
        if let Some(g) = new_grain {
            nx = g.max(1);
        }
        if let Some(w) = new_workers {
            workers = w.clamp(1, engine.max_workers());
        }
    }
    records
}

#[cfg(test)]
mod sim_tests {
    use super::*;
    use crate::tuner::TunerConfig;
    use grain_metrics::sweep::SimEngine;
    use grain_topology::presets;

    #[test]
    fn simulated_throttling_saves_core_seconds_at_coarse_grain() {
        // 4 partitions on a 28-core simulated Haswell: the throttle policy
        // should cut the pool toward 4 and reduce the energy proxy without
        // a large wall-time penalty.
        let engine = SimEngine::scaled(presets::haswell(), 8_000_000, 6);
        let nx = 2_000_000; // 4 partitions

        let mut throttled = PolicyEngine::new(vec![Box::new(ThrottlePolicy::default())]);
        let with = run_policy_epochs(&engine, nx, 28, 6, &mut throttled);
        let mut unmanaged = PolicyEngine::new(vec![]);
        let without = run_policy_epochs(&engine, nx, 28, 6, &mut unmanaged);

        let cs_with: f64 = with.iter().map(|e| e.core_seconds).sum();
        let cs_without: f64 = without.iter().map(|e| e.core_seconds).sum();
        assert!(
            with.last().unwrap().active_workers <= 6,
            "throttle should engage: {:?}",
            with.iter().map(|e| e.active_workers).collect::<Vec<_>>()
        );
        assert!(
            cs_with < cs_without * 0.5,
            "energy proxy should drop: {cs_with} vs {cs_without}"
        );
        let t_with: f64 = with.iter().map(|e| e.wall_s).sum();
        let t_without: f64 = without.iter().map(|e| e.wall_s).sum();
        assert!(
            t_with < t_without * 1.3,
            "wall time must not explode: {t_with} vs {t_without}"
        );
    }

    #[test]
    fn combined_policies_adapt_grain_and_cores_in_simulation() {
        let engine = SimEngine::scaled(presets::haswell(), 8_000_000, 6);
        let mut pe = PolicyEngine::new(vec![
            Box::new(GrainPolicy::new(ThresholdTuner::new(TunerConfig {
                initial_nx: 4_000_000, // 2 partitions
                ..TunerConfig::default()
            }))),
            Box::new(ThrottlePolicy::default()),
        ]);
        let epochs = run_policy_epochs(&engine, 4_000_000, 28, 12, &mut pe);
        let last = epochs.last().unwrap();
        assert!(last.nx < 4_000_000, "grain policy should split partitions");
        // Once slack returns, the pool opens back up.
        assert!(
            last.active_workers > 4,
            "workers should be reactivated: {:?}",
            epochs
                .iter()
                .map(|e| (e.nx, e.active_workers))
                .collect::<Vec<_>>()
        );
    }
}
