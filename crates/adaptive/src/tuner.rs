//! Dynamic grain-size tuners — the paper's stated goal ("dynamically
//! adapt task grain size to optimize parallel performance", §VI), built
//! on exactly the signals its characterization identified:
//!
//! * [`ThresholdTuner`] drives the partition size from the *windowed
//!   idle-rate* (Eq. 1 over a monitoring interval) plus the
//!   tasks-per-core ratio that distinguishes the fine-grained regime
//!   (overhead-bound: grow partitions) from the coarse-grained regime
//!   (starvation-bound: shrink partitions);
//! * [`HillClimber`] needs no counters at all — it searches the partition
//!   size multiplicatively on measured *throughput*, useful as a
//!   counter-free baseline for the ablation study.

/// One monitoring window's worth of signals, from either engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Idle-rate over the window (Eq. 1).
    pub idle_rate: f64,
    /// Useful throughput over the window, grid points per second.
    pub points_per_s: f64,
    /// Tasks per core per step available at the current granularity
    /// (`np / n_c`): < ~2 means the coarse, starvation-prone regime.
    pub tasks_per_core: f64,
}

/// A grain-size tuner: consumes window observations, produces the next
/// partition size to try.
pub trait Tuner {
    /// Current partition size.
    fn current_nx(&self) -> usize;
    /// Feed one window; returns the partition size for the next window.
    fn observe(&mut self, obs: Observation) -> usize;
    /// True once the tuner has stopped moving.
    fn converged(&self) -> bool;
}

/// Configuration shared by the tuners.
#[derive(Debug, Clone, Copy)]
pub struct TunerConfig {
    /// Starting partition size.
    pub initial_nx: usize,
    /// Smallest size the tuner may choose.
    pub min_nx: usize,
    /// Largest size the tuner may choose.
    pub max_nx: usize,
    /// Idle-rate ceiling (the paper demonstrates 30 %).
    pub target_idle_rate: f64,
    /// Multiplicative step for size changes.
    pub step: f64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        Self {
            initial_nx: 1_000,
            min_nx: 16,
            max_nx: 100_000_000,
            target_idle_rate: 0.30,
            step: 2.0,
        }
    }
}

/// Idle-rate-threshold tuner (§IV-A made dynamic).
///
/// Decision rule per window:
/// * starving (tasks-per-core below 2): partitions are too coarse to load
///   balance — *shrink*;
/// * idle-rate above target: task management dominates — *grow*;
/// * otherwise: hold (converged once two consecutive holds happen).
#[derive(Debug, Clone)]
pub struct ThresholdTuner {
    cfg: TunerConfig,
    nx: usize,
    holds: u32,
    /// Last direction: +1 grew, −1 shrank, 0 held.
    last_dir: i8,
}

impl ThresholdTuner {
    /// New tuner starting at `cfg.initial_nx`.
    pub fn new(cfg: TunerConfig) -> Self {
        let nx = cfg.initial_nx.clamp(cfg.min_nx, cfg.max_nx);
        Self {
            cfg,
            nx,
            holds: 0,
            last_dir: 0,
        }
    }
}

impl Tuner for ThresholdTuner {
    fn current_nx(&self) -> usize {
        self.nx
    }

    fn observe(&mut self, obs: Observation) -> usize {
        let grow = |nx: usize, cfg: &TunerConfig| {
            (((nx as f64) * cfg.step) as usize).clamp(cfg.min_nx, cfg.max_nx)
        };
        let shrink = |nx: usize, cfg: &TunerConfig| {
            (((nx as f64) / cfg.step) as usize).clamp(cfg.min_nx, cfg.max_nx)
        };

        if obs.tasks_per_core < 2.0 {
            // Coarse regime: not enough parallel slack.
            let next = shrink(self.nx, &self.cfg);
            // Oscillation guard: if we just grew, settle instead of
            // ping-ponging.
            if self.last_dir == 1 {
                self.holds += 1;
                self.last_dir = 0;
            } else if next != self.nx {
                self.nx = next;
                self.holds = 0;
                self.last_dir = -1;
            } else {
                self.holds += 1;
            }
        } else if obs.idle_rate > self.cfg.target_idle_rate {
            // Fine regime: overhead-bound.
            let next = grow(self.nx, &self.cfg);
            if self.last_dir == -1 {
                self.holds += 1;
                self.last_dir = 0;
            } else if next != self.nx {
                self.nx = next;
                self.holds = 0;
                self.last_dir = 1;
            } else {
                self.holds += 1;
            }
        } else {
            self.holds += 1;
            self.last_dir = 0;
        }
        self.nx
    }

    fn converged(&self) -> bool {
        self.holds >= 2
    }
}

/// Counter-free multiplicative hill climber on throughput.
#[derive(Debug, Clone)]
pub struct HillClimber {
    cfg: TunerConfig,
    nx: usize,
    best_rate: f64,
    dir: f64,
    worsened: u32,
}

impl HillClimber {
    /// New climber starting at `cfg.initial_nx`, growing first.
    pub fn new(cfg: TunerConfig) -> Self {
        let nx = cfg.initial_nx.clamp(cfg.min_nx, cfg.max_nx);
        Self {
            cfg,
            nx,
            best_rate: 0.0,
            dir: cfg.step,
            worsened: 0,
        }
    }
}

impl Tuner for HillClimber {
    fn current_nx(&self) -> usize {
        self.nx
    }

    fn observe(&mut self, obs: Observation) -> usize {
        if obs.points_per_s > self.best_rate {
            // Improvement: keep moving the same way.
            self.best_rate = obs.points_per_s;
            self.worsened = 0;
        } else {
            // Got worse: turn around and decay the step.
            self.worsened += 1;
            self.dir = 1.0 / self.dir;
            if self.worsened >= 2 {
                // Bouncing both ways around the optimum: tighten.
                self.dir = self.dir.powf(0.5);
            }
        }
        let next = ((self.nx as f64) * self.dir) as usize;
        self.nx = next.clamp(self.cfg.min_nx, self.cfg.max_nx);
        self.nx
    }

    fn converged(&self) -> bool {
        // Step shrunk to within 10 % — no meaningful moves left.
        (self.dir - 1.0).abs() < 0.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(idle: f64, tpc: f64) -> Observation {
        Observation {
            idle_rate: idle,
            points_per_s: 0.0,
            tasks_per_core: tpc,
        }
    }

    #[test]
    fn threshold_grows_under_high_idle_rate() {
        let mut t = ThresholdTuner::new(TunerConfig::default());
        let nx0 = t.current_nx();
        let nx1 = t.observe(obs(0.9, 100.0));
        assert!(nx1 > nx0, "fine-grained overhead should grow the size");
    }

    #[test]
    fn threshold_shrinks_when_starving() {
        let cfg = TunerConfig {
            initial_nx: 50_000_000,
            ..TunerConfig::default()
        };
        let mut t = ThresholdTuner::new(cfg);
        let nx1 = t.observe(obs(0.8, 0.5));
        assert!(nx1 < 50_000_000, "starvation should shrink the size");
    }

    #[test]
    fn threshold_holds_and_converges_in_band() {
        let mut t = ThresholdTuner::new(TunerConfig::default());
        let nx0 = t.current_nx();
        t.observe(obs(0.1, 100.0));
        assert_eq!(t.current_nx(), nx0);
        assert!(!t.converged());
        t.observe(obs(0.15, 100.0));
        assert!(t.converged());
    }

    #[test]
    fn threshold_respects_bounds() {
        let cfg = TunerConfig {
            initial_nx: 100,
            min_nx: 64,
            max_nx: 256,
            ..TunerConfig::default()
        };
        let mut t = ThresholdTuner::new(cfg);
        for _ in 0..10 {
            t.observe(obs(0.9, 100.0)); // keeps trying to grow
        }
        assert!(t.current_nx() <= 256);
        let mut t = ThresholdTuner::new(cfg);
        for _ in 0..10 {
            t.observe(obs(0.9, 0.1)); // keeps trying to shrink
        }
        assert!(t.current_nx() >= 64);
    }

    #[test]
    fn threshold_damps_oscillation() {
        let mut t = ThresholdTuner::new(TunerConfig::default());
        // Grow once (fine regime), then a starving window: instead of
        // immediately un-doing the move, the tuner settles.
        t.observe(obs(0.9, 100.0));
        let after_grow = t.current_nx();
        t.observe(obs(0.1, 1.0));
        assert_eq!(t.current_nx(), after_grow, "no immediate ping-pong");
    }

    #[test]
    fn hill_climber_tracks_a_peak() {
        // Synthetic throughput landscape peaking at nx = 32_000.
        let rate = |nx: usize| {
            let x = (nx as f64).ln() - (32_000f64).ln();
            1e9 * (-x * x).exp()
        };
        let mut t = HillClimber::new(TunerConfig {
            initial_nx: 1_000,
            ..TunerConfig::default()
        });
        let mut nx = t.current_nx();
        for _ in 0..40 {
            nx = t.observe(Observation {
                idle_rate: 0.0,
                points_per_s: rate(nx),
                tasks_per_core: 10.0,
            });
        }
        assert!(
            (4_000..=256_000).contains(&nx),
            "climber should settle near the peak, got {nx}"
        );
    }

    #[test]
    fn hill_climber_respects_bounds() {
        let cfg = TunerConfig {
            initial_nx: 1_000,
            min_nx: 500,
            max_nx: 2_000,
            ..TunerConfig::default()
        };
        let mut t = HillClimber::new(cfg);
        for i in 0..20 {
            let nx = t.observe(Observation {
                idle_rate: 0.0,
                points_per_s: (i as f64) * 1e6, // always improving
                tasks_per_core: 10.0,
            });
            assert!((500..=2_000).contains(&nx));
        }
    }
}
