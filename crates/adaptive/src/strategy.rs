//! Pluggable grain-selection strategies for the autotune service policy.
//!
//! `crates/autotune` drives one [`GrainStrategy`] per tenant: after each
//! completed job it feeds the job's windowed signals (the paper's
//! counter set — Eq.-1 idle rate, overhead fraction, pending-miss rate,
//! tasks-per-core regime) and receives the grain to use for the
//! tenant's *next* job. The two shipped strategies wrap the existing
//! [`tuner`](crate::tuner) engines so the offline/epoch demos and the
//! online service loop share one decision core.

#![deny(clippy::unwrap_used)]

use crate::tuner::{HillClimber, Observation, ThresholdTuner, Tuner, TunerConfig};

/// One completed job's worth of grain signals, as seen by a strategy.
///
/// All fields are windowed over the job that just finished, not
/// cumulative over the tenant's lifetime — the controller is reacting
/// to the *current* regime, not the tenant's history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrainSignal {
    /// Idle-rate over the job (Eq. 1): 1 − Σt_exec / Σt_func.
    pub idle_rate: f64,
    /// Overhead fraction: task-management time over total thread time.
    /// For uncontended runs this tracks `idle_rate`; under contention it
    /// isolates the t_o component.
    pub overhead_frac: f64,
    /// Fraction of pending-queue pops that missed (stole or spun).
    /// The paper's §IV-E signal: minimized near the optimal grain.
    pub pending_miss_rate: f64,
    /// Tasks available per core for this job (`n_tasks / n_cores`):
    /// below ~2 is the coarse, starvation-prone regime.
    pub tasks_per_core: f64,
    /// Useful throughput over the job, work units per second.
    pub throughput: f64,
}

impl GrainSignal {
    /// The scalar "too fine" pressure a threshold rule reacts to: the
    /// worst of the idle-rate and overhead-fraction signals (either one
    /// alone marks the overhead-bound regime).
    pub fn fine_pressure(&self) -> f64 {
        self.idle_rate.max(self.overhead_frac)
    }
}

/// A per-tenant grain-selection strategy.
///
/// Strategies are deterministic state machines: the same sequence of
/// observations always yields the same sequence of grains. That is what
/// makes the autotune storms replayable bit-for-bit.
pub trait GrainStrategy: Send {
    /// Human-readable name for reports and counters.
    fn name(&self) -> &'static str;
    /// The grain (work units per task) the next job should use.
    fn grain(&self) -> u64;
    /// Feed one completed job's signals; returns the next grain.
    fn observe(&mut self, sig: &GrainSignal) -> u64;
    /// True once the strategy has stopped moving.
    fn converged(&self) -> bool;
}

/// Threshold strategy: the paper's idle-rate/tasks-per-core rule
/// ([`ThresholdTuner`]) applied to per-job service signals.
#[derive(Debug, Clone)]
pub struct ThresholdStrategy {
    inner: ThresholdTuner,
}

impl ThresholdStrategy {
    /// New strategy starting at `cfg.initial_nx` work units per task.
    pub fn new(cfg: TunerConfig) -> Self {
        Self {
            inner: ThresholdTuner::new(cfg),
        }
    }
}

impl GrainStrategy for ThresholdStrategy {
    fn name(&self) -> &'static str {
        "threshold"
    }

    fn grain(&self) -> u64 {
        self.inner.current_nx() as u64
    }

    fn observe(&mut self, sig: &GrainSignal) -> u64 {
        // The pending-miss rate folds into the fine-pressure signal:
        // misses mean workers hunting for work that is too small to
        // keep them fed, the same overhead-bound regime as a high
        // idle rate (§IV-E tracks §IV-A at the optimum).
        let pressure = sig.fine_pressure().max(sig.pending_miss_rate);
        self.inner.observe(Observation {
            idle_rate: pressure,
            points_per_s: sig.throughput,
            tasks_per_core: sig.tasks_per_core,
        }) as u64
    }

    fn converged(&self) -> bool {
        self.inner.converged()
    }
}

/// Hill-climb strategy: counter-free throughput search
/// ([`HillClimber`]) — the ablation baseline that needs no runtime
/// counters at all.
#[derive(Debug, Clone)]
pub struct HillClimbStrategy {
    inner: HillClimber,
}

impl HillClimbStrategy {
    /// New strategy starting at `cfg.initial_nx` work units per task.
    pub fn new(cfg: TunerConfig) -> Self {
        Self {
            inner: HillClimber::new(cfg),
        }
    }
}

impl GrainStrategy for HillClimbStrategy {
    fn name(&self) -> &'static str {
        "hill-climb"
    }

    fn grain(&self) -> u64 {
        self.inner.current_nx() as u64
    }

    fn observe(&mut self, sig: &GrainSignal) -> u64 {
        self.inner.observe(Observation {
            idle_rate: sig.fine_pressure(),
            points_per_s: sig.throughput,
            tasks_per_core: sig.tasks_per_core,
        }) as u64
    }

    fn converged(&self) -> bool {
        self.inner.converged()
    }
}

/// Which strategy a tenant's controller runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrategyKind {
    /// Counter-driven threshold rule (default; the paper's signals).
    #[default]
    Threshold,
    /// Counter-free throughput hill climb (ablation baseline).
    HillClimb,
}

/// Build a boxed strategy of the given kind.
pub fn strategy_for(kind: StrategyKind, cfg: TunerConfig) -> Box<dyn GrainStrategy> {
    match kind {
        StrategyKind::Threshold => Box::new(ThresholdStrategy::new(cfg)),
        StrategyKind::HillClimb => Box::new(HillClimbStrategy::new(cfg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(idle: f64, tpc: f64) -> GrainSignal {
        GrainSignal {
            idle_rate: idle,
            overhead_frac: 0.0,
            pending_miss_rate: 0.0,
            tasks_per_core: tpc,
            throughput: 0.0,
        }
    }

    #[test]
    fn threshold_strategy_grows_under_overhead() {
        let mut s = ThresholdStrategy::new(TunerConfig::default());
        let g0 = s.grain();
        let g1 = s.observe(&sig(0.9, 100.0));
        assert!(g1 > g0, "overhead-bound regime should coarsen the grain");
    }

    #[test]
    fn threshold_strategy_shrinks_when_starving() {
        let mut s = ThresholdStrategy::new(TunerConfig {
            initial_nx: 1_000_000,
            ..TunerConfig::default()
        });
        let g1 = s.observe(&sig(0.05, 0.5));
        assert!(g1 < 1_000_000, "starvation should refine the grain");
    }

    #[test]
    fn overhead_fraction_alone_triggers_growth() {
        // idle_rate low but overhead_frac high: the Eq.-1 components
        // disagree (contended run); the strategy must still coarsen.
        let mut s = ThresholdStrategy::new(TunerConfig::default());
        let g0 = s.grain();
        let g1 = s.observe(&GrainSignal {
            idle_rate: 0.05,
            overhead_frac: 0.8,
            pending_miss_rate: 0.0,
            tasks_per_core: 100.0,
            throughput: 0.0,
        });
        assert!(g1 > g0);
    }

    #[test]
    fn pending_misses_alone_trigger_growth() {
        let mut s = ThresholdStrategy::new(TunerConfig::default());
        let g0 = s.grain();
        let g1 = s.observe(&GrainSignal {
            idle_rate: 0.05,
            overhead_frac: 0.05,
            pending_miss_rate: 0.9,
            tasks_per_core: 100.0,
            throughput: 0.0,
        });
        assert!(g1 > g0, "pending-queue churn marks too-fine grain");
    }

    #[test]
    fn strategies_are_deterministic() {
        // Same observation sequence → same grain trajectory; this is
        // the property the replay-determinism gate leans on.
        let run = |kind: StrategyKind| {
            let mut s = strategy_for(kind, TunerConfig::default());
            (0..12)
                .map(|i| {
                    s.observe(&GrainSignal {
                        idle_rate: 0.8 / (i + 1) as f64,
                        overhead_frac: 0.1,
                        pending_miss_rate: 0.0,
                        tasks_per_core: 8.0,
                        throughput: 1e6 * (i + 1) as f64,
                    })
                })
                .collect::<Vec<_>>()
        };
        for kind in [StrategyKind::Threshold, StrategyKind::HillClimb] {
            assert_eq!(run(kind), run(kind));
        }
    }

    #[test]
    fn hill_climb_converges_on_flat_landscape() {
        let mut s = HillClimbStrategy::new(TunerConfig::default());
        for _ in 0..20 {
            s.observe(&GrainSignal {
                idle_rate: 0.0,
                overhead_frac: 0.0,
                pending_miss_rate: 0.0,
                tasks_per_core: 10.0,
                throughput: 1e6, // never improves after the first
            });
        }
        assert!(s.converged(), "flat landscape must tighten the step");
    }
}
