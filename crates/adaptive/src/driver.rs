//! Adaptive execution drivers: run the stencil in epochs, feed the
//! counters of each epoch to a [`Tuner`], and let it re-partition the
//! grid between epochs.
//!
//! This is the paper's "first step toward the goal of dynamically
//! adapting task size" carried to completion: the same program, monitored
//! through the same counters the paper characterizes, converges to a
//! granularity in the flat region of Fig. 3 without any offline sweep.

use crate::tuner::{Observation, Tuner};
use grain_metrics::{RunRecord, StencilEngine};

/// One adaptation epoch's outcome.
#[derive(Debug, Clone)]
pub struct Epoch {
    /// Partition size used in this epoch.
    pub nx: usize,
    /// Wall time of the epoch, seconds.
    pub wall_s: f64,
    /// Idle-rate observed (Eq. 1).
    pub idle_rate: f64,
    /// Throughput, grid points per second.
    pub points_per_s: f64,
}

/// Full adaptation run record.
#[derive(Debug, Clone)]
pub struct AdaptiveTrace {
    /// Epochs in order.
    pub epochs: Vec<Epoch>,
    /// Partition size the tuner settled on.
    pub final_nx: usize,
    /// Whether the tuner reported convergence within the epoch budget.
    pub converged: bool,
}

impl AdaptiveTrace {
    /// Throughput of the last epoch relative to the first — the benefit
    /// the adaptation bought.
    pub fn speedup(&self) -> f64 {
        match (self.epochs.first(), self.epochs.last()) {
            (Some(a), Some(b)) if a.points_per_s > 0.0 => b.points_per_s / a.points_per_s,
            _ => 1.0,
        }
    }
}

/// Run up to `max_epochs` epochs of the stencil through `engine` at
/// `workers` cores, letting `tuner` choose the partition size between
/// epochs. Each epoch runs the engine's configured number of time steps
/// at the tuner's current granularity.
pub fn adapt(
    engine: &dyn StencilEngine,
    workers: usize,
    tuner: &mut dyn Tuner,
    max_epochs: usize,
) -> AdaptiveTrace {
    let mut epochs = Vec::new();
    for e in 0..max_epochs {
        let nx = tuner.current_nx();
        let rec: RunRecord = engine.run(nx, workers, e);
        let params = engine.params_for(nx);
        let total_points = (params.total_points() * params.nt) as f64;
        let epoch = Epoch {
            nx,
            wall_s: rec.wall_s,
            idle_rate: rec.idle_rate(),
            points_per_s: if rec.wall_s > 0.0 {
                total_points / rec.wall_s
            } else {
                0.0
            },
        };
        tuner.observe(Observation {
            idle_rate: epoch.idle_rate,
            points_per_s: epoch.points_per_s,
            tasks_per_core: params.np as f64 / workers as f64,
        });
        epochs.push(epoch);
        if tuner.converged() {
            break;
        }
    }
    AdaptiveTrace {
        final_nx: tuner.current_nx(),
        converged: tuner.converged(),
        epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::{HillClimber, ThresholdTuner, TunerConfig};
    use grain_metrics::sweep::SimEngine;
    use grain_topology::presets;

    fn engine() -> SimEngine {
        SimEngine::scaled(presets::haswell(), 2_000_000, 4)
    }

    #[test]
    fn threshold_tuner_escapes_the_fine_grained_regime() {
        let engine = engine();
        let mut tuner = ThresholdTuner::new(TunerConfig {
            initial_nx: 250,
            ..TunerConfig::default()
        });
        let trace = adapt(&engine, 8, &mut tuner, 20);
        assert!(
            trace.final_nx >= 4_000,
            "tuner stuck at {} (trace: {:?})",
            trace.final_nx,
            trace.epochs.iter().map(|e| e.nx).collect::<Vec<_>>()
        );
        assert!(trace.speedup() > 1.5, "speedup {:.2}", trace.speedup());
    }

    #[test]
    fn threshold_tuner_escapes_the_coarse_regime() {
        let engine = engine();
        let mut tuner = ThresholdTuner::new(TunerConfig {
            initial_nx: 2_000_000, // one partition: fully serialized
            ..TunerConfig::default()
        });
        let trace = adapt(&engine, 8, &mut tuner, 20);
        assert!(
            trace.final_nx < 2_000_000,
            "tuner failed to shrink from a serialized configuration"
        );
    }

    #[test]
    fn converged_traces_stop_early() {
        let engine = engine();
        // Start in the sweet spot: should hold and converge quickly.
        let mut tuner = ThresholdTuner::new(TunerConfig {
            initial_nx: 50_000,
            ..TunerConfig::default()
        });
        let trace = adapt(&engine, 8, &mut tuner, 20);
        assert!(trace.converged);
        assert!(
            trace.epochs.len() <= 5,
            "took {} epochs",
            trace.epochs.len()
        );
    }

    #[test]
    fn hill_climber_improves_throughput() {
        let engine = engine();
        let mut tuner = HillClimber::new(TunerConfig {
            initial_nx: 500,
            ..TunerConfig::default()
        });
        let trace = adapt(&engine, 8, &mut tuner, 25);
        assert!(
            trace.speedup() > 1.2,
            "hill climbing should beat the initial fine grain, got {:.2}",
            trace.speedup()
        );
    }

    #[test]
    fn trace_records_every_epoch() {
        let engine = engine();
        let mut tuner = ThresholdTuner::new(TunerConfig {
            initial_nx: 250,
            ..TunerConfig::default()
        });
        let trace = adapt(&engine, 4, &mut tuner, 6);
        assert!(!trace.epochs.is_empty());
        for e in &trace.epochs {
            assert!(e.wall_s > 0.0);
            assert!((0.0..=1.0).contains(&e.idle_rate));
            assert!(e.points_per_s > 0.0);
        }
    }
}
