//! Static grain-size selection from sweep data — the decision procedures
//! §IV-A and §IV-E of the paper demonstrate:
//!
//! * *idle-rate threshold*: "an acceptable grain size can be determined by
//!   setting a threshold for the idle-rate" — pick the smallest partition
//!   size whose idle-rate stays below the threshold (the paper uses 30 %
//!   on 28-core Haswell and lands on 78 125 points, within the standard
//!   deviation of the true optimum);
//! * *pending-queue minimum*: pick the partition size minimizing
//!   pending-queue accesses — a viable alternative "on platforms where
//!   timestamp counters are unavailable" (the paper lands on 31 250,
//!   within 13 % of the optimal execution time).

use grain_metrics::Sweep;

/// Outcome of a static selection rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Chosen partition size.
    pub nx: usize,
    /// Mean execution time at the chosen size, seconds.
    pub exec_s: f64,
    /// Best mean execution time anywhere in the sweep, seconds.
    pub best_exec_s: f64,
    /// Partition size achieving `best_exec_s`.
    pub best_nx: usize,
}

impl Selection {
    /// Relative execution-time penalty of the selection vs the optimum
    /// (0.13 = "within 13 % of the minimum", the paper's §IV-E phrasing).
    pub fn penalty(&self) -> f64 {
        if self.best_exec_s <= 0.0 {
            return 0.0;
        }
        (self.exec_s - self.best_exec_s) / self.best_exec_s
    }
}

/// §IV-A: smallest partition size whose mean idle-rate is at most
/// `threshold` for the given core count. Returns `None` if no swept size
/// qualifies.
pub fn smallest_nx_below_idle_rate(
    sweep: &Sweep,
    workers: usize,
    threshold: f64,
) -> Option<Selection> {
    let series = sweep.series(workers);
    let (best_nx, best_exec_s) = sweep.best_nx(workers)?;
    series
        .iter()
        .find(|c| c.agg.idle_rate.mean() <= threshold)
        .map(|c| Selection {
            nx: c.nx,
            exec_s: c.agg.wall_s.mean(),
            best_exec_s,
            best_nx,
        })
}

/// §IV-E: partition size minimizing mean pending-queue accesses for the
/// given core count.
pub fn nx_minimizing_pending_accesses(sweep: &Sweep, workers: usize) -> Option<Selection> {
    let series = sweep.series(workers);
    let (best_nx, best_exec_s) = sweep.best_nx(workers)?;
    series
        .iter()
        .min_by(|a, b| {
            a.agg
                .pending_accesses
                .mean()
                .total_cmp(&b.agg.pending_accesses.mean())
        })
        .map(|c| Selection {
            nx: c.nx,
            exec_s: c.agg.wall_s.mean(),
            best_exec_s,
            best_nx,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_metrics::sweep::{run_sweep, SimEngine};
    use grain_topology::presets;

    fn small_sweep() -> Sweep {
        let engine = SimEngine::scaled(presets::haswell(), 1_000_000, 4);
        run_sweep(
            &engine,
            &[250, 2_500, 25_000, 250_000, 1_000_000],
            &[8],
            2,
            None,
        )
    }

    // The scaled-down test problem (1 M points, 4 steps) has a higher
    // idle-rate floor than the paper's 100 M-point runs — tasks are tiny
    // everywhere — so these tests use a 40 % threshold; the full-scale
    // bench binaries demonstrate the paper's 30 %.
    #[test]
    fn idle_threshold_picks_a_qualifying_size() {
        let sweep = small_sweep();
        let sel = smallest_nx_below_idle_rate(&sweep, 8, 0.40).expect("a size qualifies");
        let cell = sweep.cell(sel.nx, 8).unwrap();
        assert!(cell.agg.idle_rate.mean() <= 0.40);
        // Everything finer must have violated the threshold.
        for c in sweep.series(8) {
            if c.nx < sel.nx {
                assert!(c.agg.idle_rate.mean() > 0.40, "nx={} should violate", c.nx);
            }
        }
    }

    #[test]
    fn idle_threshold_selection_is_near_optimal() {
        let sweep = small_sweep();
        let sel = smallest_nx_below_idle_rate(&sweep, 8, 0.40).unwrap();
        // The paper's observation: the thresholded choice costs little.
        assert!(
            sel.penalty() < 1.0,
            "penalty {:.2} too high (nx={} vs best {})",
            sel.penalty(),
            sel.nx,
            sel.best_nx
        );
    }

    #[test]
    fn impossible_threshold_returns_none() {
        let sweep = small_sweep();
        assert!(smallest_nx_below_idle_rate(&sweep, 8, -1.0).is_none());
    }

    #[test]
    fn pending_minimum_lands_in_the_flat_region() {
        let sweep = small_sweep();
        let sel = nx_minimizing_pending_accesses(&sweep, 8).unwrap();
        // §IV-E: the queue-counter choice should be within a modest factor
        // of the best execution time (13 % in the paper; we allow 50 % on
        // this tiny problem).
        assert!(
            sel.penalty() < 0.5,
            "penalty {:.2} (nx={} best={})",
            sel.penalty(),
            sel.nx,
            sel.best_nx
        );
        // And it must not be the pathological fine extreme.
        assert!(sel.nx > 250);
    }

    #[test]
    fn missing_worker_count_returns_none() {
        let sweep = small_sweep();
        assert!(smallest_nx_below_idle_rate(&sweep, 13, 0.3).is_none());
        assert!(nx_minimizing_pending_accesses(&sweep, 13).is_none());
    }
}
