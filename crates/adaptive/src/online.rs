//! Online adaptation inside a single live runtime.
//!
//! [`crate::driver::adapt`] restarts the engine between epochs; this
//! module does what a production runtime would actually do: keep **one**
//! runtime alive, run the computation in groups of time steps, measure
//! each group through *interval counter snapshots* (the windowed Eq. 1
//! the paper says its counters support, §II-A), and re-partition the
//! live grid between groups. Physics is untouched by re-partitioning —
//! partitions are contiguous chunks of the same ring.

use crate::tuner::{Observation, Tuner};
use grain_counters::Snapshot;
use grain_runtime::Runtime;
use grain_stencil::{collect_result, partition_grid, run_steps_from};

/// One adaptation window of a live run.
#[derive(Debug, Clone)]
pub struct OnlineEpoch {
    /// Partition size used in this window.
    pub nx: usize,
    /// Time steps computed in this window.
    pub steps: usize,
    /// Wall time of the window, seconds.
    pub wall_s: f64,
    /// Windowed idle-rate (Eq. 1 over the interval), from counter
    /// snapshots.
    pub idle_rate: f64,
    /// Tasks executed in the window (from the interval delta).
    pub tasks: u64,
}

/// Result of an online adaptive run.
#[derive(Debug, Clone)]
pub struct OnlineRun {
    /// Per-window records.
    pub epochs: Vec<OnlineEpoch>,
    /// Final grid values (flattened ring).
    pub grid: Vec<f64>,
    /// Partition size in force at the end.
    pub final_nx: usize,
}

const EXEC_PATH: &str = "/threads{locality#0/total}/time/cumulative-exec";
const FUNC_PATH: &str = "/threads{locality#0/total}/time/cumulative-func";
const TASKS_PATH: &str = "/threads{locality#0/total}/count/cumulative";

/// Run `epochs × steps_per_epoch` time steps of heat diffusion over
/// `grid` (a ring), re-partitioning between epochs as directed by
/// `tuner`. The runtime keeps running throughout; granularity decisions
/// come from interval snapshots of its live counters.
pub fn run_online(
    rt: &Runtime,
    mut grid: Vec<f64>,
    coeff: f64,
    steps_per_epoch: usize,
    epochs: usize,
    tuner: &mut dyn Tuner,
) -> OnlineRun {
    assert!(!grid.is_empty(), "empty grid");
    assert!(steps_per_epoch > 0);
    let mut records = Vec::new();

    for _ in 0..epochs {
        let nx = tuner.current_nx().clamp(1, grid.len());
        let parts = partition_grid(&grid, nx);
        let np = parts.len();

        let before = Snapshot::capture_all(rt.registry());
        let t0 = std::time::Instant::now();
        let out = run_steps_from(rt, parts, steps_per_epoch, coeff);
        grid = collect_result(&out);
        rt.wait_idle();
        let wall_s = t0.elapsed().as_secs_f64();
        let after = Snapshot::capture_all(rt.registry());

        let window = before.delta(&after);
        let idle_rate = window.windowed_ratio(EXEC_PATH, FUNC_PATH).unwrap_or(0.0);
        let tasks = window.get(TASKS_PATH).map(|v| v.value as u64).unwrap_or(0);

        let points_per_s = if wall_s > 0.0 {
            (grid.len() * steps_per_epoch) as f64 / wall_s
        } else {
            0.0
        };
        tuner.observe(Observation {
            idle_rate,
            points_per_s,
            tasks_per_core: np as f64 / rt.num_workers() as f64,
        });
        records.push(OnlineEpoch {
            nx,
            steps: steps_per_epoch,
            wall_s,
            idle_rate,
            tasks,
        });
        if tuner.converged() {
            break;
        }
    }
    OnlineRun {
        final_nx: tuner.current_nx(),
        epochs: records,
        grid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::{ThresholdTuner, TunerConfig};
    use grain_runtime::Runtime;
    use grain_stencil::{run_sequential, total_heat, StencilParams};

    fn initial_grid(params: &StencilParams) -> Vec<f64> {
        (0..params.total_points())
            .map(|g| (g / params.nx) as f64)
            .collect()
    }

    #[test]
    fn online_run_preserves_physics_across_repartitioning() {
        // 4 epochs × 3 steps == 12 sequential steps, whatever partition
        // sizes the tuner chooses along the way.
        let params = StencilParams::new(32, 8, 12);
        let rt = Runtime::with_workers(2);
        let mut tuner = ThresholdTuner::new(TunerConfig {
            initial_nx: 8,
            ..TunerConfig::default()
        });
        let run = run_online(
            &rt,
            initial_grid(&params),
            params.coefficient(),
            3,
            4,
            &mut tuner,
        );
        let seq = run_sequential(&params);
        assert_eq!(run.grid, seq, "re-partitioned run diverged from oracle");
    }

    #[test]
    fn online_epochs_record_windowed_counters() {
        let params = StencilParams::new(64, 32, 8);
        let rt = Runtime::with_workers(2);
        let mut tuner = ThresholdTuner::new(TunerConfig {
            initial_nx: 16,
            ..TunerConfig::default()
        });
        let run = run_online(
            &rt,
            initial_grid(&params),
            params.coefficient(),
            2,
            4,
            &mut tuner,
        );
        assert!(!run.epochs.is_empty());
        for e in &run.epochs {
            assert!(e.wall_s > 0.0);
            assert!((0.0..=1.0).contains(&e.idle_rate));
            // tasks in the window = partitions × steps of that window.
            let np = (params.total_points()).div_ceil(e.nx);
            assert_eq!(e.tasks as usize, np * e.steps, "window task accounting");
        }
    }

    #[test]
    fn online_tuner_escapes_fine_granularity() {
        let params = StencilParams::new(1, 6_000, 0); // 6000-point grid
        let rt = Runtime::with_workers(2);
        let mut tuner = ThresholdTuner::new(TunerConfig {
            initial_nx: 4,
            target_idle_rate: 0.5,
            ..TunerConfig::default()
        });
        let run = run_online(
            &rt,
            vec![0.0; params.total_points()],
            0.5,
            3,
            10,
            &mut tuner,
        );
        assert!(
            run.final_nx > 4,
            "windowed idle-rate should push past nx=4 (epochs: {:?})",
            run.epochs
                .iter()
                .map(|e| (e.nx, e.idle_rate))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn online_run_conserves_heat() {
        let params = StencilParams::new(16, 16, 10);
        let rt = Runtime::with_workers(3);
        let mut tuner = ThresholdTuner::new(TunerConfig {
            initial_nx: 3, // ragged partitions on purpose
            ..TunerConfig::default()
        });
        let grid0 = initial_grid(&params);
        let expect = grid0.iter().sum::<f64>();
        let run = run_online(&rt, grid0, params.coefficient(), 5, 2, &mut tuner);
        let got = total_heat([&run.grid[..]]);
        assert!((got - expect).abs() < 1e-6 * expect);
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn online_rejects_empty_grid() {
        let rt = Runtime::with_workers(1);
        let mut tuner = ThresholdTuner::new(TunerConfig::default());
        let _ = run_online(&rt, Vec::new(), 0.5, 1, 1, &mut tuner);
    }
}
