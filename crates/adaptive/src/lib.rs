//! # grain-adaptive — grain-size selection and dynamic adaptation
//!
//! The paper's conclusion (§VI): *"we show that by collecting pertinent
//! event counts, we can determine an optimal grain size to minimize
//! scheduling overheads and wait time"* — with dynamic adaptation named
//! as the goal the characterization enables. This crate implements both
//! halves:
//!
//! * [`threshold`] — the static selection rules the paper demonstrates:
//!   the idle-rate threshold of §IV-A and the pending-queue-access
//!   minimum of §IV-E, applied to sweep data;
//! * [`tuner`] — online tuners ([`tuner::ThresholdTuner`] driven by the
//!   windowed idle-rate and tasks-per-core regime signals;
//!   [`tuner::HillClimber`] as a counter-free baseline);
//! * [`driver`] — epoch-based adaptive execution on either engine:
//!   run, observe counters, re-partition, repeat until converged;
//! * [`online`] — single-runtime adaptation: groups of time steps
//!   measured through live interval counter snapshots, re-partitioning
//!   the grid in place (the production shape of the paper's goal);
//! * [`policy`] — an APEX-style policy engine (§VI): composable rules
//!   that adapt grain size *and* throttle the worker pool
//!   (Porterfield-style core adaptation, §V) from the same counters;
//! * [`strategy`] — the per-tenant [`strategy::GrainStrategy`] seam the
//!   `grain-autotune` service policy drives: the same tuner engines
//!   repackaged as deterministic per-job state machines.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod driver;
pub mod online;
pub mod policy;
pub mod strategy;
pub mod threshold;
pub mod tuner;

pub use driver::{adapt, AdaptiveTrace, Epoch};
pub use online::{run_online, OnlineEpoch, OnlineRun};
pub use policy::{
    run_policy_driven, run_policy_epochs, Action, GrainPolicy, Policy, PolicyContext, PolicyEngine,
    PolicyRun, ThrottlePolicy,
};
pub use strategy::{
    strategy_for, GrainSignal, GrainStrategy, HillClimbStrategy, StrategyKind, ThresholdStrategy,
};
pub use threshold::{nx_minimizing_pending_accesses, smallest_nx_below_idle_rate, Selection};
pub use tuner::{HillClimber, Observation, ThresholdTuner, Tuner, TunerConfig};
