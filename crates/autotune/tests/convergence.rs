//! Convergence storms for the autotune controller (ISSUE satellite:
//! seeded storm convergence + disabled-path regression).
//!
//! The storms drive [`Autotune`] with signals from the deterministic
//! [`CostModel`] — the same machine the verify stage's smoke benchmark
//! replays — so every assertion here is exact, not statistical:
//!
//! * a tenant starting at a **pathological grain** (≥10× or ≤0.1× the
//!   hand-tuned optimum) converges within 8 jobs to a grain whose
//!   measured per-task overhead is within 10% of the optimum's;
//! * once a tenant enters its hysteresis band it **never oscillates**
//!   under a steady workload;
//! * with `enabled = false` the expansion every job gets is
//!   **byte-identical** to the legacy fixed partition, forever.

#![deny(clippy::unwrap_used)]

use grain_adaptive::tuner::TunerConfig;
use grain_autotune::{Autotune, AutotuneConfig, CostModel, ShapedWork};
use grain_sim::storm::GraphFamily;

const UNITS: u64 = 1 << 20;

fn model() -> CostModel {
    CostModel {
        overhead_ns_per_task: 2_000.0,
        ns_per_unit: 1.0,
        cores: 4,
    }
}

fn cfg_with_initial(initial_nx: usize) -> AutotuneConfig {
    AutotuneConfig {
        cores: 4,
        tuner: TunerConfig {
            initial_nx,
            ..TunerConfig::default()
        },
        ..AutotuneConfig::default()
    }
}

/// Run one tenant's modeled storm: each job expands at the controller's
/// current grain, the model scores it, the controller observes the
/// score. Returns the grain trace (one entry per job, pre-observation)
/// and the job index at which the tenant first reported converged.
fn run_storm(initial_nx: usize, jobs: usize) -> (Vec<u64>, Option<usize>) {
    let m = model();
    let auto = Autotune::new(cfg_with_initial(initial_nx));
    let mut trace = Vec::with_capacity(jobs);
    let mut converged_at = None;
    for j in 0..jobs {
        let g = auto.grain_for("tenant");
        trace.push(g);
        auto.observe("tenant", &m.signal(UNITS, g));
        if converged_at.is_none() && auto.converged("tenant") {
            converged_at = Some(j + 1);
        }
    }
    (trace, converged_at)
}

#[test]
fn pathologically_coarse_tenant_converges_within_eight_jobs() {
    let m = model();
    let optimal = m.optimal_grain(UNITS, &TunerConfig::default());
    // ≥ 10× the optimum, clamped to the job itself: one giant task.
    let start = (optimal * 10).min(UNITS) as usize;
    assert!(start as u64 >= optimal.saturating_mul(4), "start is coarse");
    let (trace, converged_at) = run_storm(start, 12);
    let at = converged_at.expect("storm converged");
    assert!(
        at <= 8,
        "converged after {at} jobs (want ≤ 8); trace {trace:?}"
    );
    let final_grain = *trace.last().expect("trace");
    let to_opt = m.measured_overhead_ns(UNITS, optimal);
    let to_conv = m.measured_overhead_ns(UNITS, final_grain);
    assert!(
        to_conv <= to_opt * 1.10,
        "converged t_o {to_conv:.0}ns not within 10% of optimal {to_opt:.0}ns (grain {final_grain} vs {optimal})"
    );
}

#[test]
fn pathologically_fine_tenant_converges_within_eight_jobs() {
    let m = model();
    let optimal = m.optimal_grain(UNITS, &TunerConfig::default());
    // ≤ 0.1× the optimum — deep in the overhead-bound regime.
    let start = (optimal / 100).max(16) as usize;
    assert!((start as u64) * 10 <= optimal, "start is fine");
    let (trace, converged_at) = run_storm(start, 12);
    let at = converged_at.expect("storm converged");
    assert!(
        at <= 8,
        "converged after {at} jobs (want ≤ 8); trace {trace:?}"
    );
    let final_grain = *trace.last().expect("trace");
    assert!(
        final_grain > start as u64,
        "overhead regime coarsened the grain"
    );
    let to_opt = m.measured_overhead_ns(UNITS, optimal);
    let to_conv = m.measured_overhead_ns(UNITS, final_grain);
    assert!(
        to_conv <= to_opt * 1.10,
        "converged t_o {to_conv:.0}ns not within 10% of optimal {to_opt:.0}ns (grain {final_grain} vs {optimal})"
    );
}

#[test]
fn no_oscillation_after_entering_the_hysteresis_band() {
    let m = model();
    let auto = Autotune::new(cfg_with_initial(UNITS as usize));
    // Drive to convergence.
    for _ in 0..12 {
        let g = auto.grain_for("tenant");
        auto.observe("tenant", &m.signal(UNITS, g));
    }
    assert!(auto.converged("tenant"));
    let frozen = auto.grain_for("tenant");
    let probes = auto.probes("tenant");
    let adjustments = auto.adjustments("tenant");
    // A steady workload must never move a frozen tenant again.
    for _ in 0..20 {
        let g = auto.grain_for("tenant");
        assert_eq!(g, frozen, "grain moved after convergence");
        auto.observe("tenant", &m.signal(UNITS, g));
        assert!(auto.converged("tenant"), "tenant left the band");
    }
    assert_eq!(
        auto.probes("tenant"),
        probes,
        "probe re-opened on steady load"
    );
    assert_eq!(auto.adjustments("tenant"), adjustments);
}

#[test]
fn storms_replay_bit_identically() {
    let coarse = || run_storm(UNITS as usize, 12);
    let fine = || run_storm(64, 12);
    assert_eq!(coarse(), coarse());
    assert_eq!(fine(), fine());
}

#[test]
fn disabled_autotune_is_byte_identical_to_the_fixed_partition() {
    let fixed_grain = 4096usize;
    let auto = Autotune::new(AutotuneConfig {
        enabled: false,
        ..cfg_with_initial(fixed_grain)
    });
    let shape = ShapedWork::Graph {
        family: GraphFamily::Stencil,
        total_iters: UNITS,
        payload_bytes: 32,
        seed: 41,
        cov: grain_taskbench::Cov::Bimodal {
            heavy_pct: 10,
            ratio: 8,
        },
    };
    // The legacy behavior: the submitter's partition, untouched.
    let reference = shape
        .expand(fixed_grain as u64)
        .graph
        .expect("graph shape")
        .fingerprint();
    let m = model();
    for _ in 0..10 {
        let g = auto.grain_for("tenant");
        assert_eq!(g, fixed_grain as u64, "disabled controller moved");
        let expanded = shape.expand(g);
        assert_eq!(
            expanded.graph.expect("graph shape").fingerprint(),
            reference,
            "disabled expansion diverged from the fixed partition"
        );
        // Feed it hostile signals; a pinned tenant must ignore them.
        auto.observe("tenant", &m.signal(UNITS, g));
    }
    assert_eq!(auto.adjustments("tenant"), 0);
    assert_eq!(auto.probes("tenant"), 0);
}
