//! Work shapes: what a tenant submits *instead of* a partition.
//!
//! A [`ShapedWork`] describes a job's total work in controller units
//! (busy-work iterations) together with a chunkable body; the autotune
//! controller picks the grain — units per task — and
//! [`ShapedWork::expand`] turns the pair into a concrete task count and
//! a ready-to-submit job body. The expansion is a pure function of
//! `(shape, grain)`: re-expanding the same shape at the same grain
//! yields a bit-identical job (same graph fingerprint, same task
//! seeds), which is what makes the `enabled=false` regression test —
//! and storm replays — exact.

#![deny(clippy::unwrap_used)]

use grain_runtime::TaskContext;
use grain_sim::storm::GraphFamily;
use grain_taskbench::storm::{spawn_in_job, spec_for_event};
use grain_taskbench::work::{busy_work, mix64};
use grain_taskbench::{Cov, GraphSpec, TaskGraph};
use std::sync::Arc;

/// The root closure type of an expanded job (matches
/// [`grain_service::JobSpec`] submission).
pub type ShapedBody = Box<dyn FnMut(&mut TaskContext<'_>) + Send>;

/// A chunkable description of one job's work. All variants measure
/// work in **busy-work iterations** (the controller's unit; see
/// [`grain_taskbench::Calibration`] to express a grain as a duration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapedWork {
    /// `elements` independent elements of `iters_per_element` each —
    /// the `parallel_for` shape. A grain of `g` chunks the index space
    /// into `ceil(elements·iters_per_element / g)` contiguous block
    /// tasks.
    ParallelFor {
        /// Independent elements.
        elements: u64,
        /// Busy-work iterations each element costs.
        iters_per_element: u64,
        /// Seed for the per-chunk busy-work streams.
        seed: u64,
    },
    /// A 1-D stencil of `cells` cells stepped `steps` times — the
    /// paper's application. The grain picks the *partition*: chunk
    /// `ceil(g / iters_per_cell)` cells per lane, so each node of the
    /// resulting [`GraphSpec`] stencil graph runs ≈`g` iterations.
    Stencil {
        /// Grid cells.
        cells: u64,
        /// Time steps beyond the initial level.
        steps: u32,
        /// Busy-work iterations per cell per step.
        iters_per_cell: u64,
        /// Graph seed.
        seed: u64,
    },
    /// A taskbench dependency graph of `family` shape carrying
    /// `total_iters` of busy-work. The grain picks `grain_iters` per
    /// node and the node budget `ceil(total_iters / g)` together, via
    /// [`grain_taskbench::storm::spec_for_event`].
    Graph {
        /// Storm graph family ([`GraphFamily::Flat`] expands to a flat
        /// spawn loop, like the legacy storm bodies).
        family: GraphFamily,
        /// Total busy-work iterations across the whole graph.
        total_iters: u64,
        /// Bytes per dependency edge.
        payload_bytes: u32,
        /// Graph seed.
        seed: u64,
        /// Per-node duration dispersion ([`Cov::Uniform`] for equal
        /// grains). Graph-backed families scatter each node's iteration
        /// count around the controller's grain, so the controller tunes
        /// a *mean*, not a constant; the flat family ignores it.
        cov: Cov,
    },
}

/// A shape expanded at a concrete grain: the task count the service
/// should budget for, the graph it will run (when graph-shaped), and
/// the root body to submit.
pub struct ExpandedJob {
    /// Tasks the job will spawn (excluding the root).
    pub tasks: u64,
    /// The built graph for graph-backed shapes (`None` for flat
    /// chunked loops). Exposed so tests can fingerprint the expansion.
    pub graph: Option<Arc<TaskGraph>>,
    /// The job's root closure.
    pub body: ShapedBody,
}

impl ShapedWork {
    /// Total work units (busy-work iterations) this shape covers.
    pub fn units(&self) -> u64 {
        match *self {
            ShapedWork::ParallelFor {
                elements,
                iters_per_element,
                ..
            } => elements.saturating_mul(iters_per_element).max(1),
            ShapedWork::Stencil {
                cells,
                steps,
                iters_per_cell,
                ..
            } => cells
                .saturating_mul(u64::from(steps) + 1)
                .saturating_mul(iters_per_cell)
                .max(1),
            ShapedWork::Graph { total_iters, .. } => total_iters.max(1),
        }
    }

    /// Expand the shape at `grain` work units per task. Pure: equal
    /// `(shape, grain)` pairs expand to bit-identical jobs.
    pub fn expand(&self, grain: u64) -> ExpandedJob {
        let grain = grain.max(1);
        match *self {
            ShapedWork::ParallelFor {
                elements,
                iters_per_element,
                seed,
            } => {
                let units = self.units();
                let tasks = units.div_ceil(grain).max(1);
                // Chunk the *element* space evenly across the task
                // count the grain asked for; each task spins for its
                // chunk's total iteration budget in one go.
                let tasks = tasks.min(elements.max(1));
                let per_chunk = elements.max(1).div_ceil(tasks);
                let body: ShapedBody = Box::new(move |ctx| {
                    for t in 0..tasks {
                        let first = t * per_chunk;
                        let len = per_chunk.min(elements.max(1) - first.min(elements.max(1)));
                        if len == 0 {
                            continue;
                        }
                        let iters = len * iters_per_element;
                        let task_seed = mix64(seed ^ (t << 1) ^ 0x9a5a_11e1);
                        ctx.spawn(move |_| {
                            std::hint::black_box(busy_work(task_seed, iters));
                        });
                    }
                });
                ExpandedJob {
                    tasks,
                    graph: None,
                    body,
                }
            }
            ShapedWork::Stencil {
                cells,
                steps,
                iters_per_cell,
                seed,
            } => {
                let cells = cells.max(1);
                let iters_per_cell = iters_per_cell.max(1);
                // Cells per lane so one node costs ≈ grain iterations.
                let chunk = (grain / iters_per_cell).clamp(1, cells);
                let width = cells.div_ceil(chunk) as usize;
                let spec = GraphSpec::shape(
                    grain_taskbench::GraphKind::Stencil1d {
                        width,
                        steps: steps as usize,
                    },
                    seed,
                )
                .grain(chunk * iters_per_cell);
                Self::graph_job(spec)
            }
            ShapedWork::Graph {
                family,
                total_iters,
                payload_bytes,
                seed,
                cov,
            } => {
                let total = total_iters.max(1);
                let tasks = total.div_ceil(grain).max(2);
                match spec_for_event(family, tasks, grain, payload_bytes, seed) {
                    Some(spec) => Self::graph_job(spec.cov(cov)),
                    None => {
                        // Flat family: the legacy root-spawns-children
                        // storm body, chunked at the grain.
                        let body: ShapedBody = Box::new(move |ctx| {
                            for t in 0..tasks {
                                let task_seed = mix64(seed ^ (t << 1) ^ 0xf1a7);
                                ctx.spawn(move |_| {
                                    std::hint::black_box(busy_work(task_seed, grain));
                                });
                            }
                        });
                        ExpandedJob {
                            tasks,
                            graph: None,
                            body,
                        }
                    }
                }
            }
        }
    }

    fn graph_job(spec: GraphSpec) -> ExpandedJob {
        let graph = Arc::new(spec.build());
        let tasks = graph.len() as u64;
        let job_graph = Arc::clone(&graph);
        let body: ShapedBody = Box::new(move |ctx| {
            spawn_in_job(ctx, &job_graph);
        });
        ExpandedJob {
            tasks,
            graph: Some(graph),
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic_per_grain() {
        let shape = ShapedWork::Graph {
            family: GraphFamily::Stencil,
            total_iters: 100_000,
            payload_bytes: 32,
            seed: 9,
            cov: Cov::Uniform,
        };
        let a = shape.expand(500);
        let b = shape.expand(500);
        let (ga, gb) = (a.graph.expect("graph shape"), b.graph.expect("graph shape"));
        assert_eq!(ga.fingerprint(), gb.fingerprint());
        assert_eq!(a.tasks, b.tasks);
        // A different grain is a different partition.
        let c = shape.expand(5_000);
        assert_ne!(
            ga.fingerprint(),
            c.graph.expect("graph shape").fingerprint()
        );
        assert!(c.tasks < a.tasks, "coarser grain, fewer tasks");
    }

    #[test]
    fn parallel_for_covers_all_elements_at_any_grain() {
        let shape = ShapedWork::ParallelFor {
            elements: 1000,
            iters_per_element: 10,
            seed: 4,
        };
        assert_eq!(shape.units(), 10_000);
        for grain in [1, 7, 10, 100, 10_000, 1 << 40] {
            let e = shape.expand(grain);
            assert!(e.tasks >= 1);
            assert!(e.tasks <= 1000, "never more tasks than elements");
        }
        // grain == units → one task; grain == 10 → one per element.
        assert_eq!(shape.expand(10_000).tasks, 1);
        assert_eq!(shape.expand(10).tasks, 1000);
    }

    #[test]
    fn stencil_partition_follows_the_grain() {
        let shape = ShapedWork::Stencil {
            cells: 1_000,
            steps: 4,
            iters_per_cell: 10,
            seed: 2,
        };
        let fine = shape.expand(10); // 1 cell per lane
        let coarse = shape.expand(10_000); // 1000 cells per lane
        let (gf, gc) = (
            fine.graph.expect("graph shape"),
            coarse.graph.expect("graph shape"),
        );
        assert_eq!(gf.width_bound(), 1000);
        assert_eq!(gc.width_bound(), 1);
        assert!(fine.tasks > coarse.tasks);
    }

    #[test]
    fn flat_family_expands_without_a_graph() {
        let shape = ShapedWork::Graph {
            family: GraphFamily::Flat,
            total_iters: 1_000,
            payload_bytes: 0,
            seed: 1,
            cov: Cov::Uniform,
        };
        let e = shape.expand(100);
        assert!(e.graph.is_none());
        assert_eq!(e.tasks, 10);
    }
}
