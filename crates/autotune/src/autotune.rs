//! The autotune subsystem: tenant map, service policy hook, counters,
//! shaped submission, and the worker-throttle actuator.
//!
//! One [`Autotune`] instance serves one [`JobService`]. Wiring order:
//!
//! ```text
//! let auto    = Autotune::new(AutotuneConfig::default());
//! let service = JobService::new(ServiceConfig {
//!     policy: Some(auto.policy_hook()),   // signal: completed jobs
//!     ..ServiceConfig::with_workers(4)
//! });
//! auto.attach(&service)?;                 // counters + core count
//! auto.submit_shaped(&service, "job", "tenant", &shape);
//! ```
//!
//! Every completed *shaped* job flows back through the policy hook; the
//! tenant's [`GrainController`] digests it and the tenant's next
//! [`Autotune::submit_shaped`] call expands at the adjusted grain.
//! Tenants that never submit shapes are untouched — the hook ignores
//! jobs without a [`grain_service::JobShape`].

#![deny(clippy::unwrap_used)]

use crate::controller::{AutotuneConfig, GrainController};
use crate::shape::ShapedWork;
use grain_adaptive::policy::{Action, Policy, PolicyContext, ThrottlePolicy};
use grain_adaptive::strategy::GrainSignal;
use grain_counters::derived::DerivedCounter;
use grain_counters::{Registry, RegistryError, Unit};
use grain_service::{JobHandle, JobOutcome, JobService, JobShape, JobSpec, JobState, PolicyHook};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Published state of one tenant's controller. The atomics mirror the
/// controller so counter reads never take the controller lock.
struct TenantEntry {
    controller: Mutex<GrainController>,
    grain: AtomicU64,
    converged: AtomicU64,
    probes: AtomicU64,
    adjustments: AtomicU64,
    jobs: AtomicU64,
}

impl TenantEntry {
    fn new(cfg: AutotuneConfig) -> Self {
        let controller = GrainController::new(cfg);
        let grain = controller.grain();
        let converged = u64::from(controller.converged());
        let probes = controller.probes();
        Self {
            controller: Mutex::new(controller),
            grain: AtomicU64::new(grain),
            converged: AtomicU64::new(converged),
            probes: AtomicU64::new(probes),
            adjustments: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
        }
    }

    fn publish(&self, c: &GrainController) {
        self.grain.store(c.grain(), Ordering::Relaxed);
        self.converged
            .store(u64::from(c.converged()), Ordering::Relaxed);
        self.probes.store(c.probes(), Ordering::Relaxed);
        self.adjustments.store(c.adjustments(), Ordering::Relaxed);
        self.jobs.store(c.jobs(), Ordering::Relaxed);
    }
}

/// Per-tenant online granularity control as a service policy. See the
/// [crate docs](crate) for the model and the module docs for wiring.
pub struct Autotune {
    cfg: AutotuneConfig,
    /// Cores the attached service schedules over (feeds per-job signal
    /// derivation); `cfg.cores` until [`Autotune::attach`] runs.
    cores: AtomicUsize,
    tenants: Mutex<BTreeMap<String, Arc<TenantEntry>>>,
    /// The attached service's registry, for lazy per-tenant counters.
    registry: Mutex<Option<Arc<Registry>>>,
    /// Most recent per-job signal, any tenant — the throttle actuator's
    /// view of the service.
    last_signal: Mutex<Option<GrainSignal>>,
    throttle: Mutex<ThrottlePolicy>,
}

impl Autotune {
    /// A detached subsystem; call [`Autotune::attach`] once the service
    /// exists.
    pub fn new(cfg: AutotuneConfig) -> Arc<Self> {
        Arc::new(Self {
            cfg,
            cores: AtomicUsize::new(cfg.cores.max(1)),
            tenants: Mutex::new(BTreeMap::new()),
            registry: Mutex::new(None),
            last_signal: Mutex::new(None),
            throttle: Mutex::new(ThrottlePolicy::default()),
        })
    }

    /// The config this subsystem runs.
    pub fn config(&self) -> &AutotuneConfig {
        &self.cfg
    }

    /// Bind to a service: learn its core count and publish the
    /// aggregate counters `/autotune/grain` (mean tenant grain) and
    /// `/autotune/converged` (converged tenant fraction; 1.0 with no
    /// tenants) on its registry. Per-tenant counters appear lazily at
    /// `/autotune/tenants/{name}/{grain,converged,probes,adjustments}`
    /// as tenants first submit.
    pub fn attach(self: &Arc<Self>, service: &JobService) -> Result<(), RegistryError> {
        self.cores
            .store(service.runtime().num_workers().max(1), Ordering::Relaxed);
        let registry = Arc::clone(service.registry());
        let weak = Arc::downgrade(self);
        let mean_grain = weak_view(&weak, |auto| {
            let tenants = lock(&auto.tenants);
            if tenants.is_empty() {
                return auto.cfg.tuner.initial_nx as f64;
            }
            let sum: u64 = tenants
                .values()
                .map(|t| t.grain.load(Ordering::Relaxed))
                .sum();
            sum as f64 / tenants.len() as f64
        });
        registry.register(
            "/autotune/grain",
            DerivedCounter::new(Unit::Count, mean_grain),
        )?;
        let weak = Arc::downgrade(self);
        let converged = weak_view(&weak, |auto| {
            let tenants = lock(&auto.tenants);
            if tenants.is_empty() {
                return 1.0;
            }
            let done: u64 = tenants
                .values()
                .map(|t| t.converged.load(Ordering::Relaxed))
                .sum();
            done as f64 / tenants.len() as f64
        });
        registry.register(
            "/autotune/converged",
            DerivedCounter::new(Unit::Ratio, converged),
        )?;
        *lock(&self.registry) = Some(registry);
        Ok(())
    }

    /// The hook to install as [`grain_service::ServiceConfig::policy`].
    /// Feeds every *completed, shaped* job back into its tenant's
    /// controller; unshaped jobs and non-completed outcomes pass
    /// through untouched.
    pub fn policy_hook(self: &Arc<Self>) -> PolicyHook {
        let weak = Arc::downgrade(self);
        PolicyHook::new(move |spec, outcome| {
            let Some(auto) = weak.upgrade() else { return };
            let Some(shape) = spec.shape else { return };
            let Some(sig) = auto.signal_from_outcome(shape, outcome) else {
                return;
            };
            auto.observe(&spec.tenant, &sig);
        })
    }

    /// Derive the controller signal from a measured job outcome.
    ///
    /// The service runtime exposes per-job exec time but not per-job
    /// func time, so the Eq.-1 idle rate is computed against the job's
    /// wall-clock core budget (`turnaround · cores`); with jobs run
    /// back-to-back this matches the windowed counter. The overhead
    /// fraction uses the same value as a proxy — for a single tenant
    /// driving the service, non-exec time *is* task overhead plus
    /// starvation, which are exactly the two regimes the strategies
    /// split on `tasks_per_core`.
    fn signal_from_outcome(&self, shape: JobShape, outcome: &JobOutcome) -> Option<GrainSignal> {
        if outcome.state != JobState::Completed {
            return None;
        }
        let cores = self.cores.load(Ordering::Relaxed).max(1) as f64;
        let wall = outcome.turnaround.as_secs_f64().max(1e-9);
        let busy = outcome.exec_ns as f64 / 1e9;
        let idle = (1.0 - busy / (wall * cores)).clamp(0.0, 1.0);
        let tasks = outcome.tasks_completed.max(1) as f64;
        Some(GrainSignal {
            idle_rate: idle,
            overhead_frac: idle,
            pending_miss_rate: 0.0,
            tasks_per_core: tasks / cores,
            throughput: shape.units as f64 / wall,
        })
    }

    /// The grain `tenant`'s next job will be chunked at.
    pub fn grain_for(&self, tenant: &str) -> u64 {
        self.entry(tenant).grain.load(Ordering::Relaxed)
    }

    /// True once `tenant`'s controller sits frozen in its hysteresis
    /// band (or the subsystem is disabled).
    pub fn converged(&self, tenant: &str) -> bool {
        self.entry(tenant).converged.load(Ordering::Relaxed) != 0
    }

    /// Feed one completed-job signal into `tenant`'s controller and
    /// return the tenant's next grain. The policy hook calls this with
    /// measured signals; deterministic harnesses (the convergence
    /// storm, the cost-model benchmark) call it directly with modeled
    /// ones.
    pub fn observe(&self, tenant: &str, sig: &GrainSignal) -> u64 {
        let entry = self.entry(tenant);
        let next = {
            let mut c = lock(&entry.controller);
            let next = c.observe(sig);
            entry.publish(&c);
            next
        };
        *lock(&self.last_signal) = Some(*sig);
        next
    }

    /// Expand `shape` at the tenant's current (bound-guarded) grain and
    /// submit it. The job carries a [`JobShape`] so its completion
    /// flows back through the policy hook.
    pub fn submit_shaped(
        &self,
        service: &JobService,
        name: &str,
        tenant: &str,
        shape: &ShapedWork,
    ) -> JobHandle {
        let units = shape.units();
        let grain = {
            let entry = self.entry(tenant);
            let c = lock(&entry.controller);
            c.effective_grain(units)
        };
        let expanded = shape.expand(grain);
        let mut body = expanded.body;
        let spec = JobSpec::new(name, tenant)
            .estimated_tasks(expanded.tasks + 1)
            .shape(JobShape::new(units, grain));
        service.submit(spec, move |ctx| body(ctx))
    }

    /// The worker-pool actuator: given the pool state, what the most
    /// recent signal says the active-worker count should be. The same
    /// `tasks_per_core` that drives grain adaptation drives
    /// Porterfield-style throttling ([`ThrottlePolicy`]); apply the
    /// answer with [`grain_runtime::Runtime::set_active_workers`].
    pub fn recommended_workers(&self, active: usize, max: usize) -> usize {
        let Some(sig) = *lock(&self.last_signal) else {
            return active;
        };
        let ctx = PolicyContext {
            idle_rate: sig.idle_rate,
            throughput: sig.throughput,
            tasks_per_core: sig.tasks_per_core,
            nx: 0,
            active_workers: active.max(1),
            max_workers: max.max(1),
        };
        for action in lock(&self.throttle).evaluate(&ctx) {
            if let Action::SetActiveWorkers(n) = action {
                return n;
            }
        }
        active
    }

    /// Tenant names seen so far (storm reports iterate this).
    pub fn tenants(&self) -> Vec<String> {
        lock(&self.tenants).keys().cloned().collect()
    }

    /// Probe phases `tenant`'s controller has opened.
    pub fn probes(&self, tenant: &str) -> u64 {
        self.entry(tenant).probes.load(Ordering::Relaxed)
    }

    /// Grain adjustments `tenant`'s controller has applied.
    pub fn adjustments(&self, tenant: &str) -> u64 {
        self.entry(tenant).adjustments.load(Ordering::Relaxed)
    }

    /// Jobs observed for `tenant`.
    pub fn jobs(&self, tenant: &str) -> u64 {
        self.entry(tenant).jobs.load(Ordering::Relaxed)
    }

    fn entry(&self, tenant: &str) -> Arc<TenantEntry> {
        let mut tenants = lock(&self.tenants);
        if let Some(e) = tenants.get(tenant) {
            return Arc::clone(e);
        }
        let entry = Arc::new(TenantEntry::new(self.cfg));
        tenants.insert(tenant.to_owned(), Arc::clone(&entry));
        drop(tenants);
        self.register_tenant_counters(tenant, &entry);
        entry
    }

    /// Publish `/autotune/tenants/{name}/...` views. Registration is
    /// best-effort: a tenant name the counter grammar rejects (or a
    /// collision after a registry reset) must not fail the submission
    /// path, so errors are swallowed — the controller still runs, it is
    /// just not observable by path.
    fn register_tenant_counters(&self, tenant: &str, entry: &Arc<TenantEntry>) {
        let Some(registry) = lock(&self.registry).clone() else {
            return;
        };
        type FieldGet = fn(&TenantEntry) -> &AtomicU64;
        let fields: [(&str, Unit, FieldGet); 4] = [
            ("grain", Unit::Count, |e| &e.grain),
            ("converged", Unit::Ratio, |e| &e.converged),
            ("probes", Unit::Count, |e| &e.probes),
            ("adjustments", Unit::Count, |e| &e.adjustments),
        ];
        for (name, unit, get) in fields {
            let e = Arc::clone(entry);
            let path = format!("/autotune/tenants/{tenant}/{name}");
            let _ = registry.register(
                &path,
                DerivedCounter::new(unit, move || get(&e).load(Ordering::Relaxed) as f64),
            );
        }
    }
}

impl std::fmt::Debug for Autotune {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Autotune")
            .field("cfg", &self.cfg)
            .field("tenants", &lock(&self.tenants).len())
            .finish()
    }
}

/// Mutex lock that survives a poisoned peer (counter views must not
/// panic inside registry queries).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A derived-counter closure over a weak subsystem handle: reads 0.0
/// once the subsystem is gone instead of keeping it alive.
fn weak_view(
    weak: &Weak<Autotune>,
    view: impl Fn(&Autotune) -> f64 + Send + Sync + 'static,
) -> impl Fn() -> f64 + Send + Sync + 'static {
    let weak = weak.clone();
    move || weak.upgrade().map_or(0.0, |auto| view(&auto))
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_service::ServiceConfig;
    use grain_sim::storm::GraphFamily;

    fn shaped_service() -> (Arc<Autotune>, JobService) {
        let auto = Autotune::new(AutotuneConfig {
            cores: 2,
            ..AutotuneConfig::default()
        });
        let service = JobService::new(ServiceConfig {
            policy: Some(auto.policy_hook()),
            ..ServiceConfig::with_workers(2)
        });
        auto.attach(&service).expect("attach");
        (auto, service)
    }

    #[test]
    fn completed_shaped_jobs_feed_the_tenant_controller() {
        let (auto, service) = shaped_service();
        let shape = ShapedWork::ParallelFor {
            elements: 256,
            iters_per_element: 50,
            seed: 7,
        };
        for i in 0..3 {
            let job = auto.submit_shaped(&service, &format!("j{i}"), "ten-a", &shape);
            let outcome = job.wait();
            assert_eq!(outcome.state, JobState::Completed);
        }
        assert_eq!(auto.jobs("ten-a"), 3, "hook saw every completion");
        let reg = service.registry();
        assert!(reg.query("/autotune/tenants/ten-a/grain").is_ok());
        assert!(reg.query("/autotune/grain").is_ok());
        assert!(reg.query("/autotune/converged").is_ok());
    }

    #[test]
    fn unshaped_jobs_do_not_touch_controllers() {
        let (auto, service) = shaped_service();
        let job = service.submit(JobSpec::new("plain", "ten-b"), |ctx| {
            ctx.spawn(|_| {});
        });
        assert_eq!(job.wait().state, JobState::Completed);
        assert!(auto.tenants().is_empty(), "no shape, no tenant entry");
    }

    #[test]
    fn graph_shapes_round_trip_through_the_service() {
        let (auto, service) = shaped_service();
        let shape = ShapedWork::Graph {
            family: GraphFamily::Stencil,
            total_iters: 50_000,
            payload_bytes: 16,
            seed: 3,
            cov: grain_taskbench::Cov::Lognormal { cov_centi: 80 },
        };
        let outcome = auto.submit_shaped(&service, "g", "ten-c", &shape).wait();
        assert_eq!(outcome.state, JobState::Completed);
        assert!(outcome.tasks_completed > 1);
        assert_eq!(auto.jobs("ten-c"), 1);
    }

    #[test]
    fn modeled_observations_move_the_published_grain() {
        let auto = Autotune::new(AutotuneConfig::default());
        let g0 = auto.grain_for("t");
        // A starved regime (huge idle, almost no tasks per core) must
        // shrink the grain.
        let sig = GrainSignal {
            idle_rate: 0.9,
            overhead_frac: 0.1,
            pending_miss_rate: 0.0,
            tasks_per_core: 0.5,
            throughput: 1.0,
        };
        let g1 = auto.observe("t", &sig);
        assert!(g1 < g0, "starvation shrinks the grain ({g0} -> {g1})");
        assert_eq!(auto.grain_for("t"), g1);
        assert!(auto.adjustments("t") >= 1);
    }

    #[test]
    fn throttle_actuator_parks_workers_when_tasks_cannot_feed_them() {
        let auto = Autotune::new(AutotuneConfig::default());
        assert_eq!(auto.recommended_workers(8, 8), 8, "no signal, no change");
        let sig = GrainSignal {
            idle_rate: 0.9,
            overhead_frac: 0.1,
            pending_miss_rate: 0.0,
            tasks_per_core: 0.25,
            throughput: 1.0,
        };
        auto.observe("t", &sig);
        let rec = auto.recommended_workers(8, 8);
        assert!(rec < 8, "two runnable tasks cannot feed eight workers");
        assert!(rec >= 1);
    }
}
