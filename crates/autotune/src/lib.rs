//! # grain-autotune — per-tenant online granularity control
//!
//! The paper's central result is that task grain size is *the* lever on
//! HPX-style runtime performance: too fine and fixed per-task overheads
//! (`t_o`) dominate; too coarse and cores starve (Figs. 4–6). Every
//! layer built so far assumes the submitter picks the partition. This
//! crate removes that assumption for served workloads: a tenant submits
//! a **work shape** — total work plus a chunkable body
//! ([`ShapedWork::ParallelFor`], [`ShapedWork::Stencil`],
//! [`ShapedWork::Graph`]) — and the service picks, and keeps re-picking,
//! the grain.
//!
//! ## The control loop
//!
//! ```text
//!            shape ──▶ expand(grain) ──▶ JobService ──▶ outcome
//!              ▲                                           │
//!              │ next grain                                │ policy hook
//!              │                                           ▼
//!        GrainController ◀── GrainSignal (idle rate Eq. 1, overhead
//!        (per tenant)         fraction, pending misses, tasks/core)
//! ```
//!
//! * **Signal** — each completed job's counters are folded into a
//!   [`grain_adaptive::GrainSignal`]; a deterministic [`CostModel`]
//!   produces the same signal shape for replayable storms.
//! * **Strategy** — a pluggable [`grain_adaptive::GrainStrategy`]
//!   (threshold rules on the paper's regime markers, or hill-climbing
//!   on throughput) proposes the next grain.
//! * **Controller** — [`GrainController`] adds hysteresis (a converged
//!   tenant freezes; only a *sustained* out-of-band run re-probes) and
//!   safe bounds (grain clamped to tuner range, task count capped), so
//!   no strategy can starve or flood the runtime.
//! * **Actuators** — the adjusted grain re-chunks the tenant's next
//!   job; the same signal drives worker-pool throttling
//!   ([`Autotune::recommended_workers`]) and, exported through the
//!   fleet's `WorkerStats`, gateway placement.
//!
//! Per-tenant state is observable at
//! `/autotune/tenants/{name}/{grain,converged,probes,adjustments}`,
//! with `/autotune/{grain,converged}` aggregates. With
//! [`AutotuneConfig::enabled`] false every submission expands exactly
//! like a hand-partitioned job — byte-identical legacy behavior, which
//! `tests/convergence.rs` pins.

#![deny(clippy::unwrap_used)]

pub mod autotune;
pub mod controller;
pub mod model;
pub mod shape;

pub use autotune::Autotune;
pub use controller::{AutotuneConfig, GrainController};
pub use model::CostModel;
pub use shape::{ExpandedJob, ShapedBody, ShapedWork};

// The strategy layer lives in grain-adaptive (it is shared with the
// stencil policy engine); re-export it so autotune users need one crate.
pub use grain_adaptive::strategy::{
    strategy_for, GrainSignal, GrainStrategy, HillClimbStrategy, StrategyKind, ThresholdStrategy,
};
