//! The per-tenant grain controller: strategy + hysteresis + safe bounds.
//!
//! A [`GrainController`] wraps one [`GrainStrategy`] and adds the two
//! properties a *service* policy needs that a bare tuner does not have:
//!
//! * **Hysteresis** — once the strategy converges, the grain freezes.
//!   In-band observations (pressure under the target plus a tolerance
//!   band, enough tasks per core) keep it frozen; only
//!   [`AutotuneConfig::out_of_band_jobs`] *consecutive* out-of-band
//!   jobs re-open a probe. A tenant whose workload is stable therefore
//!   never oscillates, and one noisy job never causes a re-probe.
//! * **Safe bounds** — the grain is clamped to the tuner's
//!   `[min_nx, max_nx]` range, and [`GrainController::effective_grain`]
//!   additionally caps the task count a shape may expand to
//!   ([`AutotuneConfig::max_tasks_per_job`]), so a misbehaving strategy
//!   can never flood the runtime with millions of tiny tasks or starve
//!   it with one giant one.
//!
//! The controller is a deterministic state machine: the same sequence
//! of [`GrainSignal`]s always produces the same sequence of grains,
//! which is what makes convergence storms replayable bit-for-bit.

#![deny(clippy::unwrap_used)]

use grain_adaptive::strategy::{strategy_for, GrainSignal, GrainStrategy, StrategyKind};
use grain_adaptive::tuner::TunerConfig;

/// Configuration of the autotune subsystem (shared by every tenant's
/// controller).
#[derive(Debug, Clone, Copy)]
pub struct AutotuneConfig {
    /// Master switch. When false, every controller pins its tenant to
    /// `tuner.initial_nx` forever — submissions expand exactly as a
    /// hand-partitioned job would (the byte-identical legacy path).
    pub enabled: bool,
    /// Which decision engine each tenant runs.
    pub strategy: StrategyKind,
    /// Strategy bounds and targets: initial/min/max grain (work units
    /// per task), idle-rate target, multiplicative step.
    pub tuner: TunerConfig,
    /// Hard cap on the task count any shaped job may expand to; the
    /// starve guard [`GrainController::effective_grain`] coarsens the
    /// grain as needed to respect it.
    pub max_tasks_per_job: u64,
    /// Width of the hysteresis band above the idle-rate target: frozen
    /// tenants tolerate `target_idle_rate + hysteresis_band` before an
    /// observation counts as out-of-band.
    pub hysteresis_band: f64,
    /// Consecutive out-of-band jobs required to re-open a probe after
    /// convergence.
    pub out_of_band_jobs: u32,
    /// Core count used to derive per-job signals from measured
    /// outcomes (set from the service runtime by `Autotune::attach`).
    pub cores: usize,
}

impl Default for AutotuneConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            strategy: StrategyKind::Threshold,
            tuner: TunerConfig::default(),
            max_tasks_per_job: 4096,
            hysteresis_band: 0.15,
            out_of_band_jobs: 3,
            cores: 1,
        }
    }
}

/// One tenant's grain controller. See the module docs for the model.
pub struct GrainController {
    cfg: AutotuneConfig,
    strategy: Box<dyn GrainStrategy>,
    grain: u64,
    frozen: bool,
    out_of_band: u32,
    jobs: u64,
    probes: u64,
    adjustments: u64,
}

impl GrainController {
    /// A controller starting at the configured initial grain. An
    /// enabled controller starts in its first probe phase.
    pub fn new(cfg: AutotuneConfig) -> Self {
        let grain = (cfg
            .tuner
            .initial_nx
            .clamp(cfg.tuner.min_nx, cfg.tuner.max_nx)) as u64;
        Self {
            cfg,
            strategy: strategy_for(cfg.strategy, cfg.tuner),
            grain,
            frozen: false,
            out_of_band: 0,
            jobs: 0,
            probes: u64::from(cfg.enabled),
            adjustments: 0,
        }
    }

    /// The grain (work units per task) the tenant's next job should be
    /// chunked at.
    pub fn grain(&self) -> u64 {
        self.grain
    }

    /// The grain to actually expand a job of `units` total work with:
    /// the controller's grain, coarsened if needed so the job never
    /// expands to more than `max_tasks_per_job` tasks. This bound holds
    /// whatever the strategy does — it is the runtime's starvation
    /// guard, not a tuning decision.
    pub fn effective_grain(&self, units: u64) -> u64 {
        let floor = units.div_ceil(self.cfg.max_tasks_per_job.max(1));
        self.grain.max(floor).max(1)
    }

    /// True while the controller sits in its hysteresis band (the
    /// strategy converged and recent jobs stayed in-band).
    pub fn converged(&self) -> bool {
        self.frozen || !self.cfg.enabled
    }

    /// Jobs observed so far.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Probe phases opened so far (1 for a converged first probe; +1
    /// per hysteresis exit).
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Grain changes applied so far.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// An observation is in-band when neither overload signal exceeds
    /// the target plus the hysteresis band and the tenant is not
    /// outright starving the cores.
    fn in_band(&self, sig: &GrainSignal) -> bool {
        let pressure = sig.fine_pressure().max(sig.pending_miss_rate);
        pressure <= self.cfg.tuner.target_idle_rate + self.cfg.hysteresis_band
            && sig.tasks_per_core >= 1.0
    }

    /// Feed one completed job's signals; returns the grain for the
    /// tenant's next job.
    pub fn observe(&mut self, sig: &GrainSignal) -> u64 {
        self.jobs += 1;
        if !self.cfg.enabled {
            return self.grain;
        }
        if self.frozen {
            if self.in_band(sig) {
                self.out_of_band = 0;
                return self.grain;
            }
            self.out_of_band += 1;
            if self.out_of_band < self.cfg.out_of_band_jobs.max(1) {
                return self.grain;
            }
            // The regime genuinely moved: re-open a probe.
            self.frozen = false;
            self.out_of_band = 0;
            self.probes += 1;
        }
        let min = self.cfg.tuner.min_nx as u64;
        let max = self.cfg.tuner.max_nx as u64;
        let next = self.strategy.observe(sig).clamp(min.max(1), max.max(1));
        if next != self.grain {
            self.adjustments += 1;
            self.grain = next;
        }
        if self.strategy.converged() {
            self.frozen = true;
        }
        self.grain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(idle: f64, tpc: f64) -> GrainSignal {
        GrainSignal {
            idle_rate: idle,
            overhead_frac: 0.0,
            pending_miss_rate: 0.0,
            tasks_per_core: tpc,
            throughput: 0.0,
        }
    }

    #[test]
    fn disabled_controller_never_moves() {
        let mut c = GrainController::new(AutotuneConfig {
            enabled: false,
            ..AutotuneConfig::default()
        });
        let g0 = c.grain();
        for _ in 0..10 {
            assert_eq!(c.observe(&sig(0.95, 200.0)), g0);
        }
        assert_eq!(c.adjustments(), 0);
        assert_eq!(c.probes(), 0);
        assert!(c.converged(), "a pinned controller is trivially settled");
    }

    #[test]
    fn freezes_after_convergence_and_tolerates_noise() {
        let mut c = GrainController::new(AutotuneConfig::default());
        // Two in-band windows converge the threshold strategy.
        c.observe(&sig(0.1, 50.0));
        c.observe(&sig(0.1, 50.0));
        assert!(c.converged());
        let frozen = c.grain();
        // One or two out-of-band jobs are absorbed by hysteresis.
        c.observe(&sig(0.95, 50.0));
        c.observe(&sig(0.95, 50.0));
        assert_eq!(c.grain(), frozen, "band absorbs transient noise");
        assert!(c.converged());
    }

    #[test]
    fn sustained_regime_change_reopens_a_probe() {
        let mut c = GrainController::new(AutotuneConfig::default());
        c.observe(&sig(0.1, 50.0));
        c.observe(&sig(0.1, 50.0));
        assert!(c.converged());
        let probes_before = c.probes();
        let frozen = c.grain();
        for _ in 0..3 {
            c.observe(&sig(0.95, 50.0));
        }
        assert_eq!(c.probes(), probes_before + 1, "probe re-opened");
        assert!(c.grain() > frozen, "overhead regime coarsens the grain");
    }

    #[test]
    fn effective_grain_caps_the_task_count() {
        let cfg = AutotuneConfig {
            tuner: TunerConfig {
                initial_nx: 16,
                min_nx: 16,
                ..TunerConfig::default()
            },
            max_tasks_per_job: 100,
            ..AutotuneConfig::default()
        };
        let c = GrainController::new(cfg);
        // 1M units at grain 16 would be 62_500 tasks; the guard
        // coarsens to exactly the cap.
        let g = c.effective_grain(1_000_000);
        assert!(1_000_000u64.div_ceil(g) <= 100);
        // Small jobs keep the tuned grain.
        assert_eq!(c.effective_grain(160), 16);
    }

    #[test]
    fn controller_is_deterministic() {
        let run = || {
            let mut c = GrainController::new(AutotuneConfig::default());
            (0..20)
                .map(|i| c.observe(&sig(if i % 3 == 0 { 0.9 } else { 0.2 }, 8.0)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
