//! A deterministic host cost model for replayable convergence storms.
//!
//! The controller's *decision inputs* under the storm harness must not
//! depend on wall-clock measurement, or a replay would diverge (the
//! verify gate runs the convergence smoke twice and diffs the
//! reports). This module provides the closed-form stand-in: the
//! paper's two-component task cost — a fixed per-task management
//! overhead `t_o` plus work linear in the grain — evaluated over an
//! idealized `cores`-wide machine. From it the model derives exactly
//! the signal set the real service derives from its counters
//! (Eq.-1 idle rate, overhead fraction, pending-miss rate,
//! tasks-per-core, throughput), so a strategy tuned against the model
//! behaves identically against a real host whose costs match.
//!
//! The *measured* half of the autotune benchmark still runs real jobs
//! and reports real timings — those go to stderr and the BENCH
//! trajectory, which the replay diff deliberately does not cover.

#![deny(clippy::unwrap_used)]

use grain_adaptive::strategy::GrainSignal;
use grain_adaptive::tuner::TunerConfig;

/// Closed-form machine model: `tasks = ceil(units/grain)` tasks, each
/// costing `overhead_ns_per_task + grain · ns_per_unit`, scheduled
/// greedily over `cores` cores.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Fixed task-management cost per task (the paper's t_o), ns.
    pub overhead_ns_per_task: f64,
    /// Work cost per work unit (busy-work iteration), ns.
    pub ns_per_unit: f64,
    /// Cores of the modeled machine.
    pub cores: usize,
}

impl CostModel {
    /// Task count a job of `units` expands to at `grain`.
    pub fn tasks(&self, units: u64, grain: u64) -> u64 {
        units.max(1).div_ceil(grain.max(1))
    }

    /// Modeled makespan of the job, ns: rounds of `cores` tasks, each
    /// round costing one task's full (overhead + work) time.
    pub fn wall_ns(&self, units: u64, grain: u64) -> f64 {
        let tasks = self.tasks(units, grain);
        let rounds = tasks.div_ceil(self.cores.max(1) as u64);
        let per_task = self.overhead_ns_per_task + grain.max(1) as f64 * self.ns_per_unit;
        rounds as f64 * per_task
    }

    /// The modeled per-task overhead *as measured*: idle machine time
    /// divided over the tasks — what `RunRecord::task_overhead_ns`
    /// reports on a real host (Eq. 2).
    pub fn measured_overhead_ns(&self, units: u64, grain: u64) -> f64 {
        let tasks = self.tasks(units, grain) as f64;
        let busy = units.max(1) as f64 * self.ns_per_unit;
        let machine = self.wall_ns(units, grain) * self.cores.max(1) as f64;
        (machine - busy).max(0.0) / tasks
    }

    /// The full signal set for one job at `(units, grain)` — the same
    /// five numbers the service derives from its counters.
    pub fn signal(&self, units: u64, grain: u64) -> GrainSignal {
        let cores = self.cores.max(1) as f64;
        let tasks = self.tasks(units, grain) as f64;
        let work = grain.max(1) as f64 * self.ns_per_unit;
        let per_task = self.overhead_ns_per_task + work;
        let wall = self.wall_ns(units, grain);
        let busy = units.max(1) as f64 * self.ns_per_unit;
        let idle_rate = (1.0 - busy / (wall * cores)).clamp(0.0, 1.0);
        let overhead_frac = self.overhead_ns_per_task / per_task;
        // Pending-queue churn tracks the overhead-bound regime (§IV-E):
        // the finer the tasks, the larger the share of pops that hunt.
        let pending_miss_rate = (overhead_frac * 0.8).clamp(0.0, 1.0);
        GrainSignal {
            idle_rate,
            overhead_frac,
            pending_miss_rate,
            tasks_per_core: tasks / cores,
            throughput: busy.max(1.0) / (wall / 1e9).max(1e-12),
        }
    }

    /// The hand-tuned optimum: the grain minimizing the modeled
    /// makespan over a multiplicative grid inside the tuner bounds.
    /// Deterministic; this is the storm harness's reference answer.
    pub fn optimal_grain(&self, units: u64, bounds: &TunerConfig) -> u64 {
        let lo = bounds.min_nx.max(1) as u64;
        let hi = (bounds.max_nx as u64).min(units.max(1)).max(lo);
        let mut best = lo;
        let mut best_wall = self.wall_ns(units, lo);
        let mut g = lo;
        while g < hi {
            g = (g.saturating_mul(2)).min(hi);
            let w = self.wall_ns(units, g);
            if w < best_wall {
                best_wall = w;
                best = g;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel {
            overhead_ns_per_task: 2_000.0,
            ns_per_unit: 1.0,
            cores: 4,
        }
    }

    #[test]
    fn extremes_cost_more_than_the_optimum() {
        let m = model();
        let units = 1 << 20;
        let opt = m.optimal_grain(units, &TunerConfig::default());
        let wall_opt = m.wall_ns(units, opt);
        assert!(m.wall_ns(units, 16) > wall_opt, "too fine pays overhead");
        assert!(
            m.wall_ns(units, units) > wall_opt,
            "one giant task starves 3 of 4 cores"
        );
    }

    #[test]
    fn signals_mark_the_two_bad_regimes() {
        let m = model();
        let units = 1 << 20;
        let fine = m.signal(units, 16);
        assert!(fine.overhead_frac > 0.9, "tiny tasks are all overhead");
        assert!(fine.pending_miss_rate > 0.5);
        let coarse = m.signal(units, units);
        assert!(coarse.tasks_per_core < 1.0, "one task cannot feed 4 cores");
        assert!(coarse.idle_rate > 0.5);
        let opt = m.optimal_grain(units, &TunerConfig::default());
        let good = m.signal(units, opt);
        assert!(good.idle_rate < fine.idle_rate.min(coarse.idle_rate));
    }

    #[test]
    fn measured_overhead_is_minimized_near_the_optimum() {
        let m = model();
        let units = 1 << 20;
        let opt = m.optimal_grain(units, &TunerConfig::default());
        let at_opt = m.measured_overhead_ns(units, opt);
        assert!(at_opt <= m.measured_overhead_ns(units, 16));
        // Note: measured t_o grows without bound in the starved regime
        // because the idle cores' time is charged to very few tasks.
        assert!(at_opt < m.measured_overhead_ns(units, units));
    }

    #[test]
    fn model_is_deterministic() {
        let m = model();
        for g in [1u64, 100, 10_000, 1 << 20] {
            assert_eq!(m.wall_ns(1 << 20, g), m.wall_ns(1 << 20, g));
            assert_eq!(m.signal(1 << 20, g), m.signal(1 << 20, g));
        }
    }
}
