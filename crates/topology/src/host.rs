//! Detection of the machine the library is actually running on.
//!
//! The native runtime sizes its default worker pool from this (HPX: "by
//! default it will use all available cores and will create one static OS
//! thread per core"). On Linux, NUMA layout is read from sysfs when
//! present; everything degrades gracefully to a flat single-domain view.

use crate::numa::NumaTopology;
use crate::platform::{PerfParams, Platform};
use crate::CacheSpec;

/// Number of logical CPUs available to this process.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// Number of NUMA nodes, from `/sys/devices/system/node` when readable,
/// else 1.
pub fn numa_nodes() -> usize {
    let Ok(entries) = std::fs::read_dir("/sys/devices/system/node") else {
        return 1;
    };
    let n = entries
        .flatten()
        .filter(|e| {
            e.file_name()
                .to_str()
                .map(|s| s.starts_with("node") && s[4..].chars().all(|c| c.is_ascii_digit()))
                .unwrap_or(false)
        })
        .count();
    n.max(1)
}

/// Topology for `workers` workers on the host machine.
pub fn host_topology(workers: usize) -> NumaTopology {
    NumaTopology::block(workers.max(1), numa_nodes())
}

/// A [`Platform`] description of the host, with neutral performance
/// parameters — the native runtime measures real time, so [`PerfParams`]
/// is only used if the host description is fed to the simulator.
pub fn host_platform() -> Platform {
    let cores = available_cores();
    Platform {
        name: "host".to_owned(),
        processors: "host CPU".to_owned(),
        microarchitecture: "unknown".to_owned(),
        clock_ghz: 0.0,
        turbo_ghz: 0.0,
        hw_threads_per_core: 1,
        hw_threads_active: false,
        cores,
        usable_cores: cores,
        sockets: numa_nodes(),
        cache: CacheSpec::new(32, 32, 512, 8),
        ram_bytes: 0,
        perf: PerfParams::test_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_one_core() {
        assert!(available_cores() >= 1);
        assert!(numa_nodes() >= 1);
    }

    #[test]
    fn host_topology_covers_workers() {
        let t = host_topology(4);
        assert_eq!(t.workers(), 4);
        assert!(t.domains() >= 1);
    }

    #[test]
    fn host_platform_is_consistent() {
        let p = host_platform();
        assert_eq!(p.cores, available_cores());
        assert!(p.core_sweep().contains(&1));
        assert!(p.core_sweep().contains(&p.usable_cores));
    }
}
