//! The four experimental platforms of Table I, with calibrated simulator
//! parameters.
//!
//! Hardware rows are transcribed from Table I of the paper. The
//! [`PerfParams`] constants are *fits* to the numbers the paper reports in
//! its text and figures; each fit target is cited next to the constant.
//! EXPERIMENTS.md records the residuals of these fits.

use crate::cache::CacheSpec;
use crate::platform::{PerfParams, Platform};

/// GiB → bytes.
const GIB: u64 = 1024 * 1024 * 1024;

/// Sandy Bridge node: 2 × Intel Xeon E5 2690, 16 cores, 2.9 GHz
/// (3.8 turbo), 20 MB shared cache, 64 GB RAM (Table I).
pub fn sandy_bridge() -> Platform {
    Platform {
        name: "Sandy Bridge".to_owned(),
        processors: "Intel Xeon E5 2690".to_owned(),
        microarchitecture: "Sandy Bridge (SB)".to_owned(),
        clock_ghz: 2.9,
        turbo_ghz: 3.8,
        hw_threads_per_core: 2,
        hw_threads_active: false,
        cores: 16,
        usable_cores: 16,
        sockets: 2,
        cache: CacheSpec::new(32, 32, 256, 20),
        ram_bytes: 64 * GIB,
        perf: PerfParams {
            // Fig. 3a: 1-core flat region ≈ 5 s for 5·10⁹ updates.
            task_fixed_ns: 220.0,
            ns_per_point: 0.92,
            ns_per_point_cached: 0.40,
            // Fig. 3a: ≥8-core valley ≈ 1.9 s ⇒ ≈ 2.6 Gpt/s saturated.
            aggregate_rate_pts_per_ns: 2.65,
            stripe_factor: 1.2,
            bytes_per_point: 16.0,
            queue_probe_ns: 32.0,
            convert_ns: 65.0,
            dispatch_ns: 95.0,
            spawn_ns: 65.0,
            steal_local_extra_ns: 100.0,
            steal_remote_extra_ns: 280.0,
            // Fig. 3a fine-grain blow-up at 16 cores (exec ≈ 6.5 s @ 10³).
            contention_alpha: 4.0,
            contention_gamma: 1.0,
            jitter_sigma: 0.03,
        },
    }
}

/// Ivy Bridge node: 2 × Intel Xeon E5-2679 v3, 20 cores, 2.3 GHz
/// (3.3 turbo), 35 MB shared cache, 128 GB RAM (Table I).
pub fn ivy_bridge() -> Platform {
    Platform {
        name: "Ivy Bridge".to_owned(),
        processors: "Intel Xeon E5-2679 v3".to_owned(),
        microarchitecture: "Ivy Bridge (IB)".to_owned(),
        clock_ghz: 2.3,
        turbo_ghz: 3.3,
        hw_threads_per_core: 2,
        hw_threads_active: false,
        cores: 20,
        usable_cores: 20,
        sockets: 2,
        cache: CacheSpec::new(32, 32, 256, 35),
        ram_bytes: 128 * GIB,
        perf: PerfParams {
            // Fig. 3b: 1-core flat region ≈ 5 s; valley ≈ 1.8 s.
            task_fixed_ns: 210.0,
            ns_per_point: 0.95,
            ns_per_point_cached: 0.45,
            aggregate_rate_pts_per_ns: 2.80,
            stripe_factor: 1.2,
            bytes_per_point: 16.0,
            queue_probe_ns: 30.0,
            convert_ns: 62.0,
            dispatch_ns: 92.0,
            spawn_ns: 62.0,
            steal_local_extra_ns: 95.0,
            steal_remote_extra_ns: 270.0,
            // Fig. 3b fine-grain blow-up at 20 cores (exec ≈ 6 s @ 10³).
            contention_alpha: 4.0,
            contention_gamma: 1.0,
            jitter_sigma: 0.03,
        },
    }
}

/// Haswell node: 2 × Intel Xeon E5-2695 v3, 28 cores, 2.3 GHz (3.3 turbo),
/// 35 MB shared cache, 128 GB RAM (Table I). The paper's most thoroughly
/// reported platform (Figs. 4, 6, 7, 9 and the §IV threshold numbers).
pub fn haswell() -> Platform {
    Platform {
        name: "Haswell".to_owned(),
        processors: "Intel Xeon E5-2695 v3".to_owned(),
        microarchitecture: "Haswell (HW)".to_owned(),
        clock_ghz: 2.3,
        turbo_ghz: 3.3,
        hw_threads_per_core: 2,
        hw_threads_active: false,
        cores: 28,
        usable_cores: 28,
        sockets: 2,
        cache: CacheSpec::new(32, 32, 256, 35),
        ram_bytes: 128 * GIB,
        perf: PerfParams {
            // Fits:
            //  · 1-core flat region ≈ 4.7–6 s (Fig. 3c) ⇒ 0.95 ns/pt;
            //  · t_d1(12 500) ≈ 21 µs, t_d1(78 125) ≈ 99 µs (§IV-A) —
            //    reproduced within ~1.6× by 0.95 ns/pt + fixed cost;
            //  · 28-core valley 1.71 s @ 40 000 pts (§IV-A)
            //    ⇒ 2.92 Gpt/s saturated;
            //  · wait time ≈ 700 µs per task @ 90 000 pts, 28 cores
            //    (Fig. 6) — emerges from the saturating-rate model.
            task_fixed_ns: 200.0,
            ns_per_point: 0.95,
            ns_per_point_cached: 0.45,
            aggregate_rate_pts_per_ns: 2.92,
            stripe_factor: 1.2,
            bytes_per_point: 16.0,
            queue_probe_ns: 30.0,
            convert_ns: 60.0,
            dispatch_ns: 90.0,
            spawn_ns: 60.0,
            steal_local_extra_ns: 90.0,
            steal_remote_extra_ns: 260.0,
            // Fig. 4c: idle-rate ≈ 85–90 % at partitions ≤ 10³–10⁴ on 28
            // cores ⇒ per-task management ≈ 20 µs under full 28-way
            // contention over a ~300 ns uncontended base.
            contention_alpha: 2.4,
            contention_gamma: 1.0,
            jitter_sigma: 0.03,
        },
    }
}

/// Xeon Phi coprocessor: 61 cores (60 used), 1.2 GHz, 4-way hardware
/// threading (study used 1 thread/core), 512 KB L2 per core, no shared
/// cache, 8 GB RAM (Table I). The paper computes 5 time steps here
/// instead of 50.
pub fn xeon_phi() -> Platform {
    Platform {
        name: "Xeon Phi".to_owned(),
        processors: "Intel Xeon Phi".to_owned(),
        microarchitecture: "Xeon Phi".to_owned(),
        clock_ghz: 1.2,
        turbo_ghz: 1.2,
        hw_threads_per_core: 4,
        hw_threads_active: true,
        cores: 61,
        usable_cores: 60,
        sockets: 1,
        cache: CacheSpec::new(32, 32, 512, 0),
        ram_bytes: 8 * GIB,
        perf: PerfParams {
            // Fits:
            //  · t_d1(12 500) ≈ 1.1 ms (§IV-A) ⇒ ≈ 88 ns/pt in-order
            //    scalar + 2 µs fixed;
            //  · Fig. 3d: 1-core ≈ 45 s for 5·10⁸ updates, 60-core valley
            //    ≈ 1.4 s ⇒ saturated ≈ 0.45 Gpt/s (ring/GDDR limit);
            //  · Fig. 5: idle-rate ≈ 85–90 % at fine grain on 60 cores ⇒
            //    strongly superlinear queue-contention growth on the slow
            //    in-order ring (γ ≈ 1.8).
            task_fixed_ns: 2_000.0,
            ns_per_point: 87.0,
            ns_per_point_cached: 60.0,
            aggregate_rate_pts_per_ns: 0.45,
            stripe_factor: 1.2,
            bytes_per_point: 16.0,
            queue_probe_ns: 120.0,
            convert_ns: 240.0,
            dispatch_ns: 360.0,
            spawn_ns: 240.0,
            steal_local_extra_ns: 360.0,
            steal_remote_extra_ns: 360.0,
            // Fig. 5c: idle-rate ≈ 85–90 % at fine grain on 60 slow
            // in-order cores ⇒ strongly superlinear contention growth.
            contention_alpha: 0.31,
            contention_gamma: 1.8,
            jitter_sigma: 0.06,
        },
    }
}

/// All four Table I platforms, in the paper's column order.
pub fn table1() -> Vec<Platform> {
    vec![haswell(), xeon_phi(), ivy_bridge(), sandy_bridge()]
}

/// Look a preset up by (case-insensitive) name or common abbreviation.
pub fn by_name(name: &str) -> Option<Platform> {
    match name
        .to_ascii_lowercase()
        .replace([' ', '-', '_'], "")
        .as_str()
    {
        "haswell" | "hw" => Some(haswell()),
        "xeonphi" | "phi" | "knc" => Some(xeon_phi()),
        "ivybridge" | "ib" => Some(ivy_bridge()),
        "sandybridge" | "sb" => Some(sandy_bridge()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_hardware_rows_match_paper() {
        let hw = haswell();
        assert_eq!(hw.cores, 28);
        assert_eq!(hw.clock_ghz, 2.3);
        assert_eq!(hw.turbo_ghz, 3.3);
        assert_eq!(hw.cache.llc_bytes_per_socket, 35 * 1024 * 1024);
        assert_eq!(hw.ram_bytes, 128 * GIB);
        assert!(!hw.hw_threads_active);

        let phi = xeon_phi();
        assert_eq!(phi.cores, 61);
        assert_eq!(phi.usable_cores, 60);
        assert_eq!(phi.clock_ghz, 1.2);
        assert_eq!(phi.cache.l2_bytes, 512 * 1024);
        assert_eq!(phi.cache.llc_bytes_per_socket, 0);
        assert_eq!(phi.ram_bytes, 8 * GIB);
        assert!(phi.hw_threads_active);

        let sb = sandy_bridge();
        assert_eq!(sb.cores, 16);
        assert_eq!(sb.clock_ghz, 2.9);
        assert_eq!(sb.cache.llc_bytes_per_socket, 20 * 1024 * 1024);
        assert_eq!(sb.ram_bytes, 64 * GIB);

        let ib = ivy_bridge();
        assert_eq!(ib.cores, 20);
        assert_eq!(ib.cache.llc_bytes_per_socket, 35 * 1024 * 1024);
    }

    #[test]
    fn by_name_finds_all() {
        for (alias, want) in [
            ("Haswell", "Haswell"),
            ("hw", "Haswell"),
            ("xeon-phi", "Xeon Phi"),
            ("PHI", "Xeon Phi"),
            ("ivy bridge", "Ivy Bridge"),
            ("SB", "Sandy Bridge"),
        ] {
            assert_eq!(by_name(alias).unwrap().name, want, "alias {alias}");
        }
        assert!(by_name("power9").is_none());
    }

    #[test]
    fn calibration_haswell_task_duration_scale() {
        // §IV-A: t_d(12 500 pts) on one Haswell core ≈ 21 µs; our model
        // must land within 2× (the paper's own COV plus our simplified
        // linear kernel).
        let p = haswell().perf;
        let td1 = p.task_fixed_ns + 12_500.0 * p.per_point_ns(1, 1, false);
        assert!(
            (10_000.0..42_000.0).contains(&td1),
            "t_d1(12500) = {td1} ns out of range"
        );
    }

    #[test]
    fn calibration_haswell_valley() {
        // §IV-A: minimum 28-core execution time ≈ 1.71 s for 5e9 updates.
        let p = haswell().perf;
        let t = 5e9 / p.aggregate_rate(28) * 1e-9;
        assert!((1.5..2.0).contains(&t), "28-core valley = {t} s");
    }

    #[test]
    fn calibration_phi_task_duration() {
        // §IV-A: t_d(12 500 pts) on one Phi core ≈ 1.1 ms.
        let p = xeon_phi().perf;
        let td1 = p.task_fixed_ns + 12_500.0 * p.per_point_ns(1, 1, false);
        assert!(
            (0.8e6..1.4e6).contains(&td1),
            "Phi t_d1(12500) = {td1} ns out of range"
        );
    }

    #[test]
    fn calibration_serial_runs() {
        // Fig. 3c: Haswell 1-core flat region ≈ 4.5–6 s for 100 M × 50.
        let p = haswell().perf;
        let t = 5e9 * p.per_point_ns(1, 1, false) * 1e-9;
        assert!((4.0..6.5).contains(&t), "HW serial = {t} s");
        // Fig. 3d: Phi 1-core ≈ 45–60 s for 100 M × 5.
        let p = xeon_phi().perf;
        let t = 5e8 * p.per_point_ns(1, 1, false) * 1e-9;
        assert!((35.0..65.0).contains(&t), "Phi serial = {t} s");
    }
}
