//! NUMA domains and the worker-to-domain mapping.
//!
//! The Priority Local scheduler's search order (paper Fig. 1) is defined in
//! terms of NUMA domains: a worker exhausts its own queues, then its NUMA
//! domain's, then remote domains'. [`NumaTopology`] answers the two
//! questions that ordering needs: *which domain is worker `w` in?* and
//! *which other workers are in the same / in remote domains, in what
//! order?*

/// Identifier of a NUMA domain (socket), dense from zero.
pub type DomainId = usize;

/// Cores grouped into NUMA domains, plus the mapping of runtime workers
/// onto cores. Workers are assigned to domains round-robin-by-block, the
/// same "one static OS thread per core, NUMA aware" placement HPX uses by
/// default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumaTopology {
    /// `domains[d]` = number of workers placed in domain `d`.
    workers_per_domain: Vec<usize>,
    /// `domain_of[w]` = domain of worker `w`.
    domain_of: Vec<DomainId>,
}

impl NumaTopology {
    /// Distribute `workers` workers over `domains` equally sized domains,
    /// filling domain 0 first (block placement: workers 0..k in domain 0,
    /// etc.), matching HPX's default resource allocation.
    ///
    /// # Panics
    /// Panics if `workers == 0` or `domains == 0`.
    pub fn block(workers: usize, domains: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(domains > 0, "need at least one domain");
        let domains = domains.min(workers);
        let base = workers / domains;
        let extra = workers % domains;
        let mut workers_per_domain = Vec::with_capacity(domains);
        let mut domain_of = Vec::with_capacity(workers);
        for d in 0..domains {
            let n = base + usize::from(d < extra);
            workers_per_domain.push(n);
            for _ in 0..n {
                domain_of.push(d);
            }
        }
        Self {
            workers_per_domain,
            domain_of,
        }
    }

    /// A single flat domain containing all workers (Xeon Phi, or a
    /// NUMA-blind configuration).
    pub fn flat(workers: usize) -> Self {
        Self::block(workers, 1)
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.domain_of.len()
    }

    /// Number of NUMA domains.
    pub fn domains(&self) -> usize {
        self.workers_per_domain.len()
    }

    /// Domain of worker `w`.
    pub fn domain_of(&self, w: usize) -> DomainId {
        self.domain_of[w]
    }

    /// Workers in domain `d`, in index order.
    pub fn workers_in(&self, d: DomainId) -> impl Iterator<Item = usize> + '_ {
        let me = d;
        (0..self.workers()).filter(move |&w| self.domain_of[w] == me)
    }

    /// Peer workers of `w` in the same NUMA domain, excluding `w` itself,
    /// starting after `w` and wrapping (so different workers spread their
    /// steal attempts instead of all hammering worker 0).
    pub fn same_domain_peers(&self, w: usize) -> Vec<usize> {
        let d = self.domain_of(w);
        self.rotated_peers(w, |p| self.domain_of[p] == d)
    }

    /// Workers in *other* NUMA domains, ordered by domain distance from
    /// `w`'s domain (nearest first), then by worker index rotated after `w`.
    /// With the symmetric distances of a dual-socket node this is simply
    /// all remote workers.
    pub fn remote_domain_peers(&self, w: usize) -> Vec<usize> {
        let d = self.domain_of(w);
        self.rotated_peers(w, |p| self.domain_of[p] != d)
    }

    fn rotated_peers(&self, w: usize, keep: impl Fn(usize) -> bool) -> Vec<usize> {
        let n = self.workers();
        (1..n).map(|i| (w + i) % n).filter(|&p| keep(p)).collect()
    }

    /// True if workers `a` and `b` share a NUMA domain.
    pub fn same_domain(&self, a: usize, b: usize) -> bool {
        self.domain_of(a) == self.domain_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement_haswell() {
        // 28 workers over 2 sockets: 14 + 14, block-placed.
        let t = NumaTopology::block(28, 2);
        assert_eq!(t.workers(), 28);
        assert_eq!(t.domains(), 2);
        assert_eq!(t.domain_of(0), 0);
        assert_eq!(t.domain_of(13), 0);
        assert_eq!(t.domain_of(14), 1);
        assert_eq!(t.domain_of(27), 1);
        assert_eq!(t.workers_in(0).count(), 14);
        assert_eq!(t.workers_in(1).count(), 14);
    }

    #[test]
    fn uneven_split_spreads_remainder() {
        let t = NumaTopology::block(5, 2);
        assert_eq!(t.workers_in(0).count(), 3);
        assert_eq!(t.workers_in(1).count(), 2);
    }

    #[test]
    fn more_domains_than_workers_collapses() {
        let t = NumaTopology::block(2, 8);
        assert_eq!(t.domains(), 2);
    }

    #[test]
    fn flat_is_single_domain() {
        let t = NumaTopology::flat(61);
        assert_eq!(t.domains(), 1);
        assert!(t.same_domain(0, 60));
    }

    #[test]
    fn same_domain_peers_rotate_and_exclude_self() {
        let t = NumaTopology::block(8, 2); // 0-3 in d0, 4-7 in d1
        let peers = t.same_domain_peers(2);
        assert_eq!(peers, vec![3, 0, 1]);
        let peers = t.same_domain_peers(5);
        assert_eq!(peers, vec![6, 7, 4]);
    }

    #[test]
    fn remote_peers_are_other_domain_only() {
        let t = NumaTopology::block(8, 2);
        let remote = t.remote_domain_peers(2);
        assert_eq!(remote, vec![4, 5, 6, 7]);
        let remote = t.remote_domain_peers(6);
        assert_eq!(remote, vec![0, 1, 2, 3]);
    }

    #[test]
    fn peer_sets_partition_all_other_workers() {
        let t = NumaTopology::block(12, 3);
        for w in 0..12 {
            let mut all: Vec<usize> = t.same_domain_peers(w);
            all.extend(t.remote_domain_peers(w));
            all.sort_unstable();
            let expect: Vec<usize> = (0..12).filter(|&x| x != w).collect();
            assert_eq!(all, expect, "worker {w}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = NumaTopology::block(0, 1);
    }
}
