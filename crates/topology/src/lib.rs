//! # grain-topology — machine topology and platform models
//!
//! The paper's scheduler is NUMA-aware (§I-B, Fig. 1): each worker owns a
//! dual queue, and work search proceeds local → same NUMA domain → remote
//! NUMA domains. The experiments run on four Intel platforms whose
//! specifications are given in Table I. This crate provides:
//!
//! * [`NumaTopology`] — cores grouped into NUMA domains, with the
//!   worker-to-domain mapping and domain-distance queries the scheduler
//!   needs to order its six-step search;
//! * [`CacheSpec`] — the cache hierarchy facts used by the simulator's
//!   locality model;
//! * [`Platform`] — a full machine description; [`presets`] reproduces
//!   Table I exactly (Sandy Bridge, Ivy Bridge, Haswell, Xeon Phi);
//! * [`PerfParams`] — calibrated software/hardware cost parameters
//!   (per-point kernel rates, memory bandwidth, scheduler operation costs)
//!   that drive the discrete-event simulator in `grain-sim`. These are
//!   *fits to the measurements reported in the paper's text*, documented
//!   per constant — not arbitrary magic numbers;
//! * [`host`] — detection of the machine this library is actually running
//!   on, for the native runtime.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod host;
pub mod numa;
pub mod platform;
pub mod presets;

pub use cache::CacheSpec;
pub use numa::{DomainId, NumaTopology};
pub use platform::{PerfParams, Platform};
