//! Platform descriptions: hardware facts (Table I) plus calibrated
//! performance parameters for the simulator.

use crate::cache::CacheSpec;
use crate::numa::NumaTopology;

/// A full experimental platform: the Table I hardware facts plus the
/// calibrated cost model ([`PerfParams`]) the discrete-event simulator
/// uses to turn "task of `n` grid points on `c` active cores" into time.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Short name used in reports ("Haswell", "Xeon Phi", …).
    pub name: String,
    /// Processor model string, as in Table I.
    pub processors: String,
    /// Microarchitecture, as in Table I.
    pub microarchitecture: String,
    /// Nominal clock frequency, GHz.
    pub clock_ghz: f64,
    /// Turbo clock frequency, GHz (equal to `clock_ghz` if no turbo).
    pub turbo_ghz: f64,
    /// Hardware threads per core ("2-way (deactivated)" → 2).
    pub hw_threads_per_core: u32,
    /// Whether hardware threading was active in the study's configuration.
    pub hw_threads_active: bool,
    /// Total physical cores.
    pub cores: usize,
    /// Cores usable for worker threads in the study's configuration
    /// (on the Xeon Phi one core is conventionally left to the OS:
    /// 61 physical, 60 used — the paper sweeps 1…60).
    pub usable_cores: usize,
    /// Number of sockets / NUMA domains.
    pub sockets: usize,
    /// Cache hierarchy.
    pub cache: CacheSpec,
    /// Installed RAM, bytes.
    pub ram_bytes: u64,
    /// Calibrated simulator cost model.
    pub perf: PerfParams,
}

impl Platform {
    /// NUMA topology for running `workers` workers on this platform
    /// (block placement over the sockets, HPX's default).
    pub fn numa_topology(&self, workers: usize) -> NumaTopology {
        // Workers only spill onto the second socket once the first is full,
        // mirroring block placement of one OS thread per core.
        let cores_per_socket = self.cores / self.sockets.max(1);
        let domains_needed = if cores_per_socket == 0 {
            1
        } else {
            workers.div_ceil(cores_per_socket).clamp(1, self.sockets)
        };
        NumaTopology::block(workers, domains_needed)
    }

    /// The core counts the paper sweeps on this platform (the legend of
    /// Fig. 3): powers of two up to the usable node size, plus the usable
    /// node size itself.
    pub fn core_sweep(&self) -> Vec<usize> {
        let mut v = vec![1usize];
        while *v.last().unwrap() * 2 < self.usable_cores {
            let next = v.last().unwrap() * 2;
            v.push(next);
        }
        if *v.last().unwrap() != self.usable_cores {
            v.push(self.usable_cores);
        }
        v
    }
}

/// Calibrated cost parameters for the simulator.
///
/// Every constant is a fit to measurements reported in the paper's text and
/// figures (see DESIGN.md "calibration targets" and EXPERIMENTS.md for the
/// fit residuals); none of them affects the *correctness* of the native
/// runtime, only the *shape fidelity* of simulated experiments.
///
/// ## Kernel model
///
/// A task updating `n` grid points executes for
///
/// ```text
/// t_exec(n) = task_fixed_ns + n · per_point(active, resident) · jitter
/// ```
///
/// where the per-point time follows a saturating aggregate-throughput
/// model: with `a` cores actively executing tasks, the node sustains
///
/// ```text
/// R(a) = aggregate_rate · (1 − exp(−a · r1 / aggregate_rate)),
/// r1   = 1 / ns_per_point
/// ```
///
/// grid-point updates per nanosecond in total, i.e. `per_point = a / R(a)`.
/// This single curve reproduces the measured strong-scaling profile of the
/// stencil on every platform (memory-bandwidth saturation on the Xeon
/// parts, ring/GDDR saturation on the Phi). Two refinements:
///
/// * **first-touch striping** — on runs with more than one worker, pages
///   are first-touched by many workers and therefore striped across both
///   memory controllers; a *lone* active task then streams at
///   `stripe_factor × r1`, which is how the paper's *negative* wait times
///   at very coarse grain arise (Eq. 5 compares against the 1-core run).
/// * **cache residency** — if a core revisits its partition before
///   touching more bytes than its cache share, the per-point time floors
///   at `ns_per_point_cached` instead (relevant at coarse grain on small
///   numbers of partitions).
///
/// ## Scheduler cost model
///
/// Queue probes, staged→pending conversion, dispatch and spawn each carry a
/// base cost, multiplied under parallelism by a contention factor
/// `1 + contention_alpha · (workers − 1)^contention_gamma` — the empirical
/// queue/steal contention collapse that produces the paper's ~90 % idle
/// rates for very fine grain at high core counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfParams {
    /// Fixed execution cost per task, ns — partition allocation, result
    /// construction, future bookkeeping executed *inside* the task body.
    pub task_fixed_ns: f64,
    /// Per-grid-point kernel time for a single unconstrained core
    /// streaming from memory, ns/point.
    pub ns_per_point: f64,
    /// Per-grid-point kernel time when the partition is resident in the
    /// core's cache share, ns/point (compute-bound floor).
    pub ns_per_point_cached: f64,
    /// Saturated aggregate node throughput, grid points per ns.
    pub aggregate_rate_pts_per_ns: f64,
    /// First-touch striping speedup available to a lone active stream on a
    /// multi-worker run (dimensionless ≥ 1).
    pub stripe_factor: f64,
    /// Bytes of memory traffic per grid point (for cache-fit reasoning).
    pub bytes_per_point: f64,
    /// Cost of probing one queue (pop attempt incl. counter bump), ns.
    pub queue_probe_ns: f64,
    /// Cost of converting a staged descriptor into a pending task
    /// (HPX: context allocation), ns.
    pub convert_ns: f64,
    /// Fixed dispatch + retire overhead per executed task (dequeue, state
    /// transitions, context switch back to the scheduler), ns.
    pub dispatch_ns: f64,
    /// Cost of creating one task descriptor at spawn time (charged to the
    /// worker running the spawning continuation), ns.
    pub spawn_ns: f64,
    /// Extra cost of taking work from another worker in the same NUMA
    /// domain, ns.
    pub steal_local_extra_ns: f64,
    /// Extra cost of taking work from a remote NUMA domain, ns.
    pub steal_remote_extra_ns: f64,
    /// Linear coefficient of the scheduler-contention multiplier.
    pub contention_alpha: f64,
    /// Exponent of the scheduler-contention multiplier.
    pub contention_gamma: f64,
    /// Log-normal execution-time jitter: sigma of ln(time). Produces the
    /// paper's COV < 3 % at coarse grain and larger COV at fine grain.
    pub jitter_sigma: f64,
}

impl PerfParams {
    /// Aggregate sustainable throughput with `active` cores executing
    /// tasks, grid points per ns (the saturating strong-scaling curve).
    pub fn aggregate_rate(&self, active: usize) -> f64 {
        let r1 = 1.0 / self.ns_per_point;
        let rs = self.aggregate_rate_pts_per_ns;
        rs * (1.0 - (-(active as f64) * r1 / rs).exp())
    }

    /// Effective per-point time for one of `active` concurrently executing
    /// tasks on a run configured with `workers` workers, ns/point.
    /// `resident` selects the cache-resident floor.
    pub fn per_point_ns(&self, active: usize, workers: usize, resident: bool) -> f64 {
        let active = active.max(1);
        if resident {
            return self.ns_per_point_cached;
        }
        let shared = active as f64 / self.aggregate_rate(active);
        // A lone stream on a multi-worker run benefits from first-touch
        // page striping across controllers.
        let lone_floor = if workers > 1 {
            self.ns_per_point / self.stripe_factor
        } else {
            self.ns_per_point
        };
        shared.max(0.0).max(self.ns_per_point_cached).min(
            // `shared` at active=1 equals ns_per_point; allow the striping
            // boost to undercut it, but never below the cached floor.
            if active == 1 {
                lone_floor.max(self.ns_per_point_cached)
            } else {
                f64::INFINITY
            },
        )
    }

    /// Scheduler-contention multiplier with `workers` workers.
    pub fn contention(&self, workers: usize) -> f64 {
        if workers <= 1 {
            1.0
        } else {
            1.0 + self.contention_alpha * ((workers - 1) as f64).powf(self.contention_gamma)
        }
    }

    /// A neutral, fast parameter set for unit tests: zero jitter,
    /// microsecond-scale costs, no contention surprises.
    pub fn test_default() -> Self {
        Self {
            task_fixed_ns: 1_000.0,
            ns_per_point: 1.0,
            ns_per_point_cached: 0.5,
            aggregate_rate_pts_per_ns: 4.0,
            stripe_factor: 1.0,
            bytes_per_point: 16.0,
            queue_probe_ns: 30.0,
            convert_ns: 200.0,
            dispatch_ns: 300.0,
            spawn_ns: 200.0,
            steal_local_extra_ns: 200.0,
            steal_remote_extra_ns: 600.0,
            contention_alpha: 0.0,
            contention_gamma: 1.0,
            jitter_sigma: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::presets;

    #[test]
    fn core_sweep_matches_fig3_legends() {
        let sb = presets::sandy_bridge();
        assert_eq!(sb.core_sweep(), vec![1, 2, 4, 8, 16]);
        let hw = presets::haswell();
        assert_eq!(hw.core_sweep(), vec![1, 2, 4, 8, 16, 28]);
        let phi = presets::xeon_phi();
        assert_eq!(phi.core_sweep(), vec![1, 2, 4, 8, 16, 32, 60]);
        let ib = presets::ivy_bridge();
        assert_eq!(ib.core_sweep(), vec![1, 2, 4, 8, 16, 20]);
    }

    #[test]
    fn numa_topology_fills_first_socket_first() {
        let hw = presets::haswell();
        let t = hw.numa_topology(8);
        // 8 workers fit in one 14-core socket → one domain.
        assert_eq!(t.domains(), 1);
        let t = hw.numa_topology(20);
        assert_eq!(t.domains(), 2);
        let t = hw.numa_topology(28);
        assert_eq!(t.domains(), 2);
        assert_eq!(t.workers_in(0).count(), 14);
    }

    #[test]
    fn single_socket_platform_is_flat() {
        let phi = presets::xeon_phi();
        let t = phi.numa_topology(60);
        assert_eq!(t.domains(), 1);
    }

    #[test]
    fn aggregate_rate_saturates() {
        let p = presets::haswell().perf;
        let r1 = p.aggregate_rate(1);
        let r8 = p.aggregate_rate(8);
        let r28 = p.aggregate_rate(28);
        assert!(r1 < r8 && r8 < r28);
        assert!(r28 <= p.aggregate_rate_pts_per_ns);
        // Adding cores past saturation barely helps.
        let r16 = p.aggregate_rate(16);
        assert!((r28 - r16) / r16 < 0.10);
    }

    #[test]
    fn per_point_time_grows_with_contention() {
        let p = presets::haswell().perf;
        let one = p.per_point_ns(1, 1, false);
        let many = p.per_point_ns(28, 28, false);
        assert!(
            many > 2.0 * one,
            "28-way sharing must inflate per-point time"
        );
    }

    #[test]
    fn lone_stream_on_parallel_run_is_faster_than_single_core_run() {
        // The negative-wait-time mechanism (Eq. 5 at very coarse grain).
        let p = presets::haswell().perf;
        let td1 = p.per_point_ns(1, 1, false);
        let lone = p.per_point_ns(1, 28, false);
        assert!(lone < td1);
    }

    #[test]
    fn cached_floor_is_fastest() {
        let p = presets::haswell().perf;
        let cached = p.per_point_ns(4, 28, true);
        assert_eq!(cached, p.ns_per_point_cached);
        assert!(cached <= p.per_point_ns(4, 28, false));
    }

    #[test]
    fn contention_multiplier_is_monotone() {
        let p = presets::xeon_phi().perf;
        assert_eq!(p.contention(1), 1.0);
        assert!(p.contention(16) > p.contention(2));
        assert!(p.contention(60) > p.contention(16));
    }
}
