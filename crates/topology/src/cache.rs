//! Cache hierarchy description (the cache rows of Table I).

/// Cache sizes of one platform, per Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSpec {
    /// L1 data cache per core, bytes.
    pub l1d_bytes: u64,
    /// L1 instruction cache per core, bytes.
    pub l1i_bytes: u64,
    /// L2 cache per core, bytes.
    pub l2_bytes: u64,
    /// Shared last-level cache per socket, bytes. Zero on parts without a
    /// shared cache (Xeon Phi).
    pub llc_bytes_per_socket: u64,
}

impl CacheSpec {
    /// Convenience constructor from the units Table I uses.
    pub const fn new(l1d_kb: u64, l1i_kb: u64, l2_kb: u64, llc_mb_per_socket: u64) -> Self {
        Self {
            l1d_bytes: l1d_kb * 1024,
            l1i_bytes: l1i_kb * 1024,
            l2_bytes: l2_kb * 1024,
            llc_bytes_per_socket: llc_mb_per_socket * 1024 * 1024,
        }
    }

    /// Total cache capacity *one core* can reasonably keep resident when
    /// `cores_per_socket` cores are active on its socket: its private L2
    /// plus an even share of the socket's LLC. This is the "cache share"
    /// the simulator compares reuse distances against.
    pub fn share_per_core(&self, active_cores_on_socket: u64) -> u64 {
        let llc_share = self
            .llc_bytes_per_socket
            .checked_div(active_cores_on_socket)
            .unwrap_or(self.llc_bytes_per_socket);
        self.l2_bytes + llc_share
    }

    /// Total capacity across a whole machine of `sockets` sockets and
    /// `cores` cores (all private L2s plus all LLCs).
    pub fn machine_capacity(&self, sockets: u64, cores: u64) -> u64 {
        self.l2_bytes * cores + self.llc_bytes_per_socket * sockets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_haswell_numbers() {
        // Haswell row: 32 KB L1(D,I), 256 KB L2, 35 MB shared.
        let c = CacheSpec::new(32, 32, 256, 35);
        assert_eq!(c.l1d_bytes, 32 * 1024);
        assert_eq!(c.l2_bytes, 256 * 1024);
        assert_eq!(c.llc_bytes_per_socket, 35 * 1024 * 1024);
    }

    #[test]
    fn share_per_core_divides_llc() {
        let c = CacheSpec::new(32, 32, 256, 35);
        let one = c.share_per_core(1);
        let fourteen = c.share_per_core(14);
        assert_eq!(one, 256 * 1024 + 35 * 1024 * 1024);
        assert_eq!(fourteen, 256 * 1024 + 35 * 1024 * 1024 / 14);
        assert!(one > fourteen);
    }

    #[test]
    fn share_per_core_zero_active_means_full_llc() {
        let c = CacheSpec::new(32, 32, 256, 20);
        assert_eq!(c.share_per_core(0), 256 * 1024 + 20 * 1024 * 1024);
    }

    #[test]
    fn phi_has_no_llc() {
        let c = CacheSpec::new(32, 32, 512, 0);
        assert_eq!(c.llc_bytes_per_socket, 0);
        assert_eq!(c.share_per_core(60), 512 * 1024);
    }

    #[test]
    fn machine_capacity_sums() {
        let c = CacheSpec::new(32, 32, 256, 35);
        // 2 sockets x 14 cores (Haswell node).
        assert_eq!(
            c.machine_capacity(2, 28),
            256 * 1024 * 28 + 2 * 35 * 1024 * 1024
        );
    }
}
