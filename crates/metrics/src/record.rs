//! One experiment sample: configuration plus every raw count needed to
//! evaluate Eqs. 1–6, produced identically by the native runtime and the
//! simulator.

use crate::equations;
use grain_runtime::Runtime;
use grain_sim::SimReport;
use grain_stencil::StencilParams;

/// Which engine produced a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The native threaded runtime, measured in real time.
    Native,
    /// The discrete-event simulator, measured in virtual time.
    Simulated,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineKind::Native => "native",
            EngineKind::Simulated => "sim",
        })
    }
}

/// Identification of a run: what was executed, where, how parallel.
///
/// The shape fields (`nx`, `np`, `nt`) were named for the stencil, but
/// any leveled workload maps onto them: `nx` is the task-size knob
/// (grid points per partition, or busy-work iterations per task), `np`
/// the graph width (partitions, or lanes), `nt` the level count (time
/// steps, or graph depth). [`RunMeta::workload`] builds one explicitly.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeta {
    /// Engine that produced the sample.
    pub engine: EngineKind,
    /// Platform name ("Haswell", "host", …).
    pub platform: String,
    /// Worker (core) count `n_c`.
    pub workers: usize,
    /// Grid points per partition (task size knob).
    pub nx: usize,
    /// Number of partitions.
    pub np: usize,
    /// Time steps.
    pub nt: usize,
}

/// One sample's raw measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Run identification.
    pub meta: RunMeta,
    /// Wall-clock execution time, seconds (virtual for the simulator).
    pub wall_s: f64,
    /// Tasks completed.
    pub tasks: u64,
    /// Thread phases executed.
    pub phases: u64,
    /// Σ t_exec, ns.
    pub sum_exec_ns: u64,
    /// Σ t_func, ns.
    pub sum_func_ns: u64,
    /// Pending-queue probes.
    pub pending_accesses: u64,
    /// Pending-queue probes finding nothing.
    pub pending_misses: u64,
    /// Staged-queue probes.
    pub staged_accesses: u64,
    /// Staged-queue probes finding nothing.
    pub staged_misses: u64,
    /// Tasks stolen across queues.
    pub stolen: u64,
    /// Staged→pending conversions.
    pub converted: u64,
}

impl RunMeta {
    /// Meta for a native run of an arbitrary leveled workload: `grain`
    /// is the task-size knob, `width` the level width, `levels` the
    /// graph depth.
    pub fn workload(
        platform: &str,
        workers: usize,
        grain: usize,
        width: usize,
        levels: usize,
    ) -> Self {
        Self {
            engine: EngineKind::Native,
            platform: platform.to_owned(),
            workers,
            nx: grain,
            np: width,
            nt: levels,
        }
    }
}

impl RunRecord {
    /// Build a record from a simulator report.
    pub fn from_sim(report: &SimReport, platform: &str, params: &StencilParams) -> Self {
        Self {
            meta: RunMeta {
                engine: EngineKind::Simulated,
                platform: platform.to_owned(),
                workers: report.workers,
                nx: params.nx,
                np: params.np,
                nt: params.nt,
            },
            wall_s: report.wall_seconds(),
            tasks: report.tasks,
            phases: report.phases,
            sum_exec_ns: report.sum_exec_ns,
            sum_func_ns: report.sum_func_ns,
            pending_accesses: report.pending_accesses,
            pending_misses: report.pending_misses,
            staged_accesses: report.staged_accesses,
            staged_misses: report.staged_misses,
            stolen: report.stolen,
            converted: report.converted,
        }
    }

    /// Build a record from a native runtime's counters after a stencil
    /// run that took `wall_s` seconds. Counters should have been reset
    /// before the measured region.
    pub fn from_native(rt: &Runtime, wall_s: f64, params: &StencilParams) -> Self {
        Self::from_counters(
            rt,
            wall_s,
            RunMeta {
                engine: EngineKind::Native,
                platform: "host".to_owned(),
                workers: rt.num_workers(),
                nx: params.nx,
                np: params.np,
                nt: params.nt,
            },
        )
    }

    /// Build a record for an arbitrary workload from a native runtime's
    /// counters: the caller supplies the [`RunMeta`] naming what ran
    /// (see [`RunMeta::workload`]). Counters should have been reset
    /// before the measured region. This is how non-stencil workloads
    /// (taskbench graph families) emit Eqs. 1–6 through the same record
    /// type as the paper's experiments.
    pub fn from_counters(rt: &Runtime, wall_s: f64, meta: RunMeta) -> Self {
        let c = rt.counters();
        Self {
            meta,
            wall_s,
            tasks: c.tasks.sum(),
            phases: c.phases.sum(),
            sum_exec_ns: c.exec_ns.sum(),
            sum_func_ns: c.func_ns.sum(),
            pending_accesses: c.pending_accesses.sum(),
            pending_misses: c.pending_misses.sum(),
            staged_accesses: c.staged_accesses.sum(),
            staged_misses: c.staged_misses.sum(),
            stolen: c.stolen.sum(),
            converted: c.converted.sum(),
        }
    }

    /// Eq. 1 for this sample.
    pub fn idle_rate(&self) -> f64 {
        equations::idle_rate(self.sum_exec_ns, self.sum_func_ns)
    }

    /// Eq. 2 for this sample, ns.
    pub fn task_duration_ns(&self) -> f64 {
        equations::task_duration_ns(self.sum_exec_ns, self.tasks)
    }

    /// Eq. 3 for this sample, ns.
    pub fn task_overhead_ns(&self) -> f64 {
        equations::task_overhead_ns(self.sum_exec_ns, self.sum_func_ns, self.tasks)
    }

    /// Eq. 4 for this sample, seconds.
    pub fn thread_management_s(&self) -> f64 {
        equations::thread_management_s(self.task_overhead_ns(), self.tasks, self.meta.workers)
    }

    /// Eq. 6 for this sample given the matching 1-core task duration, s.
    pub fn wait_time_s(&self, td1_ns: f64) -> f64 {
        equations::wait_time_s(
            self.task_duration_ns(),
            td1_ns,
            self.tasks,
            self.meta.workers,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_sim::{simulate, SimConfig};
    use grain_stencil::stencil_workload;
    use grain_topology::presets;

    #[test]
    fn from_sim_copies_everything() {
        let params = StencilParams::new(1_000, 20, 5);
        let wl = stencil_workload(&params);
        let report = simulate(&presets::haswell(), 4, &wl, &SimConfig::default());
        let rec = RunRecord::from_sim(&report, "Haswell", &params);
        assert_eq!(rec.meta.engine, EngineKind::Simulated);
        assert_eq!(rec.meta.workers, 4);
        assert_eq!(rec.tasks, 100);
        assert_eq!(rec.meta.nx, 1_000);
        assert!((rec.wall_s - report.wall_seconds()).abs() < 1e-15);
        assert!((rec.idle_rate() - report.idle_rate()).abs() < 1e-15);
        assert!((rec.task_duration_ns() - report.task_duration_ns()).abs() < 1e-12);
    }

    #[test]
    fn from_native_reads_counters() {
        let params = StencilParams::new(64, 8, 4);
        let rt = Runtime::with_workers(2);
        let t0 = std::time::Instant::now();
        let _ = grain_stencil::run_futurized(&rt, &params);
        let rec = RunRecord::from_native(&rt, t0.elapsed().as_secs_f64(), &params);
        assert_eq!(rec.meta.engine, EngineKind::Native);
        assert_eq!(rec.tasks as usize, params.total_tasks());
        assert!(rec.sum_func_ns >= rec.sum_exec_ns);
        assert!(rec.wall_s > 0.0);
    }

    #[test]
    fn derived_metrics_are_consistent() {
        let params = StencilParams::new(500, 10, 4);
        let wl = stencil_workload(&params);
        let report = simulate(&presets::sandy_bridge(), 2, &wl, &SimConfig::default());
        let rec = RunRecord::from_sim(&report, "Sandy Bridge", &params);
        // to + td share Σ across the same task count.
        let reconstructed = (rec.task_duration_ns() + rec.task_overhead_ns()) * rec.tasks as f64;
        assert!((reconstructed - rec.sum_func_ns as f64).abs() < 1.0);
        // Eq. 4 in seconds is bounded by wall × workers.
        assert!(rec.thread_management_s() <= rec.wall_s * rec.meta.workers as f64 + 1e-9);
    }

    #[test]
    fn engine_kind_display() {
        assert_eq!(EngineKind::Native.to_string(), "native");
        assert_eq!(EngineKind::Simulated.to_string(), "sim");
    }
}
