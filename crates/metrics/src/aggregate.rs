//! Aggregation over repeated samples: mean, standard deviation and COV of
//! every metric, as the paper reports (§II: "we make multiple runs and
//! calculate means and standard deviation of these counts"; §IV discusses
//! the COVs).

use crate::record::RunRecord;
use grain_counters::SampleStats;

/// Statistics of every metric of one experimental configuration, built
/// from its repeated samples.
#[derive(Debug, Clone, Default)]
pub struct Aggregate {
    /// Samples accumulated.
    pub samples: u64,
    /// Execution time, seconds.
    pub wall_s: SampleStats,
    /// Idle-rate (Eq. 1).
    pub idle_rate: SampleStats,
    /// Task duration t_d, ns (Eq. 2).
    pub task_duration_ns: SampleStats,
    /// Task overhead t_o, ns (Eq. 3).
    pub task_overhead_ns: SampleStats,
    /// Thread-management overhead T_o, seconds (Eq. 4).
    pub thread_management_s: SampleStats,
    /// Pending-queue accesses.
    pub pending_accesses: SampleStats,
    /// Pending-queue misses.
    pub pending_misses: SampleStats,
    /// Staged-queue accesses.
    pub staged_accesses: SampleStats,
    /// Tasks executed.
    pub tasks: SampleStats,
    /// Tasks stolen.
    pub stolen: SampleStats,
}

impl Aggregate {
    /// Empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one sample in.
    pub fn push(&mut self, r: &RunRecord) {
        self.samples += 1;
        self.wall_s.push(r.wall_s);
        self.idle_rate.push(r.idle_rate());
        self.task_duration_ns.push(r.task_duration_ns());
        self.task_overhead_ns.push(r.task_overhead_ns());
        self.thread_management_s.push(r.thread_management_s());
        self.pending_accesses.push(r.pending_accesses as f64);
        self.pending_misses.push(r.pending_misses as f64);
        self.staged_accesses.push(r.staged_accesses as f64);
        self.tasks.push(r.tasks as f64);
        self.stolen.push(r.stolen as f64);
    }

    /// Build from a slice of samples.
    pub fn from_records(records: &[RunRecord]) -> Self {
        let mut a = Self::new();
        for r in records {
            a.push(r);
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EngineKind, RunMeta};

    fn record(wall: f64, exec: u64, func: u64) -> RunRecord {
        RunRecord {
            meta: RunMeta {
                engine: EngineKind::Simulated,
                platform: "test".into(),
                workers: 4,
                nx: 100,
                np: 10,
                nt: 5,
            },
            wall_s: wall,
            tasks: 50,
            phases: 50,
            sum_exec_ns: exec,
            sum_func_ns: func,
            pending_accesses: 100,
            pending_misses: 40,
            staged_accesses: 80,
            staged_misses: 30,
            stolen: 5,
            converted: 50,
        }
    }

    #[test]
    fn aggregates_means_and_cov() {
        let records = vec![
            record(1.0, 500, 1_000),
            record(2.0, 500, 1_000),
            record(3.0, 500, 1_000),
        ];
        let a = Aggregate::from_records(&records);
        assert_eq!(a.samples, 3);
        assert!((a.wall_s.mean() - 2.0).abs() < 1e-12);
        assert!((a.wall_s.stddev() - 1.0).abs() < 1e-12);
        assert!((a.wall_s.cov() - 0.5).abs() < 1e-12);
        // Constant metrics have zero COV.
        assert_eq!(a.idle_rate.cov(), 0.0);
        assert!((a.idle_rate.mean() - 0.5).abs() < 1e-12);
        assert_eq!(a.tasks.mean(), 50.0);
    }

    #[test]
    fn empty_aggregate_is_zeroed() {
        let a = Aggregate::new();
        assert_eq!(a.samples, 0);
        assert_eq!(a.wall_s.mean(), 0.0);
    }
}
