//! The granularity-sweep driver: the paper's experimental methodology
//! (§II) as a reusable harness.
//!
//! For each partition size in a grid and each core count, run the stencil
//! `samples` times, aggregate mean/stddev/COV, and pair every cell with
//! the matching 1-core task duration `t_d1` so Eqs. 5/6 (wait time) can be
//! evaluated. Works with either execution engine.

use crate::aggregate::Aggregate;
use crate::record::RunRecord;
use grain_runtime::{Runtime, RuntimeConfig};
use grain_sim::{simulate, SimConfig, SimWorkload};
use grain_stencil::{run_futurized, stencil_workload, StencilParams};
use grain_topology::Platform;
use std::cell::RefCell;
use std::rc::Rc;

/// Anything that can run the stencil at a given granularity and core
/// count and report the paper's counters.
pub trait StencilEngine {
    /// Label for reports ("sim:Haswell", "native:host").
    fn name(&self) -> String;
    /// Largest meaningful worker count.
    fn max_workers(&self) -> usize;
    /// Problem shape for a partition size.
    fn params_for(&self, nx: usize) -> StencilParams;
    /// Execute one sample.
    fn run(&self, nx: usize, workers: usize, sample: usize) -> RunRecord;
}

/// The simulator engine: the paper's platforms, virtual time.
pub struct SimEngine {
    /// Platform model (Table I preset or custom).
    pub platform: Platform,
    /// Total grid points (the paper: 100 M).
    pub total_points: usize,
    /// Time steps (the paper: 50, or 5 on the Xeon Phi).
    pub steps: usize,
    /// Idle sweep backoff (see [`SimConfig`]).
    pub idle_backoff: f64,
    /// Base RNG seed; sample `i` uses `seed_base + i`.
    pub seed_base: u64,
    workload_cache: RefCell<Option<(usize, Rc<SimWorkload>)>>,
}

impl SimEngine {
    /// The paper's configuration for `platform`: 100 M grid points, 50
    /// steps (5 on the Xeon Phi).
    pub fn paper(platform: Platform) -> Self {
        let steps = if platform.name == "Xeon Phi" { 5 } else { 50 };
        Self::scaled(platform, 100_000_000, steps)
    }

    /// A custom problem size (for quick runs and tests).
    pub fn scaled(platform: Platform, total_points: usize, steps: usize) -> Self {
        Self {
            platform,
            total_points,
            steps,
            idle_backoff: SimConfig::default().idle_backoff,
            seed_base: 1_000,
            workload_cache: RefCell::new(None),
        }
    }

    fn workload(&self, nx: usize) -> Rc<SimWorkload> {
        let mut cache = self.workload_cache.borrow_mut();
        if let Some((cached_nx, wl)) = cache.as_ref() {
            if *cached_nx == nx {
                return Rc::clone(wl);
            }
        }
        let wl = Rc::new(stencil_workload(&self.params_for(nx)));
        *cache = Some((nx, Rc::clone(&wl)));
        wl
    }
}

impl StencilEngine for SimEngine {
    fn name(&self) -> String {
        format!("sim:{}", self.platform.name)
    }

    fn max_workers(&self) -> usize {
        self.platform.usable_cores
    }

    fn params_for(&self, nx: usize) -> StencilParams {
        StencilParams::for_total(self.total_points, nx, self.steps)
    }

    fn run(&self, nx: usize, workers: usize, sample: usize) -> RunRecord {
        let params = self.params_for(nx);
        let wl = self.workload(nx);
        let cfg = SimConfig {
            seed: self
                .seed_base
                .wrapping_add(sample as u64)
                .wrapping_add((nx as u64).wrapping_mul(0x9E37_79B9)),
            idle_backoff: self.idle_backoff,
            ..SimConfig::default()
        };
        let report = simulate(&self.platform, workers, &wl, &cfg);
        RunRecord::from_sim(&report, &self.platform.name, &params)
    }
}

/// The native engine: real OS threads on the host, real time.
pub struct NativeEngine {
    /// Total grid points.
    pub total_points: usize,
    /// Time steps.
    pub steps: usize,
}

impl NativeEngine {
    /// Native runs scaled to a laptop-sized problem.
    pub fn scaled(total_points: usize, steps: usize) -> Self {
        Self {
            total_points,
            steps,
        }
    }
}

impl StencilEngine for NativeEngine {
    fn name(&self) -> String {
        "native:host".to_owned()
    }

    fn max_workers(&self) -> usize {
        // Worker threads are OS threads, so oversubscription is
        // functionally sound (timing fidelity then degrades gracefully);
        // allow a generous factor over the physical cores.
        grain_topology::host::available_cores() * 8
    }

    fn params_for(&self, nx: usize) -> StencilParams {
        StencilParams::for_total(self.total_points, nx, self.steps)
    }

    fn run(&self, nx: usize, workers: usize, _sample: usize) -> RunRecord {
        let params = self.params_for(nx);
        let rt = Runtime::new(RuntimeConfig::with_workers(workers));
        let t0 = std::time::Instant::now();
        let _ = run_futurized(&rt, &params);
        let wall = t0.elapsed().as_secs_f64();
        RunRecord::from_native(&rt, wall, &params)
    }
}

/// One (partition size, core count) cell of a sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Partition size.
    pub nx: usize,
    /// Partition count.
    pub np: usize,
    /// Core count.
    pub workers: usize,
    /// Aggregated samples.
    pub agg: Aggregate,
    /// Mean 1-core task duration for this `nx` (Eq. 5 baseline), ns.
    pub td1_ns: f64,
}

impl SweepCell {
    /// Eq. 5 — mean wait time per task, ns.
    pub fn wait_per_task_ns(&self) -> f64 {
        crate::equations::wait_per_task_ns(self.agg.task_duration_ns.mean(), self.td1_ns)
    }

    /// Eq. 6 — mean wait time per core, seconds.
    pub fn wait_time_s(&self) -> f64 {
        crate::equations::wait_time_s(
            self.agg.task_duration_ns.mean(),
            self.td1_ns,
            self.agg.tasks.mean() as u64,
            self.workers,
        )
    }

    /// Eq. 4 — mean thread-management overhead, seconds.
    pub fn thread_management_s(&self) -> f64 {
        self.agg.thread_management_s.mean()
    }

    /// Combined cost (Fig. 7/8's "HPX-TM & WT" curve), seconds.
    pub fn combined_cost_s(&self) -> f64 {
        self.thread_management_s() + self.wait_time_s()
    }
}

/// Results of a full granularity × core-count sweep.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Engine label.
    pub engine: String,
    /// Partition sizes swept.
    pub grid: Vec<usize>,
    /// Core counts swept.
    pub workers: Vec<usize>,
    /// Samples per cell.
    pub samples: usize,
    /// All cells, ordered by (grid index, worker index).
    pub cells: Vec<SweepCell>,
}

impl Sweep {
    /// Cell for a given partition size and core count.
    pub fn cell(&self, nx: usize, workers: usize) -> Option<&SweepCell> {
        self.cells
            .iter()
            .find(|c| c.nx == nx && c.workers == workers)
    }

    /// All cells with the given core count, in grid order — one series
    /// (line) of a paper figure.
    pub fn series(&self, workers: usize) -> Vec<&SweepCell> {
        self.grid
            .iter()
            .filter_map(|&nx| self.cell(nx, workers))
            .collect()
    }

    /// The partition size minimizing mean execution time for a core
    /// count.
    pub fn best_nx(&self, workers: usize) -> Option<(usize, f64)> {
        self.series(workers)
            .into_iter()
            .map(|c| (c.nx, c.agg.wall_s.mean()))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Export every cell as CSV (one row per `nx × workers` cell, every
    /// aggregated metric with mean and COV) for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "engine,nx,np,workers,samples,exec_mean_s,exec_cov,idle_rate,             td_ns,td1_ns,to_ns,tm_s,wait_per_task_ns,wait_s,             pending_accesses,pending_misses,tasks,stolen
",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}
",
                self.engine,
                c.nx,
                c.np,
                c.workers,
                c.agg.samples,
                c.agg.wall_s.mean(),
                c.agg.wall_s.cov(),
                c.agg.idle_rate.mean(),
                c.agg.task_duration_ns.mean(),
                c.td1_ns,
                c.agg.task_overhead_ns.mean(),
                c.thread_management_s(),
                c.wait_per_task_ns(),
                c.wait_time_s(),
                c.agg.pending_accesses.mean(),
                c.agg.pending_misses.mean(),
                c.agg.tasks.mean(),
                c.agg.stolen.mean(),
            ));
        }
        out
    }
}

/// Run a sweep: every `nx` × `workers` cell, `samples` times each, plus
/// the 1-core baseline per `nx` needed by the wait-time metrics.
/// `progress` (if given) receives one line per completed cell.
pub fn run_sweep(
    engine: &dyn StencilEngine,
    grid: &[usize],
    workers: &[usize],
    samples: usize,
    progress: Option<&dyn Fn(&str)>,
) -> Sweep {
    assert!(samples >= 1);
    let mut cells = Vec::new();
    for &nx in grid {
        let np = engine.params_for(nx).np;

        // 1-core baseline for t_d1 (reused if 1 is part of the sweep).
        let base_records: Vec<RunRecord> =
            (0..samples.min(3)).map(|s| engine.run(nx, 1, s)).collect();
        let td1_ns = Aggregate::from_records(&base_records)
            .task_duration_ns
            .mean();

        for &w in workers {
            if w > engine.max_workers() {
                continue;
            }
            let agg = if w == 1 {
                Aggregate::from_records(&base_records)
            } else {
                let records: Vec<RunRecord> = (0..samples).map(|s| engine.run(nx, w, s)).collect();
                Aggregate::from_records(&records)
            };
            if let Some(p) = progress {
                p(&format!(
                    "{} nx={nx} np={np} cores={w}: exec {:.3}s idle-rate {:.1}%",
                    engine.name(),
                    agg.wall_s.mean(),
                    agg.idle_rate.mean() * 100.0
                ));
            }
            cells.push(SweepCell {
                nx,
                np,
                workers: w,
                agg,
                td1_ns,
            });
        }
    }
    Sweep {
        engine: engine.name(),
        grid: grid.to_vec(),
        workers: workers.to_vec(),
        samples,
        cells,
    }
}

/// Partition-size grids.
pub mod grids {
    /// The paper's sweep range (§II: 160 → 100 M points), restricted to
    /// the region its figures plot (10³ → 10⁸) with the specific sizes it
    /// names (12 500, 31 250, 40 000, 78 125, …), log-spaced.
    pub fn paper() -> Vec<usize> {
        vec![
            1_000,
            1_600,
            2_500,
            4_000,
            6_250,
            10_000,
            12_500,
            20_000,
            31_250,
            40_000,
            50_000,
            78_125,
            100_000,
            160_000,
            250_000,
            400_000,
            625_000,
            1_000_000,
            1_600_000,
            2_500_000,
            4_000_000,
            6_250_000,
            10_000_000,
            25_000_000,
            50_000_000,
            100_000_000,
        ]
    }

    /// A fast grid for smoke runs: one size per decade.
    pub fn quick() -> Vec<usize> {
        vec![1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000]
    }

    /// The fine-to-medium window of Fig. 6 (10 000 → 90 000).
    pub fn fig6_window() -> Vec<usize> {
        vec![
            10_000, 20_000, 30_000, 40_000, 50_000, 60_000, 70_000, 80_000, 90_000,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_topology::presets;

    fn tiny_sim() -> SimEngine {
        // 200k points, 4 steps: fast but non-trivial.
        SimEngine::scaled(presets::haswell(), 200_000, 4)
    }

    #[test]
    fn sweep_produces_all_cells() {
        let engine = tiny_sim();
        let sweep = run_sweep(&engine, &[10_000, 100_000], &[1, 4], 2, None);
        assert_eq!(sweep.cells.len(), 4);
        assert!(sweep.cell(10_000, 4).is_some());
        assert!(sweep.cell(999, 4).is_none());
        assert_eq!(sweep.series(4).len(), 2);
    }

    #[test]
    fn sweep_skips_impossible_core_counts() {
        let engine = tiny_sim();
        let sweep = run_sweep(&engine, &[100_000], &[1, 4, 512], 1, None);
        assert_eq!(sweep.cells.len(), 2, "512 > 28 usable cores is skipped");
    }

    #[test]
    fn td1_baseline_is_positive_and_shared() {
        let engine = tiny_sim();
        let sweep = run_sweep(&engine, &[50_000], &[1, 2, 4], 2, None);
        let tds: Vec<f64> = sweep.cells.iter().map(|c| c.td1_ns).collect();
        assert!(tds.iter().all(|&t| t > 0.0));
        assert!(tds.windows(2).all(|w| w[0] == w[1]), "same nx → same td1");
    }

    #[test]
    fn parallel_cells_run_faster_than_serial() {
        let engine = tiny_sim();
        let sweep = run_sweep(&engine, &[10_000], &[1, 8], 1, None);
        let serial = sweep.cell(10_000, 1).unwrap().agg.wall_s.mean();
        let parallel = sweep.cell(10_000, 8).unwrap().agg.wall_s.mean();
        assert!(parallel < serial);
    }

    #[test]
    fn best_nx_prefers_medium_grain() {
        // With a very fine option, a medium option and a starving-coarse
        // option, the medium one must win at 8 cores.
        let engine = SimEngine::scaled(presets::haswell(), 1_000_000, 4);
        let sweep = run_sweep(&engine, &[200, 20_000, 1_000_000], &[8], 1, None);
        let (best, _) = sweep.best_nx(8).unwrap();
        assert_eq!(best, 20_000, "medium grain should minimize time");
    }

    #[test]
    fn native_engine_measures_real_runs() {
        let engine = NativeEngine::scaled(20_000, 3);
        let rec = engine.run(1_000, 2, 0);
        assert_eq!(rec.meta.nx, 1_000);
        assert_eq!(rec.tasks as usize, 20 * 3);
        assert!(rec.wall_s > 0.0);
    }

    #[test]
    fn csv_export_has_all_cells() {
        let engine = tiny_sim();
        let sweep = run_sweep(&engine, &[10_000, 100_000], &[1, 4], 1, None);
        let csv = sweep.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 4, "header + one line per cell");
        assert!(lines[0].starts_with("engine,nx,np,workers"));
        assert!(lines[1].contains("sim:Haswell"));
        // Every data row has the full column count.
        let cols = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), cols);
        }
    }

    #[test]
    fn grids_are_sorted_and_in_range() {
        for g in [grids::paper(), grids::quick(), grids::fig6_window()] {
            assert!(g.windows(2).all(|w| w[0] < w[1]));
            assert!(*g.first().unwrap() >= 160);
            assert!(*g.last().unwrap() <= 100_000_000);
        }
    }

    #[test]
    fn progress_callback_fires_per_cell() {
        let engine = tiny_sim();
        let count = std::cell::Cell::new(0usize);
        let cb = |_line: &str| count.set(count.get() + 1);
        run_sweep(&engine, &[10_000], &[1, 2], 1, Some(&cb));
        assert_eq!(count.get(), 2);
    }
}
