//! The paper's metrics, Eqs. 1–6 (§II-A), as pure functions.
//!
//! All times are nanoseconds unless the name says seconds. `n_t` is the
//! number of tasks executed, `n_c` the number of cores (workers).

/// Eq. 1 — idle-rate: `(Σt_func − Σt_exec) / Σt_func`, clamped to [0, 1].
pub fn idle_rate(sum_exec_ns: u64, sum_func_ns: u64) -> f64 {
    if sum_func_ns == 0 {
        return 0.0;
    }
    let exec = sum_exec_ns.min(sum_func_ns);
    (sum_func_ns - exec) as f64 / sum_func_ns as f64
}

/// Eq. 2 — average task duration `t_d = Σt_exec / n_t`, ns.
pub fn task_duration_ns(sum_exec_ns: u64, tasks: u64) -> f64 {
    if tasks == 0 {
        0.0
    } else {
        sum_exec_ns as f64 / tasks as f64
    }
}

/// Eq. 3 — average task overhead `t_o = (Σt_func − Σt_exec) / n_t`, ns.
pub fn task_overhead_ns(sum_exec_ns: u64, sum_func_ns: u64, tasks: u64) -> f64 {
    if tasks == 0 {
        return 0.0;
    }
    let exec = sum_exec_ns.min(sum_func_ns);
    (sum_func_ns - exec) as f64 / tasks as f64
}

/// Eq. 4 — HPX-thread management overhead per core,
/// `T_o = t_o · n_t / n_c`, in seconds (comparable to execution time).
pub fn thread_management_s(task_overhead_ns: f64, tasks: u64, cores: usize) -> f64 {
    if cores == 0 {
        return 0.0;
    }
    task_overhead_ns * tasks as f64 / cores as f64 * 1e-9
}

/// Eq. 5 — wait time per task `t_w = t_d − t_d1`, ns. May be negative
/// (§II-A: caching effects can make the one-core duration larger).
pub fn wait_per_task_ns(td_ns: f64, td1_ns: f64) -> f64 {
    td_ns - td1_ns
}

/// Eq. 6 — wait time per core `T_w = (t_d − t_d1) · n_t / n_c`, seconds.
pub fn wait_time_s(td_ns: f64, td1_ns: f64, tasks: u64, cores: usize) -> f64 {
    if cores == 0 {
        return 0.0;
    }
    (td_ns - td1_ns) * tasks as f64 / cores as f64 * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_idle_rate() {
        assert_eq!(idle_rate(600, 1000), 0.4);
        assert_eq!(idle_rate(0, 0), 0.0);
        assert_eq!(idle_rate(100, 100), 0.0);
        // Skew clamps rather than going negative.
        assert_eq!(idle_rate(150, 100), 0.0);
    }

    #[test]
    fn eq2_task_duration() {
        assert_eq!(task_duration_ns(1000, 4), 250.0);
        assert_eq!(task_duration_ns(1000, 0), 0.0);
    }

    #[test]
    fn eq3_task_overhead() {
        assert_eq!(task_overhead_ns(600, 1000, 4), 100.0);
        assert_eq!(task_overhead_ns(0, 0, 0), 0.0);
    }

    #[test]
    fn eq4_scales_by_tasks_over_cores() {
        // 1 µs overhead × 1e6 tasks / 4 cores = 0.25 s.
        assert!((thread_management_s(1_000.0, 1_000_000, 4) - 0.25).abs() < 1e-12);
        assert_eq!(thread_management_s(1.0, 1, 0), 0.0);
    }

    #[test]
    fn eq5_can_be_negative() {
        assert_eq!(wait_per_task_ns(80.0, 100.0), -20.0);
        assert_eq!(wait_per_task_ns(100.0, 80.0), 20.0);
    }

    #[test]
    fn eq6_matches_eq5_scaled() {
        let tw = wait_time_s(2_000.0, 1_000.0, 1_000_000, 8);
        assert!((tw - 0.125).abs() < 1e-12);
        let neg = wait_time_s(500.0, 1_000.0, 1_000_000, 8);
        assert!(neg < 0.0);
    }
}
