//! # grain-metrics — the paper's methodology as a library
//!
//! Implements §II of the paper: the performance metrics (Eqs. 1–6), the
//! repeated-sample statistics (mean / standard deviation / COV), and the
//! granularity-sweep harness that drives either execution engine — the
//! native runtime (`grain-runtime`) or the platform simulator
//! (`grain-sim`) — across partition sizes and core counts.
//!
//! * [`equations`] — Eq. 1 (idle-rate), Eq. 2 (task duration), Eq. 3
//!   (task overhead), Eq. 4 (thread-management overhead), Eq. 5/6 (wait
//!   time), as pure functions.
//! * [`record::RunRecord`] — one sample: configuration + raw counters,
//!   built identically from both engines.
//! * [`aggregate::Aggregate`] — per-metric mean/stddev/COV over samples.
//! * [`sweep`] — the sweep driver ([`sweep::run_sweep`]), the two engines
//!   ([`sweep::SimEngine`], [`sweep::NativeEngine`]) and the partition
//!   grids the paper uses.
//! * [`table`] — aligned-table and CSV rendering for the bench binaries.
//! * [`benchjson`] — the `BENCH_*.json` perf-trajectory snapshots every
//!   bench binary appends under one `{bench, commit, config, metrics}`
//!   schema.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod benchjson;
pub mod equations;
pub mod record;
pub mod sweep;
pub mod table;

pub use aggregate::Aggregate;
pub use benchjson::{append_snapshot, BenchSnapshot, JsonValue};
pub use record::{EngineKind, RunMeta, RunRecord};
pub use sweep::{run_sweep, NativeEngine, SimEngine, StencilEngine, Sweep, SweepCell};
