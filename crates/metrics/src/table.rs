//! Plain-text table and CSV rendering for the experiment harness.
//!
//! The bench binaries print every figure as an aligned table (one row per
//! x-axis point, one column per series) plus a machine-readable CSV block,
//! so results can be eyeballed and re-plotted.

use std::fmt::Write as _;

/// Render an aligned monospace table.
///
/// ```
/// let s = grain_metrics::table::render(
///     "demo",
///     &["x", "y"],
///     &[vec!["1".into(), "2".into()], vec!["10".into(), "20".into()]],
/// );
/// assert!(s.contains("demo"));
/// assert!(s.contains("10"));
/// ```
pub fn render(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch in table `{title}`");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }

    let mut out = String::new();
    let total: usize = widths.iter().sum::<usize>() + 3 * cols + 1;
    let _ = writeln!(out, "{}", "=".repeat(total.max(title.len())));
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{}", "-".repeat(total.max(title.len())));
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "| {h:>w$} ");
    }
    line.push('|');
    let _ = writeln!(out, "{line}");
    let _ = writeln!(out, "{}", "-".repeat(total.max(title.len())));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "| {cell:>w$} ");
        }
        line.push('|');
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(out, "{}", "=".repeat(total.max(title.len())));
    out
}

/// Render rows as CSV (RFC-4180-ish; quotes cells containing commas or
/// quotes).
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let esc = |s: &str| -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_owned()
        }
    };
    let _ = writeln!(
        out,
        "{}",
        headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{}",
            row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
        );
    }
    out
}

/// Human formatting helpers shared by the bench binaries.
pub mod fmt {
    /// Seconds with 3 decimals.
    pub fn s(v: f64) -> String {
        format!("{v:.3}")
    }

    /// Nanoseconds as an adaptive µs/ms string.
    pub fn ns(v: f64) -> String {
        if v.abs() >= 1e6 {
            format!("{:.2}ms", v / 1e6)
        } else if v.abs() >= 1e3 {
            format!("{:.1}us", v / 1e3)
        } else {
            format!("{v:.0}ns")
        }
    }

    /// Ratio as a percentage.
    pub fn pct(v: f64) -> String {
        format!("{:.1}%", v * 100.0)
    }

    /// A count with thousands separators.
    pub fn count(v: f64) -> String {
        let n = v.round() as i128;
        let raw = n.abs().to_string();
        let mut s = String::new();
        for (i, c) in raw.chars().enumerate() {
            if i > 0 && (raw.len() - i).is_multiple_of(3) {
                s.push(',');
            }
            s.push(c);
        }
        if n < 0 {
            format!("-{s}")
        } else {
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render(
            "t",
            &["a", "bbbb"],
            &[
                vec!["100".into(), "2".into()],
                vec!["1".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        // Every data/header line has the same length.
        let data: Vec<&&str> = lines.iter().filter(|l| l.starts_with('|')).collect();
        assert_eq!(data.len(), 3);
        assert!(data.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        render("t", &["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn csv_escapes_specials() {
        let c = csv(
            &["a", "b"],
            &[
                vec!["x,y".into(), "q\"t".into()],
                vec!["1".into(), "2".into()],
            ],
        );
        assert_eq!(c.lines().next().unwrap(), "a,b");
        assert!(c.contains("\"x,y\""));
        assert!(c.contains("\"q\"\"t\""));
        assert!(c.contains("1,2"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt::s(1.23456), "1.235");
        assert_eq!(fmt::ns(532.0), "532ns");
        assert_eq!(fmt::ns(21_500.0), "21.5us");
        assert_eq!(fmt::ns(2_500_000.0), "2.50ms");
        assert_eq!(fmt::pct(0.905), "90.5%");
        assert_eq!(fmt::count(1_234_567.0), "1,234,567");
        assert_eq!(fmt::count(-1000.0), "-1,000");
        assert_eq!(fmt::count(999.0), "999");
    }
}
