//! `BENCH_*.json` — the recorded perf trajectory.
//!
//! Every bench binary appends one machine-readable snapshot per run to
//! a `results/BENCH_<bench>.json` file, all sharing one schema:
//!
//! ```json
//! [
//! {"bench":"taskbench","commit":"abc1234","config":{...},"metrics":{...}}
//! ]
//! ```
//!
//! The file as a whole is always a **valid JSON array**; appending keeps
//! prior entries, so committing the file across PRs records a
//! before/after trajectory for every scheduler or transport change.
//!
//! The writer is deliberately minimal (std-only, no serde): snapshots
//! are built from [`JsonValue`]s, each entry is emitted on its own line,
//! and [`append_snapshot`] manipulates the file line-wise — it only
//! needs to recognize the layout it wrote itself. A file that does not
//! look like that layout (hand-edited, truncated) is started fresh
//! rather than corrupted further.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A minimal JSON value: just enough for bench snapshots.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string (escaped on output).
    Str(String),
    /// A finite number (non-finite values are emitted as `null`).
    Num(f64),
    /// An integer, emitted without a decimal point.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An ordered list.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Num(x)
    }
}

impl From<u64> for JsonValue {
    fn from(x: u64) -> Self {
        // Perf counters fit i64 in practice; saturate rather than wrap.
        JsonValue::Int(i64::try_from(x).unwrap_or(i64::MAX))
    }
}

impl From<u32> for JsonValue {
    fn from(x: u32) -> Self {
        JsonValue::Int(i64::from(x))
    }
}

impl From<usize> for JsonValue {
    fn from(x: usize) -> Self {
        JsonValue::Int(i64::try_from(x).unwrap_or(i64::MAX))
    }
}

impl From<i64> for JsonValue {
    fn from(x: i64) -> Self {
        JsonValue::Int(x)
    }
}

impl From<bool> for JsonValue {
    fn from(x: bool) -> Self {
        JsonValue::Bool(x)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl JsonValue {
    /// Render compactly (no whitespace) into `out`.
    fn render(&self, out: &mut String) {
        match self {
            JsonValue::Str(s) => escape_into(out, s),
            JsonValue::Num(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            JsonValue::Num(_) => out.push_str("null"),
            JsonValue::Int(x) => {
                let _ = write!(out, "{x}");
            }
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }

    /// Render to a compact single-line string.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.render(&mut s);
        s
    }
}

/// One perf-trajectory entry: the shared
/// `{bench, commit, config, metrics}` schema.
#[derive(Debug, Clone)]
pub struct BenchSnapshot {
    /// Bench name (`"taskbench"`, `"queue"`, `"dist"`, …).
    pub bench: String,
    /// Abbreviated git commit of the tree that produced the numbers
    /// (see [`git_commit`]), or `"unknown"`.
    pub commit: String,
    /// The knob settings that produced the numbers.
    pub config: Vec<(String, JsonValue)>,
    /// The numbers.
    pub metrics: Vec<(String, JsonValue)>,
}

impl BenchSnapshot {
    /// A snapshot stamped with the current git commit.
    pub fn new(bench: &str) -> Self {
        Self {
            bench: bench.to_owned(),
            commit: git_commit(),
            config: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Add a config field (builder-style).
    pub fn config(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.config.push((key.to_owned(), value.into()));
        self
    }

    /// Add a metric field (builder-style).
    pub fn metric(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.metrics.push((key.to_owned(), value.into()));
        self
    }

    /// The entry as a single-line JSON object.
    pub fn to_json(&self) -> String {
        JsonValue::Obj(vec![
            ("bench".to_owned(), JsonValue::Str(self.bench.clone())),
            ("commit".to_owned(), JsonValue::Str(self.commit.clone())),
            ("config".to_owned(), JsonValue::Obj(self.config.clone())),
            ("metrics".to_owned(), JsonValue::Obj(self.metrics.clone())),
        ])
        .to_json()
    }
}

/// Append `snap` to the JSON-array file at `path`, creating it (and its
/// parent directory) if needed. Entries this module wrote before are
/// preserved; a file not in this module's one-entry-per-line layout is
/// replaced by a fresh single-entry array.
pub fn append_snapshot(path: &Path, snap: &BenchSnapshot) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut entries: Vec<String> = match std::fs::read_to_string(path) {
        Ok(text) => parse_entries(&text).unwrap_or_default(),
        Err(_) => Vec::new(),
    };
    entries.push(snap.to_json());
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push_str("\n,");
        }
        out.push_str(e);
    }
    out.push_str("\n]\n");
    std::fs::write(path, out)
}

/// Recover the entry lines from a file this module wrote: `[`, one
/// object per line (`,`-prefixed after the first), `]`. Returns `None`
/// for anything else.
fn parse_entries(text: &str) -> Option<Vec<String>> {
    let mut lines = text.lines();
    if lines.next()?.trim() != "[" {
        return None;
    }
    let mut entries = Vec::new();
    for line in lines {
        let line = line.trim();
        if line == "]" {
            return Some(entries);
        }
        let entry = line.strip_prefix(',').unwrap_or(line).trim();
        if !(entry.starts_with('{') && entry.ends_with('}')) {
            return None;
        }
        entries.push(entry.to_owned());
    }
    None
}

/// The abbreviated git commit of the working tree, or `"unknown"` when
/// git is unavailable (bench artifacts must never fail on this).
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("grain-benchjson-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn values_render_compact_json() {
        let v = JsonValue::Obj(vec![
            ("a".into(), JsonValue::Int(3)),
            (
                "b".into(),
                JsonValue::Arr(vec![JsonValue::Bool(true), JsonValue::Num(0.5)]),
            ),
            ("c".into(), JsonValue::Str("x\"y\n".into())),
        ]);
        assert_eq!(v.to_json(), r#"{"a":3,"b":[true,0.5],"c":"x\"y\n"}"#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn snapshot_has_the_shared_schema() {
        let s = BenchSnapshot {
            bench: "demo".into(),
            commit: "abc".into(),
            config: vec![("n".into(), 4u64.into())],
            metrics: vec![("wall_s".into(), 1.5.into())],
        };
        assert_eq!(
            s.to_json(),
            r#"{"bench":"demo","commit":"abc","config":{"n":4},"metrics":{"wall_s":1.5}}"#
        );
    }

    #[test]
    fn append_accumulates_and_stays_line_parseable() {
        let path = tmpfile("append.json");
        let snap = BenchSnapshot {
            bench: "demo".into(),
            commit: "abc".into(),
            config: vec![],
            metrics: vec![("x".into(), 1u64.into())],
        };
        append_snapshot(&path, &snap).expect("first append");
        append_snapshot(&path, &snap).expect("second append");
        let text = std::fs::read_to_string(&path).expect("read back");
        let entries = parse_entries(&text).expect("own layout parses");
        assert_eq!(entries.len(), 2);
        assert!(text.starts_with("[\n"));
        assert!(text.ends_with("\n]\n"));
    }

    #[test]
    fn malformed_files_are_restarted_not_corrupted() {
        let path = tmpfile("malformed.json");
        std::fs::write(&path, "not json at all").expect("seed garbage");
        let snap = BenchSnapshot {
            bench: "demo".into(),
            commit: "abc".into(),
            config: vec![],
            metrics: vec![],
        };
        append_snapshot(&path, &snap).expect("append over garbage");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(parse_entries(&text).expect("fresh layout").len(), 1);
    }

    #[test]
    fn git_commit_never_panics() {
        let c = git_commit();
        assert!(!c.is_empty());
    }
}
