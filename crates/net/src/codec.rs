//! The versioned wire codec.
//!
//! Every parcel on the wire is one *frame*: a 4-byte magic, a version
//! byte, a tag byte, and a tag-specific payload, carried inside a
//! `u32`-length-prefixed envelope written by the parcelport. Decoding is
//! total: any byte sequence — truncated, corrupted, malicious — produces
//! a [`CodecError`], never a panic, because frames arrive from outside
//! the process's trust boundary.
//!
//! Task arguments and results travel as opaque byte payloads produced by
//! the [`Wire`] trait, a minimal self-describing-free serializer for the
//! value shapes remote actions exchange (integers, floats bit-exactly,
//! strings, vectors, tuples). `f64` crosses the wire via
//! [`f64::to_bits`], so a distributed computation can be *bit-identical*
//! to its shared-memory twin.

#![deny(clippy::unwrap_used)]

use std::fmt;

/// First bytes of every frame; rejects cross-protocol traffic early.
pub const MAGIC: [u8; 4] = *b"GRNP";

/// Wire protocol version. Bumped on any incompatible frame change; a
/// mismatch is a [`CodecError::Version`] at decode time.
pub const VERSION: u8 = 1;

/// Hard upper bound on one frame's payload (16 MiB). A length prefix
/// beyond this is treated as corruption rather than an allocation
/// request — the receive path must stay bounded.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Why a byte sequence failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the structure requires.
    Truncated,
    /// The frame does not start with [`MAGIC`].
    Magic,
    /// The frame's version byte is not [`VERSION`].
    Version(u8),
    /// Unknown frame or fault tag.
    Tag(u8),
    /// A declared length exceeds [`MAX_FRAME`] or the remaining input.
    Length(u64),
    /// A string field is not valid UTF-8.
    Utf8,
    /// Bytes remained after the structure was fully decoded.
    Trailing(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::Magic => write!(f, "bad frame magic"),
            CodecError::Version(v) => write!(f, "unsupported wire version {v}"),
            CodecError::Tag(t) => write!(f, "unknown tag {t}"),
            CodecError::Length(n) => write!(f, "implausible length {n}"),
            CodecError::Utf8 => write!(f, "string field is not UTF-8"),
            CodecError::Trailing(n) => write!(f, "{n} trailing byte(s) after frame"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Bounds-checked cursor over received bytes. Every accessor returns
/// `Err(CodecError::Truncated)` instead of slicing out of range.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// `f64` transported as raw bits (bit-exact across the wire).
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.u64()?;
        if n > MAX_FRAME as u64 || n > self.remaining() as u64 {
            return Err(CodecError::Length(n));
        }
        self.take(n as usize)
    }

    /// Length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, CodecError> {
        let b = self.bytes()?;
        // Validate in place, then copy exactly once on success —
        // `String::from_utf8(b.to_vec())` copies before validating, so
        // corrupt input paid an allocation just to be rejected.
        std::str::from_utf8(b)
            .map(str::to_owned)
            .map_err(|_| CodecError::Utf8)
    }

    /// Assert the input is fully consumed (frame decoding ends with this
    /// so trailing garbage is loud, not silently ignored).
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::Trailing(self.remaining()));
        }
        Ok(())
    }
}

/// Append-only encoder mirror of [`Reader`].
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `f64` as raw bits.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// The encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Adopt `buf`'s allocation for encoding, discarding its contents.
    /// The send path threads recycled frame buffers back through here
    /// (feature `parcel-reuse`), so steady-state encodes stop touching
    /// the allocator.
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self { buf }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Reset for reuse, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

/// A task fault in wire form: the serializable projection of
/// [`grain_runtime::TaskError`] a remote reply carries home. The caller
/// maps it back — `Panicked` to `TaskError::Panicked` (a remote panic
/// must surface exactly like a local one), the protocol-level kinds to
/// `TaskError::Remote`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireFault {
    /// The remote task's body panicked; message captured remotely.
    Panicked(String),
    /// The remote task was cancelled before running.
    Cancelled,
    /// The remote promise was dropped without a value.
    BrokenPromise,
    /// The named action is not registered on the destination.
    UnknownAction(String),
    /// The destination could not decode the call's arguments.
    BadArguments(String),
    /// Any other remote failure, carried as text (e.g. a dependency
    /// chain rendered by `Display`).
    Other(String),
}

const FAULT_PANICKED: u8 = 1;
const FAULT_CANCELLED: u8 = 2;
const FAULT_BROKEN: u8 = 3;
const FAULT_UNKNOWN_ACTION: u8 = 4;
const FAULT_BAD_ARGS: u8 = 5;
const FAULT_OTHER: u8 = 6;

impl WireFault {
    fn encode(&self, w: &mut Writer) {
        match self {
            WireFault::Panicked(m) => {
                w.u8(FAULT_PANICKED);
                w.string(m);
            }
            WireFault::Cancelled => w.u8(FAULT_CANCELLED),
            WireFault::BrokenPromise => w.u8(FAULT_BROKEN),
            WireFault::UnknownAction(m) => {
                w.u8(FAULT_UNKNOWN_ACTION);
                w.string(m);
            }
            WireFault::BadArguments(m) => {
                w.u8(FAULT_BAD_ARGS);
                w.string(m);
            }
            WireFault::Other(m) => {
                w.u8(FAULT_OTHER);
                w.string(m);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            FAULT_PANICKED => WireFault::Panicked(r.string()?),
            FAULT_CANCELLED => WireFault::Cancelled,
            FAULT_BROKEN => WireFault::BrokenPromise,
            FAULT_UNKNOWN_ACTION => WireFault::UnknownAction(r.string()?),
            FAULT_BAD_ARGS => WireFault::BadArguments(r.string()?),
            FAULT_OTHER => WireFault::Other(r.string()?),
            t => return Err(CodecError::Tag(t)),
        })
    }
}

/// One parcel. `Call`/`Reply` carry action traffic (counted by the
/// `/parcels/*` family); the rest are bootstrap/teardown control frames
/// (not counted — they have no matching reply, so counting them would
/// unbalance `sent == received` at quiescence).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Peer → root: request to join; `listen_addr` is where the peer
    /// accepts direct connections from other localities (empty when the
    /// transport is loopback and no listener exists).
    Hello {
        /// Where the joining peer listens for `PeerHello` dials.
        listen_addr: String,
    },
    /// Root → peer: the assigned locality id, the world size, and the
    /// already-joined peers to dial directly.
    Welcome {
        /// Id assigned to the joining peer.
        locality_id: u32,
        /// Total number of localities in this world.
        world: u32,
        /// `(locality id, listen address)` of every previously joined
        /// peer the newcomer must connect to.
        peers: Vec<(u32, String)>,
    },
    /// Peer → peer: identifies the dialing locality on a direct link.
    PeerHello {
        /// Locality id of the dialer.
        locality_id: u32,
    },
    /// A remote action invocation.
    Call {
        /// Correlates the eventual [`Frame::Reply`].
        call_id: u64,
        /// Locality the reply must go back to.
        origin: u32,
        /// Registered action name on the destination.
        action: String,
        /// [`Wire`]-encoded arguments.
        args: Vec<u8>,
    },
    /// The settled outcome of a [`Frame::Call`].
    Reply {
        /// The call this settles.
        call_id: u64,
        /// Encoded result value, or the fault that prevented one.
        outcome: Result<Vec<u8>, WireFault>,
    },
    /// Graceful leave: the sender will close the link; outstanding calls
    /// to it settle as disconnected.
    Goodbye {
        /// Locality id of the leaver.
        locality_id: u32,
    },
    /// Liveness probe. Not a parcel (uncounted control traffic); any
    /// inbound frame refreshes the peer's `last_heard`, the ping merely
    /// guarantees a quiet link still carries *something*.
    Ping {
        /// Echoed back in the matching [`Frame::Pong`].
        nonce: u64,
    },
    /// Liveness response to a [`Frame::Ping`].
    Pong {
        /// The probe's nonce.
        nonce: u64,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_WELCOME: u8 = 2;
const TAG_PEER_HELLO: u8 = 3;
const TAG_CALL: u8 = 4;
const TAG_REPLY: u8 = 5;
const TAG_GOODBYE: u8 = 6;
const TAG_PING: u8 = 7;
const TAG_PONG: u8 = 8;

impl Frame {
    /// True for the frames the `/parcels/*` counters track (action
    /// traffic, not bootstrap control).
    pub fn is_parcel(&self) -> bool {
        matches!(self, Frame::Call { .. } | Frame::Reply { .. })
    }

    /// Encode into a standalone byte vector (magic + version + tag +
    /// payload). The parcelport adds the transport length prefix.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.into_vec()
    }

    /// Encode into an existing writer (appends one whole frame). The
    /// allocation-free counterpart of [`Frame::encode`] for callers
    /// that recycle buffers.
    pub fn encode_into(&self, w: &mut Writer) {
        w.buf.extend_from_slice(&MAGIC);
        w.u8(VERSION);
        match self {
            Frame::Hello { listen_addr } => {
                w.u8(TAG_HELLO);
                w.string(listen_addr);
            }
            Frame::Welcome {
                locality_id,
                world,
                peers,
            } => {
                w.u8(TAG_WELCOME);
                w.u32(*locality_id);
                w.u32(*world);
                w.u32(peers.len() as u32);
                for (id, addr) in peers {
                    w.u32(*id);
                    w.string(addr);
                }
            }
            Frame::PeerHello { locality_id } => {
                w.u8(TAG_PEER_HELLO);
                w.u32(*locality_id);
            }
            Frame::Call {
                call_id,
                origin,
                action,
                args,
            } => {
                w.u8(TAG_CALL);
                w.u64(*call_id);
                w.u32(*origin);
                w.string(action);
                w.bytes(args);
            }
            Frame::Reply { call_id, outcome } => {
                w.u8(TAG_REPLY);
                w.u64(*call_id);
                match outcome {
                    Ok(bytes) => {
                        w.u8(0);
                        w.bytes(bytes);
                    }
                    Err(fault) => {
                        w.u8(1);
                        fault.encode(w);
                    }
                }
            }
            Frame::Goodbye { locality_id } => {
                w.u8(TAG_GOODBYE);
                w.u32(*locality_id);
            }
            Frame::Ping { nonce } => {
                w.u8(TAG_PING);
                w.u64(*nonce);
            }
            Frame::Pong { nonce } => {
                w.u8(TAG_PONG);
                w.u64(*nonce);
            }
        }
    }

    /// Decode one frame; total over arbitrary bytes.
    pub fn decode(buf: &[u8]) -> Result<Frame, CodecError> {
        let mut r = Reader::new(buf);
        if r.take(4)? != MAGIC {
            return Err(CodecError::Magic);
        }
        let v = r.u8()?;
        if v != VERSION {
            return Err(CodecError::Version(v));
        }
        let frame = match r.u8()? {
            TAG_HELLO => Frame::Hello {
                listen_addr: r.string()?,
            },
            TAG_WELCOME => {
                let locality_id = r.u32()?;
                let world = r.u32()?;
                let n = r.u32()?;
                // A peer list longer than the remaining bytes could even
                // plausibly hold is corruption, not an allocation hint.
                if n as usize > r.remaining() {
                    return Err(CodecError::Length(n as u64));
                }
                let mut peers = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let id = r.u32()?;
                    let addr = r.string()?;
                    peers.push((id, addr));
                }
                Frame::Welcome {
                    locality_id,
                    world,
                    peers,
                }
            }
            TAG_PEER_HELLO => Frame::PeerHello {
                locality_id: r.u32()?,
            },
            TAG_CALL => Frame::Call {
                call_id: r.u64()?,
                origin: r.u32()?,
                action: r.string()?,
                // Single necessary copy: the frame buffer is borrowed
                // and the decoded `Frame` owns its payload (the buffer
                // is recycled or dropped right after decode).
                args: r.bytes()?.to_vec(),
            },
            TAG_REPLY => {
                let call_id = r.u64()?;
                let outcome = match r.u8()? {
                    // Single necessary copy, as for Call args above.
                    0 => Ok(r.bytes()?.to_vec()),
                    1 => Err(WireFault::decode(&mut r)?),
                    t => return Err(CodecError::Tag(t)),
                };
                Frame::Reply { call_id, outcome }
            }
            TAG_GOODBYE => Frame::Goodbye {
                locality_id: r.u32()?,
            },
            TAG_PING => Frame::Ping { nonce: r.u64()? },
            TAG_PONG => Frame::Pong { nonce: r.u64()? },
            t => return Err(CodecError::Tag(t)),
        };
        r.finish()?;
        Ok(frame)
    }
}

/// Values remote actions can take and return. Implementations must
/// roundtrip exactly: `decode(encode(v)) == v`, bit-for-bit for floats.
pub trait Wire: Sized {
    /// Append this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);
    /// Decode one value from `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

/// Encode a [`Wire`] value into a standalone payload.
pub fn to_bytes<T: Wire>(v: &T) -> Vec<u8> {
    let mut w = Writer::new();
    v.encode(&mut w);
    w.into_vec()
}

/// Decode a standalone payload produced by [`to_bytes`]; rejects
/// trailing bytes.
pub fn from_bytes<T: Wire>(buf: &[u8]) -> Result<T, CodecError> {
    let mut r = Reader::new(buf);
    let v = T::decode(&mut r)?;
    r.finish()?;
    Ok(v)
}

impl Wire for () {
    fn encode(&self, _w: &mut Writer) {}
    fn decode(_r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(())
    }
}

impl Wire for u64 {
    fn encode(&self, w: &mut Writer) {
        w.u64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u64()
    }
}

impl Wire for u32 {
    fn encode(&self, w: &mut Writer) {
        w.u32(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u32()
    }
}

impl Wire for u8 {
    fn encode(&self, w: &mut Writer) {
        w.u8(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u8()
    }
}

impl Wire for usize {
    fn encode(&self, w: &mut Writer) {
        w.u64(*self as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let v = r.u64()?;
        usize::try_from(v).map_err(|_| CodecError::Length(v))
    }
}

impl Wire for bool {
    fn encode(&self, w: &mut Writer) {
        w.u8(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CodecError::Tag(t)),
        }
    }
}

impl Wire for f64 {
    fn encode(&self, w: &mut Writer) {
        w.f64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.f64()
    }
}

impl Wire for String {
    fn encode(&self, w: &mut Writer) {
        w.string(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.string()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.u64()?;
        // Each element consumes at least one byte; a count beyond the
        // remaining input is corruption, not an allocation request.
        if n > r.remaining() as u64 {
            return Err(CodecError::Length(n));
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl Wire for Box<[f64]> {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.len() as u64);
        for v in self.iter() {
            w.f64(*v);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.u64()?;
        if n.checked_mul(8).is_none_or(|b| b > r.remaining() as u64) {
            return Err(CodecError::Length(n));
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(r.f64()?);
        }
        Ok(out.into_boxed_slice())
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(CodecError::Tag(t)),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
        self.3.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?, D::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: &Frame) {
        let bytes = f.encode();
        let back = Frame::decode(&bytes).expect("roundtrip decode");
        assert_eq!(&back, f);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(&Frame::Hello {
            listen_addr: "127.0.0.1:4433".into(),
        });
        roundtrip(&Frame::Welcome {
            locality_id: 3,
            world: 4,
            peers: vec![(1, "a:1".into()), (2, "b:2".into())],
        });
        roundtrip(&Frame::PeerHello { locality_id: 9 });
        roundtrip(&Frame::Call {
            call_id: 77,
            origin: 2,
            action: "stencil/edge".into(),
            args: vec![1, 2, 3, 255],
        });
        roundtrip(&Frame::Reply {
            call_id: 77,
            outcome: Ok(vec![9, 8]),
        });
        roundtrip(&Frame::Reply {
            call_id: 78,
            outcome: Err(WireFault::Panicked("boom".into())),
        });
        roundtrip(&Frame::Goodbye { locality_id: 1 });
        roundtrip(&Frame::Ping { nonce: 0xdead });
        roundtrip(&Frame::Pong { nonce: 0xdead });
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = Frame::Call {
            call_id: 1,
            origin: 0,
            action: "x".into(),
            args: vec![0; 32],
        }
        .encode();
        for n in 0..bytes.len() {
            assert!(Frame::decode(&bytes[..n]).is_err(), "prefix {n} decoded");
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut bytes = Frame::Goodbye { locality_id: 0 }.encode();
        bytes[0] ^= 0xFF;
        assert_eq!(Frame::decode(&bytes), Err(CodecError::Magic));
        let mut bytes = Frame::Goodbye { locality_id: 0 }.encode();
        bytes[4] = VERSION + 1;
        assert_eq!(Frame::decode(&bytes), Err(CodecError::Version(VERSION + 1)));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Frame::Goodbye { locality_id: 0 }.encode();
        bytes.push(0);
        assert_eq!(Frame::decode(&bytes), Err(CodecError::Trailing(1)));
    }

    #[test]
    fn wire_values_roundtrip_bit_exactly() {
        let v = f64::from_bits(0x7FF0_0000_0000_0001); // a signalling NaN
        let b = to_bytes(&v);
        let back: f64 = from_bytes(&b).expect("decode");
        assert_eq!(back.to_bits(), v.to_bits());

        let part: Box<[f64]> = vec![0.1, -0.0, f64::MIN_POSITIVE].into_boxed_slice();
        let back: Box<[f64]> = from_bytes(&to_bytes(&part)).expect("decode");
        assert_eq!(
            back.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            part.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );

        let tup = (3u64, "hi".to_string(), vec![1.0f64, 2.0]);
        let back: (u64, String, Vec<f64>) = from_bytes(&to_bytes(&tup)).expect("decode");
        assert_eq!(back, tup);
    }

    #[test]
    fn hostile_lengths_rejected() {
        // A Vec<f64> claiming u64::MAX elements must fail cleanly.
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let bytes = w.into_vec();
        assert!(from_bytes::<Vec<f64>>(&bytes).is_err());
        assert!(from_bytes::<Box<[f64]>>(&bytes).is_err());
        assert!(from_bytes::<String>(&bytes).is_err());
    }
}
