//! The parcelport: point-to-point links that carry encoded frames.
//!
//! A [`Link`] is one *directed* lane from the owning locality to a single
//! peer: a bounded send queue drained by a dedicated writer thread. Two
//! transports share that shape:
//!
//! * **TCP** — the writer thread writes `u32`-LE length-prefixed frames to
//!   the socket; a companion reader thread reads frames off the same
//!   socket and hands the raw bytes to the locality's frame handler. One
//!   socket therefore backs *two* links (one per direction), each owned by
//!   its side.
//! * **Loopback** — no socket at all: the writer thread delivers the
//!   encoded bytes straight into the peer's frame handler. Both ends live
//!   in one process, which makes multi-locality tests hermetic and
//!   deterministic while exercising the identical queue/writer machinery.
//!
//! Backpressure is bounded and deadlock-free by construction: `send`
//! blocks while the queue is full, but only up to [`SEND_TIMEOUT`]. A
//! send that cannot make progress for that long means the peer has
//! effectively stopped draining — the link is severed and every
//! outstanding future against that peer settles with
//! `TaskError::Disconnected` instead of the whole fabric deadlocking.
//!
//! Counter discipline: the *sending* side bumps `/parcels/count/sent`
//! and `/parcels/bytes/sent` in the writer thread at the moment of
//! delivery; the *receiving* locality bumps `received` when it dispatches
//! the frame. Only parcels proper ([`Frame::is_parcel`]: `Call`/`Reply`)
//! are counted — handshake and teardown control frames are not traffic.

#![deny(clippy::unwrap_used)]

use crate::codec::{CodecError, Frame, MAX_FRAME};
use crate::counters::ParcelCounters;
use grain_counters::sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Callback invoked with `(sender_locality, frame_bytes)` for every frame
/// that arrives at a locality.
pub type FrameHandler = Arc<dyn Fn(usize, Vec<u8>) + Send + Sync>;

/// Callback invoked with the peer's locality id when a link to that peer
/// is severed (fired at most once per link).
pub type DisconnectHandler = Arc<dyn Fn(usize) + Send + Sync>;

/// How long a full send queue may stall a sender before the link is
/// declared dead. Generous: hitting this means the peer's reader has not
/// drained *anything* for the whole window.
pub const SEND_TIMEOUT: Duration = Duration::from_secs(10);

/// Default bound on the send queue, in frames.
pub const DEFAULT_QUEUE_CAP: usize = 1024;

/// Why a send did not take the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The link is closed or severed; the peer is unreachable.
    Closed,
    /// The queue stayed full for [`SEND_TIMEOUT`]; the link has been
    /// severed to break the stall.
    Backpressure,
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::Closed => write!(f, "link closed"),
            SendError::Backpressure => write!(f, "send queue stalled; link severed"),
        }
    }
}

impl std::error::Error for SendError {}

/// Mutable queue state behind the lock.
struct QueueState {
    /// Encoded frames with their "counts as a parcel" flag.
    frames: VecDeque<(Vec<u8>, bool)>,
    /// Total encoded bytes currently queued.
    bytes: usize,
    /// No further sends accepted; the writer drains what is queued.
    closed: bool,
    /// Abrupt teardown: queued frames are discarded, the writer exits.
    severed: bool,
}

/// Bounded MPSC queue feeding one writer thread.
struct SendQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

impl SendQueue {
    fn new(cap: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                frames: VecDeque::new(),
                bytes: 0,
                closed: false,
                severed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        }
    }

    /// Enqueue, blocking while full up to `timeout`.
    fn push(&self, bytes: Vec<u8>, parcel: bool, timeout: Duration) -> Result<(), SendError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            if st.closed || st.severed {
                return Err(SendError::Closed);
            }
            if st.frames.len() < self.cap {
                st.bytes += bytes.len();
                st.frames.push_back((bytes, parcel));
                self.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SendError::Backpressure);
            }
            if self.not_full.wait_for(&mut st, deadline - now) {
                // Timed out; loop once more to re-check capacity, then
                // the deadline test above returns Backpressure.
            }
        }
    }

    /// Dequeue the next frame; `None` once the queue is drained-and-closed
    /// or severed.
    fn pop(&self) -> Option<(Vec<u8>, bool)> {
        let mut st = self.state.lock();
        loop {
            if st.severed {
                return None;
            }
            if let Some(item) = st.frames.pop_front() {
                st.bytes -= item.0.len();
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            self.not_empty.wait(&mut st);
        }
    }

    fn len(&self) -> usize {
        self.state.lock().frames.len()
    }

    fn queued_bytes(&self) -> usize {
        self.state.lock().bytes
    }

    /// Stop accepting sends; the writer drains what is queued, then exits.
    fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Abrupt teardown: discard queued frames and release all waiters.
    fn sever(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        st.severed = true;
        st.frames.clear();
        st.bytes = 0;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Where the writer thread delivers encoded frames.
enum Sink {
    /// Write length-prefixed frames to the socket.
    Tcp(TcpStream),
    /// Hand the bytes straight to the peer's frame handler, labelled with
    /// the sending locality's id.
    Loopback {
        peer_incoming: FrameHandler,
        sender_id: usize,
    },
}

/// One directed lane from the owning locality to `peer`.
///
/// Created via [`Link::tcp`] or [`loopback_pair`]; send frames with
/// [`Link::send`]; tear down with [`Link::close`] (graceful drain) or
/// [`Link::sever`] (abrupt, fires the disconnect handler).
pub struct Link {
    /// Locality id of the remote end.
    peer: usize,
    queue: Arc<SendQueue>,
    counters: Arc<ParcelCounters>,
    on_disconnect: DisconnectHandler,
    disconnect_fired: AtomicBool,
    /// The reverse-direction link of a loopback pair; severing one side
    /// severs the other so both localities observe the disconnect.
    partner: Mutex<Weak<Link>>,
    /// Kept so `sever` can shut the socket down and unblock the reader
    /// and writer threads mid-syscall.
    tcp: Option<TcpStream>,
}

impl Link {
    /// Wrap an already-handshaken TCP socket as a link to `peer`.
    ///
    /// Spawns the writer thread (draining the send queue into the socket)
    /// and a reader thread (delivering inbound frames to `incoming`).
    /// Either thread severing the link fires `on_disconnect(peer)` exactly
    /// once.
    pub fn tcp(
        peer: usize,
        stream: TcpStream,
        incoming: FrameHandler,
        on_disconnect: DisconnectHandler,
        counters: Arc<ParcelCounters>,
        cap: usize,
    ) -> io::Result<Arc<Link>> {
        let writer_stream = stream.try_clone()?;
        let reader_stream = stream.try_clone()?;
        let link = Arc::new(Link {
            peer,
            queue: Arc::new(SendQueue::new(cap)),
            counters,
            on_disconnect,
            disconnect_fired: AtomicBool::new(false),
            partner: Mutex::new(Weak::new()),
            tcp: Some(stream),
        });

        {
            let link = Arc::clone(&link);
            std::thread::Builder::new()
                .name(format!("grain-net-tx-{peer}"))
                .spawn(move || writer_loop(link, Sink::Tcp(writer_stream)))?;
        }
        {
            let link = Arc::clone(&link);
            std::thread::Builder::new()
                .name(format!("grain-net-rx-{peer}"))
                .spawn(move || reader_loop(link, reader_stream, incoming))?;
        }
        Ok(link)
    }

    /// Locality id of the remote end of this link.
    pub fn peer(&self) -> usize {
        self.peer
    }

    /// Frames currently waiting in the send queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Encoded bytes currently waiting in the send queue.
    pub fn queued_bytes(&self) -> usize {
        self.queue.queued_bytes()
    }

    /// Encode `frame` and enqueue it for delivery.
    ///
    /// Blocks while the queue is full, up to [`SEND_TIMEOUT`]; a stall
    /// that long severs the link (see module docs) and returns
    /// [`SendError::Backpressure`].
    pub fn send(&self, frame: &Frame) -> Result<(), SendError> {
        let bytes = frame.encode();
        let parcel = frame.is_parcel();
        match self.queue.push(bytes, parcel, SEND_TIMEOUT) {
            Ok(()) => Ok(()),
            Err(SendError::Backpressure) => {
                self.sever();
                Err(SendError::Backpressure)
            }
            Err(e) => Err(e),
        }
    }

    /// Graceful shutdown: no further sends are accepted, queued frames
    /// are still delivered, then the writer exits. Does not fire the
    /// disconnect handler — the caller initiated this.
    pub fn close(&self) {
        self.queue.close();
    }

    /// Abrupt teardown: discard queued frames, shut the socket down (if
    /// TCP), sever the loopback partner (if any), and fire the disconnect
    /// handler (once).
    pub fn sever(&self) {
        self.sever_inner(true);
    }

    fn sever_inner(&self, propagate: bool) {
        self.queue.sever();
        if let Some(s) = &self.tcp {
            let _ = s.shutdown(Shutdown::Both);
        }
        if propagate {
            let partner = self.partner.lock().upgrade();
            if let Some(p) = partner {
                p.sever_inner(false);
            }
        }
        if !self.disconnect_fired.swap(true, Ordering::SeqCst) {
            (self.on_disconnect)(self.peer);
        }
    }
}

/// One end of a loopback pair: identity plus the inbound plumbing of the
/// locality that owns this end.
pub struct EndPoint {
    /// Locality id of this end.
    pub id: usize,
    /// Where frames addressed to this end are delivered.
    pub incoming: FrameHandler,
    /// Fired (with the peer's id) when the pair is severed.
    pub on_disconnect: DisconnectHandler,
    /// This end's parcel counters (bumped on *send* by its outbound link).
    pub counters: Arc<ParcelCounters>,
}

/// Build both directions of an in-process link between localities `a` and
/// `b`. Returns `(a_to_b, b_to_a)`. Severing either direction severs the
/// other, so both localities observe the disconnect — exactly like a TCP
/// socket dying.
pub fn loopback_pair(a: EndPoint, b: EndPoint, cap: usize) -> (Arc<Link>, Arc<Link>) {
    let a_to_b = Arc::new(Link {
        peer: b.id,
        queue: Arc::new(SendQueue::new(cap)),
        counters: Arc::clone(&a.counters),
        on_disconnect: a.on_disconnect,
        disconnect_fired: AtomicBool::new(false),
        partner: Mutex::new(Weak::new()),
        tcp: None,
    });
    let b_to_a = Arc::new(Link {
        peer: a.id,
        queue: Arc::new(SendQueue::new(cap)),
        counters: Arc::clone(&b.counters),
        on_disconnect: b.on_disconnect,
        disconnect_fired: AtomicBool::new(false),
        partner: Mutex::new(Weak::new()),
        tcp: None,
    });
    *a_to_b.partner.lock() = Arc::downgrade(&b_to_a);
    *b_to_a.partner.lock() = Arc::downgrade(&a_to_b);

    spawn_loopback_writer(&a_to_b, b.incoming, a.id);
    spawn_loopback_writer(&b_to_a, a.incoming, b.id);
    (a_to_b, b_to_a)
}

fn spawn_loopback_writer(link: &Arc<Link>, peer_incoming: FrameHandler, sender_id: usize) {
    let link = Arc::clone(link);
    let name = format!("grain-net-lo-{sender_id}-to-{}", link.peer);
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            let sink = Sink::Loopback {
                peer_incoming,
                sender_id,
            };
            writer_loop(link, sink)
        })
        .expect("failed to spawn loopback writer thread");
}

/// Drain the send queue into the sink until closed/severed, bumping the
/// owning side's sent counters per delivered parcel.
fn writer_loop(link: Arc<Link>, mut sink: Sink) {
    while let Some((bytes, parcel)) = link.queue.pop() {
        let n = bytes.len();
        match &mut sink {
            Sink::Tcp(stream) => {
                let len = (n as u32).to_le_bytes();
                if stream.write_all(&len).is_err() || stream.write_all(&bytes).is_err() {
                    link.sever();
                    return;
                }
            }
            Sink::Loopback {
                peer_incoming,
                sender_id,
            } => {
                (peer_incoming)(*sender_id, bytes);
            }
        }
        if parcel {
            link.counters.sent.incr();
            link.counters.bytes_sent.add(n as u64);
        }
    }
    // Graceful drain complete: flush the socket's write side so the peer
    // sees everything (including a trailing Goodbye) before EOF.
    if let Sink::Tcp(stream) = &sink {
        let _ = stream.shutdown(Shutdown::Write);
    }
}

/// Read length-prefixed frames off the socket and deliver the raw bytes
/// to `incoming` until EOF/error, then sever the link.
fn reader_loop(link: Arc<Link>, mut stream: TcpStream, incoming: FrameHandler) {
    loop {
        match read_raw_frame(&mut stream) {
            Ok(bytes) => (incoming)(link.peer, bytes),
            Err(_) => {
                link.sever();
                return;
            }
        }
    }
}

/// Read one length-prefixed frame's raw bytes from `stream`.
fn read_raw_frame(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("inbound frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf)?;
    Ok(buf)
}

/// Write one frame, length-prefixed, directly to a socket. Used during
/// the bootstrap handshake, before the link's writer thread exists.
pub fn write_frame(stream: &mut TcpStream, frame: &Frame) -> io::Result<()> {
    let bytes = frame.encode();
    let len = (bytes.len() as u32).to_le_bytes();
    stream.write_all(&len)?;
    stream.write_all(&bytes)
}

/// Read and decode one frame directly from a socket (bootstrap handshake
/// counterpart of [`write_frame`]).
pub fn read_frame(stream: &mut TcpStream) -> io::Result<Frame> {
    let bytes = read_raw_frame(stream)?;
    Frame::decode(&bytes).map_err(|e: CodecError| {
        io::Error::new(io::ErrorKind::InvalidData, format!("bad frame: {e}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Frame;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    fn counters() -> Arc<ParcelCounters> {
        Arc::new(ParcelCounters::new())
    }

    fn endpoint(
        id: usize,
        tx: mpsc::Sender<(usize, Vec<u8>)>,
        disconnects: Arc<AtomicUsize>,
        ctrs: Arc<ParcelCounters>,
    ) -> EndPoint {
        EndPoint {
            id,
            incoming: Arc::new(move |from, bytes| {
                let _ = tx.send((from, bytes));
            }),
            on_disconnect: Arc::new(move |_| {
                disconnects.fetch_add(1, Ordering::SeqCst);
            }),
            counters: ctrs,
        }
    }

    #[test]
    fn loopback_delivers_frames_and_counts_parcels() {
        let (tx_a, _rx_a) = mpsc::channel();
        let (tx_b, rx_b) = mpsc::channel();
        let dis = Arc::new(AtomicUsize::new(0));
        let ca = counters();
        let cb = counters();
        let (a_to_b, _b_to_a) = loopback_pair(
            endpoint(0, tx_a, Arc::clone(&dis), Arc::clone(&ca)),
            endpoint(1, tx_b, Arc::clone(&dis), cb),
            16,
        );

        let call = Frame::Call {
            call_id: 7,
            origin: 0,
            action: "echo".into(),
            args: vec![1, 2, 3],
        };
        a_to_b.send(&call).expect("send");
        let hello = Frame::PeerHello { locality_id: 0 };
        a_to_b.send(&hello).expect("send");

        let (from, bytes) = rx_b.recv_timeout(Duration::from_secs(5)).expect("frame");
        assert_eq!(from, 0);
        assert_eq!(Frame::decode(&bytes).expect("decode"), call);
        let (_, bytes) = rx_b.recv_timeout(Duration::from_secs(5)).expect("frame");
        assert_eq!(Frame::decode(&bytes).expect("decode"), hello);

        // Writer-thread delivery is asynchronous; poll briefly.
        let deadline = Instant::now() + Duration::from_secs(5);
        while ca.sent.get() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Only the Call counts as a parcel, not the PeerHello.
        assert_eq!(ca.sent.get(), 1);
        assert_eq!(ca.bytes_sent.get(), call.encode().len() as u64);
        assert_eq!(dis.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn severing_one_side_fires_both_disconnect_handlers_once() {
        let (tx_a, _rx_a) = mpsc::channel();
        let (tx_b, _rx_b) = mpsc::channel();
        let dis_a = Arc::new(AtomicUsize::new(0));
        let dis_b = Arc::new(AtomicUsize::new(0));
        let (a_to_b, b_to_a) = loopback_pair(
            endpoint(0, tx_a, Arc::clone(&dis_a), counters()),
            endpoint(1, tx_b, Arc::clone(&dis_b), counters()),
            16,
        );

        a_to_b.sever();
        a_to_b.sever(); // idempotent
        assert_eq!(dis_a.load(Ordering::SeqCst), 1);
        assert_eq!(dis_b.load(Ordering::SeqCst), 1);
        assert!(matches!(
            b_to_a.send(&Frame::PeerHello { locality_id: 1 }),
            Err(SendError::Closed)
        ));
    }

    #[test]
    fn push_times_out_when_queue_stays_full() {
        let q = SendQueue::new(1);
        q.push(vec![0u8], false, Duration::from_millis(10))
            .expect("first push fits");
        let err = q
            .push(vec![1u8], false, Duration::from_millis(50))
            .expect_err("second push must time out");
        assert_eq!(err, SendError::Backpressure);
    }

    #[test]
    fn tcp_pair_roundtrips_frames() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");

        let (tx_srv, rx_srv) = mpsc::channel::<(usize, Vec<u8>)>();
        let dis = Arc::new(AtomicUsize::new(0));
        let dis2 = Arc::clone(&dis);
        let srv_link = Link::tcp(
            1,
            server,
            Arc::new(move |from, bytes| {
                let _ = tx_srv.send((from, bytes));
            }),
            Arc::new(move |_| {
                dis2.fetch_add(1, Ordering::SeqCst);
            }),
            counters(),
            16,
        )
        .expect("server link");

        let (tx_cli, _rx_cli) = mpsc::channel::<(usize, Vec<u8>)>();
        let cli_link = Link::tcp(
            0,
            client,
            Arc::new(move |from, bytes| {
                let _ = tx_cli.send((from, bytes));
            }),
            Arc::new(|_| {}),
            counters(),
            16,
        )
        .expect("client link");

        let reply = Frame::Reply {
            call_id: 42,
            outcome: Ok(vec![9, 9]),
        };
        cli_link.send(&reply).expect("send");
        let (from, bytes) = rx_srv.recv_timeout(Duration::from_secs(5)).expect("frame");
        assert_eq!(from, 1);
        assert_eq!(Frame::decode(&bytes).expect("decode"), reply);

        // Dropping the client's socket (sever) must fire the server's
        // disconnect handler via reader EOF.
        cli_link.sever();
        let deadline = Instant::now() + Duration::from_secs(5);
        while dis.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(dis.load(Ordering::SeqCst), 1);
        drop(srv_link);
    }
}
