//! The parcelport: point-to-point links that carry encoded frames.
//!
//! A [`Link`] is one *directed* lane from the owning locality to a single
//! peer: a bounded send queue drained by a dedicated writer thread. What
//! the writer *does* with each frame is behind the
//! [`Transport`](crate::transport::Transport) seam; three transports share
//! the shape:
//!
//! * **TCP** — the writer thread writes `u32`-LE length-prefixed frames to
//!   the socket; a companion reader thread reads frames off the same
//!   socket and hands the raw bytes to the locality's frame handler. One
//!   socket therefore backs *two* links (one per direction), each owned by
//!   its side.
//! * **Loopback** — no socket at all: the writer thread delivers the
//!   encoded bytes straight into the peer's frame handler. Both ends live
//!   in one process, which makes multi-locality tests hermetic and
//!   deterministic while exercising the identical queue/writer machinery.
//! * **Simulated** ([`sim_pair`]) — the writer submits frames to a
//!   [`grain_sim::NetFabric`], which applies a seeded chaos plan
//!   (latency, loss, duplication, reordering, partitions) before handing
//!   survivors to the peer's frame handler. Severing either direction
//!   severs the fabric pair, so in-flight frames are accounted as
//!   `in_flight_at_sever` rather than silently lost.
//!
//! Backpressure is bounded and deadlock-free by construction: `send`
//! blocks while the queue is full, but only up to [`SEND_TIMEOUT`]. A
//! send that cannot make progress for that long means the peer has
//! effectively stopped draining — the link is severed, the rejected
//! parcel is booked under `/parcels/count/dropped`, and every
//! outstanding future against that peer settles with
//! `TaskError::Disconnected` instead of the whole fabric deadlocking.
//! The returned [`SendError`] names the peer so callers can say *which*
//! link stalled.
//!
//! Counter discipline: the *sending* side bumps `/parcels/count/sent`
//! and `/parcels/bytes/sent` in the writer thread at the moment of
//! delivery; the *receiving* locality bumps `received` when it dispatches
//! the frame. Only parcels proper ([`Frame::is_parcel`]: `Call`/`Reply`)
//! are counted — handshake and teardown control frames are not traffic.

#![deny(clippy::unwrap_used)]

#[cfg(feature = "parcel-reuse")]
use crate::codec::Writer;
use crate::codec::{CodecError, Frame, MAX_FRAME};
use crate::counters::ParcelCounters;
use crate::transport::{LoopbackTransport, SimTransport, TcpTransport, Transport};
use grain_counters::sync::{Condvar, Mutex};
use grain_sim::NetFabric;
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Callback invoked with `(sender_locality, frame_bytes)` for every frame
/// that arrives at a locality.
pub type FrameHandler = Arc<dyn Fn(usize, Vec<u8>) + Send + Sync>;

/// Callback invoked with the peer's locality id when a link to that peer
/// is severed (fired at most once per link).
pub type DisconnectHandler = Arc<dyn Fn(usize) + Send + Sync>;

/// How long a full send queue may stall a sender before the link is
/// declared dead. Generous: hitting this means the peer's reader has not
/// drained *anything* for the whole window.
pub const SEND_TIMEOUT: Duration = Duration::from_secs(10);

/// Default bound on the send queue, in frames.
pub const DEFAULT_QUEUE_CAP: usize = 1024;

/// Why a send did not take the frame. Carries the peer's locality id so
/// callers (and their error messages) can name the lane that failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The link is closed or severed; the peer is unreachable.
    Closed {
        /// Locality id of the unreachable peer.
        peer: usize,
    },
    /// The queue stayed full for the link's send timeout; the link has
    /// been severed to break the stall and the rejected parcel booked as
    /// dropped.
    Backpressure {
        /// Locality id of the peer whose lane stalled.
        peer: usize,
    },
}

impl SendError {
    /// Locality id of the peer the failed send was addressed to.
    pub fn peer(&self) -> usize {
        match self {
            SendError::Closed { peer } | SendError::Backpressure { peer } => *peer,
        }
    }
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::Closed { peer } => write!(f, "link to locality {peer} closed"),
            SendError::Backpressure { peer } => {
                write!(f, "send queue to locality {peer} stalled; link severed")
            }
        }
    }
}

impl std::error::Error for SendError {}

/// Internal queue-level push failure; [`Link::send`] maps this onto
/// [`SendError`] with the peer id attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PushError {
    /// Queue closed or severed.
    Closed,
    /// Queue stayed full past the deadline.
    Timeout,
}

/// Mutable queue state behind the lock.
struct QueueState {
    /// Encoded frames with their "counts as a parcel" flag.
    frames: VecDeque<(Vec<u8>, bool)>,
    /// Total encoded bytes currently queued.
    bytes: usize,
    /// No further sends accepted; the writer drains what is queued.
    closed: bool,
    /// Abrupt teardown: queued frames are discarded, the writer exits.
    severed: bool,
}

/// Bounded MPSC queue feeding one writer thread.
struct SendQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

impl SendQueue {
    fn new(cap: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                frames: VecDeque::new(),
                bytes: 0,
                closed: false,
                severed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        }
    }

    /// Enqueue, blocking while full up to `timeout`.
    fn push(&self, bytes: Vec<u8>, parcel: bool, timeout: Duration) -> Result<(), PushError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            if st.closed || st.severed {
                return Err(PushError::Closed);
            }
            if st.frames.len() < self.cap {
                st.bytes += bytes.len();
                st.frames.push_back((bytes, parcel));
                self.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PushError::Timeout);
            }
            if self.not_full.wait_for(&mut st, deadline - now) {
                // Timed out; loop once more to re-check capacity, then
                // the deadline test above returns Timeout.
            }
        }
    }

    /// Dequeue the next frame; `None` once the queue is drained-and-closed
    /// or severed.
    fn pop(&self) -> Option<(Vec<u8>, bool)> {
        let mut st = self.state.lock();
        loop {
            if st.severed {
                return None;
            }
            if let Some(item) = st.frames.pop_front() {
                st.bytes -= item.0.len();
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            self.not_empty.wait(&mut st);
        }
    }

    fn len(&self) -> usize {
        self.state.lock().frames.len()
    }

    fn queued_bytes(&self) -> usize {
        self.state.lock().bytes
    }

    /// Dequeue without blocking: `None` when the queue is momentarily
    /// empty, drained-and-closed, or severed. The writer loop uses this
    /// to detect queue-empty moments and flush coalesced bytes before
    /// blocking in [`SendQueue::pop`].
    #[cfg(feature = "parcel-reuse")]
    fn try_pop(&self) -> Option<(Vec<u8>, bool)> {
        let mut st = self.state.lock();
        if st.severed {
            return None;
        }
        let item = st.frames.pop_front()?;
        st.bytes -= item.0.len();
        self.not_full.notify_one();
        Some(item)
    }

    /// Stop accepting sends; the writer drains what is queued, then exits.
    fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Abrupt teardown: discard queued frames and release all waiters.
    fn sever(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        st.severed = true;
        st.frames.clear();
        st.bytes = 0;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Transport-specific teardown invoked on sever: shuts the TCP socket
/// down to unblock reader/writer syscalls, or severs the fabric pair so
/// in-flight simulated frames are ledgered. Must be idempotent — sever
/// can race with partner propagation.
type SeverHook = Box<dyn Fn() + Send + Sync>;

/// Recycled frame buffers for one link's send path (feature
/// `parcel-reuse`): `send`/`try_send` encode into a pooled buffer, and
/// the writer loop returns it once the transport has copied the bytes
/// onward. Bounded in count and retained capacity so one jumbo frame
/// can't pin memory forever.
#[cfg(feature = "parcel-reuse")]
struct BufPool {
    bufs: Mutex<Vec<Vec<u8>>>,
}

#[cfg(feature = "parcel-reuse")]
impl BufPool {
    /// More pooled buffers than frames that can be "in hand" at once
    /// (senders encoding + writer returning) is waste; the send queue
    /// holds its frames' allocations itself.
    const MAX_POOLED: usize = 32;
    /// Don't retain jumbo-frame allocations.
    const MAX_RETAINED_CAP: usize = 64 * 1024;

    fn new() -> Self {
        Self {
            bufs: Mutex::new(Vec::new()),
        }
    }

    /// A cleared buffer, recycled when available.
    fn take(&self) -> Vec<u8> {
        self.bufs.lock().pop().unwrap_or_default()
    }

    /// Return a buffer for reuse.
    fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() > Self::MAX_RETAINED_CAP {
            return;
        }
        buf.clear();
        let mut bufs = self.bufs.lock();
        if bufs.len() < Self::MAX_POOLED {
            bufs.push(buf);
        }
    }
}

/// One directed lane from the owning locality to `peer`.
///
/// Created via [`Link::tcp`], [`loopback_pair`], or [`sim_pair`]; send
/// frames with [`Link::send`]; tear down with [`Link::close`] (graceful
/// drain) or [`Link::sever`] (abrupt, fires the disconnect handler).
pub struct Link {
    /// Locality id of the remote end.
    peer: usize,
    queue: Arc<SendQueue>,
    counters: Arc<ParcelCounters>,
    on_disconnect: DisconnectHandler,
    disconnect_fired: AtomicBool,
    /// The reverse-direction link of a loopback/sim pair; severing one
    /// side severs the other so both localities observe the disconnect.
    partner: Mutex<Weak<Link>>,
    /// Transport teardown run on sever (socket shutdown / fabric sever).
    sever_hook: Option<SeverHook>,
    /// Send-stall budget in nanoseconds; defaults to [`SEND_TIMEOUT`].
    /// Tunable (see [`Link::set_send_timeout`]) so stall tests and chaos
    /// harnesses don't wait out the production-sized window.
    send_timeout_ns: AtomicU64,
    /// Recycled frame buffers for this link's send path.
    #[cfg(feature = "parcel-reuse")]
    pool: BufPool,
}

impl Link {
    fn new_inner(
        peer: usize,
        counters: Arc<ParcelCounters>,
        on_disconnect: DisconnectHandler,
        cap: usize,
        sever_hook: Option<SeverHook>,
    ) -> Arc<Link> {
        Arc::new(Link {
            peer,
            queue: Arc::new(SendQueue::new(cap)),
            counters,
            on_disconnect,
            disconnect_fired: AtomicBool::new(false),
            partner: Mutex::new(Weak::new()),
            sever_hook,
            send_timeout_ns: AtomicU64::new(SEND_TIMEOUT.as_nanos() as u64),
            #[cfg(feature = "parcel-reuse")]
            pool: BufPool::new(),
        })
    }

    /// Encode `frame` for this link: into a pooled, recycled buffer
    /// under `parcel-reuse`, a fresh allocation otherwise.
    #[cfg(feature = "parcel-reuse")]
    fn encode_frame(&self, frame: &Frame) -> Vec<u8> {
        let mut w = Writer::from_vec(self.pool.take());
        frame.encode_into(&mut w);
        w.into_vec()
    }

    #[cfg(not(feature = "parcel-reuse"))]
    fn encode_frame(&self, frame: &Frame) -> Vec<u8> {
        frame.encode()
    }

    /// Wrap an already-handshaken TCP socket as a link to `peer`.
    ///
    /// Spawns the writer thread (draining the send queue into the socket)
    /// and a reader thread (delivering inbound frames to `incoming`).
    /// Either thread severing the link fires `on_disconnect(peer)` exactly
    /// once.
    pub fn tcp(
        peer: usize,
        stream: TcpStream,
        incoming: FrameHandler,
        on_disconnect: DisconnectHandler,
        counters: Arc<ParcelCounters>,
        cap: usize,
    ) -> io::Result<Arc<Link>> {
        let writer_stream = stream.try_clone()?;
        let reader_stream = stream.try_clone()?;
        let hook: SeverHook = Box::new(move || {
            let _ = stream.shutdown(Shutdown::Both);
        });
        let link = Link::new_inner(peer, counters, on_disconnect, cap, Some(hook));

        {
            let link = Arc::clone(&link);
            std::thread::Builder::new()
                .name(format!("grain-net-tx-{peer}"))
                .spawn(move || writer_loop(link, TcpTransport::new(writer_stream)))?;
        }
        {
            let link = Arc::clone(&link);
            std::thread::Builder::new()
                .name(format!("grain-net-rx-{peer}"))
                .spawn(move || reader_loop(link, reader_stream, incoming))?;
        }
        Ok(link)
    }

    /// Locality id of the remote end of this link.
    pub fn peer(&self) -> usize {
        self.peer
    }

    /// Frames currently waiting in the send queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Encoded bytes currently waiting in the send queue.
    pub fn queued_bytes(&self) -> usize {
        self.queue.queued_bytes()
    }

    /// Replace the send-stall budget (default [`SEND_TIMEOUT`]).
    pub fn set_send_timeout(&self, timeout: Duration) {
        self.send_timeout_ns
            .store(timeout.as_nanos() as u64, Ordering::Relaxed);
    }

    fn send_timeout(&self) -> Duration {
        Duration::from_nanos(self.send_timeout_ns.load(Ordering::Relaxed))
    }

    /// Encode `frame` and enqueue it for delivery.
    ///
    /// Blocks while the queue is full, up to the link's send timeout; a
    /// stall that long severs the link (see module docs), books the
    /// rejected parcel under `/parcels/count/dropped`, and returns
    /// [`SendError::Backpressure`] naming the peer.
    pub fn send(&self, frame: &Frame) -> Result<(), SendError> {
        let bytes = self.encode_frame(frame);
        let parcel = frame.is_parcel();
        match self.queue.push(bytes, parcel, self.send_timeout()) {
            Ok(()) => Ok(()),
            Err(PushError::Timeout) => {
                if parcel {
                    self.counters.dropped.incr();
                }
                self.sever();
                Err(SendError::Backpressure { peer: self.peer })
            }
            Err(PushError::Closed) => Err(SendError::Closed { peer: self.peer }),
        }
    }

    /// Enqueue without blocking and without severing on a full queue.
    ///
    /// Used by liveness probes: a ping that doesn't fit is simply not
    /// sent this round — a congested-but-draining link must not be
    /// declared dead by its own monitor.
    pub fn try_send(&self, frame: &Frame) -> Result<(), SendError> {
        let bytes = self.encode_frame(frame);
        let parcel = frame.is_parcel();
        match self.queue.push(bytes, parcel, Duration::ZERO) {
            Ok(()) => Ok(()),
            Err(PushError::Timeout) => Err(SendError::Backpressure { peer: self.peer }),
            Err(PushError::Closed) => Err(SendError::Closed { peer: self.peer }),
        }
    }

    /// Graceful shutdown: no further sends are accepted, queued frames
    /// are still delivered, then the writer exits. Does not fire the
    /// disconnect handler — the caller initiated this.
    pub fn close(&self) {
        self.queue.close();
    }

    /// Abrupt teardown: discard queued frames, run the transport's sever
    /// hook (socket shutdown / fabric pair sever), sever the partner
    /// direction (if any), and fire the disconnect handler (once).
    pub fn sever(&self) {
        self.sever_inner(true);
    }

    fn sever_inner(&self, propagate: bool) {
        self.queue.sever();
        if let Some(hook) = &self.sever_hook {
            hook();
        }
        if propagate {
            let partner = self.partner.lock().upgrade();
            if let Some(p) = partner {
                p.sever_inner(false);
            }
        }
        if !self.disconnect_fired.swap(true, Ordering::SeqCst) {
            (self.on_disconnect)(self.peer);
        }
    }
}

/// One end of an in-process link pair: identity plus the inbound plumbing
/// of the locality that owns this end.
pub struct EndPoint {
    /// Locality id of this end.
    pub id: usize,
    /// Where frames addressed to this end are delivered.
    pub incoming: FrameHandler,
    /// Fired (with the peer's id) when the pair is severed.
    pub on_disconnect: DisconnectHandler,
    /// This end's parcel counters (bumped on *send* by its outbound link).
    pub counters: Arc<ParcelCounters>,
}

/// Build both directions of an in-process link between localities `a` and
/// `b`. Returns `(a_to_b, b_to_a)`. Severing either direction severs the
/// other, so both localities observe the disconnect — exactly like a TCP
/// socket dying.
pub fn loopback_pair(a: EndPoint, b: EndPoint, cap: usize) -> (Arc<Link>, Arc<Link>) {
    let a_to_b = Link::new_inner(b.id, Arc::clone(&a.counters), a.on_disconnect, cap, None);
    let b_to_a = Link::new_inner(a.id, Arc::clone(&b.counters), b.on_disconnect, cap, None);
    *a_to_b.partner.lock() = Arc::downgrade(&b_to_a);
    *b_to_a.partner.lock() = Arc::downgrade(&a_to_b);

    spawn_writer(&a_to_b, LoopbackTransport::new(b.incoming, a.id), a.id);
    spawn_writer(&b_to_a, LoopbackTransport::new(a.incoming, b.id), b.id);
    (a_to_b, b_to_a)
}

/// Build both directions of a *simulated* link between localities `a` and
/// `b`, routed through `fabric`. Returns `(a_to_b, b_to_a)`.
///
/// Each end's `incoming` handler is registered as the fabric sink for its
/// locality id, so frames arrive whenever the fabric's virtual clock says
/// they do — possibly late, duplicated, reordered, or never. Severing
/// either direction severs the fabric pair (ledgering in-flight frames as
/// `in_flight_at_sever`) and the partner link, mirroring a socket dying.
pub fn sim_pair(
    fabric: &Arc<NetFabric>,
    a: EndPoint,
    b: EndPoint,
    cap: usize,
) -> (Arc<Link>, Arc<Link>) {
    fabric.register_sink(a.id, Arc::clone(&a.incoming));
    fabric.register_sink(b.id, Arc::clone(&b.incoming));

    let hook_ab: SeverHook = {
        let fabric = Arc::clone(fabric);
        let (a_id, b_id) = (a.id, b.id);
        Box::new(move || fabric.sever_pair(a_id, b_id))
    };
    let hook_ba: SeverHook = {
        let fabric = Arc::clone(fabric);
        let (a_id, b_id) = (a.id, b.id);
        Box::new(move || fabric.sever_pair(a_id, b_id))
    };

    let a_to_b = Link::new_inner(
        b.id,
        Arc::clone(&a.counters),
        a.on_disconnect,
        cap,
        Some(hook_ab),
    );
    let b_to_a = Link::new_inner(
        a.id,
        Arc::clone(&b.counters),
        b.on_disconnect,
        cap,
        Some(hook_ba),
    );
    *a_to_b.partner.lock() = Arc::downgrade(&b_to_a);
    *b_to_a.partner.lock() = Arc::downgrade(&a_to_b);

    spawn_writer(
        &a_to_b,
        SimTransport::new(Arc::clone(fabric), a.id, b.id, Arc::clone(&a.counters)),
        a.id,
    );
    spawn_writer(
        &b_to_a,
        SimTransport::new(Arc::clone(fabric), b.id, a.id, Arc::clone(&b.counters)),
        b.id,
    );
    (a_to_b, b_to_a)
}

fn spawn_writer<T: Transport>(link: &Arc<Link>, transport: T, sender_id: usize) {
    let link = Arc::clone(link);
    let name = format!("grain-net-tx-{sender_id}-to-{}", link.peer);
    std::thread::Builder::new()
        .name(name)
        .spawn(move || writer_loop(link, transport))
        .expect("failed to spawn link writer thread");
}

/// Drain the send queue into the transport until closed/severed, bumping
/// the owning side's sent counters per delivered parcel. A transport
/// refusal severs the link.
///
/// Under `parcel-reuse` the loop drains opportunistically: frames are
/// taken without blocking while the queue has them (letting a
/// coalescing transport batch a burst into one write), the transport is
/// flushed the moment the queue goes empty (so a buffered frame never
/// waits on future traffic), and buffers the transport hands back are
/// recycled into the link's pool. Per-parcel counters are bumped
/// identically in both modes — coalescing changes syscall granularity,
/// never the books.
fn writer_loop<T: Transport>(link: Arc<Link>, mut transport: T) {
    loop {
        #[cfg(feature = "parcel-reuse")]
        let item = match link.queue.try_pop() {
            Some(item) => Some(item),
            None => {
                if transport.flush().is_err() {
                    link.sever();
                    return;
                }
                link.queue.pop()
            }
        };
        #[cfg(not(feature = "parcel-reuse"))]
        let item = link.queue.pop();
        let Some((bytes, parcel)) = item else { break };
        let n = bytes.len();
        match transport.deliver(bytes, parcel) {
            Err(_) => {
                link.sever();
                return;
            }
            Ok(returned) => {
                #[cfg(feature = "parcel-reuse")]
                if let Some(buf) = returned {
                    link.pool.put(buf);
                }
                #[cfg(not(feature = "parcel-reuse"))]
                drop(returned);
            }
        }
        if parcel {
            link.counters.sent.incr();
            link.counters.bytes_sent.add(n as u64);
        }
    }
    // Graceful drain complete: let the transport flush (e.g. TCP pushes
    // any coalesced bytes, then shuts its write side down so the peer
    // sees a trailing Goodbye, then EOF).
    transport.finish();
}

/// Read length-prefixed frames off the socket and deliver the raw bytes
/// to `incoming` until EOF/error, then sever the link.
fn reader_loop(link: Arc<Link>, mut stream: TcpStream, incoming: FrameHandler) {
    loop {
        match read_raw_frame(&mut stream) {
            Ok(bytes) => (incoming)(link.peer, bytes),
            Err(_) => {
                link.sever();
                return;
            }
        }
    }
}

/// Read one length-prefixed frame's raw bytes from `stream`.
fn read_raw_frame(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("inbound frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf)?;
    Ok(buf)
}

/// Write one frame, length-prefixed, directly to a socket. Used during
/// the bootstrap handshake, before the link's writer thread exists.
pub fn write_frame(stream: &mut TcpStream, frame: &Frame) -> io::Result<()> {
    let bytes = frame.encode();
    let len = (bytes.len() as u32).to_le_bytes();
    stream.write_all(&len)?;
    stream.write_all(&bytes)
}

/// Read and decode one frame directly from a socket (bootstrap handshake
/// counterpart of [`write_frame`]).
pub fn read_frame(stream: &mut TcpStream) -> io::Result<Frame> {
    let bytes = read_raw_frame(stream)?;
    Frame::decode(&bytes).map_err(|e: CodecError| {
        io::Error::new(io::ErrorKind::InvalidData, format!("bad frame: {e}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Frame;
    use grain_sim::NetPlan;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    fn counters() -> Arc<ParcelCounters> {
        Arc::new(ParcelCounters::new())
    }

    fn endpoint(
        id: usize,
        tx: mpsc::Sender<(usize, Vec<u8>)>,
        disconnects: Arc<AtomicUsize>,
        ctrs: Arc<ParcelCounters>,
    ) -> EndPoint {
        EndPoint {
            id,
            incoming: Arc::new(move |from, bytes| {
                let _ = tx.send((from, bytes));
            }),
            on_disconnect: Arc::new(move |_| {
                disconnects.fetch_add(1, Ordering::SeqCst);
            }),
            counters: ctrs,
        }
    }

    #[test]
    fn loopback_delivers_frames_and_counts_parcels() {
        let (tx_a, _rx_a) = mpsc::channel();
        let (tx_b, rx_b) = mpsc::channel();
        let dis = Arc::new(AtomicUsize::new(0));
        let ca = counters();
        let cb = counters();
        let (a_to_b, _b_to_a) = loopback_pair(
            endpoint(0, tx_a, Arc::clone(&dis), Arc::clone(&ca)),
            endpoint(1, tx_b, Arc::clone(&dis), cb),
            16,
        );

        let call = Frame::Call {
            call_id: 7,
            origin: 0,
            action: "echo".into(),
            args: vec![1, 2, 3],
        };
        a_to_b.send(&call).expect("send");
        let hello = Frame::PeerHello { locality_id: 0 };
        a_to_b.send(&hello).expect("send");

        let (from, bytes) = rx_b.recv_timeout(Duration::from_secs(5)).expect("frame");
        assert_eq!(from, 0);
        assert_eq!(Frame::decode(&bytes).expect("decode"), call);
        let (_, bytes) = rx_b.recv_timeout(Duration::from_secs(5)).expect("frame");
        assert_eq!(Frame::decode(&bytes).expect("decode"), hello);

        // Writer-thread delivery is asynchronous; poll briefly.
        let deadline = Instant::now() + Duration::from_secs(5);
        while ca.sent.get() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Only the Call counts as a parcel, not the PeerHello.
        assert_eq!(ca.sent.get(), 1);
        assert_eq!(ca.bytes_sent.get(), call.encode().len() as u64);
        assert_eq!(dis.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn severing_one_side_fires_both_disconnect_handlers_once() {
        let (tx_a, _rx_a) = mpsc::channel();
        let (tx_b, _rx_b) = mpsc::channel();
        let dis_a = Arc::new(AtomicUsize::new(0));
        let dis_b = Arc::new(AtomicUsize::new(0));
        let (a_to_b, b_to_a) = loopback_pair(
            endpoint(0, tx_a, Arc::clone(&dis_a), counters()),
            endpoint(1, tx_b, Arc::clone(&dis_b), counters()),
            16,
        );

        a_to_b.sever();
        a_to_b.sever(); // idempotent
        assert_eq!(dis_a.load(Ordering::SeqCst), 1);
        assert_eq!(dis_b.load(Ordering::SeqCst), 1);
        assert_eq!(
            b_to_a.send(&Frame::PeerHello { locality_id: 1 }),
            Err(SendError::Closed { peer: 0 })
        );
    }

    #[test]
    fn push_times_out_when_queue_stays_full() {
        let q = SendQueue::new(1);
        q.push(vec![0u8], false, Duration::from_millis(10))
            .expect("first push fits");
        let err = q
            .push(vec![1u8], false, Duration::from_millis(50))
            .expect_err("second push must time out");
        assert_eq!(err, PushError::Timeout);
    }

    #[test]
    fn backpressure_severs_names_peer_and_books_the_drop() {
        // The receiving handler blocks until released, so the writer
        // thread stalls mid-delivery and the 1-deep queue stays full.
        let release = Arc::new(AtomicBool::new(false));
        let gate = Arc::clone(&release);
        let (tx_a, _rx_a) = mpsc::channel();
        let dis = Arc::new(AtomicUsize::new(0));
        let ca = counters();
        let blocking = EndPoint {
            id: 1,
            incoming: Arc::new(move |_, _| {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }),
            on_disconnect: Arc::new(|_| {}),
            counters: counters(),
        };
        let (a_to_b, _b_to_a) = loopback_pair(
            endpoint(0, tx_a, Arc::clone(&dis), Arc::clone(&ca)),
            blocking,
            1,
        );
        a_to_b.set_send_timeout(Duration::from_millis(50));

        let call = |id| Frame::Call {
            call_id: id,
            origin: 0,
            action: "x".into(),
            args: vec![],
        };
        // First frame is popped by the writer (now stuck in the handler);
        // the second fills the queue; the third hits backpressure.
        a_to_b.send(&call(1)).expect("first send");
        let deadline = Instant::now() + Duration::from_secs(5);
        while a_to_b.queue_len() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        a_to_b.send(&call(2)).expect("second send fills queue");
        let err = a_to_b.send(&call(3)).expect_err("third send must stall");
        assert_eq!(err, SendError::Backpressure { peer: 1 });
        assert_eq!(err.peer(), 1);
        assert_eq!(ca.dropped.get(), 1, "rejected parcel booked as dropped");
        assert_eq!(dis.load(Ordering::SeqCst), 1, "stall severed the link");
        release.store(true, Ordering::SeqCst);
    }

    #[test]
    fn sim_pair_delivers_through_the_fabric() {
        let fabric = NetFabric::new(NetPlan::clean(11));
        let (tx_a, _rx_a) = mpsc::channel();
        let (tx_b, rx_b) = mpsc::channel();
        let dis = Arc::new(AtomicUsize::new(0));
        let ca = counters();
        let (a_to_b, _b_to_a) = sim_pair(
            &fabric,
            endpoint(0, tx_a, Arc::clone(&dis), Arc::clone(&ca)),
            endpoint(1, tx_b, Arc::clone(&dis), counters()),
            16,
        );

        let call = Frame::Call {
            call_id: 5,
            origin: 0,
            action: "echo".into(),
            args: vec![4, 5],
        };
        a_to_b.send(&call).expect("send");
        let (from, bytes) = rx_b.recv_timeout(Duration::from_secs(5)).expect("frame");
        assert_eq!(from, 0);
        assert_eq!(Frame::decode(&bytes).expect("decode"), call);

        let deadline = Instant::now() + Duration::from_secs(5);
        while ca.sent.get() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(ca.sent.get(), 1);
        assert_eq!(ca.dropped.get(), 0);

        // Severing one direction severs the fabric pair and the partner.
        a_to_b.sever();
        assert_eq!(dis.load(Ordering::SeqCst), 2);
        assert!(fabric.wait_drained(Duration::from_secs(5)));
        fabric.stop();
    }

    #[test]
    fn tcp_pair_roundtrips_frames() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");

        let (tx_srv, rx_srv) = mpsc::channel::<(usize, Vec<u8>)>();
        let dis = Arc::new(AtomicUsize::new(0));
        let dis2 = Arc::clone(&dis);
        let srv_link = Link::tcp(
            1,
            server,
            Arc::new(move |from, bytes| {
                let _ = tx_srv.send((from, bytes));
            }),
            Arc::new(move |_| {
                dis2.fetch_add(1, Ordering::SeqCst);
            }),
            counters(),
            16,
        )
        .expect("server link");

        let (tx_cli, _rx_cli) = mpsc::channel::<(usize, Vec<u8>)>();
        let cli_link = Link::tcp(
            0,
            client,
            Arc::new(move |from, bytes| {
                let _ = tx_cli.send((from, bytes));
            }),
            Arc::new(|_| {}),
            counters(),
            16,
        )
        .expect("client link");

        let reply = Frame::Reply {
            call_id: 42,
            outcome: Ok(vec![9, 9]),
        };
        cli_link.send(&reply).expect("send");
        let (from, bytes) = rx_srv.recv_timeout(Duration::from_secs(5)).expect("frame");
        assert_eq!(from, 1);
        assert_eq!(Frame::decode(&bytes).expect("decode"), reply);

        // Dropping the client's socket (sever) must fire the server's
        // disconnect handler via reader EOF.
        cli_link.sever();
        let deadline = Instant::now() + Duration::from_secs(5);
        while dis.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(dis.load(Ordering::SeqCst), 1);
        drop(srv_link);
    }
}
