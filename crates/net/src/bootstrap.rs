//! World bootstrap: wiring localities together.
//!
//! Two modes share the locality/link machinery above them:
//!
//! * [`Fabric::loopback`] — every locality lives in *this* process,
//!   connected by in-memory loopback links. No sockets, no ports, fully
//!   hermetic and deterministic: this is what tests and single-machine
//!   benchmarks use. `Fabric::kill` severs one locality abruptly,
//!   emulating a crashed process. [`Fabric::chaotic`] is the same world
//!   with the links routed through a seeded [`grain_sim::NetFabric`]:
//!   identical API, but frames can now be delayed, dropped, duplicated,
//!   reordered, or partitioned according to the [`NetPlan`] — the
//!   harness for every chaos test and the `netstorm` binary.
//! * [`tcp_root`] / [`tcp_join`] — the multi-process mode. Locality 0
//!   (the *root*, HPX's console locality) binds a listener; each joiner
//!   dials it, sends `Hello{listen_addr}`, and receives
//!   `Welcome{locality_id, world, peers}` assigning its id and listing
//!   the peers that joined before it. The joiner then dials each listed
//!   peer directly (`PeerHello{id}`), producing a full mesh without the
//!   root relaying traffic.
//!
//! Id assignment is strictly root-ordered (join order), so a world of
//! size `W` always ends up with ids `0..W` — code addressing
//! "locality `k` of `W`" works identically in both modes.

use crate::codec::Frame;
use crate::locality::{Locality, NetConfig};
use crate::parcelport::{self, EndPoint, Link, DEFAULT_QUEUE_CAP};
use grain_counters::sync::Mutex;
use grain_runtime::{Runtime, RuntimeConfig};
use grain_sim::{NetFabric, NetPlan};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An in-process world of loopback- or chaos-connected localities.
pub struct Fabric {
    localities: Vec<Locality>,
    /// The simulated network, when built with [`Fabric::chaotic`].
    net: Option<Arc<NetFabric>>,
}

impl Fabric {
    /// Build a world of `world` localities in this process, full-mesh
    /// connected with loopback links. `mk_config` produces the runtime
    /// configuration for each locality (its `locality_id` is overridden
    /// to the slot index).
    pub fn loopback(world: usize, mk_config: impl Fn(usize) -> RuntimeConfig) -> Self {
        Self::build(world, None, |_| NetConfig::default(), mk_config)
    }

    /// Build a world of `world` localities full-mesh connected *through a
    /// simulated network* driven by `plan`. `mk_net` produces each
    /// locality's robustness knobs ([`NetConfig`]) — chaos plans that
    /// drop or blackhole frames need call deadlines and/or liveness
    /// monitoring armed, or futures whose frames are destroyed would
    /// wait forever.
    ///
    /// The same seed replays the same network weather: frame fates are a
    /// pure function of `(plan.seed, src, dst, frame identity)`, not of
    /// thread timing.
    pub fn chaotic(
        world: usize,
        plan: NetPlan,
        mk_net: impl Fn(usize) -> NetConfig,
        mk_config: impl Fn(usize) -> RuntimeConfig,
    ) -> Self {
        Self::build(world, Some(NetFabric::new(plan)), mk_net, mk_config)
    }

    fn build(
        world: usize,
        net: Option<Arc<NetFabric>>,
        mk_net: impl Fn(usize) -> NetConfig,
        mk_config: impl Fn(usize) -> RuntimeConfig,
    ) -> Self {
        assert!(world >= 1, "a world needs at least one locality");
        let localities: Vec<Locality> = (0..world)
            .map(|i| {
                let mut cfg = mk_config(i);
                cfg.locality_id = i;
                let rt = Arc::new(Runtime::new(cfg));
                Locality::with_config(rt, i, world, mk_net(i)).expect("register parcel counters")
            })
            .collect();
        if let Some(fabric) = &net {
            fabric
                .register(localities[0].runtime().registry())
                .expect("register fabric counters");
        }
        for i in 0..world {
            for j in (i + 1)..world {
                let end = |k: usize| EndPoint {
                    id: k,
                    incoming: localities[k].frame_handler(),
                    on_disconnect: localities[k].disconnect_handler(),
                    counters: Arc::clone(localities[k].parcels()),
                };
                let (i_to_j, j_to_i) = match &net {
                    Some(fabric) => parcelport::sim_pair(fabric, end(i), end(j), DEFAULT_QUEUE_CAP),
                    None => parcelport::loopback_pair(end(i), end(j), DEFAULT_QUEUE_CAP),
                };
                localities[i].add_link(i_to_j);
                localities[j].add_link(j_to_i);
            }
        }
        Self { localities, net }
    }

    /// The simulated network, when this world was built with
    /// [`Fabric::chaotic`] — for ledger assertions, partitions, pausing.
    pub fn net(&self) -> Option<&Arc<NetFabric>> {
        self.net.as_ref()
    }

    /// Number of localities in this world (including killed ones).
    pub fn world(&self) -> usize {
        self.localities.len()
    }

    /// The locality in slot `i`.
    pub fn locality(&self, i: usize) -> &Locality {
        &self.localities[i]
    }

    /// Abruptly kill locality `i`: sever all its links without a
    /// goodbye, exactly as if its process crashed. Every outstanding
    /// remote future addressed to it — on any surviving locality —
    /// settles with `TaskError::Disconnected`.
    pub fn kill(&self, i: usize) {
        self.localities[i].kill();
    }

    /// Graceful teardown: every locality says goodbye and drains its
    /// queues, then every runtime finishes its local work. A chaotic
    /// world also drains and stops the simulated network (its pump
    /// thread holds an `Arc`, so an unstopped fabric would linger).
    pub fn shutdown(&self) {
        for loc in &self.localities {
            loc.shutdown();
        }
        for loc in &self.localities {
            loc.runtime().wait_idle();
        }
        if let Some(fabric) = &self.net {
            fabric.wait_quiescent(Duration::from_secs(5));
            fabric.stop();
        }
    }
}

/// A locality bootstrapped over TCP, plus its listener plumbing.
pub struct TcpNode {
    locality: Locality,
    listen_addr: String,
    stop: Arc<AtomicBool>,
}

impl TcpNode {
    /// The locality this node hosts.
    pub fn locality(&self) -> &Locality {
        &self.locality
    }

    /// The address this node accepts peer connections on.
    pub fn listen_addr(&self) -> &str {
        &self.listen_addr
    }

    /// Block until links to all `world - 1` peers exist, up to `timeout`.
    /// Returns `false` on timeout.
    pub fn wait_for_world(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let want = self.locality.world() - 1;
        while self.locality.connected_peers().len() < want {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Stop the accept loop (graceful node teardown).
    pub fn stop_listening(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway self-connection.
        let _ = TcpStream::connect(&self.listen_addr);
    }
}

impl Drop for TcpNode {
    fn drop(&mut self) {
        self.stop_listening();
    }
}

/// Start the root (locality 0) of a `world`-locality TCP world, listening
/// on `bind` (e.g. `"127.0.0.1:0"`). Returns once the listener is live;
/// call [`TcpNode::wait_for_world`] to block until all peers joined.
pub fn tcp_root(bind: &str, world: usize, mut cfg: RuntimeConfig) -> io::Result<TcpNode> {
    assert!(world >= 1, "a world needs at least one locality");
    cfg.locality_id = 0;
    let rt = Arc::new(Runtime::new(cfg));
    let locality = Locality::new(rt, 0, world)
        .map_err(|e| io::Error::other(format!("counter registration failed: {e}")))?;

    let listener = TcpListener::bind(bind)?;
    let listen_addr = listener.local_addr()?.to_string();
    let stop = Arc::new(AtomicBool::new(false));
    {
        let locality = locality.clone();
        let stop = Arc::clone(&stop);
        let world = world as u32;
        std::thread::Builder::new()
            .name("grain-net-root-accept".to_string())
            .spawn(move || {
                // (id, listen_addr) of everyone joined so far, handed to
                // each newcomer so it can dial them directly.
                let joined: Mutex<Vec<(u32, String)>> = Mutex::new(Vec::new());
                let mut next_id: u32 = 1;
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(mut stream) = conn else { continue };
                    match parcelport::read_frame(&mut stream) {
                        Ok(Frame::Hello { listen_addr }) => {
                            let id = next_id;
                            next_id += 1;
                            let peers = joined.lock().clone();
                            let welcome = Frame::Welcome {
                                locality_id: id,
                                world,
                                peers,
                            };
                            if parcelport::write_frame(&mut stream, &welcome).is_err() {
                                continue;
                            }
                            joined.lock().push((id, listen_addr));
                            if let Ok(link) = tcp_link(&locality, id as usize, stream) {
                                locality.add_link(link);
                            }
                        }
                        // Anything else on the root port is a stray
                        // connection (including our own stop poke).
                        _ => continue,
                    }
                }
            })?;
    }
    Ok(TcpNode {
        locality,
        listen_addr,
        stop,
    })
}

/// Join the world whose root listens at `root_addr`. Binds a listener of
/// its own (for peers that join later), handshakes with the root to get
/// an id, then dials every previously-joined peer.
pub fn tcp_join(root_addr: &str, mut cfg: RuntimeConfig) -> io::Result<TcpNode> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let listen_addr = listener.local_addr()?.to_string();

    // Handshake first: the assigned id decides the runtime's counter
    // namespace, so the runtime cannot exist before the Welcome.
    let mut root_stream = TcpStream::connect(root_addr)?;
    parcelport::write_frame(
        &mut root_stream,
        &Frame::Hello {
            listen_addr: listen_addr.clone(),
        },
    )?;
    let (my_id, world, peers) = match parcelport::read_frame(&mut root_stream)? {
        Frame::Welcome {
            locality_id,
            world,
            peers,
        } => (locality_id as usize, world as usize, peers),
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Welcome from root, got {other:?}"),
            ))
        }
    };

    cfg.locality_id = my_id;
    let rt = Arc::new(Runtime::new(cfg));
    let locality = Locality::new(rt, my_id, world)
        .map_err(|e| io::Error::other(format!("counter registration failed: {e}")))?;

    // Link to the root over the handshake socket.
    locality.add_link(tcp_link(&locality, 0, root_stream)?);

    // Dial everyone who joined before us.
    for (peer_id, peer_addr) in peers {
        let mut stream = TcpStream::connect(&peer_addr)?;
        parcelport::write_frame(
            &mut stream,
            &Frame::PeerHello {
                locality_id: my_id as u32,
            },
        )?;
        locality.add_link(tcp_link(&locality, peer_id as usize, stream)?);
    }

    // Accept everyone who joins after us.
    let stop = Arc::new(AtomicBool::new(false));
    {
        let locality = locality.clone();
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name(format!("grain-net-accept-{my_id}"))
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(mut stream) = conn else { continue };
                    match parcelport::read_frame(&mut stream) {
                        Ok(Frame::PeerHello { locality_id }) => {
                            if let Ok(link) = tcp_link(&locality, locality_id as usize, stream) {
                                locality.add_link(link);
                            }
                        }
                        _ => continue,
                    }
                }
            })?;
    }
    Ok(TcpNode {
        locality,
        listen_addr,
        stop,
    })
}

/// Wrap an already-handshaken socket as a link owned by `locality`.
fn tcp_link(locality: &Locality, peer: usize, stream: TcpStream) -> io::Result<Arc<Link>> {
    Link::tcp(
        peer,
        stream,
        locality.frame_handler(),
        locality.disconnect_handler(),
        Arc::clone(locality.parcels()),
        DEFAULT_QUEUE_CAP,
    )
}
