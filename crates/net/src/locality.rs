//! A locality: one runtime participating in a distributed world.
//!
//! Mirrors HPX's locality concept. Each process (or, in loopback mode,
//! each [`crate::bootstrap::Fabric`] slot) owns one [`Locality`]: a
//! scheduler plus
//!
//! * an **action registry** — named handlers a peer may invoke;
//! * a **link table** — one [`Link`] per reachable peer;
//! * a **pending-call table** — outstanding [`Frame::Call`]s awaiting
//!   their [`Frame::Reply`], each holding the settler for the caller's
//!   future.
//!
//! [`Locality::async_remote`] is the distributed analog of
//! `Runtime::async_call`: it serializes the arguments, ships a `Call`
//! parcel, and returns a `SharedFuture<R>` settled by the reply. On the
//! destination the action body runs as a *first-class task* on that
//! locality's scheduler — same priorities, same counters, same panic
//! isolation as local work. A remote panic therefore comes back as
//! [`TaskError::Panicked`] (message included), never as a hang; a peer
//! dying settles every future still addressed to it with
//! [`TaskError::Disconnected`].
//!
//! Every failure is a settled error value. The pending-call table is the
//! single point of truth: whoever removes an entry (reply dispatch, send
//! failure, call deadline, peer disconnect) settles it, so each call
//! settles **exactly once** no matter how the race between reply,
//! timeout, and disconnect resolves — and the `calls/issued` vs
//! `calls/settled` counters prove it at quiescence instead of sampling.
//!
//! # Chaos hardening
//!
//! A link over a chaotic transport (see [`crate::parcelport::sim_pair`])
//! can duplicate, reorder, delay, drop, or silently blackhole frames.
//! [`NetConfig`] arms the defenses, all off by default:
//!
//! * **Idempotent dispatch** — every inbound `Call` passes a bounded
//!   per-origin [`DedupWindow`] keyed on `call_id` (which each origin
//!   allocates monotonically, so it doubles as a per-peer sequence
//!   number). A duplicated `Call` is counted under
//!   `/parcels/count/deduped` and *not* re-executed. A duplicated or
//!   post-settle `Reply` misses the pending table and is likewise
//!   counted, never double-settled.
//! * **Call deadlines** — `call_deadline` bounds how long a pending call
//!   may wait; a dropped request or reply settles the caller's future
//!   with [`TaskError::Timeout`] instead of hanging forever.
//! * **Liveness** — `liveness_deadline` arms a monitor thread that pings
//!   peers every `ping_interval` and severs any link silent past the
//!   deadline, converting a blackholed peer into an ordinary
//!   disconnect (`TaskError::Disconnected`, sweep of its pending calls).

#![deny(clippy::unwrap_used)]

use crate::codec::{self, Frame, Wire, WireFault};
use crate::counters::ParcelCounters;
use crate::parcelport::{DisconnectHandler, FrameHandler, Link};
use grain_counters::sync::{Mutex, RwLock};
use grain_counters::RegistryError;
use grain_runtime::{channel, Runtime, SharedFuture, TaskError};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Type-erased action handler: decode the argument bytes, start the work,
/// hand back a future of the *encoded* result. `Err(WireFault)` reports a
/// protocol-level failure (undecodable arguments) without spawning.
pub type RawHandler =
    Arc<dyn Fn(&Runtime, Vec<u8>) -> Result<SharedFuture<Vec<u8>>, WireFault> + Send + Sync>;

/// Default bound on each per-origin dedup window, in remembered call ids.
pub const DEFAULT_DEDUP_WINDOW: usize = 1024;

/// Default liveness probe cadence when a monitor is armed.
pub const DEFAULT_PING_INTERVAL: Duration = Duration::from_millis(50);

/// Network-robustness knobs for one locality. `Default` disables every
/// defense except the dedup window (which is free and always safe), which
/// keeps clean-transport worlds byte-for-byte on their old behavior — no
/// monitor thread is spawned unless a deadline is configured.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Sever a link whose peer has been silent this long (no frame of any
    /// kind received). `None` disables liveness monitoring.
    pub liveness_deadline: Option<Duration>,
    /// How often the monitor pings each peer while liveness is armed.
    pub ping_interval: Duration,
    /// Settle any pending call older than this with
    /// [`TaskError::Timeout`]. `None` means calls wait indefinitely (a
    /// disconnect still sweeps them).
    pub call_deadline: Option<Duration>,
    /// Per-origin dedup window size, in call ids. Duplicates older than
    /// the window are conservatively treated as already seen.
    pub dedup_window: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            liveness_deadline: None,
            ping_interval: DEFAULT_PING_INTERVAL,
            call_deadline: None,
            dedup_window: DEFAULT_DEDUP_WINDOW,
        }
    }
}

/// Bounded duplicate-suppression window for one origin's call ids.
///
/// Relies on origins allocating call ids monotonically (they do:
/// `next_call` is a counter), so the id doubles as a per-peer sequence
/// number. Ids at or below the eviction watermark are conservatively
/// duplicates: a fresh id can only land there if the peer reordered more
/// than `cap` calls, which real plans keep orders of magnitude away from.
struct DedupWindow {
    seen: HashSet<u64>,
    order: VecDeque<u64>,
    /// Highest evicted id; everything ≤ this is treated as seen.
    watermark: u64,
    cap: usize,
}

impl DedupWindow {
    fn new(cap: usize) -> Self {
        Self {
            seen: HashSet::new(),
            order: VecDeque::new(),
            watermark: 0,
            cap: cap.max(1),
        }
    }

    /// Record `id`; returns `true` if it was fresh (first sighting).
    fn insert(&mut self, id: u64) -> bool {
        if id <= self.watermark || self.seen.contains(&id) {
            return false;
        }
        self.seen.insert(id);
        self.order.push_back(id);
        while self.order.len() > self.cap {
            if let Some(evicted) = self.order.pop_front() {
                self.seen.remove(&evicted);
                self.watermark = self.watermark.max(evicted);
            }
        }
        true
    }
}

/// One outstanding remote call.
struct Pending {
    /// Locality the call was addressed to (so a disconnect can sweep by
    /// peer).
    dest: usize,
    /// When the call was issued, for the deadline sweep.
    issued_at: Instant,
    /// Settles the caller's future. Removing the entry and invoking this
    /// is the one-and-only settle of that call.
    settle: Box<dyn FnOnce(Result<Vec<u8>, TaskError>) + Send>,
}

/// State shared between the public [`Locality`] handle and the network
/// threads (which hold only `Weak` references — a dropped locality makes
/// its inbound frames no-ops rather than keeping it alive).
pub struct LocalityShared {
    id: usize,
    world: usize,
    runtime: Arc<Runtime>,
    config: NetConfig,
    actions: RwLock<HashMap<String, RawHandler>>,
    links: RwLock<HashMap<usize, Arc<Link>>>,
    pending: Mutex<HashMap<u64, Pending>>,
    /// Per-origin duplicate-suppression windows for inbound calls.
    dedup: Mutex<HashMap<usize, DedupWindow>>,
    /// Last time any frame arrived from each linked peer.
    last_heard: Mutex<HashMap<usize, Instant>>,
    next_call: AtomicU64,
    next_ping: AtomicU64,
    parcels: Arc<ParcelCounters>,
    dead: AtomicBool,
}

impl LocalityShared {
    /// Dispatch one inbound frame (called from a reader / loopback writer
    /// / fabric pump thread).
    fn on_frame(self: &Arc<Self>, from: usize, bytes: Vec<u8>) {
        let frame = match Frame::decode(&bytes) {
            Ok(f) => f,
            Err(_) => {
                // A peer speaking garbage is indistinguishable from a
                // corrupted transport: drop the link.
                self.sever_link(from);
                return;
            }
        };
        // Any well-formed frame proves the peer alive.
        self.note_heard(from);
        let n = bytes.len() as u64;
        match frame {
            Frame::Call {
                call_id,
                origin,
                action,
                args,
            } => {
                let origin = origin as usize;
                if !self.dedup_fresh(origin, call_id) {
                    // Duplicated by the network: already dispatched (or
                    // about to be, by the copy that won). Never re-run.
                    self.parcels.deduped.incr();
                    return;
                }
                self.parcels.received.incr();
                self.parcels.bytes_received.add(n);
                self.handle_call(call_id, origin, &action, args);
            }
            Frame::Reply { call_id, outcome } => {
                if self.handle_reply(call_id, outcome) {
                    self.parcels.received.incr();
                    self.parcels.bytes_received.add(n);
                } else {
                    // Duplicated reply, or a reply racing a deadline /
                    // disconnect settle that won. Either way the call is
                    // settled exactly once already.
                    self.parcels.deduped.incr();
                }
            }
            Frame::Goodbye { locality_id } => self.sever_link(locality_id as usize),
            Frame::Ping { nonce } => {
                // Liveness probe: answer without blocking or severing —
                // a congested link is not a dead one.
                let link = self.links.read().get(&from).cloned();
                if let Some(link) = link {
                    let _ = link.try_send(&Frame::Pong { nonce });
                }
            }
            Frame::Pong { .. } => {} // note_heard above did the work
            // Bootstrap frames are consumed during the handshake, before
            // a link's reader delivers here; arriving late they are noise.
            Frame::Hello { .. } | Frame::Welcome { .. } | Frame::PeerHello { .. } => {}
        }
    }

    /// Refresh the liveness clock for `peer`.
    fn note_heard(&self, peer: usize) {
        self.last_heard.lock().insert(peer, Instant::now());
    }

    /// Record `(origin, call_id)`; `false` means duplicate.
    fn dedup_fresh(&self, origin: usize, call_id: u64) -> bool {
        let mut windows = self.dedup.lock();
        windows
            .entry(origin)
            .or_insert_with(|| DedupWindow::new(self.config.dedup_window))
            .insert(call_id)
    }

    fn handle_call(self: &Arc<Self>, call_id: u64, origin: usize, action: &str, args: Vec<u8>) {
        let handler = self.actions.read().get(action).cloned();
        let Some(handler) = handler else {
            self.send_reply(
                origin,
                call_id,
                Err(WireFault::UnknownAction(action.to_string())),
            );
            return;
        };
        match handler(&self.runtime, args) {
            Err(fault) => self.send_reply(origin, call_id, Err(fault)),
            Ok(result) => {
                let me = Arc::downgrade(self);
                result.on_settled(move |settled| {
                    let Some(me) = me.upgrade() else { return };
                    let outcome = match settled {
                        Ok(bytes) => Ok((**bytes).clone()),
                        Err(e) => Err(fault_of(e)),
                    };
                    me.send_reply(origin, call_id, outcome);
                });
            }
        }
    }

    /// Settle the pending call this reply answers. Returns `false` if the
    /// call was already settled (duplicate / late reply) — the frame is
    /// then a dedup event, not traffic.
    fn handle_reply(self: &Arc<Self>, call_id: u64, outcome: Result<Vec<u8>, WireFault>) -> bool {
        let entry = self.pending.lock().remove(&call_id);
        let Some(entry) = entry else { return false };
        let outcome = outcome.map_err(|fault| task_error_of(fault, entry.dest));
        self.settle_entry(entry, outcome);
        true
    }

    /// The one funnel every settle path goes through, so
    /// `calls/settled` counts each pending entry exactly once.
    fn settle_entry(&self, entry: Pending, outcome: Result<Vec<u8>, TaskError>) {
        self.parcels.calls_settled.incr();
        (entry.settle)(outcome);
    }

    /// A peer went away: forget its link and settle everything addressed
    /// to it with [`TaskError::Disconnected`].
    fn on_peer_disconnect(self: &Arc<Self>, peer: usize) {
        self.links.write().remove(&peer);
        self.last_heard.lock().remove(&peer);
        let drained: Vec<Pending> = {
            let mut pending = self.pending.lock();
            let ids: Vec<u64> = pending
                .iter()
                .filter(|(_, p)| p.dest == peer)
                .map(|(id, _)| *id)
                .collect();
            ids.into_iter()
                .filter_map(|id| pending.remove(&id))
                .collect()
        };
        // Settle outside the lock: settling runs continuations inline,
        // which may issue further sends or even new remote calls.
        for p in drained {
            self.settle_entry(p, Err(TaskError::Disconnected { locality: peer }));
        }
    }

    fn sever_link(self: &Arc<Self>, peer: usize) {
        let link = self.links.read().get(&peer).cloned();
        if let Some(link) = link {
            // `sever` fires the disconnect handler, which calls
            // `on_peer_disconnect` above.
            link.sever();
        }
    }

    fn send_reply(
        self: &Arc<Self>,
        dest: usize,
        call_id: u64,
        outcome: Result<Vec<u8>, WireFault>,
    ) {
        let link = self.links.read().get(&dest).cloned();
        if let Some(link) = link {
            let _ = link.send(&Frame::Reply { call_id, outcome });
        }
        // No link to the origin: the caller's disconnect sweep has
        // already settled the call on its side; nothing to do here.
    }

    /// Remove-and-settle one pending call (send-failure path). No-op if a
    /// racing reply or disconnect settled it first.
    fn settle_pending(self: &Arc<Self>, call_id: u64, outcome: Result<Vec<u8>, TaskError>) {
        let entry = self.pending.lock().remove(&call_id);
        if let Some(entry) = entry {
            self.settle_entry(entry, outcome);
        }
    }

    /// One monitor tick: ping live peers, sever the silent ones, settle
    /// deadline-expired calls. All settling happens outside the locks.
    fn monitor_tick(self: &Arc<Self>) {
        if let Some(deadline) = self.config.liveness_deadline {
            let links: Vec<Arc<Link>> = self.links.read().values().cloned().collect();
            let now = Instant::now();
            let mut stale: Vec<usize> = Vec::with_capacity(links.len());
            {
                let heard = self.last_heard.lock();
                for link in &links {
                    match heard.get(&link.peer()) {
                        Some(at) if now.duration_since(*at) > deadline => {
                            stale.push(link.peer());
                        }
                        _ => {}
                    }
                }
            }
            for peer in stale {
                self.sever_link(peer);
            }
            let nonce = self.next_ping.fetch_add(1, Ordering::Relaxed);
            let links: Vec<Arc<Link>> = self.links.read().values().cloned().collect();
            for link in links {
                // Non-blocking, non-severing: a full queue skips a round.
                let _ = link.try_send(&Frame::Ping { nonce });
            }
        }
        if let Some(deadline) = self.config.call_deadline {
            let now = Instant::now();
            let expired: Vec<(Pending, Duration)> = {
                let mut pending = self.pending.lock();
                let ids: Vec<u64> = pending
                    .iter()
                    .filter(|(_, p)| now.duration_since(p.issued_at) > deadline)
                    .map(|(id, _)| *id)
                    .collect();
                ids.into_iter()
                    .filter_map(|id| {
                        pending
                            .remove(&id)
                            .map(|p| (now.duration_since(p.issued_at), p))
                            .map(|(waited, p)| (p, waited))
                    })
                    .collect()
            };
            for (entry, waited) in expired {
                self.settle_entry(entry, Err(TaskError::Timeout { waited }));
            }
        }
    }

    fn total_queue_len(&self) -> usize {
        self.links.read().values().map(|l| l.queue_len()).sum()
    }
}

/// A runtime participating in a distributed world. See the module docs.
///
/// Cheap to clone: a `Locality` is a handle to shared state, so bootstrap
/// accept threads and tests can hold their own copies.
#[derive(Clone)]
pub struct Locality {
    shared: Arc<LocalityShared>,
}

impl Locality {
    /// Wrap `runtime` as locality `id` of a world of `world` localities
    /// and register its `/parcels/*` counter family, with default
    /// [`NetConfig`] (no liveness monitor, no call deadlines).
    ///
    /// The runtime should have been built with
    /// `RuntimeConfig { locality_id: id, .. }` so its `/threads{…}`
    /// counters live under the same instance name.
    pub fn new(runtime: Arc<Runtime>, id: usize, world: usize) -> Result<Self, RegistryError> {
        Self::with_config(runtime, id, world, NetConfig::default())
    }

    /// [`Locality::new`] with explicit robustness knobs. Setting either
    /// `liveness_deadline` or `call_deadline` spawns a monitor thread
    /// (`grain-net-mon-{id}`) that holds only a weak reference — it exits
    /// when the locality is dropped or leaves the world.
    pub fn with_config(
        runtime: Arc<Runtime>,
        id: usize,
        world: usize,
        config: NetConfig,
    ) -> Result<Self, RegistryError> {
        debug_assert_eq!(
            runtime.locality_id(),
            id,
            "runtime locality_id must match the locality id"
        );
        let monitored = config.liveness_deadline.is_some() || config.call_deadline.is_some();
        let tick = monitor_tick_interval(&config);
        let shared = Arc::new(LocalityShared {
            id,
            world,
            runtime,
            config,
            actions: RwLock::new(HashMap::new()),
            links: RwLock::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            dedup: Mutex::new(HashMap::new()),
            last_heard: Mutex::new(HashMap::new()),
            next_call: AtomicU64::new(1),
            next_ping: AtomicU64::new(1),
            parcels: Arc::new(ParcelCounters::new()),
            dead: AtomicBool::new(false),
        });
        let probe = {
            let w = Arc::downgrade(&shared);
            move || {
                w.upgrade()
                    .map(|s| s.total_queue_len() as f64)
                    .unwrap_or(0.0)
            }
        };
        shared
            .parcels
            .register(shared.runtime.registry(), id, probe)?;
        if monitored {
            let w: Weak<LocalityShared> = Arc::downgrade(&shared);
            std::thread::Builder::new()
                .name(format!("grain-net-mon-{id}"))
                .spawn(move || loop {
                    std::thread::sleep(tick);
                    let Some(shared) = w.upgrade() else { return };
                    if shared.dead.load(Ordering::SeqCst) {
                        return;
                    }
                    shared.monitor_tick();
                })
                .expect("failed to spawn net monitor thread");
        }
        Ok(Self { shared })
    }

    /// This locality's id.
    pub fn id(&self) -> usize {
        self.shared.id
    }

    /// Number of localities in the world.
    pub fn world(&self) -> usize {
        self.shared.world
    }

    /// The robustness knobs this locality was built with.
    pub fn net_config(&self) -> &NetConfig {
        &self.shared.config
    }

    /// The scheduler this locality runs tasks on.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.shared.runtime
    }

    /// This locality's parcel counters (also queryable through the
    /// runtime's registry under `/parcels{locality#N/total}/…`).
    pub fn parcels(&self) -> &Arc<ParcelCounters> {
        &self.shared.parcels
    }

    /// Peers this locality currently holds a live link to.
    pub fn connected_peers(&self) -> Vec<usize> {
        let mut peers: Vec<usize> = self.shared.links.read().keys().copied().collect();
        peers.sort_unstable();
        peers
    }

    /// Register `f` under `action`: peers may now invoke it via
    /// [`Locality::async_remote`]. The body runs as a first-class task on
    /// this locality's scheduler; a panic inside it travels back to the
    /// caller as [`TaskError::Panicked`].
    pub fn register_action<A, R, F>(&self, action: &str, f: F)
    where
        A: Wire + Send + 'static,
        R: Wire + Send + Sync + 'static,
        F: Fn(A) -> R + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let raw: RawHandler = Arc::new(move |rt: &Runtime, bytes: Vec<u8>| {
            let args = codec::from_bytes::<A>(&bytes)
                .map_err(|e| WireFault::BadArguments(e.to_string()))?;
            let f = Arc::clone(&f);
            Ok(rt.async_call(move |_cx| codec::to_bytes(&f(args))))
        });
        self.shared.actions.write().insert(action.to_string(), raw);
    }

    /// Register an action whose body *returns a future* instead of a
    /// value: the reply is sent when that future settles. This is the
    /// hook for pull-style protocols (e.g. ghost-zone exchange) where the
    /// answer may not exist yet when the request arrives.
    pub fn register_deferred_action<A, R, F>(&self, action: &str, f: F)
    where
        A: Wire + Send + 'static,
        R: Wire + Send + Sync + 'static,
        F: Fn(&Runtime, A) -> SharedFuture<R> + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let raw: RawHandler = Arc::new(move |rt: &Runtime, bytes: Vec<u8>| {
            let args = codec::from_bytes::<A>(&bytes)
                .map_err(|e| WireFault::BadArguments(e.to_string()))?;
            let inner: SharedFuture<R> = f(rt, args);
            let (promise, encoded) = channel::<Vec<u8>>();
            inner.on_settled(move |settled| match settled {
                Ok(v) => promise.set(codec::to_bytes(v.as_ref())),
                Err(e) => promise.fail(e.clone()),
            });
            Ok(encoded)
        });
        self.shared.actions.write().insert(action.to_string(), raw);
    }

    /// `hpx::async` against a remote locality: serialize `args`, invoke
    /// `action` on `dest`, get a future for the (decoded) result.
    ///
    /// Every failure settles the future rather than hanging it:
    /// * remote panic → [`TaskError::Panicked`] with the remote message;
    /// * unknown action / undecodable args or reply →
    ///   [`TaskError::Remote`] naming `dest`;
    /// * no link, send failure, or peer death before the reply →
    ///   [`TaskError::Disconnected`] naming `dest`;
    /// * configured `call_deadline` expiring first →
    ///   [`TaskError::Timeout`].
    ///
    /// `dest == self.id()` is the local fast path: no link or parcel
    /// counters involved, but arguments and result still round-trip
    /// through the wire codec so local and remote calls compute
    /// bit-identical results.
    pub fn async_remote<A, R>(&self, dest: usize, action: &str, args: &A) -> SharedFuture<R>
    where
        A: Wire,
        R: Wire + Send + Sync + 'static,
    {
        let shared = &self.shared;
        let t0 = Instant::now();
        let args_bytes = codec::to_bytes(args);

        if dest == shared.id {
            let handler = shared.actions.read().get(action).cloned();
            return match handler {
                None => SharedFuture::faulted(TaskError::Remote {
                    locality: dest,
                    message: format!("unknown action '{action}'"),
                }),
                Some(h) => match h(&shared.runtime, args_bytes) {
                    Err(fault) => SharedFuture::faulted(task_error_of(fault, dest)),
                    Ok(encoded) => decode_future::<R>(&encoded, dest),
                },
            };
        }

        if shared.dead.load(Ordering::SeqCst) {
            // This locality has left the world; nothing will ever reply.
            return SharedFuture::faulted(TaskError::Disconnected { locality: dest });
        }

        let call_id = shared.next_call.fetch_add(1, Ordering::Relaxed);
        let (promise, future) = channel::<R>();
        let settle: Box<dyn FnOnce(Result<Vec<u8>, TaskError>) + Send> =
            Box::new(move |outcome| match outcome {
                Ok(bytes) => match codec::from_bytes::<R>(&bytes) {
                    Ok(v) => promise.set(v),
                    Err(e) => promise.fail(TaskError::Remote {
                        locality: dest,
                        message: format!("undecodable reply: {e}"),
                    }),
                },
                Err(e) => promise.fail(e),
            });
        // Insert before sending: the reply may arrive on another thread
        // before `send` returns. `calls_issued` is bumped with the entry
        // in place, so issued == settled is exact at quiescence.
        shared.parcels.calls_issued.incr();
        shared.pending.lock().insert(
            call_id,
            Pending {
                dest,
                issued_at: t0,
                settle,
            },
        );

        let frame = Frame::Call {
            call_id,
            origin: shared.id as u32,
            action: action.to_string(),
            args: args_bytes,
        };
        shared.parcels.ser_ns.add(t0.elapsed().as_nanos() as u64);
        shared.parcels.ser_samples.incr();

        let link = shared.links.read().get(&dest).cloned();
        let delivered = match link {
            Some(link) => link.send(&frame).is_ok(),
            None => false,
        };
        if !delivered {
            shared.settle_pending(call_id, Err(TaskError::Disconnected { locality: dest }));
        }
        future
    }

    /// Graceful leave: tell every peer goodbye, drain the send queues,
    /// stop accepting new outbound calls.
    pub fn shutdown(&self) {
        self.shared.dead.store(true, Ordering::SeqCst);
        let links: Vec<Arc<Link>> = self.shared.links.read().values().cloned().collect();
        for link in links {
            let _ = link.send(&Frame::Goodbye {
                locality_id: self.shared.id as u32,
            });
            link.close();
        }
    }

    /// Abrupt death (test hook / fault injection): sever every link
    /// without a goodbye. Peers observe it exactly like a crashed
    /// process; all calls still addressed to this locality — and all of
    /// this locality's own outstanding calls — settle with
    /// [`TaskError::Disconnected`].
    pub fn kill(&self) {
        self.shared.dead.store(true, Ordering::SeqCst);
        let links: Vec<Arc<Link>> = self.shared.links.read().values().cloned().collect();
        for link in links {
            link.sever();
        }
    }

    /// Frame handler for this locality's inbound links (holds only a
    /// `Weak`; frames for a dropped locality are dropped).
    pub(crate) fn frame_handler(&self) -> FrameHandler {
        let w = Arc::downgrade(&self.shared);
        Arc::new(move |from, bytes| {
            if let Some(shared) = w.upgrade() {
                shared.on_frame(from, bytes);
            }
        })
    }

    /// Disconnect handler for this locality's links.
    pub(crate) fn disconnect_handler(&self) -> DisconnectHandler {
        let w = Arc::downgrade(&self.shared);
        Arc::new(move |peer| {
            if let Some(shared) = w.upgrade() {
                shared.on_peer_disconnect(peer);
            }
        })
    }

    /// Install an outbound link to its peer (bootstrap hook). Starts the
    /// peer's liveness clock: a peer that never speaks after linking is
    /// exactly the silent-blackhole case the monitor exists for.
    pub(crate) fn add_link(&self, link: Arc<Link>) {
        self.shared.note_heard(link.peer());
        self.shared.links.write().insert(link.peer(), link);
    }
}

/// How often the monitor thread wakes: fine enough to resolve the
/// tightest configured deadline, never busier than 1ms.
fn monitor_tick_interval(config: &NetConfig) -> Duration {
    let mut tick = config.ping_interval;
    if let Some(d) = config.liveness_deadline {
        tick = tick.min(d / 4);
    }
    if let Some(d) = config.call_deadline {
        tick = tick.min(d / 4);
    }
    tick.max(Duration::from_millis(1))
}

/// Map a locally-settled error to its wire form (serving side). The
/// *root* of a dependency chain decides the kind, so a panic three
/// dataflow hops upstream still comes back to the caller as `Panicked`.
fn fault_of(e: &TaskError) -> WireFault {
    match e.root_cause() {
        TaskError::Panicked { message } => WireFault::Panicked(message.clone()),
        TaskError::Cancelled => WireFault::Cancelled,
        TaskError::BrokenPromise => WireFault::BrokenPromise,
        other => WireFault::Other(other.to_string()),
    }
}

/// Map a wire fault back to a `TaskError` on the calling side.
fn task_error_of(fault: WireFault, dest: usize) -> TaskError {
    match fault {
        WireFault::Panicked(message) => TaskError::Panicked { message },
        WireFault::Cancelled => TaskError::Cancelled,
        WireFault::BrokenPromise => TaskError::BrokenPromise,
        WireFault::UnknownAction(a) => TaskError::Remote {
            locality: dest,
            message: format!("unknown action '{a}'"),
        },
        WireFault::BadArguments(m) => TaskError::Remote {
            locality: dest,
            message: format!("bad arguments: {m}"),
        },
        WireFault::Other(m) => TaskError::Remote {
            locality: dest,
            message: m,
        },
    }
}

/// Adapt a future of encoded bytes into a future of the decoded value.
fn decode_future<R>(encoded: &SharedFuture<Vec<u8>>, dest: usize) -> SharedFuture<R>
where
    R: Wire + Send + Sync + 'static,
{
    let (promise, future) = channel::<R>();
    encoded.on_settled(move |settled| match settled {
        Ok(bytes) => match codec::from_bytes::<R>(bytes) {
            Ok(v) => promise.set(v),
            Err(e) => promise.fail(TaskError::Remote {
                locality: dest,
                message: format!("undecodable reply: {e}"),
            }),
        },
        Err(e) => promise.fail(e.clone()),
    });
    future
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_window_suppresses_repeats_and_bounds_memory() {
        let mut w = DedupWindow::new(4);
        assert!(w.insert(1));
        assert!(w.insert(2));
        assert!(!w.insert(1), "repeat suppressed");
        assert!(!w.insert(2), "repeat suppressed");
        assert!(w.insert(3));
        assert!(w.insert(4));
        assert!(w.insert(5), "window slides");
        assert!(w.seen.len() <= 4, "memory bounded");
        // 1 was evicted; the watermark still damns it.
        assert!(!w.insert(1), "evicted id stays suppressed via watermark");
        // Far-future ids are always fresh.
        assert!(w.insert(1000));
        assert!(!w.insert(1000));
    }

    #[test]
    fn dedup_window_handles_reordering_within_cap() {
        let mut w = DedupWindow::new(64);
        // Arrivals out of order, all within the window: each fresh once.
        for id in [5u64, 2, 9, 1, 7, 3] {
            assert!(w.insert(id), "id {id} fresh");
        }
        for id in [5u64, 2, 9, 1, 7, 3] {
            assert!(!w.insert(id), "id {id} duplicate");
        }
        assert!(w.insert(4), "unseen id inside the range is still fresh");
    }

    #[test]
    fn monitor_tick_interval_tracks_tightest_deadline() {
        let mut cfg = NetConfig::default();
        assert_eq!(monitor_tick_interval(&cfg), DEFAULT_PING_INTERVAL);
        cfg.call_deadline = Some(Duration::from_millis(20));
        assert_eq!(monitor_tick_interval(&cfg), Duration::from_millis(5));
        cfg.liveness_deadline = Some(Duration::from_millis(2));
        assert_eq!(monitor_tick_interval(&cfg), Duration::from_millis(1));
    }
}
