//! The transport seam: where a link's writer thread puts frames.
//!
//! A [`crate::parcelport::Link`] is a bounded queue plus a writer
//! thread; *what the writer does with each frame* is this trait. Three
//! impls share the seam:
//!
//! * [`TcpTransport`] — length-prefixed frames onto a socket;
//! * [`LoopbackTransport`] — straight into the peer's frame handler;
//! * [`SimTransport`] — into a [`NetFabric`], which models latency,
//!   loss, duplication, reordering, bandwidth, and partitions under a
//!   seeded [`grain_sim::NetPlan`], then (maybe, later, once or twice)
//!   delivers to the peer's handler via its registered sink.
//!
//! The seam is deliberately *below* the send queue and counters: every
//! transport inherits the same backpressure, sever, and
//! `/parcels/count/sent` discipline, so swapping TCP for the simulated
//! fabric changes nothing about how the locality layer behaves — which
//! is exactly what makes chaos results transfer back to the real
//! transports.
//!
//! `SimTransport` classifies frames by *identity* before submitting
//! ([`sim_class_of`]): a `Call` is keyed by `(origin, call_id)`, a
//! `Reply` by `(destination, call_id)`. The fabric's verdicts are a
//! pure function of that identity, which is what makes chaos replays
//! bit-identical under real thread races (see `grain_sim::netplan`).

#![deny(clippy::unwrap_used)]

use crate::codec::Frame;
use crate::counters::ParcelCounters;
use crate::parcelport::FrameHandler;
use grain_sim::fabric::{NetFabric, SimFrameClass};
use grain_sim::netplan::{frame_id, FRAME_KIND_CALL, FRAME_KIND_REPLY};
use std::fmt;
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;

/// The transport failed to accept a frame; the link must sever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportError;

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transport failed to accept frame")
    }
}

impl std::error::Error for TransportError {}

/// Where a link's writer thread delivers encoded frames.
///
/// `deliver` is called once per dequeued frame, in queue order, from
/// the writer thread only (so `&mut self` suffices). Returning `Err`
/// severs the link. `finish` is called after a graceful drain.
///
/// On success `deliver` may hand the frame buffer back (`Some`) when
/// the transport copied the bytes onward and no longer needs the
/// allocation — the writer loop recycles it into the link's buffer
/// pool under the `parcel-reuse` feature. Transports that pass
/// ownership along (loopback → handler, sim → fabric) return `None`.
pub trait Transport: Send + 'static {
    /// Deliver one encoded frame. `parcel` mirrors
    /// [`Frame::is_parcel`] for counter discipline.
    fn deliver(&mut self, bytes: Vec<u8>, parcel: bool) -> Result<Option<Vec<u8>>, TransportError>;

    /// Push any internally buffered bytes to the peer. Called by the
    /// writer loop whenever the send queue goes momentarily empty and
    /// before blocking for more frames, so coalescing transports never
    /// sit on a frame while the peer waits. Default: nothing buffered.
    fn flush(&mut self) -> Result<(), TransportError> {
        Ok(())
    }

    /// Graceful-drain hook: the queue closed and everything queued was
    /// delivered.
    fn finish(&mut self) {}
}

/// Length-prefixed frames onto a TCP socket.
///
/// With the `parcel-reuse` feature, frames are coalesced: `deliver`
/// appends `len ‖ bytes` to a reusable write buffer and the whole
/// batch goes out in one `write_all` per flush — one syscall for a
/// burst of small `Call` frames instead of two per frame. Length
/// prefixes make concatenation safe on a byte stream; the reader side
/// is oblivious. The writer loop flushes whenever the send queue goes
/// empty, so coalescing adds no latency when traffic is sparse.
pub struct TcpTransport {
    stream: TcpStream,
    /// Pending coalesced bytes (empty and unused without `parcel-reuse`).
    wbuf: Vec<u8>,
    coalesce: bool,
}

/// Flush threshold for coalesced writes: large enough to batch a burst
/// of small frames, small enough to keep the reusable buffer and the
/// kernel send path friendly.
const FLUSH_BYTES: usize = 32 * 1024;

impl TcpTransport {
    /// Wrap a connected socket.
    pub fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            wbuf: Vec::new(),
            coalesce: cfg!(feature = "parcel-reuse"),
        }
    }
}

impl Transport for TcpTransport {
    fn deliver(
        &mut self,
        bytes: Vec<u8>,
        _parcel: bool,
    ) -> Result<Option<Vec<u8>>, TransportError> {
        let len = (bytes.len() as u32).to_le_bytes();
        if self.coalesce {
            self.wbuf.extend_from_slice(&len);
            self.wbuf.extend_from_slice(&bytes);
            if self.wbuf.len() >= FLUSH_BYTES {
                self.flush()?;
            }
        } else {
            if self.stream.write_all(&len).is_err() || self.stream.write_all(&bytes).is_err() {
                return Err(TransportError);
            }
        }
        // Either way the bytes were copied onward (socket or wbuf);
        // the frame buffer is free to be recycled.
        Ok(Some(bytes))
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        if !self.wbuf.is_empty() {
            if self.stream.write_all(&self.wbuf).is_err() {
                return Err(TransportError);
            }
            self.wbuf.clear();
        }
        Ok(())
    }

    fn finish(&mut self) {
        // Flush the write side so the peer sees everything (including a
        // trailing Goodbye) before EOF.
        let _ = self.flush();
        let _ = self.stream.shutdown(Shutdown::Write);
    }
}

/// Straight into the peer's frame handler, in-process.
pub struct LoopbackTransport {
    peer_incoming: FrameHandler,
    sender_id: usize,
}

impl LoopbackTransport {
    /// Deliver to `peer_incoming`, labelled as coming from `sender_id`.
    pub fn new(peer_incoming: FrameHandler, sender_id: usize) -> Self {
        Self {
            peer_incoming,
            sender_id,
        }
    }
}

impl Transport for LoopbackTransport {
    fn deliver(
        &mut self,
        bytes: Vec<u8>,
        _parcel: bool,
    ) -> Result<Option<Vec<u8>>, TransportError> {
        // Ownership passes to the peer's handler — nothing to recycle.
        (self.peer_incoming)(self.sender_id, bytes);
        Ok(None)
    }
}

/// Into a simulated fabric, under a seeded chaos plan.
///
/// The transport *accepting* a frame does not mean the peer will see
/// it: the fabric may drop or duplicate it. Sender-side books learn
/// about that immediately — a chaos/tail drop bumps this side's
/// `dropped`, a duplication bumps `duplicated` — so the parcel ledger
/// stays locally auditable without peeking into the fabric.
pub struct SimTransport {
    fabric: Arc<NetFabric>,
    src: usize,
    dst: usize,
    counters: Arc<ParcelCounters>,
}

impl SimTransport {
    /// A lane from `src` to `dst` through `fabric`, booking outcomes
    /// into `counters` (the sending locality's parcel family).
    pub fn new(
        fabric: Arc<NetFabric>,
        src: usize,
        dst: usize,
        counters: Arc<ParcelCounters>,
    ) -> Self {
        Self {
            fabric,
            src,
            dst,
            counters,
        }
    }
}

impl Transport for SimTransport {
    fn deliver(&mut self, bytes: Vec<u8>, parcel: bool) -> Result<Option<Vec<u8>>, TransportError> {
        let class = sim_class_of(&bytes, self.dst);
        debug_assert_eq!(
            parcel,
            matches!(class, SimFrameClass::Parcel { .. }),
            "queue parcel flag must agree with frame classification"
        );
        let outcome = self.fabric.submit(self.src, self.dst, bytes, class);
        if parcel {
            if outcome.dropped {
                self.counters.dropped.incr();
            }
            if outcome.duplicated {
                self.counters.duplicated.incr();
            }
        }
        // Ownership passed to the fabric — nothing to recycle.
        Ok(None)
    }
}

/// Classify an encoded frame for the fabric: parcels get their
/// replay-stable identity, everything else (including bytes that fail
/// to decode, which cannot happen for locally-encoded frames) rides as
/// control traffic.
pub fn sim_class_of(bytes: &[u8], dst: usize) -> SimFrameClass {
    match Frame::decode(bytes) {
        Ok(Frame::Call {
            call_id, origin, ..
        }) => SimFrameClass::Parcel {
            id: frame_id(FRAME_KIND_CALL, origin as u64, call_id),
        },
        Ok(Frame::Reply { call_id, .. }) => SimFrameClass::Parcel {
            id: frame_id(FRAME_KIND_REPLY, dst as u64, call_id),
        },
        _ => SimFrameClass::Control,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_parcel_flag() {
        let call = Frame::Call {
            call_id: 3,
            origin: 1,
            action: "x".into(),
            args: vec![],
        };
        let reply = Frame::Reply {
            call_id: 3,
            outcome: Ok(vec![]),
        };
        let ping = Frame::Ping { nonce: 1 };
        assert!(matches!(
            sim_class_of(&call.encode(), 2),
            SimFrameClass::Parcel { .. }
        ));
        assert!(matches!(
            sim_class_of(&reply.encode(), 2),
            SimFrameClass::Parcel { .. }
        ));
        assert_eq!(sim_class_of(&ping.encode(), 2), SimFrameClass::Control);
        assert_eq!(sim_class_of(b"garbage", 2), SimFrameClass::Control);
    }

    #[test]
    fn call_and_reply_identities_use_their_own_namespaces() {
        // A call from locality 1 and its reply back to locality 1 must
        // share the `who = 1` namespace but differ by kind.
        let call = Frame::Call {
            call_id: 9,
            origin: 1,
            action: "x".into(),
            args: vec![],
        };
        let reply = Frame::Reply {
            call_id: 9,
            outcome: Ok(vec![]),
        };
        let call_id = match sim_class_of(&call.encode(), 2) {
            SimFrameClass::Parcel { id } => id,
            SimFrameClass::Control => panic!("call is a parcel"),
        };
        let reply_id = match sim_class_of(&reply.encode(), 1) {
            SimFrameClass::Parcel { id } => id,
            SimFrameClass::Control => panic!("reply is a parcel"),
        };
        assert_ne!(call_id, reply_id);
        assert_eq!(call_id, frame_id(FRAME_KIND_CALL, 1, 9));
        assert_eq!(reply_id, frame_id(FRAME_KIND_REPLY, 1, 9));
    }
}
