//! The `/parcels/*` performance-counter family.
//!
//! Mirrors HPX's parcel-layer counters under the same naming scheme the
//! rest of the project uses, instanced per locality:
//!
//! ```text
//! /parcels{locality#N/total}/count/sent
//! /parcels{locality#N/total}/count/received
//! /parcels{locality#N/total}/bytes/sent
//! /parcels{locality#N/total}/bytes/received
//! /parcels{locality#N/total}/time/average-serialization
//! /parcels{locality#N/total}/queue-length
//! ```
//!
//! Only parcels proper — `Call` and `Reply` frames — are counted;
//! handshake/teardown control frames are invisible here. That makes the
//! balance invariant exact at quiescence: summed across all localities,
//! `count/sent == count/received` once every outstanding call has
//! settled.
//!
//! `sent`/`bytes/sent` are bumped by the link writer thread at the moment
//! of delivery; `received`/`bytes/received` by the owning locality when
//! it dispatches an inbound parcel. `time/average-serialization` is
//! argument+frame encode time per sent parcel, in nanoseconds.
//! `queue-length` is a live view of frames waiting in this locality's
//! outbound send queues.

use grain_counters::registry::RawView;
use grain_counters::{DerivedCounter, RawCounter, Registry, RegistryError, Unit};
use std::sync::Arc;

/// Raw event counters for one locality's parcel traffic. Shared between
/// the locality, its links (writer threads bump `sent`), and the derived
/// registry views.
pub struct ParcelCounters {
    /// Parcels (Call/Reply frames) delivered to a peer.
    pub sent: Arc<RawCounter>,
    /// Parcels dispatched from a peer.
    pub received: Arc<RawCounter>,
    /// Encoded bytes of sent parcels.
    pub bytes_sent: Arc<RawCounter>,
    /// Encoded bytes of received parcels.
    pub bytes_received: Arc<RawCounter>,
    /// Nanoseconds spent serializing outbound call arguments and frames.
    pub ser_ns: Arc<RawCounter>,
    /// Number of serialization samples behind `ser_ns`.
    pub ser_samples: Arc<RawCounter>,
}

impl Default for ParcelCounters {
    fn default() -> Self {
        Self::new()
    }
}

impl ParcelCounters {
    /// Fresh all-zero counter set.
    pub fn new() -> Self {
        Self {
            sent: Arc::new(RawCounter::new()),
            received: Arc::new(RawCounter::new()),
            bytes_sent: Arc::new(RawCounter::new()),
            bytes_received: Arc::new(RawCounter::new()),
            ser_ns: Arc::new(RawCounter::new()),
            ser_samples: Arc::new(RawCounter::new()),
        }
    }

    /// Register the family under `/parcels{locality#N/total}/…` in
    /// `registry`. `queue_len` is sampled live for the `queue-length`
    /// counter (sum of this locality's outbound send-queue depths).
    pub fn register(
        &self,
        registry: &Registry,
        locality: usize,
        queue_len: impl Fn() -> f64 + Send + Sync + 'static,
    ) -> Result<(), RegistryError> {
        let t = format!("locality#{locality}/total");
        registry.register(
            &format!("/parcels{{{t}}}/count/sent"),
            RawView::new(Arc::clone(&self.sent), Unit::Count),
        )?;
        registry.register(
            &format!("/parcels{{{t}}}/count/received"),
            RawView::new(Arc::clone(&self.received), Unit::Count),
        )?;
        registry.register(
            &format!("/parcels{{{t}}}/bytes/sent"),
            RawView::new(Arc::clone(&self.bytes_sent), Unit::Bytes),
        )?;
        registry.register(
            &format!("/parcels{{{t}}}/bytes/received"),
            RawView::new(Arc::clone(&self.bytes_received), Unit::Bytes),
        )?;
        let ns = Arc::clone(&self.ser_ns);
        let samples = Arc::clone(&self.ser_samples);
        registry.register(
            &format!("/parcels{{{t}}}/time/average-serialization"),
            DerivedCounter::new(Unit::Nanoseconds, move || {
                let n = samples.get();
                if n == 0 {
                    0.0
                } else {
                    ns.get() as f64 / n as f64
                }
            }),
        )?;
        registry.register(
            &format!("/parcels{{{t}}}/queue-length"),
            DerivedCounter::new(Unit::Count, queue_len),
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_registers_and_reads_back() {
        let c = ParcelCounters::new();
        let reg = Registry::new();
        c.register(&reg, 3, || 2.0).expect("register");

        c.sent.add(5);
        c.bytes_sent.add(100);
        c.ser_ns.add(500);
        c.ser_samples.add(5);

        let t = "locality#3/total";
        let v = reg
            .query(&format!("/parcels{{{t}}}/count/sent"))
            .expect("sent");
        assert_eq!(v.value, 5.0);
        let v = reg
            .query(&format!("/parcels{{{t}}}/bytes/sent"))
            .expect("bytes");
        assert_eq!(v.value, 100.0);
        let v = reg
            .query(&format!("/parcels{{{t}}}/time/average-serialization"))
            .expect("avg ser");
        assert_eq!(v.value, 100.0);
        let v = reg
            .query(&format!("/parcels{{{t}}}/queue-length"))
            .expect("queue");
        assert_eq!(v.value, 2.0);
        // Locality-0 instance must NOT exist: paths are per locality.
        assert!(reg.query("/parcels{locality#0/total}/count/sent").is_err());
    }

    #[test]
    fn average_serialization_is_zero_with_no_samples() {
        let c = ParcelCounters::new();
        let reg = Registry::new();
        c.register(&reg, 0, || 0.0).expect("register");
        let v = reg
            .query("/parcels{locality#0/total}/time/average-serialization")
            .expect("avg");
        assert_eq!(v.value, 0.0);
    }
}
