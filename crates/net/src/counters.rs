//! The `/parcels/*` performance-counter family.
//!
//! Mirrors HPX's parcel-layer counters under the same naming scheme the
//! rest of the project uses, instanced per locality:
//!
//! ```text
//! /parcels{locality#N/total}/count/sent
//! /parcels{locality#N/total}/count/received
//! /parcels{locality#N/total}/count/dropped
//! /parcels{locality#N/total}/count/duplicated
//! /parcels{locality#N/total}/count/deduped
//! /parcels{locality#N/total}/calls/issued
//! /parcels{locality#N/total}/calls/settled
//! /parcels{locality#N/total}/bytes/sent
//! /parcels{locality#N/total}/bytes/received
//! /parcels{locality#N/total}/time/average-serialization
//! /parcels{locality#N/total}/queue-length
//! ```
//!
//! Only parcels proper — `Call` and `Reply` frames — are counted;
//! handshake/teardown control frames are invisible here. That makes the
//! balance invariant exact at quiescence: summed across all localities,
//! `count/sent == count/received` once every outstanding call has
//! settled.
//!
//! Under chaos the clean identity generalizes to the conservation
//! ledger `sent == received + dropped + in_flight_at_sever` (the
//! fabric's terminal buckets absorb what never arrives), with
//! `duplicated`/`deduped` balancing each other: every extra copy the
//! network manufactures is suppressed by the receiver's dedup window
//! *before* `received` is bumped, so the clean books stay exact.
//! `calls/issued` vs `calls/settled` is the exactly-once surface: at
//! quiescence they must be equal — every `async_remote` future settled,
//! none twice (a double settle panics the promise).
//!
//! `sent`/`bytes/sent` are bumped by the link writer thread at the moment
//! of delivery; `received`/`bytes/received` by the owning locality when
//! it dispatches an inbound parcel. `time/average-serialization` is
//! argument+frame encode time per sent parcel, in nanoseconds.
//! `queue-length` is a live view of frames waiting in this locality's
//! outbound send queues.

use grain_counters::registry::RawView;
use grain_counters::{DerivedCounter, RawCounter, Registry, RegistryError, Unit};
use std::sync::Arc;

/// Raw event counters for one locality's parcel traffic. Shared between
/// the locality, its links (writer threads bump `sent`), and the derived
/// registry views.
pub struct ParcelCounters {
    /// Parcels (Call/Reply frames) delivered to a peer.
    pub sent: Arc<RawCounter>,
    /// Parcels dispatched from a peer.
    pub received: Arc<RawCounter>,
    /// Parcels this side lost before delivery: backpressure severs and
    /// chaos/tail drops reported by a simulated transport.
    pub dropped: Arc<RawCounter>,
    /// Extra parcel copies a chaotic transport manufactured on send.
    pub duplicated: Arc<RawCounter>,
    /// Inbound parcels suppressed as duplicates (seen `Call` seq, or a
    /// `Reply` whose call already settled).
    pub deduped: Arc<RawCounter>,
    /// Remote calls issued by this locality (pending entries created).
    pub calls_issued: Arc<RawCounter>,
    /// Remote calls settled (pending entries removed + settled) — must
    /// equal `calls_issued` at quiescence: exactly-once, counted.
    pub calls_settled: Arc<RawCounter>,
    /// Encoded bytes of sent parcels.
    pub bytes_sent: Arc<RawCounter>,
    /// Encoded bytes of received parcels.
    pub bytes_received: Arc<RawCounter>,
    /// Nanoseconds spent serializing outbound call arguments and frames.
    pub ser_ns: Arc<RawCounter>,
    /// Number of serialization samples behind `ser_ns`.
    pub ser_samples: Arc<RawCounter>,
}

impl Default for ParcelCounters {
    fn default() -> Self {
        Self::new()
    }
}

impl ParcelCounters {
    /// Fresh all-zero counter set.
    pub fn new() -> Self {
        Self {
            sent: Arc::new(RawCounter::new()),
            received: Arc::new(RawCounter::new()),
            dropped: Arc::new(RawCounter::new()),
            duplicated: Arc::new(RawCounter::new()),
            deduped: Arc::new(RawCounter::new()),
            calls_issued: Arc::new(RawCounter::new()),
            calls_settled: Arc::new(RawCounter::new()),
            bytes_sent: Arc::new(RawCounter::new()),
            bytes_received: Arc::new(RawCounter::new()),
            ser_ns: Arc::new(RawCounter::new()),
            ser_samples: Arc::new(RawCounter::new()),
        }
    }

    /// Register the family under `/parcels{locality#N/total}/…` in
    /// `registry`. `queue_len` is sampled live for the `queue-length`
    /// counter (sum of this locality's outbound send-queue depths).
    pub fn register(
        &self,
        registry: &Registry,
        locality: usize,
        queue_len: impl Fn() -> f64 + Send + Sync + 'static,
    ) -> Result<(), RegistryError> {
        let t = format!("locality#{locality}/total");
        registry.register(
            &format!("/parcels{{{t}}}/count/sent"),
            RawView::new(Arc::clone(&self.sent), Unit::Count),
        )?;
        registry.register(
            &format!("/parcels{{{t}}}/count/received"),
            RawView::new(Arc::clone(&self.received), Unit::Count),
        )?;
        registry.register(
            &format!("/parcels{{{t}}}/count/dropped"),
            RawView::new(Arc::clone(&self.dropped), Unit::Count),
        )?;
        registry.register(
            &format!("/parcels{{{t}}}/count/duplicated"),
            RawView::new(Arc::clone(&self.duplicated), Unit::Count),
        )?;
        registry.register(
            &format!("/parcels{{{t}}}/count/deduped"),
            RawView::new(Arc::clone(&self.deduped), Unit::Count),
        )?;
        registry.register(
            &format!("/parcels{{{t}}}/calls/issued"),
            RawView::new(Arc::clone(&self.calls_issued), Unit::Count),
        )?;
        registry.register(
            &format!("/parcels{{{t}}}/calls/settled"),
            RawView::new(Arc::clone(&self.calls_settled), Unit::Count),
        )?;
        registry.register(
            &format!("/parcels{{{t}}}/bytes/sent"),
            RawView::new(Arc::clone(&self.bytes_sent), Unit::Bytes),
        )?;
        registry.register(
            &format!("/parcels{{{t}}}/bytes/received"),
            RawView::new(Arc::clone(&self.bytes_received), Unit::Bytes),
        )?;
        let ns = Arc::clone(&self.ser_ns);
        let samples = Arc::clone(&self.ser_samples);
        registry.register(
            &format!("/parcels{{{t}}}/time/average-serialization"),
            DerivedCounter::new(Unit::Nanoseconds, move || {
                let n = samples.get();
                if n == 0 {
                    0.0
                } else {
                    ns.get() as f64 / n as f64
                }
            }),
        )?;
        registry.register(
            &format!("/parcels{{{t}}}/queue-length"),
            DerivedCounter::new(Unit::Count, queue_len),
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_registers_and_reads_back() {
        let c = ParcelCounters::new();
        let reg = Registry::new();
        c.register(&reg, 3, || 2.0).expect("register");

        c.sent.add(5);
        c.bytes_sent.add(100);
        c.ser_ns.add(500);
        c.ser_samples.add(5);
        c.dropped.add(2);
        c.deduped.add(1);
        c.calls_issued.add(4);
        c.calls_settled.add(4);

        let t = "locality#3/total";
        let v = reg
            .query(&format!("/parcels{{{t}}}/count/sent"))
            .expect("sent");
        assert_eq!(v.value, 5.0);
        let v = reg
            .query(&format!("/parcels{{{t}}}/bytes/sent"))
            .expect("bytes");
        assert_eq!(v.value, 100.0);
        let v = reg
            .query(&format!("/parcels{{{t}}}/time/average-serialization"))
            .expect("avg ser");
        assert_eq!(v.value, 100.0);
        let v = reg
            .query(&format!("/parcels{{{t}}}/queue-length"))
            .expect("queue");
        assert_eq!(v.value, 2.0);
        let v = reg
            .query(&format!("/parcels{{{t}}}/count/dropped"))
            .expect("dropped");
        assert_eq!(v.value, 2.0);
        let v = reg
            .query(&format!("/parcels{{{t}}}/count/deduped"))
            .expect("deduped");
        assert_eq!(v.value, 1.0);
        let v = reg
            .query(&format!("/parcels{{{t}}}/calls/settled"))
            .expect("settled");
        assert_eq!(v.value, 4.0);
        // Locality-0 instance must NOT exist: paths are per locality.
        assert!(reg.query("/parcels{locality#0/total}/count/sent").is_err());
    }

    #[test]
    fn average_serialization_is_zero_with_no_samples() {
        let c = ParcelCounters::new();
        let reg = Registry::new();
        c.register(&reg, 0, || 0.0).expect("register");
        let v = reg
            .query("/parcels{locality#0/total}/time/average-serialization")
            .expect("avg");
        assert_eq!(v.value, 0.0);
    }
}
