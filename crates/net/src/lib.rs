//! grain-net: the distribution layer.
//!
//! Everything HPX calls "the parcel layer", rebuilt std-only on top of
//! the grain runtime:
//!
//! * [`codec`] — the versioned wire format: length-delimited frames with
//!   a total (never-panicking) decoder, plus the [`codec::Wire`] trait
//!   for argument/result serialization. `f64` crosses the wire via
//!   `to_bits`, so distributed numeric results are bit-identical to
//!   local ones.
//! * [`parcelport`] — point-to-point links: a bounded send queue drained
//!   by a writer thread, over TCP (length-prefixed frames) or in-process
//!   loopback (same machinery, no sockets).
//! * [`transport`] — the seam under the writer thread: TCP, loopback,
//!   and a simulated transport that routes frames through a seeded
//!   [`grain_sim::NetFabric`] for deterministic chaos testing.
//! * [`locality`] — the distributed unit: action registry, pending-call
//!   table, and [`locality::Locality::async_remote`], the distributed
//!   `hpx::async`. Remote panics come back as `TaskError::Panicked`;
//!   dead peers settle their futures with `TaskError::Disconnected`.
//! * [`bootstrap`] — world construction: hermetic in-process
//!   [`bootstrap::Fabric`] worlds for tests, and a TCP root/join
//!   protocol for multi-process runs.
//! * [`counters`] — the `/parcels{locality#N/total}/…` counter family.
//!
//! ```
//! use grain_net::bootstrap::Fabric;
//! use grain_runtime::RuntimeConfig;
//!
//! let fabric = Fabric::loopback(2, |_| RuntimeConfig::with_workers(1));
//! fabric
//!     .locality(1)
//!     .register_action("double", |x: u64| x * 2);
//! let fut = fabric
//!     .locality(0)
//!     .async_remote::<u64, u64>(1, "double", &21);
//! assert_eq!(*fut.wait().expect("settled"), 42);
//! fabric.shutdown();
//! ```

#![warn(missing_docs)]

pub mod bootstrap;
pub mod codec;
pub mod counters;
pub mod locality;
pub mod parcelport;
pub mod transport;

pub use bootstrap::{tcp_join, tcp_root, Fabric, TcpNode};
pub use codec::{CodecError, Frame, Wire, WireFault, MAX_FRAME};
pub use counters::ParcelCounters;
pub use locality::{Locality, NetConfig};
pub use parcelport::{Link, SendError};
pub use transport::{LoopbackTransport, SimTransport, TcpTransport, Transport, TransportError};
