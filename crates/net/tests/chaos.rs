//! Chaos-hardening integration tests: localities talking across a
//! simulated network that drops, duplicates, delays, and partitions
//! frames under a seeded plan.
//!
//! The invariants under test are the PR's acceptance bar:
//! * duplicated `Call`s execute **once** (idempotent dispatch);
//! * dropped frames settle their futures by deadline, never hang;
//! * a silently-blackholed peer is severed by liveness monitoring;
//! * every future outstanding at partition time settles **exactly
//!   once** — counted per future, not sampled;
//! * a kill under partition names the dead locality in every error;
//! * the fabric's parcel ledger conserves at quiescence.

use grain_net::bootstrap::Fabric;
use grain_net::locality::NetConfig;
use grain_runtime::{RuntimeConfig, SharedFuture, TaskError};
use grain_sim::{NetPlan, PartitionMode};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bounded watchdog for every blocking join in this file: a hung future
/// is a test failure, not a hung suite.
const WATCHDOG: Duration = Duration::from_secs(30);

fn one_worker(_: usize) -> RuntimeConfig {
    RuntimeConfig::with_workers(1)
}

/// Poll until `cond` holds or the watchdog expires; returns whether it
/// held.
fn eventually(cond: impl Fn() -> bool) -> bool {
    let deadline = Instant::now() + WATCHDOG;
    while !cond() {
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    true
}

#[test]
fn duplicated_calls_execute_exactly_once() {
    // Every parcel is duplicated: each Call and each Reply crosses the
    // wire twice. Dedup must suppress every second copy.
    let fabric = Fabric::chaotic(
        2,
        NetPlan::clean(101).duplicate(1.0),
        |_| NetConfig::default(),
        one_worker,
    );
    let executions = Arc::new(AtomicUsize::new(0));
    {
        let executions = Arc::clone(&executions);
        fabric.locality(1).register_action("bump", move |x: u64| {
            executions.fetch_add(1, Ordering::SeqCst);
            x + 1
        });
    }

    const CALLS: u64 = 50;
    let futures: Vec<SharedFuture<u64>> = (0..CALLS)
        .map(|i| fabric.locality(0).async_remote::<u64, u64>(1, "bump", &i))
        .collect();
    for (i, f) in futures.iter().enumerate() {
        let v = f.wait_timeout(WATCHDOG).expect("call settles ok");
        assert_eq!(*v, i as u64 + 1);
    }

    assert_eq!(
        executions.load(Ordering::SeqCst),
        CALLS as usize,
        "duplicated Calls must not re-execute the action"
    );

    let net = fabric.net().expect("chaotic world has a fabric");
    assert!(net.wait_quiescent(WATCHDOG), "fabric drains");
    let p0 = fabric.locality(0).parcels();
    let p1 = fabric.locality(1).parcels();
    // Every duplicate the network manufactured was suppressed somewhere.
    assert_eq!(p1.deduped.get(), CALLS, "every duplicate Call suppressed");
    assert_eq!(p0.deduped.get(), CALLS, "every duplicate Reply suppressed");
    assert_eq!(p0.duplicated.get(), CALLS, "sender booked the Call dups");
    assert_eq!(p0.calls_issued.get(), CALLS);
    assert_eq!(p0.calls_settled.get(), CALLS, "exactly-once, counted");
    // Clean books: received counts post-dedup traffic only.
    assert_eq!(p0.sent.get(), p1.received.get());
    assert_eq!(p1.sent.get(), p0.received.get());
    let ledger = net.ledger();
    assert!(ledger.conserved(), "ledger conserved: {ledger:?}");
    fabric.shutdown();
}

#[test]
fn dropped_frames_settle_by_deadline_not_hang() {
    // The network destroys every parcel; nothing ever arrives. Without a
    // call deadline each future would wait forever.
    let fabric = Fabric::chaotic(
        2,
        NetPlan::clean(7).drop(1.0),
        |_| NetConfig {
            call_deadline: Some(Duration::from_millis(100)),
            ..NetConfig::default()
        },
        one_worker,
    );
    fabric.locality(1).register_action("echo", |x: u64| x);

    const CALLS: u64 = 10;
    let futures: Vec<SharedFuture<u64>> = (0..CALLS)
        .map(|i| fabric.locality(0).async_remote::<u64, u64>(1, "echo", &i))
        .collect();
    for f in &futures {
        match f.wait_timeout(WATCHDOG) {
            Err(TaskError::Timeout { .. }) => {}
            other => panic!("expected Timeout for a dropped call, got {other:?}"),
        }
    }

    let p0 = fabric.locality(0).parcels();
    assert_eq!(p0.calls_issued.get(), CALLS);
    assert_eq!(p0.calls_settled.get(), CALLS, "every future settled once");
    assert_eq!(p0.dropped.get(), CALLS, "sender booked every chaos drop");
    let net = fabric.net().expect("fabric");
    assert!(net.wait_quiescent(WATCHDOG));
    assert!(net.ledger().conserved(), "ledger: {:?}", net.ledger());
    fabric.shutdown();
}

#[test]
fn liveness_monitor_severs_a_blackholed_peer() {
    // A Drop-mode partition destroys parcels AND control frames: the
    // peer is silently unreachable, indistinguishable from a dead host.
    // Only the liveness monitor can convert that into a disconnect.
    let fabric = Fabric::chaotic(
        2,
        NetPlan::clean(5),
        |_| NetConfig {
            liveness_deadline: Some(Duration::from_millis(250)),
            ping_interval: Duration::from_millis(50),
            ..NetConfig::default()
        },
        one_worker,
    );
    fabric.locality(1).register_action("echo", |x: u64| x);

    // Prove the link works first.
    let ok = fabric
        .locality(0)
        .async_remote::<u64, u64>(1, "echo", &1)
        .wait_timeout(WATCHDOG)
        .expect("pre-partition call works");
    assert_eq!(*ok, 1);

    let net = fabric.net().expect("fabric");
    net.partition_now(0, 1, PartitionMode::Drop);

    let fut = fabric.locality(0).async_remote::<u64, u64>(1, "echo", &2);
    match fut.wait_timeout(WATCHDOG) {
        Err(TaskError::Disconnected { locality }) => assert_eq!(locality, 1),
        other => panic!("expected Disconnected from liveness sever, got {other:?}"),
    }
    assert!(
        eventually(|| fabric.locality(0).connected_peers().is_empty()),
        "blackholed peer removed from the link table"
    );
    let p0 = fabric.locality(0).parcels();
    assert_eq!(p0.calls_issued.get(), 2);
    assert_eq!(p0.calls_settled.get(), 2);
    fabric.shutdown();
}

#[test]
fn futures_across_a_partition_heal_settle_exactly_once() {
    // Hold-mode partition: frames park at the cut and flush on heal.
    // Every future outstanding at partition time must settle exactly
    // once — each settle is counted per future, not sampled.
    let fabric = Fabric::chaotic(2, NetPlan::clean(21), |_| NetConfig::default(), one_worker);
    fabric.locality(1).register_action("echo", |x: u64| x * 3);
    let net = fabric.net().expect("fabric");

    net.partition_now(0, 1, PartitionMode::Hold);

    const CALLS: usize = 20;
    let settle_counts: Vec<Arc<AtomicUsize>> =
        (0..CALLS).map(|_| Arc::new(AtomicUsize::new(0))).collect();
    let futures: Vec<SharedFuture<u64>> = (0..CALLS)
        .map(|i| {
            let f = fabric
                .locality(0)
                .async_remote::<u64, u64>(1, "echo", &(i as u64));
            let n = Arc::clone(&settle_counts[i]);
            f.on_settled(move |_| {
                n.fetch_add(1, Ordering::SeqCst);
            });
            f
        })
        .collect();

    // Nothing settles while the partition holds.
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        settle_counts.iter().all(|c| c.load(Ordering::SeqCst) == 0),
        "held frames must not settle futures early"
    );

    net.heal_now(0, 1);
    for (i, f) in futures.iter().enumerate() {
        let v = f.wait_timeout(WATCHDOG).expect("settles after heal");
        assert_eq!(*v, i as u64 * 3);
    }
    // Continuations run on the settling thread and may trail the waiter
    // by an instant; converge, then hold at exactly one.
    assert!(
        eventually(|| settle_counts.iter().all(|c| c.load(Ordering::SeqCst) == 1)),
        "every future settled exactly once"
    );
    let p0 = fabric.locality(0).parcels();
    assert_eq!(p0.calls_issued.get(), CALLS as u64);
    assert_eq!(p0.calls_settled.get(), CALLS as u64);
    assert!(net.wait_quiescent(WATCHDOG));
    let ledger = net.ledger();
    assert!(ledger.conserved(), "ledger conserved: {ledger:?}");
    assert_eq!(ledger.partitions_opened, 1);
    assert_eq!(ledger.partitions_healed, 1);
    fabric.shutdown();
}

#[test]
fn kill_under_partition_names_the_dead_locality_everywhere() {
    // Locality 2 dies while partitioned from locality 0, with calls
    // parked at the cut. Every such future must settle Disconnected
    // naming locality 2 — no hangs, no double settles — and the parked
    // frames must be ledgered as in-flight-at-sever, not lost.
    let fabric = Fabric::chaotic(3, NetPlan::clean(33), |_| NetConfig::default(), one_worker);
    fabric.locality(2).register_action("echo", |x: u64| x);
    fabric.locality(1).register_action("echo", |x: u64| x);
    let net = fabric.net().expect("fabric");

    net.partition_now(0, 2, PartitionMode::Hold);

    const CALLS: usize = 10;
    let settle_counts: Vec<Arc<AtomicUsize>> =
        (0..CALLS).map(|_| Arc::new(AtomicUsize::new(0))).collect();
    let futures: Vec<SharedFuture<u64>> = (0..CALLS)
        .map(|i| {
            let f = fabric
                .locality(0)
                .async_remote::<u64, u64>(2, "echo", &(i as u64));
            let n = Arc::clone(&settle_counts[i]);
            f.on_settled(move |_| {
                n.fetch_add(1, Ordering::SeqCst);
            });
            f
        })
        .collect();

    // Let every Call actually reach the cut and park there, so the kill
    // exercises the frames-in-flight-at-sever path, not just the queue.
    assert!(
        eventually(|| net.ledger().held >= CALLS as u64),
        "calls parked at the partition: {:?}",
        net.ledger()
    );

    fabric.kill(2);

    for f in &futures {
        match f.wait_timeout(WATCHDOG) {
            Err(TaskError::Disconnected { locality }) => {
                assert_eq!(locality, 2, "error must name the dead locality");
            }
            other => panic!("expected Disconnected {{ locality: 2 }}, got {other:?}"),
        }
    }
    assert!(
        eventually(|| settle_counts.iter().all(|c| c.load(Ordering::SeqCst) == 1)),
        "every future settled exactly once"
    );

    // The survivors' lane still works.
    let v = fabric
        .locality(0)
        .async_remote::<u64, u64>(1, "echo", &7)
        .wait_timeout(WATCHDOG)
        .expect("survivor lane works");
    assert_eq!(*v, 7);

    let p0 = fabric.locality(0).parcels();
    assert_eq!(p0.calls_issued.get(), CALLS as u64 + 1);
    assert_eq!(p0.calls_settled.get(), CALLS as u64 + 1);
    assert!(net.wait_quiescent(WATCHDOG));
    let ledger = net.ledger();
    assert!(ledger.conserved(), "ledger conserved: {ledger:?}");
    assert!(
        ledger.severed >= CALLS as u64,
        "parked calls ledgered at sever: {ledger:?}"
    );
    fabric.shutdown();
}

#[test]
fn late_reply_after_deadline_is_deduped_not_double_settled() {
    // Pause the fabric so the Call (and its Reply) are frozen in the
    // network while the caller's deadline fires; resuming then delivers
    // a Reply for an already-settled call. It must count as deduped —
    // a double settle would panic the promise.
    let fabric = Fabric::chaotic(
        2,
        NetPlan::clean(13),
        |_| NetConfig {
            call_deadline: Some(Duration::from_millis(50)),
            ..NetConfig::default()
        },
        one_worker,
    );
    fabric.locality(1).register_action("echo", |x: u64| x);
    let net = fabric.net().expect("fabric");

    net.pause();
    let fut = fabric.locality(0).async_remote::<u64, u64>(1, "echo", &9);
    match fut.wait_timeout(WATCHDOG) {
        Err(TaskError::Timeout { .. }) => {}
        other => panic!("expected deadline Timeout, got {other:?}"),
    }
    net.resume();

    let p0 = Arc::clone(fabric.locality(0).parcels());
    assert!(
        eventually(|| p0.deduped.get() >= 1),
        "late reply counted as deduped"
    );
    assert_eq!(p0.calls_issued.get(), 1);
    assert_eq!(p0.calls_settled.get(), 1, "settled once, by the deadline");
    assert!(net.wait_quiescent(WATCHDOG));
    fabric.shutdown();
}

#[test]
fn chaotic_mesh_conserves_the_ledger_and_settles_everything() {
    // General weather: loss, duplication, reordering, jitter — plus
    // deadlines so dropped frames settle. At quiescence the ledger must
    // conserve and issued == settled on every locality.
    let fabric = Fabric::chaotic(
        3,
        NetPlan::clean(97)
            .drop(0.15)
            .duplicate(0.15)
            .reorder(0.5, 200_000)
            .latency(10_000, 5_000),
        |_| NetConfig {
            call_deadline: Some(Duration::from_millis(300)),
            ..NetConfig::default()
        },
        one_worker,
    );
    for i in 0..3 {
        fabric.locality(i).register_action("echo", |x: u64| x + 100);
    }

    let mut futures: Vec<SharedFuture<u64>> = Vec::new();
    for src in 0..3usize {
        for dst in 0..3usize {
            if src == dst {
                continue;
            }
            for k in 0..20u64 {
                futures.push(
                    fabric
                        .locality(src)
                        .async_remote::<u64, u64>(dst, "echo", &k),
                );
            }
        }
    }
    let mut ok = 0usize;
    let mut timed_out = 0usize;
    for f in &futures {
        match f.wait_timeout(WATCHDOG) {
            Ok(v) => {
                assert!(*v >= 100);
                ok += 1;
            }
            Err(TaskError::Timeout { .. }) => timed_out += 1,
            other => panic!("unexpected outcome: {other:?}"),
        }
    }
    assert_eq!(ok + timed_out, futures.len(), "all settled, none hung");
    assert!(ok > 0, "some calls survive 15% loss");

    let net = fabric.net().expect("fabric");
    assert!(net.wait_quiescent(WATCHDOG));
    let ledger = net.ledger();
    assert!(ledger.conserved(), "ledger conserved: {ledger:?}");
    for i in 0..3 {
        let p = fabric.locality(i).parcels();
        assert_eq!(
            p.calls_issued.get(),
            p.calls_settled.get(),
            "locality {i}: exactly-once settlement"
        );
    }
    fabric.shutdown();
}
