//! Integration tests for the distribution layer: remote actions over
//! loopback and TCP worlds, failure settlement, and parcel-counter
//! balance.

use grain_net::bootstrap::{tcp_join, tcp_root, Fabric};
use grain_runtime::{RuntimeConfig, TaskError};
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(10);

fn fabric(world: usize) -> Fabric {
    Fabric::loopback(world, |_| RuntimeConfig::with_workers(2))
}

#[test]
fn remote_action_roundtrip() {
    let f = fabric(2);
    f.locality(1).register_action("double", |x: u64| x * 2);
    let fut = f.locality(0).async_remote::<u64, u64>(1, "double", &21);
    assert_eq!(*fut.wait_timeout(WAIT).expect("settled"), 42);
    f.shutdown();
}

#[test]
fn self_call_uses_the_same_codec_path() {
    let f = fabric(2);
    f.locality(0)
        .register_action("concat", |(a, b): (String, String)| format!("{a}{b}"));
    let fut = f.locality(0).async_remote::<(String, String), String>(
        0,
        "concat",
        &("foo".to_string(), "bar".to_string()),
    );
    assert_eq!(*fut.wait_timeout(WAIT).expect("settled"), "foobar");
    // The local fast path must not touch the parcel counters.
    assert_eq!(f.locality(0).parcels().sent.get(), 0);
    assert_eq!(f.locality(0).parcels().received.get(), 0);
    f.shutdown();
}

#[test]
fn remote_panic_comes_back_as_panicked_not_a_hang() {
    let f = fabric(2);
    f.locality(1).register_action("explode", |_x: u64| -> u64 {
        panic!("remote kaboom");
    });
    let fut = f.locality(0).async_remote::<u64, u64>(1, "explode", &1);
    match fut.wait_timeout(WAIT) {
        Err(TaskError::Panicked { message }) => {
            assert!(message.contains("remote kaboom"), "message: {message}")
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    f.shutdown();
}

#[test]
fn unknown_action_names_the_destination() {
    let f = fabric(2);
    let fut = f.locality(0).async_remote::<u64, u64>(1, "nope", &1);
    match fut.wait_timeout(WAIT) {
        Err(TaskError::Remote { locality, message }) => {
            assert_eq!(locality, 1);
            assert!(message.contains("nope"), "message: {message}");
        }
        other => panic!("expected Remote, got {other:?}"),
    }
    f.shutdown();
}

#[test]
fn deferred_action_replies_when_its_future_settles() {
    let f = fabric(2);
    // The answer is produced by a task spawned *after* the request
    // arrives — the reply must wait for it.
    f.locality(1)
        .register_deferred_action("slow-add", |rt, (a, b): (u64, u64)| {
            rt.async_call(move |_cx| {
                std::thread::sleep(Duration::from_millis(20));
                a + b
            })
        });
    let fut = f
        .locality(0)
        .async_remote::<(u64, u64), u64>(1, "slow-add", &(40, 2));
    assert_eq!(*fut.wait_timeout(WAIT).expect("settled"), 42);
    f.shutdown();
}

#[test]
fn killing_a_peer_settles_outstanding_futures_with_disconnected() {
    let f = fabric(2);
    // Deferred action whose inner future never settles: the reply can
    // only come from the disconnect sweep.
    f.locality(1)
        .register_deferred_action("black-hole", |_rt, _x: u64| {
            let (_promise, future) = grain_runtime::channel::<u64>();
            std::mem::forget(_promise); // keep it pending forever
            future
        });
    let fut = f.locality(0).async_remote::<u64, u64>(1, "black-hole", &1);
    assert!(fut.try_get().is_none(), "must still be pending");
    f.kill(1);
    match fut.wait_timeout(WAIT) {
        Err(e) => {
            assert_eq!(e, TaskError::Disconnected { locality: 1 });
            assert!(e.to_string().contains("locality#1"), "display: {e}");
        }
        Ok(v) => panic!("expected Disconnected, got value {v:?}"),
    }
    // Calls issued after the kill settle immediately, too.
    let late = f.locality(0).async_remote::<u64, u64>(1, "black-hole", &2);
    assert!(matches!(
        late.wait_timeout(WAIT),
        Err(TaskError::Disconnected { locality: 1 })
    ));
    f.shutdown();
}

#[test]
fn parcel_counters_balance_at_quiescence() {
    let world = 3;
    let f = fabric(world);
    for k in 0..world {
        f.locality(k).register_action("bump", |x: u64| x + 1);
    }
    // Every locality calls every other locality a few times.
    let mut futures = Vec::new();
    for src in 0..world {
        for dst in 0..world {
            if src != dst {
                for i in 0..5u64 {
                    futures.push(f.locality(src).async_remote::<u64, u64>(dst, "bump", &i));
                }
            }
        }
    }
    for fut in &futures {
        let _ = fut.wait_timeout(WAIT).expect("settled");
    }
    // Every call future has settled, so every Call and Reply parcel has
    // been received and dispatched: the books must balance exactly.
    let sent: u64 = (0..world).map(|k| f.locality(k).parcels().sent.get()).sum();
    let received: u64 = (0..world)
        .map(|k| f.locality(k).parcels().received.get())
        .sum();
    assert_eq!(sent, received, "sent {sent} vs received {received}");
    // 30 calls and 30 replies crossed the fabric.
    assert_eq!(sent, 60);
    let bytes_sent: u64 = (0..world)
        .map(|k| f.locality(k).parcels().bytes_sent.get())
        .sum();
    let bytes_received: u64 = (0..world)
        .map(|k| f.locality(k).parcels().bytes_received.get())
        .sum();
    assert_eq!(bytes_sent, bytes_received);
    // Serialization was sampled once per outbound call.
    let samples: u64 = (0..world)
        .map(|k| f.locality(k).parcels().ser_samples.get())
        .sum();
    assert_eq!(samples, 30);
    f.shutdown();
}

#[test]
fn counters_appear_in_each_runtime_registry() {
    let f = fabric(2);
    f.locality(1).register_action("id", |x: u64| x);
    let fut = f.locality(0).async_remote::<u64, u64>(1, "id", &7);
    let _ = fut.wait_timeout(WAIT).expect("settled");
    // Poll briefly: the writer thread bumps `sent` at delivery, which
    // may lag the reply by an instant.
    let deadline = Instant::now() + WAIT;
    loop {
        let v = f
            .locality(0)
            .runtime()
            .registry()
            .query("/parcels{locality#0/total}/count/sent")
            .expect("counter registered");
        if v.value >= 1.0 {
            break;
        }
        assert!(Instant::now() < deadline, "sent counter never reached 1");
        std::thread::sleep(Duration::from_millis(1));
    }
    let v = f
        .locality(1)
        .runtime()
        .registry()
        .query("/parcels{locality#1/total}/count/received")
        .expect("counter registered");
    assert!(v.value >= 1.0);
    f.shutdown();
}

/// Books balance over real sockets under a burst of small Call frames —
/// the exact traffic shape the `parcel-reuse` coalescing path batches
/// into one syscall per link flush. Every reply must carry the right
/// value (no frame torn or reordered by coalescing), every parcel must
/// be counted once on each side, and the final flush must not strand a
/// tail of frames in the write buffer. Runs in both feature states; with
/// `parcel-reuse` off it pins the baseline the feature must match.
#[test]
fn tcp_books_balance_under_small_frame_bursts() {
    let root = tcp_root("127.0.0.1:0", 2, RuntimeConfig::with_workers(2)).expect("root");
    let addr = root.listen_addr().to_string();
    let n1 = tcp_join(&addr, RuntimeConfig::with_workers(2)).expect("join");
    assert!(root.wait_for_world(WAIT), "root never saw the full world");
    assert!(n1.wait_for_world(WAIT), "n1 never saw the full world");

    n1.locality().register_action("triple", |x: u64| x * 3);
    const CALLS: u64 = 300;
    let futures: Vec<_> = (0..CALLS)
        .map(|i| root.locality().async_remote::<u64, u64>(1, "triple", &i))
        .collect();
    for (i, fut) in futures.iter().enumerate() {
        assert_eq!(
            *fut.wait_timeout(WAIT).expect("settled"),
            i as u64 * 3,
            "reply {i} corrupted"
        );
    }

    // Every call future settled, so every Call and Reply parcel has been
    // dispatched; coalesced or not, the books must balance exactly.
    let sent = root.locality().parcels().sent.get() + n1.locality().parcels().sent.get();
    let received =
        root.locality().parcels().received.get() + n1.locality().parcels().received.get();
    assert_eq!(sent, received, "sent {sent} vs received {received}");
    assert_eq!(sent, 2 * CALLS, "one Call and one Reply per invocation");
    let bytes_sent =
        root.locality().parcels().bytes_sent.get() + n1.locality().parcels().bytes_sent.get();
    let bytes_received = root.locality().parcels().bytes_received.get()
        + n1.locality().parcels().bytes_received.get();
    assert_eq!(bytes_sent, bytes_received, "byte books must balance");

    root.stop_listening();
    n1.stop_listening();
}

#[test]
fn tcp_world_bootstraps_and_serves_actions() {
    // Three localities in one process, over real sockets on 127.0.0.1.
    let root = tcp_root("127.0.0.1:0", 3, RuntimeConfig::with_workers(1)).expect("root");
    let addr = root.listen_addr().to_string();
    let n1 = tcp_join(&addr, RuntimeConfig::with_workers(1)).expect("join 1");
    let n2 = tcp_join(&addr, RuntimeConfig::with_workers(1)).expect("join 2");

    assert!(root.wait_for_world(WAIT), "root never saw the full world");
    assert!(n1.wait_for_world(WAIT), "n1 never saw the full world");
    assert!(n2.wait_for_world(WAIT), "n2 never saw the full world");
    assert_eq!(n1.locality().id(), 1);
    assert_eq!(n2.locality().id(), 2);

    n2.locality().register_action("pow2", |x: u64| x.pow(2));
    // Peer-to-peer call that does NOT involve the root's link table.
    let fut = n1.locality().async_remote::<u64, u64>(2, "pow2", &9);
    assert_eq!(*fut.wait_timeout(WAIT).expect("settled"), 81);

    // And root -> joiner.
    n1.locality().register_action("succ", |x: u64| x + 1);
    let fut = root.locality().async_remote::<u64, u64>(1, "succ", &99);
    assert_eq!(*fut.wait_timeout(WAIT).expect("settled"), 100);

    root.stop_listening();
    n1.stop_listening();
    n2.stop_listening();
}
