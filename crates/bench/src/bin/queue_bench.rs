//! `queue_bench` — scheduler-queue microbenchmark.
//!
//! The paper's central claim is that task-management overhead — queue
//! operations, conversion, and the Fig. 1 work search — dominates
//! execution time at fine grain. That makes the MPMC queue the innermost
//! hot path of the whole reproduction, and any serialization there an
//! artifact the measured overhead floor inherits. This binary records the
//! queue layer in isolation and end-to-end:
//!
//! * **Section A** — raw throughput of the lock-free
//!   [`grain_runtime::queue::SegmentedQueue`] against the pre-PR mutexed
//!   baseline ([`grain_runtime::queue::MutexQueue`], kept in-tree so
//!   before/after stays measurable in one binary) under three patterns:
//!   push/pop pairs (N producers × N consumers), steal drain (pre-filled
//!   queue, N consumers racing to pop), and single-thread ping-pong (the
//!   uncontended floor). **Caveat**: on a single-core host the OS
//!   serializes all threads, the mutex is effectively never contended,
//!   and both implementations converge to the same scheduler-bound
//!   number — the contention regime this section exists to measure only
//!   manifests with real hardware parallelism. The header prints the
//!   detected parallelism so recorded results are interpretable.
//! * **Section B** — a fine-grain stencil task-size sweep on the live
//!   runtime, recording `/threads/time/average-overhead` (the paper's
//!   t_o, Eq. 3) plus the `/threads/queue/*` contention counters. Each
//!   grain size is run several times and the median/min are reported —
//!   single runs at fine grain are noise-dominated. Build the workspace
//!   with `--features grain-runtime/mutex-queue` to put the pre-PR queue
//!   back under the *same* runtime and record the before side (the
//!   footer states which queue the running build uses).
//!
//! Flags: `--quick` (bounded iterations for the CI smoke stage),
//! `--no-sweep` (Section A only).

use grain_metrics::{append_snapshot, BenchSnapshot, JsonValue};
use grain_runtime::queue::{MutexQueue, SegmentedQueue};
use grain_runtime::{Runtime, RuntimeConfig};
use grain_stencil::{run_futurized, StencilParams};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// The queue interface the scheduler consumes; implemented by both
/// in-tree queues so they run the same harness.
trait BenchQueue<T>: Send + Sync + Default + 'static {
    fn push(&self, value: T);
    fn pop(&self) -> Option<T>;
}

impl<T: Send + 'static> BenchQueue<T> for MutexQueue<T> {
    fn push(&self, value: T) {
        MutexQueue::push(self, value);
    }

    fn pop(&self) -> Option<T> {
        MutexQueue::pop(self)
    }
}

impl<T: Send + 'static> BenchQueue<T> for SegmentedQueue<T> {
    fn push(&self, value: T) {
        SegmentedQueue::push(self, value);
    }

    fn pop(&self) -> Option<T> {
        SegmentedQueue::pop(self)
    }
}

/// Join the worker threads of one measured run and return the span of
/// the union of their work windows (min start → max end). Timed inside
/// each worker — not from the coordinating thread — because on an
/// oversubscribed host the coordinator may not be rescheduled until long
/// after (or before) the workers actually ran, which under- or
/// over-states throughput by orders of magnitude.
fn work_window(handles: Vec<std::thread::JoinHandle<(Instant, Instant)>>) -> f64 {
    let windows: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("bench thread panicked"))
        .collect();
    let start = windows.iter().map(|w| w.0).min().expect("no threads");
    let end = windows.iter().map(|w| w.1).max().expect("no threads");
    end.duration_since(start).as_secs_f64()
}

/// N producers push `per_thread` items each while N consumers pop until
/// everything is accounted for. Returns operations (pushes + pops) per
/// second.
fn pairs_throughput<Q: BenchQueue<u64>>(threads: usize, per_thread: u64) -> f64 {
    let q = Arc::new(Q::default());
    let popped = Arc::new(AtomicU64::new(0));
    let target = threads as u64 * per_thread;
    let barrier = Arc::new(Barrier::new(2 * threads));

    let mut handles = Vec::new();
    for p in 0..threads {
        let q = Arc::clone(&q);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let t0 = Instant::now();
            for i in 0..per_thread {
                q.push(p as u64 * per_thread + i);
            }
            (t0, Instant::now())
        }));
    }
    for _ in 0..threads {
        let q = Arc::clone(&q);
        let popped = Arc::clone(&popped);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let t0 = Instant::now();
            while popped.load(Ordering::Relaxed) < target {
                if q.pop().is_some() {
                    popped.fetch_add(1, Ordering::Relaxed);
                } else {
                    std::thread::yield_now();
                }
            }
            (t0, Instant::now())
        }));
    }
    let secs = work_window(handles);
    assert_eq!(popped.load(Ordering::Relaxed), target, "items lost");
    (2 * target) as f64 / secs
}

/// Pre-fill `total` items, then let N consumers race to drain them — the
/// steal pattern of Fig. 1 steps 3–6. Returns pops per second.
fn steal_throughput<Q: BenchQueue<u64>>(threads: usize, total: u64) -> f64 {
    let q = Arc::new(Q::default());
    for i in 0..total {
        q.push(i);
    }
    let popped = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(threads));
    let mut handles = Vec::new();
    for _ in 0..threads {
        let q = Arc::clone(&q);
        let popped = Arc::clone(&popped);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let t0 = Instant::now();
            while q.pop().is_some() {
                popped.fetch_add(1, Ordering::Relaxed);
            }
            (t0, Instant::now())
        }));
    }
    let secs = work_window(handles);
    assert_eq!(popped.load(Ordering::Relaxed), total, "items lost in drain");
    total as f64 / secs
}

/// Single-thread push-then-pop ping-pong: the uncontended cost floor.
fn pingpong_throughput<Q: BenchQueue<u64>>(iters: u64) -> f64 {
    let q = Q::default();
    let t0 = Instant::now();
    for i in 0..iters {
        q.push(i);
        assert_eq!(q.pop(), Some(i), "pop-after-push sanity violated");
    }
    (2 * iters) as f64 / t0.elapsed().as_secs_f64()
}

fn mops(v: f64) -> String {
    format!("{:>9.2}", v / 1e6)
}

fn section_a(quick: bool) -> f64 {
    let per_thread: u64 = if quick { 25_000 } else { 100_000 };
    let drain: u64 = if quick { 100_000 } else { 400_000 };

    // Pop-after-push sanity (asserted; the verify.sh smoke stage relies
    // on a non-zero exit if this breaks).
    {
        let q = SegmentedQueue::new();
        for i in 0..1_000u64 {
            q.push(i);
        }
        for i in 0..1_000u64 {
            assert_eq!(q.pop(), Some(i), "FIFO order violated");
        }
        assert!(q.pop().is_none() && q.is_empty());
        println!("sanity: pop-after-push FIFO order OK (1000 items)");
    }

    let reps = if quick { 2 } else { 3 };
    let best = |f: &dyn Fn() -> f64| (0..reps).map(|_| f()).fold(0.0f64, f64::max);

    println!();
    println!("Section A: raw queue throughput, Mops/s (best of {reps} reps, higher is better)");
    println!("  pattern=pairs: N producers x N consumers, {per_thread} items/producer");
    println!("  pattern=steal: {drain} pre-filled items, N consumers draining");
    println!();
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>9}",
        "pattern", "threads", "mutex", "lockfree", "speedup"
    );
    let mut worst_4plus = f64::INFINITY;
    for &threads in &[1usize, 2, 4, 8, 16] {
        let m = best(&|| pairs_throughput::<MutexQueue<u64>>(threads, per_thread));
        let l = best(&|| pairs_throughput::<SegmentedQueue<u64>>(threads, per_thread));
        if threads >= 4 {
            worst_4plus = worst_4plus.min(l / m);
        }
        println!(
            "{:<10} {:>8} {} {} {:>8.2}x",
            "pairs",
            threads,
            mops(m),
            mops(l),
            l / m
        );
    }
    for &threads in &[1usize, 2, 4, 8, 16] {
        let m = best(&|| steal_throughput::<MutexQueue<u64>>(threads, drain));
        let l = best(&|| steal_throughput::<SegmentedQueue<u64>>(threads, drain));
        if threads >= 4 {
            worst_4plus = worst_4plus.min(l / m);
        }
        println!(
            "{:<10} {:>8} {} {} {:>8.2}x",
            "steal",
            threads,
            mops(m),
            mops(l),
            l / m
        );
    }
    {
        let iters = if quick { 500_000 } else { 2_000_000 };
        let m = pingpong_throughput::<MutexQueue<u64>>(iters);
        let l = pingpong_throughput::<SegmentedQueue<u64>>(iters);
        println!(
            "{:<10} {:>8} {} {} {:>8.2}x",
            "pingpong",
            1,
            mops(m),
            mops(l),
            l / m
        );
    }
    println!();
    println!("worst pairs/steal speedup at 4+ threads: {worst_4plus:.2}x");
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    if cores <= 1 {
        println!(
            "NOTE: host exposes {cores} core(s); all threads are OS-serialized, the mutex \
             is never concurrently contended, and raw-throughput speedups converge to ~1x \
             regardless of queue implementation. The lock-free queue's contention behaviour \
             (CAS retries vs futex convoys) only manifests with real parallelism; see \
             Section B for the end-to-end overhead comparison this host can measure."
        );
    }
    worst_4plus
}

fn query(rt: &Runtime, path: &str) -> Option<f64> {
    rt.registry().query(path).ok().map(|v| v.value)
}

/// Median of a sorted-in-place sample (low-biased for even counts — a
/// real observed value, not an interpolation).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[(xs.len() - 1) / 2]
}

fn section_b(quick: bool) -> (bool, Vec<JsonValue>) {
    let total = if quick { 50_000 } else { 200_000 };
    let nt = 5;
    let workers = 4;
    let reps = if quick { 3 } else { 7 };
    let grid: &[usize] = if quick {
        &[25, 100, 1600]
    } else {
        &[25, 50, 100, 400, 1600, 6400]
    };

    println!();
    println!("Section B: fine-grain stencil sweep on the live runtime");
    println!(
        "  {total} total points, {nt} steps, {workers} workers; nx = points/partition; \
         median/min over {reps} runs per row"
    );
    println!();
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>8} {:>10} {:>12} {:>10}",
        "nx", "tasks", "t_o med(ns)", "t_o min(ns)", "idle", "wall(ms)", "cas-retry", "segments"
    );
    let mut lockfree_runtime = false;
    let mut rows: Vec<JsonValue> = Vec::new();
    for &nx in grid {
        let params = StencilParams::for_total(total, nx, nt);
        let mut overheads = Vec::new();
        let mut idles = Vec::new();
        let mut walls = Vec::new();
        let mut cas_total = 0.0;
        let mut segs_total = 0.0;
        for _ in 0..reps {
            let rt = Runtime::new(RuntimeConfig::with_workers(workers));
            let t0 = Instant::now();
            let _ = run_futurized(&rt, &params);
            walls.push(t0.elapsed().as_secs_f64() * 1e3);
            let t = "locality#0/total";
            if let Some(v) = query(&rt, &format!("/threads{{{t}}}/time/average-overhead")) {
                overheads.push(v);
            }
            if let Some(v) = query(&rt, &format!("/threads{{{t}}}/idle-rate")) {
                idles.push(v);
            }
            cas_total += query(&rt, &format!("/threads{{{t}}}/queue/cas-retries")).unwrap_or(0.0);
            let segs = query(&rt, &format!("/threads{{{t}}}/queue/segment-allocations"));
            segs_total += segs.unwrap_or(0.0);
            if segs.unwrap_or(0.0) > 0.0 {
                lockfree_runtime = true;
            }
        }
        let (o_med, o_min) = if overheads.is_empty() {
            ("n/a".to_owned(), "n/a".to_owned())
        } else {
            let min = overheads.iter().copied().fold(f64::INFINITY, f64::min);
            (
                format!("{:.0}", median(&mut overheads)),
                format!("{min:.0}"),
            )
        };
        let idle = if idles.is_empty() {
            "n/a".to_owned()
        } else {
            format!("{:.1}%", 100.0 * median(&mut idles))
        };
        let wall_med = median(&mut walls);
        println!(
            "{:<8} {:>8} {:>12} {:>12} {:>8} {:>10.1} {:>12.0} {:>10.0}",
            nx,
            params.total_tasks(),
            o_med,
            o_min,
            idle,
            wall_med,
            cas_total / reps as f64,
            segs_total / reps as f64,
        );
        rows.push(JsonValue::Obj(vec![
            ("nx".to_owned(), nx.into()),
            ("tasks".to_owned(), params.total_tasks().into()),
            (
                "t_o_med_ns".to_owned(),
                JsonValue::Num(if overheads.is_empty() {
                    f64::NAN
                } else {
                    median(&mut overheads)
                }),
            ),
            (
                "idle_rate".to_owned(),
                JsonValue::Num(if idles.is_empty() {
                    f64::NAN
                } else {
                    median(&mut idles)
                }),
            ),
            ("wall_ms".to_owned(), wall_med.into()),
        ]));
    }
    println!();
    println!(
        "runtime queue under test: {}",
        if lockfree_runtime {
            "lockfree (SegmentedQueue)"
        } else {
            "mutex (MutexQueue; built with --features grain-runtime/mutex-queue)"
        }
    );
    (lockfree_runtime, rows)
}

fn main() {
    let mut quick = false;
    let mut sweep = true;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--quick" => quick = true,
            "--no-sweep" => sweep = false,
            other => {
                eprintln!("usage: queue_bench [--quick] [--no-sweep] (got {other})");
                std::process::exit(2);
            }
        }
    }
    println!("queue_bench: scheduler MPMC queue micro + fine-grain sweep");
    println!(
        "host parallelism: {}",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    let worst_4plus = section_a(quick);
    let mut snap = BenchSnapshot::new("queue")
        .config("quick", quick)
        .config("features", grain_bench::hotpath_features())
        .config(
            "host_parallelism",
            std::thread::available_parallelism().map_or(0, |n| n.get()),
        )
        .metric("worst_pairs_steal_speedup_4t", worst_4plus);
    if sweep {
        let (lockfree, rows) = section_b(quick);
        snap = snap
            .config("queue", if lockfree { "lockfree" } else { "mutex" })
            .metric("stencil_sweep", JsonValue::Arr(rows));
    }
    let out = Path::new("results/BENCH_queue.json");
    match append_snapshot(out, &snap) {
        Ok(()) => println!("\nrecorded snapshot -> {}", out.display()),
        Err(e) => eprintln!("\nwarning: could not record {}: {e}", out.display()),
    }
    println!();
    println!("OK");
}
