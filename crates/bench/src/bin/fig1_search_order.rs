//! Fig. 1 — working principle of the Priority Local scheduler: the
//! six-step task search order, demonstrated live on the native runtime's
//! scheduler with a seeded queue state.

use grain_counters::ThreadCounters;
use grain_runtime::scheduler::Scheduler;
use grain_runtime::task::{Priority, StagedTask, Task, TaskId};
use grain_runtime::SchedulerKind;
use grain_topology::NumaTopology;

fn staged(id: u64) -> StagedTask {
    StagedTask::once(TaskId(id), Priority::Normal, |_| {})
}

fn main() {
    println!("Fig. 1: Priority Local scheduler search order (worker 0 of 4, 2 NUMA domains)");
    println!();
    println!("  Task Scheduling Algorithm          queue seeded with task id");
    println!("  1. Local Pending                   10");
    println!("  2. Local Staged                    11");
    println!("  3. Local NUMA Staged               12  (worker 1)");
    println!("  4. Local NUMA Pending              13  (worker 1)");
    println!("  5. Remote NUMA Staged              14  (worker 2)");
    println!("  6. Remote NUMA Pending             15  (worker 3)");
    println!("     Low-priority queue              16");
    println!();

    let numa = NumaTopology::block(4, 2);
    let sched = Scheduler::new(numa, SchedulerKind::PriorityLocalFifo, 1);
    let counters = ThreadCounters::new(4);
    sched.queues.push_pending(0, Task::convert(staged(10)));
    sched.queues.push_staged(0, staged(11));
    sched.queues.push_staged(1, staged(12));
    sched.queues.push_pending(1, Task::convert(staged(13)));
    sched.queues.push_staged(2, staged(14));
    sched.queues.push_pending(3, Task::convert(staged(15)));
    sched.queues.push_low(staged(16));

    println!("Observed dispatch order for worker 0:");
    let mut step = 1;
    while let Some((task, prov)) = sched.find_work(0, &counters) {
        println!("  step {step}: task#{} from {:?}", task.id.0, prov);
        let expected: &[(u64, bool)] = &[
            (10, false),
            (11, false),
            (12, true),
            (13, true),
            (14, true),
            (15, true),
            (16, false),
        ];
        let (id, steal) = expected[step - 1];
        assert_eq!(task.id.0, id, "search order violated");
        assert_eq!(prov.is_steal(), steal);
        step += 1;
    }
    assert_eq!(step, 8, "all seven seeded tasks must be found in order");
    println!();
    println!(
        "Counters: staged-accesses={} staged-misses={} pending-accesses={} pending-misses={} stolen={} converted={}",
        counters.staged_accesses.sum(),
        counters.staged_misses.sum(),
        counters.pending_accesses.sum(),
        counters.pending_misses.sum(),
        counters.stolen.sum(),
        counters.converted.sum()
    );
    println!("OK: dispatch order matches the paper's Fig. 1 search order exactly.");
}
