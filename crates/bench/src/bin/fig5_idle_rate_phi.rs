//! Fig. 5 (a–c) — idle-rate and execution time vs partition size on the
//! Xeon Phi at 16, 32 and 60 cores.

use grain_bench::{fig_idle_rate, Cli};

fn main() {
    let cli = Cli::parse();
    let p = cli.platform_or("xeon-phi");
    fig_idle_rate(&p, &[16, 32, 60], &cli, "Fig. 5");
}
