//! Extension experiment — the paper's stated goal (§VI): *dynamic* grain
//! adaptation. Starting from a pathologically fine and a pathologically
//! coarse granularity, the idle-rate-threshold tuner re-partitions the
//! grid between epochs until the counters say the size is adequate.

use grain_adaptive::{adapt, ThresholdTuner, TunerConfig};
use grain_bench::Cli;
use grain_metrics::sweep::SimEngine;
use grain_metrics::table;

fn main() {
    let cli = Cli::parse();
    let p = cli.platform_or("haswell");
    let workers = p.usable_cores;
    let engine = SimEngine::paper(p.clone());

    for (label, initial_nx) in [("fine start", 1_000usize), ("coarse start", 50_000_000)] {
        let mut tuner = ThresholdTuner::new(TunerConfig {
            initial_nx,
            target_idle_rate: 0.30,
            ..TunerConfig::default()
        });
        eprintln!(
            "# adapting from {label} (nx={initial_nx}) on {} {workers} cores…",
            p.name
        );
        let trace = adapt(&engine, workers, &mut tuner, 24);

        let headers = ["epoch", "nx", "exec(s)", "idle-rate", "Gpt/s"];
        let rows: Vec<Vec<String>> = trace
            .epochs
            .iter()
            .enumerate()
            .map(|(i, e)| {
                vec![
                    i.to_string(),
                    table::fmt::count(e.nx as f64),
                    table::fmt::s(e.wall_s),
                    table::fmt::pct(e.idle_rate),
                    format!("{:.3}", e.points_per_s / 1e9),
                ]
            })
            .collect();
        print!(
            "{}",
            table::render(
                &format!(
                    "Adaptive grain-size trace — {} {workers} cores, {label} (converged: {})",
                    p.name, trace.converged
                ),
                &headers,
                &rows
            )
        );
        println!(
            "  final nx = {}, throughput gain over first epoch = {:.2}x\n",
            trace.final_nx,
            trace.speedup()
        );
    }
    println!(
        "Check: from both extremes the tuner converges into the flat region of\n\
         Fig. 3 using only the runtime's own counters — the adaptivity the paper's\n\
         characterization was designed to enable."
    );
}
