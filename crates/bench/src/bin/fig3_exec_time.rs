//! Fig. 3 (a–d) — execution time vs task granularity (partition size)
//! for increasing core counts on all four Table I platforms.

use grain_bench::{print_series, sweep_platform, Cli};
use grain_metrics::table;
use grain_topology::presets;

fn main() {
    let cli = Cli::parse();
    let platforms = match &cli.platform {
        Some(name) => vec![cli.platform_or(name)],
        None => vec![
            presets::sandy_bridge(),
            presets::ivy_bridge(),
            presets::haswell(),
            presets::xeon_phi(),
        ],
    };
    for (sub, p) in ["a", "b", "c", "d"].iter().zip(&platforms) {
        let cores = p.core_sweep();
        let sweep = sweep_platform(p, &cli.grid(), &cores, cli.samples);
        print_series(
            &format!(
                "Fig. 3{sub}: execution time (s) vs partition size — {} ({} steps)",
                p.name,
                if p.name == "Xeon Phi" { 5 } else { 50 }
            ),
            &sweep,
            &cores,
            "exec(s)",
            cli.csv,
            |cell| table::fmt::s(cell.agg.wall_s.mean()),
        );
        if let Some((nx, t)) = sweep.best_nx(*cores.last().unwrap()) {
            println!(
                "  minimum at {} cores: {:.3}s @ partition {}\n",
                cores.last().unwrap(),
                t,
                nx
            );
        }
    }
    println!(
        "Check (paper §IV): every curve is U-shaped — task-management overheads blow\n\
         up the fine-grained left edge, starvation the coarse right edge; past ~8\n\
         cores the flat region barely improves (bandwidth saturation)."
    );
}
