//! Extension experiment — the §V/§VI integration: grain adaptation plus
//! worker throttling, driven by the counters, on a simulated Haswell at
//! paper scale. Reports the trajectory and the energy proxy
//! (core-seconds) saved versus an unmanaged run.

use grain_adaptive::{
    run_policy_epochs, GrainPolicy, PolicyEngine, ThresholdTuner, ThrottlePolicy, TunerConfig,
};
use grain_bench::Cli;
use grain_metrics::sweep::SimEngine;
use grain_metrics::table;

fn main() {
    let cli = Cli::parse();
    let p = cli.platform_or("haswell");
    let workers = p.usable_cores;
    let engine = SimEngine::paper(p.clone());
    let start_nx = 25_000_000; // 4 partitions on 28 cores: badly starved

    let run = |with_policies: bool| {
        let mut pe = if with_policies {
            PolicyEngine::new(vec![
                Box::new(GrainPolicy::new(ThresholdTuner::new(TunerConfig {
                    initial_nx: start_nx,
                    target_idle_rate: 0.30,
                    ..TunerConfig::default()
                }))),
                Box::new(ThrottlePolicy::default()),
            ])
        } else {
            PolicyEngine::new(vec![])
        };
        run_policy_epochs(&engine, start_nx, workers, 10, &mut pe)
    };

    eprintln!("# running managed trajectory…");
    let managed = run(true);
    eprintln!("# running unmanaged baseline…");
    let unmanaged = run(false);

    let headers = ["epoch", "nx", "workers", "idle-rate", "exec(s)", "core-sec"];
    let rows: Vec<Vec<String>> = managed
        .iter()
        .enumerate()
        .map(|(i, e)| {
            vec![
                i.to_string(),
                table::fmt::count(e.nx as f64),
                e.active_workers.to_string(),
                table::fmt::pct(e.idle_rate),
                table::fmt::s(e.wall_s),
                table::fmt::s(e.core_seconds),
            ]
        })
        .collect();
    print!(
        "{}",
        table::render(
            &format!(
                "Policy engine (grain + throttle) — {} starting at nx={start_nx}, {workers} cores",
                p.name
            ),
            &headers,
            &rows
        )
    );

    let cs_m: f64 = managed.iter().map(|e| e.core_seconds).sum();
    let cs_u: f64 = unmanaged.iter().map(|e| e.core_seconds).sum();
    let t_m: f64 = managed.iter().map(|e| e.wall_s).sum();
    let t_u: f64 = unmanaged.iter().map(|e| e.wall_s).sum();
    println!(
        "\nmanaged:   {t_m:.2}s wall, {cs_m:.1} core-seconds\n\
         unmanaged: {t_u:.2}s wall, {cs_u:.1} core-seconds\n\
         → {:.1}% faster and {:.1}% less energy proxy, from the same counters\n\
         the paper's methodology identified.",
        (1.0 - t_m / t_u) * 100.0,
        (1.0 - cs_m / cs_u) * 100.0
    );
}
