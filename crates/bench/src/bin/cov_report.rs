//! §IV sample-variability report: coefficient of variation of execution
//! times over repeated samples, as the paper discusses ("COVs for
//! execution times and event counts are less than 10%, most less than 3%,
//! for experiments using less than 16 cores; up to 21% for >16 cores at
//! small partitions").

use grain_bench::{sweep_platform, Cli};
use grain_metrics::table;

fn main() {
    let mut cli = Cli::parse();
    if cli.samples < 5 {
        cli.samples = 10; // COV needs real repetition; default to the paper's 10.
    }
    let p = cli.platform_or("haswell");
    let grid = [2_500, 31_250, 1_000_000, 25_000_000];
    let cores = [4, 8, 16, 28];
    let sweep = sweep_platform(&p, &grid, &cores, cli.samples);

    let headers = ["partition", "cores", "exec mean(s)", "exec stddev", "COV"];
    let mut rows = Vec::new();
    for &nx in &grid {
        for &c in &cores {
            if let Some(cell) = sweep.cell(nx, c) {
                rows.push(vec![
                    table::fmt::count(nx as f64),
                    c.to_string(),
                    table::fmt::s(cell.agg.wall_s.mean()),
                    format!("{:.4}", cell.agg.wall_s.stddev()),
                    table::fmt::pct(cell.agg.wall_s.cov()),
                ]);
            }
        }
    }
    print!(
        "{}",
        table::render(
            &format!(
                "COV of execution time over {} samples — {}",
                cli.samples, p.name
            ),
            &headers,
            &rows
        )
    );
    if cli.csv {
        println!("CSV:");
        print!("{}", table::csv(&headers, &rows));
    }
    println!(
        "\nCheck (paper §IV): COVs stay below ~10% (mostly below 3%); variability is\n\
         largest for small partitions at high core counts."
    );
}
