//! Open-loop load generator for the grain-service job layer.
//!
//! Three tenants with different grain profiles (the paper's central
//! variable) submit jobs on fixed schedules, Task-Bench style, against
//! one shared runtime:
//!
//! * `interactive` — many small jobs of fine-grained tasks, weight 4,
//!   `Interactive` priority;
//! * `batch` — medium jobs of medium tasks, weight 2;
//! * `background` — few large jobs of coarse tasks, weight 1,
//!   `BestEffort` priority.
//!
//! On top of the steady load the harness provokes the two unhappy paths:
//! a runaway background job that is cancelled mid-flight, and a burst
//! that overflows the admission queue so submissions bounce with
//! `Rejected`. The report shows per-tenant throughput, exact p50/p99
//! turnaround, the service counter surface, and one job's counter paths.
//!
//! A final phase serves **taskbench-family tenants**: tenants whose jobs
//! are dependency graphs (stencil halo, tree reduce, parallel sweep)
//! submitted as work *shapes*, once with the autotune grain controller
//! enabled and once pinned to the submitter's (deliberately coarse)
//! partition. The per-tenant grain trajectory and wall-clock totals of
//! both runs land in `results/BENCH_service.json`.

use grain_adaptive::tuner::TunerConfig;
use grain_autotune::{Autotune, AutotuneConfig, ShapedWork};
use grain_bench::Cli;
use grain_metrics::table;
use grain_metrics::JsonValue;
use grain_service::{
    AdmissionConfig, JobHandle, JobPriority, JobService, JobSpec, JobState, ServiceConfig,
};
use grain_sim::storm::GraphFamily;
use grain_taskbench::Cov;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Keep a core busy for roughly `us` microseconds of real work.
fn spin_for(us: u64) {
    let t0 = Instant::now();
    let mut x = 0u64;
    while t0.elapsed() < Duration::from_micros(us) {
        for i in 0..64u64 {
            x = x.wrapping_add(std::hint::black_box(i) * i);
        }
    }
    std::hint::black_box(x);
}

struct Profile {
    tenant: &'static str,
    priority: JobPriority,
    tasks: u64,
    grain_us: u64,
    jobs: usize,
    inter_arrival: Duration,
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let cli = Cli::parse();
    let workers = grain_topology::host::available_cores().clamp(2, 4);
    let scale = if cli.quick { 1 } else { 4 };

    let config = ServiceConfig {
        runtime: grain_service::grain_runtime::RuntimeConfig::with_workers(workers),
        admission: AdmissionConfig {
            max_in_flight_tasks: 256,
            max_queued_jobs: 8,
            default_tenant_weight: 1,
            tenant_weights: vec![("interactive".into(), 4), ("batch".into(), 2)],
        },
        poll_interval: Duration::from_micros(200),
        ..ServiceConfig::default()
    };
    let max_budget = config.admission.max_in_flight_tasks;
    let queue_limit = config.admission.max_queued_jobs;
    let service = JobService::new(config);
    println!(
        "# service_bench: {workers} workers, budget {max_budget} tasks, queue limit {queue_limit}"
    );

    // ---- Unhappy path 1: a runaway job, cancelled mid-flight. -------
    // Its cost claims the whole budget, so while it runs everything else
    // must wait in the tenant queues.
    let release_probe = Arc::new(AtomicBool::new(false));
    let probe = Arc::clone(&release_probe);
    let runaway = service.submit(
        JobSpec::new("runaway", "background")
            .priority(JobPriority::BestEffort)
            .estimated_tasks(max_budget),
        move |ctx| {
            probe.store(true, Ordering::SeqCst);
            for _ in 0..4 {
                ctx.spawn(|c| {
                    while !c.is_cancelled() {
                        spin_for(50);
                    }
                });
            }
        },
    );
    while !release_probe.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_micros(100));
    }

    // ---- Unhappy path 2: burst past the queue bound. ----------------
    let mut burst: Vec<JobHandle> = Vec::new();
    for i in 0..queue_limit + 4 {
        burst.push(service.submit(
            JobSpec::new(format!("burst-{i}"), "batch").estimated_tasks(2),
            |ctx| {
                ctx.spawn(|_| spin_for(5));
            },
        ));
    }
    let bounced = burst
        .iter()
        .filter(|h| h.state() == JobState::Rejected)
        .count();
    runaway.cancel();
    let runaway_outcome = runaway.wait();
    println!(
        "# runaway cancelled: state={} completed={} skipped={}; burst rejected {bounced}/{}",
        runaway_outcome.state,
        runaway_outcome.tasks_completed,
        runaway_outcome.tasks_skipped,
        burst.len()
    );
    assert_eq!(runaway_outcome.state, JobState::Cancelled);
    assert!(bounced >= 1, "burst must overflow the admission queue");

    // ---- Steady open-loop load across three tenants. ----------------
    let profiles = [
        Profile {
            tenant: "interactive",
            priority: JobPriority::Interactive,
            tasks: 16,
            grain_us: 20,
            jobs: 12 * scale,
            inter_arrival: Duration::from_millis(2),
        },
        Profile {
            tenant: "batch",
            priority: JobPriority::Batch,
            tasks: 32,
            grain_us: 100,
            jobs: 6 * scale,
            inter_arrival: Duration::from_millis(4),
        },
        Profile {
            tenant: "background",
            priority: JobPriority::BestEffort,
            tasks: 64,
            grain_us: 400,
            jobs: 2 * scale,
            inter_arrival: Duration::from_millis(12),
        },
    ];

    let t0 = Instant::now();
    let mut handles: Vec<(&'static str, JobHandle)> = Vec::new();
    std::thread::scope(|scope| {
        // One generator thread per tenant: each submits on its own
        // clock (open loop), not when the service is ready for it.
        let generators: Vec<_> = profiles
            .iter()
            .map(|p| {
                let service = &service;
                let (tenant, priority, tasks, grain_us, jobs, gap) = (
                    p.tenant,
                    p.priority,
                    p.tasks,
                    p.grain_us,
                    p.jobs,
                    p.inter_arrival,
                );
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    let start = Instant::now();
                    for j in 0..jobs {
                        // Sleep to the schedule, then submit regardless
                        // of service state.
                        let due = gap * j as u32;
                        if let Some(sleep) = due.checked_sub(start.elapsed()) {
                            std::thread::sleep(sleep);
                        }
                        let spec = JobSpec::new(format!("{tenant}-{j}"), tenant)
                            .priority(priority)
                            .estimated_tasks(tasks + 1);
                        mine.push(service.submit(spec, move |ctx| {
                            for _ in 0..tasks {
                                ctx.spawn(move |_| spin_for(grain_us));
                            }
                        }));
                    }
                    (tenant, mine)
                })
            })
            .collect();
        for t in generators {
            let (tenant, mine) = t.join().expect("generator thread panicked");
            handles.extend(mine.into_iter().map(|h| (tenant, h)));
        }
    });

    // Join every job and fold per-tenant stats.
    let mut rows = Vec::new();
    let mut all_turnarounds: Vec<Duration> = Vec::new();
    for p in &profiles {
        let mut turnarounds: Vec<Duration> = Vec::new();
        let mut states = [0usize; 4]; // completed, cancelled+timed-out, rejected, other
        let mut tasks_done = 0u64;
        for (tenant, h) in handles.iter().filter(|(t, _)| *t == p.tenant) {
            let _ = tenant;
            let o = h.wait();
            match o.state {
                JobState::Completed => states[0] += 1,
                JobState::Cancelled | JobState::TimedOut => states[1] += 1,
                JobState::Rejected => states[2] += 1,
                _ => states[3] += 1,
            }
            if o.state == JobState::Completed {
                turnarounds.push(o.turnaround);
                tasks_done += o.tasks_completed;
            }
        }
        turnarounds.sort();
        all_turnarounds.extend(turnarounds.iter().copied());
        rows.push(vec![
            p.tenant.to_string(),
            p.jobs.to_string(),
            states[0].to_string(),
            states[2].to_string(),
            table::fmt::count(tasks_done as f64),
            table::fmt::s(percentile(&turnarounds, 0.50).as_secs_f64()),
            table::fmt::s(percentile(&turnarounds, 0.99).as_secs_f64()),
        ]);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let headers = [
        "tenant", "jobs", "done", "rejected", "tasks", "p50 turn", "p99 turn",
    ];
    print!(
        "{}",
        table::render(
            &format!("service_bench: open-loop mixed-grain load, {elapsed:.2}s wall"),
            &headers,
            &rows
        )
    );
    if cli.csv {
        println!();
        print!("{}", table::csv(&headers, &rows));
    }

    all_turnarounds.sort();
    let total_jobs: usize = profiles.iter().map(|p| p.jobs).sum();
    println!(
        "\nthroughput: {:.1} jobs/s submitted, p50 {:.3} ms / p99 {:.3} ms turnaround (all tenants)",
        total_jobs as f64 / elapsed,
        percentile(&all_turnarounds, 0.50).as_secs_f64() * 1e3,
        percentile(&all_turnarounds, 0.99).as_secs_f64() * 1e3,
    );

    // ---- The counter surfaces. --------------------------------------
    // Join the burst stragglers too, so the gauges below read a fully
    // drained service.
    for h in &burst {
        let _ = h.wait();
    }
    let (_, sample) = handles.last().expect("load phase submitted jobs");
    println!(
        "\nper-job counters of {} ({}):",
        sample.instance(),
        sample.state()
    );
    for path in sample.counter_paths() {
        let v = service
            .registry()
            .query(&path)
            .map(|v| v.value)
            .unwrap_or(f64::NAN);
        println!("  {path} = {v:.0}");
    }
    println!("\nservice counters:");
    for path in [
        "/service/jobs/submitted",
        "/service/jobs/admitted",
        "/service/jobs/completed",
        "/service/jobs/cancelled",
        "/service/jobs/timed-out",
        "/service/jobs/rejected",
        "/service/queue/length",
        "/service/tasks/budget-in-use",
        "/service/time/admission-latency",
        "/service/time/turnaround",
    ] {
        let v = service.registry().query(path).expect("registered").value;
        println!("  {path} = {v:.0}");
    }
    let counters = service.counters();
    println!("\nturnaround histogram (log2 ns buckets):");
    print!("{}", counters.turnaround.render("ns", 40));
    println!(
        "histogram quantile floors: p50 >= {} ns, p99 >= {} ns",
        counters.turnaround.quantile_floor(0.50),
        counters.turnaround.quantile_floor(0.99)
    );

    assert!(counters.cancelled.get() >= 1, "at least one cancelled job");
    assert!(counters.rejected.get() >= 1, "at least one rejected job");

    // ---- Overload resilience: one misbehaving tenant, before/after. --
    // The same 2× oversubmission storm with a panicking `chaos` tenant,
    // run once with the pressure loop + breakers disabled and once with
    // the defaults, comparing the well-behaved tenants' outcomes.
    println!();
    let baseline = overload_phase(false, workers, scale);
    let resilient = overload_phase(true, workers, scale);
    let headers = [
        "resilience",
        "done",
        "timed-out",
        "shed",
        "breaker-rej",
        "p50 turn",
        "p99 turn",
    ];
    let rows = vec![baseline.row("off"), resilient.row("on")];
    print!(
        "{}",
        table::render(
            "service_bench: overload storm, well-behaved tenants (alpha+beta) vs chaos",
            &headers,
            &rows
        )
    );
    if cli.csv {
        println!();
        print!("{}", table::csv(&headers, &rows));
    }
    println!(
        "\nchaos tenant: breaker opened {}x with resilience on (0 expected off: {})",
        resilient.breaker_opens, baseline.breaker_opens
    );
    assert!(
        resilient.breaker_opens >= 1,
        "the chaos tenant's breaker must trip under the storm"
    );
    // ---- Taskbench-family tenants, autotune on/off. -----------------
    // Graph-shaped tenants submit work shapes starting from one giant
    // task per job; the controller re-chunks the "on" run while the
    // "off" run keeps the submitter's partition.
    println!();
    let tuned = autotune_phase(true, workers);
    let pinned = autotune_phase(false, workers);
    let headers = [
        "tenant",
        "autotune",
        "grain 0",
        "grain N",
        "converged",
        "total",
    ];
    let mut rows = Vec::new();
    for r in tuned.iter().chain(pinned.iter()) {
        rows.push(r.row());
    }
    print!(
        "{}",
        table::render(
            "service_bench: taskbench-family tenants, shaped submission",
            &headers,
            &rows
        )
    );
    if cli.csv {
        println!();
        print!("{}", table::csv(&headers, &rows));
    }
    for r in &tuned {
        assert!(
            r.final_grain < r.start_grain,
            "{}: controller must break up one-task jobs",
            r.tenant
        );
    }
    for r in &pinned {
        assert_eq!(
            r.final_grain, r.start_grain,
            "{}: disabled autotune must not re-chunk",
            r.tenant
        );
    }

    // Record the run in the service trajectory, features-stamped so
    // hot-path before/after pairs are readable straight from the file.
    let autotune_json =
        |rs: &[AutotuneRow]| JsonValue::Arr(rs.iter().map(AutotuneRow::to_json).collect());
    let snap = grain_metrics::BenchSnapshot::new("service")
        .config("quick", cli.quick)
        .config("features", grain_bench::hotpath_features())
        .config("workers", workers)
        .config(
            "host_parallelism",
            std::thread::available_parallelism().map_or(0, |n| n.get()),
        )
        .metric("jobs_per_sec", total_jobs as f64 / elapsed)
        .metric(
            "p50_turnaround_ms",
            percentile(&all_turnarounds, 0.50).as_secs_f64() * 1e3,
        )
        .metric(
            "p99_turnaround_ms",
            percentile(&all_turnarounds, 0.99).as_secs_f64() * 1e3,
        )
        .metric("breaker_opens_resilient", resilient.breaker_opens)
        .metric(
            "autotune",
            JsonValue::Obj(vec![
                ("on".to_owned(), autotune_json(&tuned)),
                ("off".to_owned(), autotune_json(&pinned)),
            ]),
        );
    let out = std::path::Path::new("results/BENCH_service.json");
    match grain_metrics::append_snapshot(out, &snap) {
        Ok(()) => println!("\nrecorded snapshot -> {}", out.display()),
        Err(e) => eprintln!("\nwarning: could not record {}: {e}", out.display()),
    }

    println!("\nok: >=3 tenants served, >=1 job cancelled, >=1 rejected, overload compared");
}

struct OverloadResult {
    completed: usize,
    timed_out: usize,
    shed: usize,
    breaker_rejected: u64,
    p50: Duration,
    p99: Duration,
    breaker_opens: u64,
}

impl OverloadResult {
    fn row(&self, label: &str) -> Vec<String> {
        vec![
            label.to_string(),
            self.completed.to_string(),
            self.timed_out.to_string(),
            self.shed.to_string(),
            self.breaker_rejected.to_string(),
            table::fmt::s(self.p50.as_secs_f64()),
            table::fmt::s(self.p99.as_secs_f64()),
        ]
    }
}

/// One seeded overload storm: two well-behaved tenants submit deadline
/// jobs at 2× the service's drain rate while a `chaos` tenant floods it
/// with panicking retry jobs. Returns the well-behaved tenants' fate.
fn overload_phase(resilience: bool, workers: usize, scale: usize) -> OverloadResult {
    let mut config = ServiceConfig {
        runtime: grain_service::grain_runtime::RuntimeConfig::with_workers(workers),
        admission: AdmissionConfig {
            max_in_flight_tasks: 16,
            max_queued_jobs: 64,
            default_tenant_weight: 1,
            tenant_weights: Vec::new(),
        },
        poll_interval: Duration::from_micros(200),
        ..ServiceConfig::default()
    };
    config.pressure.enabled = resilience;
    config.breaker.enabled = resilience;
    // Trip fast: the storm is short.
    config.breaker.min_samples = 4;
    config.breaker.window = 8;
    config.breaker.open_for = Duration::from_millis(50);
    let service = JobService::new(config);

    let jobs_per_tenant = 24 * scale;
    let deadline = Duration::from_millis(60);
    let mut well_behaved: Vec<JobHandle> = Vec::new();
    let mut chaos_handles: Vec<JobHandle> = Vec::new();
    std::thread::scope(|scope| {
        let generators: Vec<_> = ["alpha", "beta"]
            .into_iter()
            .map(|tenant| {
                let service = &service;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    for j in 0..jobs_per_tenant {
                        let spec = JobSpec::new(format!("{tenant}-{j}"), tenant)
                            .deadline(deadline)
                            .estimated_tasks(5);
                        mine.push(service.submit(spec, |ctx| {
                            for _ in 0..4 {
                                ctx.spawn(|_| spin_for(300));
                            }
                        }));
                        // 2× oversubscription: 4 tasks × 300 µs per job
                        // over `workers` cores drains in ~1.2/workers ms;
                        // submit at twice that rate.
                        std::thread::sleep(Duration::from_micros(600 / workers as u64));
                    }
                    mine
                })
            })
            .collect();
        let chaos = scope.spawn(|| {
            let mut mine = Vec::new();
            for j in 0..2 * jobs_per_tenant {
                let spec = JobSpec::new(format!("chaos-{j}"), "chaos")
                    .estimated_tasks(2)
                    .failure_policy(grain_service::FailurePolicy::RetryWithBackoff {
                        max_attempts: 3,
                        base: Duration::from_micros(500),
                        cap: Duration::from_millis(5),
                    });
                // Burns real worker time before crashing: a misbehaving
                // tenant steals capacity, it doesn't just fail cheaply —
                // and each retry steals it again.
                mine.push(service.submit(spec, |_| {
                    spin_for(500);
                    panic!("chaos tenant always faults")
                }));
                std::thread::sleep(Duration::from_micros(300 / workers as u64));
            }
            mine
        });
        for g in generators {
            well_behaved.extend(g.join().expect("generator thread panicked"));
        }
        chaos_handles.extend(chaos.join().expect("chaos thread panicked"));
    });

    let mut turnarounds: Vec<Duration> = Vec::new();
    let mut completed = 0;
    let mut timed_out = 0;
    let mut shed = 0;
    for h in &well_behaved {
        let o = h.wait();
        match o.state {
            JobState::Completed => {
                completed += 1;
                turnarounds.push(o.turnaround);
            }
            JobState::TimedOut => timed_out += 1,
            JobState::Rejected if o.reject_reason == Some(grain_service::RejectReason::Shed) => {
                shed += 1;
            }
            _ => {}
        }
    }
    for h in &chaos_handles {
        let _ = h.wait();
    }
    turnarounds.sort();
    OverloadResult {
        completed,
        timed_out,
        shed,
        breaker_rejected: service.breaker_rejections(),
        p50: percentile(&turnarounds, 0.50),
        p99: percentile(&turnarounds, 0.99),
        breaker_opens: service.breaker_opens("chaos"),
    }
}

struct AutotuneRow {
    tenant: &'static str,
    enabled: bool,
    start_grain: u64,
    final_grain: u64,
    converged: bool,
    total: Duration,
}

impl AutotuneRow {
    fn row(&self) -> Vec<String> {
        vec![
            self.tenant.to_string(),
            if self.enabled { "on" } else { "off" }.to_string(),
            self.start_grain.to_string(),
            self.final_grain.to_string(),
            self.converged.to_string(),
            table::fmt::s(self.total.as_secs_f64()),
        ]
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("tenant".to_owned(), self.tenant.into()),
            ("start_grain".to_owned(), (self.start_grain as i64).into()),
            ("final_grain".to_owned(), (self.final_grain as i64).into()),
            ("converged".to_owned(), self.converged.into()),
            (
                "total_ms".to_owned(),
                (self.total.as_secs_f64() * 1e3).into(),
            ),
        ])
    }
}

/// Serve three taskbench-family tenants through shaped submission, each
/// starting from a one-task-per-job partition. Jobs run back-to-back per
/// tenant so the turnaround-derived signal is clean.
fn autotune_phase(enabled: bool, workers: usize) -> Vec<AutotuneRow> {
    const TOTAL_ITERS: u64 = 1 << 21;
    const JOBS: usize = 6;
    // The sweep tenant runs lognormally dispersed node durations
    // (COV 1.0), so the controller tunes a mean grain, not a constant.
    let profiles = [
        ("tb-stencil", GraphFamily::Stencil, Cov::Uniform),
        ("tb-tree", GraphFamily::Tree, Cov::Uniform),
        (
            "tb-sweep",
            GraphFamily::Sweep,
            Cov::Lognormal { cov_centi: 100 },
        ),
    ];
    let auto = Autotune::new(AutotuneConfig {
        enabled,
        cores: workers,
        tuner: TunerConfig {
            initial_nx: TOTAL_ITERS as usize,
            max_nx: TOTAL_ITERS as usize,
            ..TunerConfig::default()
        },
        ..AutotuneConfig::default()
    });
    let service = JobService::new(ServiceConfig {
        policy: Some(auto.policy_hook()),
        runtime: grain_service::grain_runtime::RuntimeConfig::with_workers(workers),
        ..ServiceConfig::default()
    });
    auto.attach(&service).expect("autotune counters");
    profiles
        .into_iter()
        .map(|(tenant, family, cov)| {
            let shape = ShapedWork::Graph {
                family,
                total_iters: TOTAL_ITERS,
                payload_bytes: 16,
                seed: 29,
                cov,
            };
            let start_grain = auto.grain_for(tenant);
            let mut total = Duration::ZERO;
            for j in 0..JOBS {
                let o = auto
                    .submit_shaped(&service, &format!("{tenant}-{j}"), tenant, &shape)
                    .wait();
                assert_eq!(o.state, JobState::Completed, "{tenant} job {j}");
                total += o.turnaround;
            }
            AutotuneRow {
                tenant,
                enabled,
                start_grain,
                final_grain: auto.grain_for(tenant),
                converged: auto.converged(tenant),
                total,
            }
        })
        .collect()
}
