//! `netstorm` — a distributed taskbench storm over a chaotic simulated
//! network, replayed twice to prove the chaos is deterministic.
//!
//! Four stages, every one over [`grain_net::bootstrap::Fabric::chaotic`]
//! (3 localities through a seeded [`grain_sim::NetFabric`]):
//!
//! 1. **weather** — storm-planned taskbench jobs under duplication +
//!    reordering (lossless): every checksum must equal the single-runtime
//!    reference, every manufactured duplicate must be suppressed.
//! 2. **loss** — the same storm under 10% frame loss with call
//!    deadlines: no future hangs, exactly-once settlement is *counted*
//!    (`calls/issued == calls/settled` on every locality), and the
//!    fabric's parcel ledger conserves.
//! 3. **partition/heal** — calls parked at a Hold-mode cut, flushed on
//!    heal; every future outstanding at partition time settles exactly
//!    once (per-future settle counters, not sampling).
//! 4. **kill under partition** — locality 2 dies while partitioned with
//!    frames parked at the cut: every future names the dead locality in
//!    `Disconnected`, survivors keep working, parked frames are
//!    ledgered as in-flight-at-sever.
//!
//! The whole storm runs **twice from the same seed** and the two report
//! strings are compared byte-for-byte. Frame fates are a pure function
//! of `(seed, src, dst, frame identity)` — not thread timing — so the
//! replay must be bit-identical; any divergence is a determinism bug and
//! the binary exits non-zero. A watchdog thread kills the process if any
//! stage hangs: a chaos harness that can hang cannot certify "no hangs".
//!
//! Flags: `--quick` (smaller storm, used by `scripts/verify.sh`),
//! `--seed <n>` (default 42).

use grain_net::bootstrap::Fabric;
use grain_net::locality::NetConfig;
use grain_runtime::{RuntimeConfig, SharedFuture, TaskError};
use grain_sim::storm::{GraphFamily, StormPlan, TenantStorm};
use grain_sim::{LedgerSnapshot, NetPlan, PartitionMode};
use grain_taskbench::exec_net::DistTaskBench;
use grain_taskbench::storm::spec_for_event;
use grain_taskbench::TaskGraph;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WORLD: usize = 3;
const WATCHDOG_POLL: Duration = Duration::from_secs(30);

/// Poll until `cond` holds or the bounded poll window expires.
fn eventually(cond: impl Fn() -> bool) -> bool {
    let deadline = Instant::now() + WATCHDOG_POLL;
    while !cond() {
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    true
}

/// Exactly-once, counted: issued == settled on every locality.
fn settled_exactly_once(fabric: &Fabric) -> bool {
    eventually(|| {
        (0..fabric.world()).all(|k| {
            let p = fabric.locality(k).parcels();
            p.calls_issued.get() == p.calls_settled.get()
        })
    })
}

/// Wait for the fabric to drain *and hold still*. A quiescence check
/// alone is not enough for replayable counter reads: a producer may send
/// a deferred edge reply after its consumer already settled by deadline,
/// so frames can still be injected after a drain is observed. The final
/// frame population is seed-deterministic — only the instant it is
/// reached varies — so require the ledger (and the senders' books) to be
/// identical across a settle window before trusting the snapshot.
fn stable_ledger(fabric: &Fabric) -> LedgerSnapshot {
    let net = fabric.net().expect("chaotic world");
    assert!(net.wait_quiescent(WATCHDOG_POLL), "fabric failed to drain");
    let snapshot = || {
        let ledger = net.ledger();
        let sent: u64 = (0..fabric.world())
            .map(|k| fabric.locality(k).parcels().sent.get())
            .sum();
        let fingerprint = format!("{ledger:?}/{sent}");
        (ledger, fingerprint)
    };
    let deadline = Instant::now() + WATCHDOG_POLL;
    let (_, mut last) = snapshot();
    loop {
        std::thread::sleep(Duration::from_millis(25));
        let (ledger, fingerprint) = snapshot();
        if ledger.in_flight == 0 && ledger.held == 0 && fingerprint == last {
            return ledger;
        }
        assert!(
            Instant::now() < deadline,
            "ledger never settled: {ledger:?}"
        );
        last = fingerprint;
    }
}

/// The storm's job list: three tenants with distinct graph families.
/// Tenant streams and the network's verdict streams live in disjoint
/// regions of the shared Pcg32 stream space (see `grain_sim::netplan`),
/// so the same `seed` may drive both without correlation.
fn storm_events(seed: u64, horizon: Duration) -> StormPlan {
    let tenants = vec![
        TenantStorm::steady(
            "dag",
            Duration::from_millis(60),
            (8, 24),
            (Duration::from_micros(20), Duration::from_micros(80)),
        )
        .family(GraphFamily::RandomDag),
        TenantStorm::steady(
            "tree",
            Duration::from_millis(90),
            (8, 24),
            (Duration::from_micros(20), Duration::from_micros(80)),
        )
        .family(GraphFamily::Tree),
        TenantStorm::steady(
            "halo",
            Duration::from_millis(120),
            (8, 24),
            (Duration::from_micros(20), Duration::from_micros(80)),
        )
        .family(GraphFamily::Stencil),
    ];
    StormPlan::generate(seed, horizon, &tenants)
}

/// Expand one storm event into a distributed taskbench graph.
fn graph_of(
    seed: u64,
    idx: usize,
    family: GraphFamily,
    tasks: u64,
    grain: Duration,
) -> Arc<TaskGraph> {
    // Clamp so every locality owns at least one node, cap the busy-work
    // so chaos (not compute) dominates the run.
    let tasks = tasks.max(6);
    let iters = (grain.as_micros() as u64).clamp(1, 100);
    let spec = spec_for_event(family, tasks, iters, 64, seed ^ (idx as u64) << 8)
        .expect("storm tenants use non-flat families");
    Arc::new(spec.build())
}

/// Run one storm-planned job over a chaotic world; returns the collected
/// checksum result and drops the world.
fn run_job(
    graph: &Arc<TaskGraph>,
    plan: NetPlan,
    net_cfg: NetConfig,
    report: &mut String,
    label: &str,
    lossless: bool,
) {
    let fabric = Fabric::chaotic(
        WORLD,
        plan,
        |_| net_cfg.clone(),
        |_| RuntimeConfig::with_workers(1),
    );
    let instances: Vec<DistTaskBench> = (0..WORLD)
        .map(|k| DistTaskBench::install(fabric.locality(k), Arc::clone(graph)))
        .collect();
    for inst in &instances {
        inst.start();
    }

    if lossless {
        // No frame is ever destroyed: the distributed checksum must equal
        // the single-runtime reference despite duplication + reordering.
        let sum = instances[0].collect().expect("lossless storm job settles");
        assert_eq!(
            sum,
            graph.checksum_reference(),
            "checksum diverged under dup+reorder"
        );
        let _ = writeln!(report, "{label} sum=0x{sum:016x} ref=ok");
    } else {
        // Lossy: blocks whose edges were destroyed settle as errors by
        // deadline. Which blocks survive is seed-deterministic; error
        // *values* carry wall-clock durations, so only aggregate.
        let outcomes: Vec<Result<u64, TaskError>> =
            instances.iter().map(|i| i.local_partial()).collect();
        let ok: Vec<u64> = outcomes
            .iter()
            .filter_map(|o| o.as_ref().ok().copied())
            .collect();
        let folded = ok.iter().fold(0u64, |a, v| a.wrapping_add(*v));
        let _ = writeln!(
            report,
            "{label} partials_ok={}/{WORLD} folded=0x{folded:016x}",
            ok.len()
        );
    }

    assert!(
        settled_exactly_once(&fabric),
        "issued != settled: hang or double-settle"
    );
    let ledger = stable_ledger(&fabric);
    assert!(ledger.conserved(), "parcel ledger leaked: {ledger:?}");
    let sent: u64 = (0..WORLD)
        .map(|k| fabric.locality(k).parcels().sent.get())
        .sum();
    let dropped: u64 = (0..WORLD)
        .map(|k| fabric.locality(k).parcels().dropped.get())
        .sum();
    let _ = writeln!(
        report,
        "{label} ledger injected={} duplicated={} delivered={} dropped={} conserved={} sent={sent} sender_dropped={dropped} exactly_once=true",
        ledger.injected,
        ledger.duplicated,
        ledger.delivered,
        ledger.dropped_chaos,
        ledger.conserved(),
    );
    if lossless {
        // Dedup bookkeeping is race-free when nothing is lost: every
        // manufactured duplicate is suppressed somewhere, exactly once.
        let deduped: u64 = (0..WORLD)
            .map(|k| fabric.locality(k).parcels().deduped.get())
            .sum();
        let received: u64 = (0..WORLD)
            .map(|k| fabric.locality(k).parcels().received.get())
            .sum();
        assert_eq!(deduped, ledger.duplicated, "every duplicate suppressed");
        assert_eq!(sent, received, "clean books after dedup");
        let _ = writeln!(report, "{label} deduped={deduped} received={received}");
    }
    fabric.shutdown();
}

/// Stages 1+2: the storm itself.
fn run_storm_stages(seed: u64, quick: bool, report: &mut String) {
    let horizon = Duration::from_millis(if quick { 300 } else { 600 });
    let plan = storm_events(seed, horizon);
    let take = if quick { 2 } else { 4 };
    let _ = writeln!(
        report,
        "storm seed={seed} horizon={}ms events={} (running {} per stage)",
        horizon.as_millis(),
        plan.events.len(),
        take
    );

    for (idx, e) in plan.events.iter().take(take).enumerate() {
        let graph = graph_of(seed, idx, e.family, e.tasks, e.grain);
        let label = format!(
            "stage1[{idx}] job={} family={} nodes={}",
            e.name,
            e.family.name(),
            graph.len()
        );
        run_job(
            &graph,
            NetPlan::clean(seed ^ 0xA1)
                .duplicate(0.25)
                .reorder(0.5, 200_000)
                .latency(10_000, 5_000),
            NetConfig::default(),
            report,
            &label,
            true,
        );
    }

    let deadline = Duration::from_millis(if quick { 250 } else { 400 });
    for (idx, e) in plan.events.iter().skip(take).take(take).enumerate() {
        let graph = graph_of(seed, idx + take, e.family, e.tasks, e.grain);
        let label = format!(
            "stage2[{idx}] job={} family={} nodes={}",
            e.name,
            e.family.name(),
            graph.len()
        );
        run_job(
            &graph,
            NetPlan::clean(seed ^ 0xB2)
                .drop(0.10)
                .duplicate(0.15)
                .reorder(0.5, 200_000)
                .latency(10_000, 5_000),
            NetConfig {
                call_deadline: Some(deadline),
                ..NetConfig::default()
            },
            report,
            &label,
            false,
        );
    }
}

/// Stage 3: a Hold partition opens with calls outstanding, then heals.
fn run_partition_stage(seed: u64, quick: bool, report: &mut String) {
    let calls = if quick { 12 } else { 40 };
    let fabric = Fabric::chaotic(
        WORLD,
        NetPlan::clean(seed ^ 0xC3).latency(10_000, 2_000),
        |_| NetConfig::default(),
        |_| RuntimeConfig::with_workers(1),
    );
    fabric
        .locality(1)
        .register_action("echo", |x: u64| x.wrapping_mul(3));
    let net = fabric.net().expect("chaotic world");

    net.partition_now(0, 1, PartitionMode::Hold);
    let settle_counts: Vec<Arc<AtomicUsize>> =
        (0..calls).map(|_| Arc::new(AtomicUsize::new(0))).collect();
    let futures: Vec<SharedFuture<u64>> = (0..calls)
        .map(|i| {
            let f = fabric
                .locality(0)
                .async_remote::<u64, u64>(1, "echo", &(i as u64));
            let n = Arc::clone(&settle_counts[i]);
            f.on_settled(move |_| {
                n.fetch_add(1, Ordering::SeqCst);
            });
            f
        })
        .collect();
    assert!(
        eventually(|| net.ledger().held == calls as u64),
        "calls must park at the cut: {:?}",
        net.ledger()
    );
    net.heal_now(0, 1);

    let mut sum = 0u64;
    for (i, f) in futures.iter().enumerate() {
        let v = f
            .wait_timeout(WATCHDOG_POLL)
            .expect("held call settles after heal");
        assert_eq!(*v, (i as u64).wrapping_mul(3));
        sum = sum.wrapping_add(*v);
    }
    assert!(
        eventually(|| settle_counts.iter().all(|c| c.load(Ordering::SeqCst) == 1)),
        "every future outstanding at partition time settles exactly once"
    );
    assert!(settled_exactly_once(&fabric));
    let ledger = stable_ledger(&fabric);
    assert!(ledger.conserved(), "ledger leaked: {ledger:?}");
    let _ = writeln!(
        report,
        "stage3 partition/heal calls={calls} sum=0x{sum:016x} settled_once={calls}/{calls} opened={} healed={} conserved={}",
        ledger.partitions_opened,
        ledger.partitions_healed,
        ledger.conserved(),
    );
    fabric.shutdown();
}

/// Stage 4: locality 2 dies while partitioned, frames parked at the cut.
fn run_kill_stage(seed: u64, quick: bool, report: &mut String) {
    let calls = if quick { 10 } else { 30 };
    let fabric = Fabric::chaotic(
        WORLD,
        NetPlan::clean(seed ^ 0xD4).latency(10_000, 2_000),
        |_| NetConfig::default(),
        |_| RuntimeConfig::with_workers(1),
    );
    fabric.locality(1).register_action("echo", |x: u64| x);
    fabric.locality(2).register_action("echo", |x: u64| x);
    let net = fabric.net().expect("chaotic world");

    net.partition_now(0, 2, PartitionMode::Hold);
    let settle_counts: Vec<Arc<AtomicUsize>> =
        (0..calls).map(|_| Arc::new(AtomicUsize::new(0))).collect();
    let futures: Vec<SharedFuture<u64>> = (0..calls)
        .map(|i| {
            let f = fabric
                .locality(0)
                .async_remote::<u64, u64>(2, "echo", &(i as u64));
            let n = Arc::clone(&settle_counts[i]);
            f.on_settled(move |_| {
                n.fetch_add(1, Ordering::SeqCst);
            });
            f
        })
        .collect();
    assert!(
        eventually(|| net.ledger().held == calls as u64),
        "calls must park at the cut before the kill: {:?}",
        net.ledger()
    );

    fabric.kill(2);

    let mut named = 0usize;
    for f in &futures {
        match f.wait_timeout(WATCHDOG_POLL) {
            Err(TaskError::Disconnected { locality: 2 }) => named += 1,
            other => panic!("expected Disconnected {{ locality: 2 }}, got {other:?}"),
        }
    }
    assert!(
        eventually(|| settle_counts.iter().all(|c| c.load(Ordering::SeqCst) == 1)),
        "every future settles exactly once through the kill"
    );
    // Survivors unaffected.
    let v = fabric
        .locality(0)
        .async_remote::<u64, u64>(1, "echo", &99)
        .wait_timeout(WATCHDOG_POLL)
        .expect("survivor lane still works");
    assert_eq!(*v, 99);
    assert!(settled_exactly_once(&fabric));
    let ledger = stable_ledger(&fabric);
    assert!(ledger.conserved(), "ledger leaked: {ledger:?}");
    let _ = writeln!(
        report,
        "stage4 kill-under-partition calls={calls} disconnected_naming_dead={named}/{calls} in_flight_at_sever={} survivor=ok conserved={}",
        ledger.severed,
        ledger.conserved(),
    );
    fabric.shutdown();
}

/// One complete storm run; the returned string is the replay unit.
fn run_once(seed: u64, quick: bool) -> String {
    let mut report = String::new();
    run_storm_stages(seed, quick, &mut report);
    run_partition_stage(seed, quick, &mut report);
    run_kill_stage(seed, quick, &mut report);
    report
}

fn main() {
    let mut quick = false;
    let mut seed: u64 = 42;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("usage: netstorm [--quick] [--seed <n>]");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("usage: netstorm [--quick] [--seed <n>] (got {other})");
                std::process::exit(2);
            }
        }
    }

    // A chaos harness that can hang cannot certify "no hangs".
    let budget = Duration::from_secs(if quick { 120 } else { 300 });
    std::thread::spawn(move || {
        std::thread::sleep(budget);
        eprintln!("netstorm: watchdog expired after {budget:?} — a stage hung");
        std::process::exit(3);
    });

    println!("netstorm: distributed taskbench storm over a chaotic simulated network");
    println!(
        "host parallelism: {} (1-core hosts: stages serialize but all invariants still hold)",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    println!();

    let first = run_once(seed, quick);
    let second = run_once(seed, quick);

    print!("{first}");
    println!();
    if first == second {
        println!(
            "replay: IDENTICAL ({} report bytes, seed {seed})",
            first.len()
        );
        println!();
        println!("OK");
    } else {
        println!("replay: DIVERGED — chaos is not deterministic");
        println!("--- first run ---\n{first}");
        println!("--- second run ---\n{second}");
        std::process::exit(1);
    }
}
