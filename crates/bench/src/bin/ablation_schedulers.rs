//! Ablation — scheduler design choices the paper's runtime embodies:
//!
//! 1. native runtime: Priority Local-FIFO vs no-stealing vs NUMA-blind
//!    stealing, on a host-scaled stencil (tasks stolen, exec time,
//!    idle-rate);
//! 2. simulator: sensitivity of the Fig. 3 valley to the queue-operation
//!    cost (what happens if the scheduler's constant costs grow 4x/16x).

use grain_bench::Cli;
use grain_metrics::table;
use grain_metrics::{RunRecord, SimEngine};
use grain_runtime::{Runtime, RuntimeConfig, SchedulerKind};
use grain_stencil::{run_futurized, StencilParams};
use grain_topology::presets;

fn native_run(kind: SchedulerKind, workers: usize, params: &StencilParams) -> RunRecord {
    let rt = Runtime::new(RuntimeConfig {
        workers,
        scheduler: kind,
        ..RuntimeConfig::default()
    });
    let t0 = std::time::Instant::now();
    let _ = run_futurized(&rt, params);
    RunRecord::from_native(&rt, t0.elapsed().as_secs_f64(), params)
}

fn main() {
    let cli = Cli::parse();

    // Part 1: native scheduler variants.
    let params = StencilParams::for_total(2_000_000, 5_000, 10);
    let workers = 4;
    let headers = [
        "scheduler",
        "exec(s)",
        "idle-rate",
        "stolen",
        "pending-misses",
    ];
    let mut rows = Vec::new();
    for (name, kind) in [
        ("priority-local-fifo", SchedulerKind::PriorityLocalFifo),
        ("no-steal", SchedulerKind::NoSteal),
        ("numa-blind", SchedulerKind::NumaBlind),
    ] {
        let mut exec = grain_counters::SampleStats::new();
        let mut last = None;
        for _ in 0..cli.samples.max(3) {
            let rec = native_run(kind, workers, &params);
            exec.push(rec.wall_s);
            last = Some(rec);
        }
        let rec = last.unwrap();
        rows.push(vec![
            name.to_owned(),
            table::fmt::s(exec.mean()),
            table::fmt::pct(rec.idle_rate()),
            table::fmt::count(rec.stolen as f64),
            table::fmt::count(rec.pending_misses as f64),
        ]);
    }
    print!(
        "{}",
        table::render(
            &format!(
                "Ablation 1: native scheduler policies — host, {workers} workers, nx={} np={} nt={}",
                params.nx, params.np, params.nt
            ),
            &headers,
            &rows
        )
    );
    println!();

    // Part 2: queue-cost sensitivity in the simulator.
    let headers = [
        "cost scale",
        "best nx @28c",
        "best exec(s)",
        "exec(s) @ nx=2500",
    ];
    let mut rows = Vec::new();
    for scale in [1.0, 4.0, 16.0] {
        let mut platform = presets::haswell();
        platform.perf.queue_probe_ns *= scale;
        platform.perf.convert_ns *= scale;
        platform.perf.dispatch_ns *= scale;
        platform.perf.spawn_ns *= scale;
        let engine = SimEngine::scaled(platform, 100_000_000, 10);
        let grid = [2_500usize, 12_500, 40_000, 160_000, 1_000_000];
        let sweep = grain_metrics::run_sweep(&engine, &grid, &[28], 1, None);
        let (best_nx, best_s) = sweep.best_nx(28).unwrap();
        let fine = sweep.cell(2_500, 28).unwrap().agg.wall_s.mean();
        rows.push(vec![
            format!("{scale}x"),
            table::fmt::count(best_nx as f64),
            table::fmt::s(best_s),
            table::fmt::s(fine),
        ]);
    }
    print!(
        "{}",
        table::render(
            "Ablation 2: scheduler-cost sensitivity — simulated Haswell, 28 cores (10 steps)",
            &headers,
            &rows
        )
    );
    println!(
        "\nCheck: stealing is what keeps the dataflow balanced (no-steal collapses\n\
         onto few workers); costlier scheduler operations push the optimal\n\
         granularity coarser and punish the fine-grained edge hardest —\n\
         the paper's core claim about overhead-vs-granularity coupling."
    );
}
