//! Fig. 9 (a–c) — pending-queue accesses and execution time vs partition
//! size on Haswell at 8/16/28 cores.

use grain_bench::{fig_pending_queue, Cli};

fn main() {
    let cli = Cli::parse();
    let p = cli.platform_or("haswell");
    fig_pending_queue(&p, &[8, 16, 28], &cli, "Fig. 9");
}
