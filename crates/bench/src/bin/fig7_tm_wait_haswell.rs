//! Fig. 7 (a–c) — execution time vs HPX-thread management (Eq. 4), wait
//! time (Eq. 6) and their sum, on Haswell at 8/16/28 cores.

use grain_bench::{fig_tm_wait, Cli};

fn main() {
    let cli = Cli::parse();
    let p = cli.platform_or("haswell");
    fig_tm_wait(&p, &[8, 16, 28], &cli, "Fig. 7");
}
