//! `dist_bench` — distributed stencil benchmark over in-process
//! loopback localities.
//!
//! The distributed analog of the paper's task-size sweep: the same 1-D
//! heat stencil, but with the partition ring split across `L` loopback
//! localities, so every time step pays two remote edge exchanges per
//! locality through the full parcel path (serialize → frame → bounded
//! send queue → writer thread → dispatch → deferred reply). Sweeping
//! partition size at fixed total points shows where communication
//! overhead overtakes computation — the distributed edition of the
//! paper's granularity trade-off.
//!
//! For each configuration the binary reports wall time, parcels and
//! bytes sent, average serialization time, and the verified
//! sent==received balance across all localities at quiescence.
//!
//! **Caveat (single-core hosts)**: loopback localities multiply worker
//! *threads*, not cores. On a 1-core host every extra locality adds
//! scheduling pressure and the sweep measures protocol overhead only —
//! relative numbers across locality counts are NOT speedups. The header
//! prints detected parallelism so recorded results are interpretable.
//!
//! Flags: `--quick` (bounded shapes for the CI smoke stage).

use grain_metrics::{append_snapshot, BenchSnapshot, JsonValue};
use grain_net::bootstrap::Fabric;
use grain_runtime::Runtime;
use grain_runtime::RuntimeConfig;
use grain_stencil::distributed::DistStencil;
use grain_stencil::{run_futurized, StencilParams};
use std::path::Path;
use std::time::Instant;

/// One sweep configuration: world size and partition count at fixed
/// total points.
struct Case {
    world: usize,
    np: usize,
}

fn run_case(total_points: usize, nt: usize, case: &Case) -> JsonValue {
    let nx = (total_points / case.np).max(1);
    let params = StencilParams::new(nx, case.np, nt);

    let fabric = Fabric::loopback(case.world, |_| RuntimeConfig::with_workers(1));
    let instances: Vec<DistStencil> = (0..case.world)
        .map(|k| DistStencil::install(fabric.locality(k), params))
        .collect();

    let t0 = Instant::now();
    for inst in &instances {
        inst.start();
    }
    let grid = instances[0].gather().expect("distributed run settled");
    let wall = t0.elapsed();

    // Quiescence: every local block settled before gather returned, and
    // the remaining reply deliveries complete in microseconds; poll the
    // balance briefly so the printed books always agree.
    let deadline = Instant::now() + std::time::Duration::from_secs(5);
    let books = || {
        let sent: u64 = (0..case.world)
            .map(|k| fabric.locality(k).parcels().sent.get())
            .sum();
        let received: u64 = (0..case.world)
            .map(|k| fabric.locality(k).parcels().received.get())
            .sum();
        (sent, received)
    };
    let (sent, received) = loop {
        let (sent, received) = books();
        if sent == received || Instant::now() >= deadline {
            break (sent, received);
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    };
    let bytes: u64 = (0..case.world)
        .map(|k| fabric.locality(k).parcels().bytes_sent.get())
        .sum();
    let ser_ns: u64 = (0..case.world)
        .map(|k| fabric.locality(k).parcels().ser_ns.get())
        .sum();
    let ser_samples: u64 = (0..case.world)
        .map(|k| fabric.locality(k).parcels().ser_samples.get())
        .sum();
    let avg_ser = if ser_samples == 0 {
        0.0
    } else {
        ser_ns as f64 / ser_samples as f64
    };

    // Correctness spot check against the single-runtime oracle.
    let rt = Runtime::with_workers(1);
    let oracle = run_futurized(&rt, &params);
    assert_eq!(grid, oracle, "distributed result diverged from oracle");

    println!(
        "L={:<2} np={:<5} nx={:<6} | wall {:>10.3?} | parcels {:>6} (balance {}) | {:>8} B | avg-ser {:>7.0} ns",
        case.world,
        case.np,
        nx,
        wall,
        sent,
        if sent == received { "ok" } else { "MISMATCH" },
        bytes,
        avg_ser,
    );
    assert_eq!(sent, received, "parcel books must balance at quiescence");
    fabric.shutdown();
    JsonValue::Obj(vec![
        ("world".to_owned(), case.world.into()),
        ("np".to_owned(), case.np.into()),
        ("nx".to_owned(), nx.into()),
        ("wall_s".to_owned(), wall.as_secs_f64().into()),
        ("parcels".to_owned(), sent.into()),
        ("bytes_sent".to_owned(), bytes.into()),
        ("avg_ser_ns".to_owned(), avg_ser.into()),
    ])
}

fn main() {
    let mut quick = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--quick" => quick = true,
            other => {
                eprintln!("usage: dist_bench [--quick] (got {other})");
                std::process::exit(2);
            }
        }
    }
    println!("dist_bench: distributed stencil over loopback localities");
    println!(
        "host parallelism: {} (see header caveat: locality counts are protocol overhead, not speedup, when this is 1)",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );

    let (total_points, nt, cases): (usize, usize, Vec<Case>) = if quick {
        (
            1024,
            8,
            vec![
                Case { world: 1, np: 8 },
                Case { world: 2, np: 8 },
                Case { world: 4, np: 8 },
            ],
        )
    } else {
        (
            65_536,
            50,
            vec![
                Case { world: 1, np: 16 },
                Case { world: 2, np: 16 },
                Case { world: 4, np: 16 },
                Case { world: 2, np: 64 },
                Case { world: 4, np: 64 },
                Case { world: 4, np: 256 },
            ],
        )
    };
    println!("total points {total_points}, {nt} time steps; result checked against the single-runtime oracle each case");
    println!();
    let mut rows = Vec::new();
    for case in &cases {
        rows.push(run_case(total_points, nt, case));
    }
    let snap = BenchSnapshot::new("dist")
        .config("quick", quick)
        .config("total_points", total_points)
        .config("nt", nt)
        .config(
            "host_parallelism",
            std::thread::available_parallelism().map_or(0, |n| n.get()),
        )
        .metric("cases", JsonValue::Arr(rows));
    let out = Path::new("results/BENCH_dist.json");
    match append_snapshot(out, &snap) {
        Ok(()) => println!("\nrecorded snapshot -> {}", out.display()),
        Err(e) => eprintln!("\nwarning: could not record {}: {e}", out.display()),
    }
    println!();
    println!("OK");
}
