//! `dist_bench` — distributed stencil benchmark over in-process
//! loopback localities.
//!
//! The distributed analog of the paper's task-size sweep: the same 1-D
//! heat stencil, but with the partition ring split across `L` loopback
//! localities, so every time step pays two remote edge exchanges per
//! locality through the full parcel path (serialize → frame → bounded
//! send queue → writer thread → dispatch → deferred reply). Sweeping
//! partition size at fixed total points shows where communication
//! overhead overtakes computation — the distributed edition of the
//! paper's granularity trade-off.
//!
//! For each configuration the binary reports wall time, parcels and
//! bytes sent, average serialization time, and the verified
//! sent==received balance across all localities at quiescence.
//!
//! **Caveat (single-core hosts)**: loopback localities multiply worker
//! *threads*, not cores. On a 1-core host every extra locality adds
//! scheduling pressure and the sweep measures protocol overhead only —
//! relative numbers across locality counts are NOT speedups. The header
//! prints detected parallelism so recorded results are interpretable.
//!
//! Flags: `--quick` (bounded shapes for the CI smoke stage);
//! `--chaos <seed>` routes the L=2 and L=4 cases through the simulated
//! network fabric with seeded duplication + reordering (lossless, so the
//! oracle still must hold exactly) and additionally checks that every
//! manufactured duplicate was suppressed and the fabric's parcel ledger
//! conserves at quiescence.

use grain_metrics::{append_snapshot, BenchSnapshot, JsonValue};
use grain_net::bootstrap::Fabric;
use grain_net::locality::NetConfig;
use grain_runtime::Runtime;
use grain_runtime::RuntimeConfig;
use grain_sim::NetPlan;
use grain_stencil::distributed::DistStencil;
use grain_stencil::{run_futurized, StencilParams};
use std::path::Path;
use std::time::{Duration, Instant};

/// One sweep configuration: world size and partition count at fixed
/// total points.
struct Case {
    world: usize,
    np: usize,
}

/// The chaos-mode network weather for `seed` — one constructor so the
/// recorded snapshot can fingerprint exactly the plan the runs used.
fn chaos_plan(seed: u64) -> NetPlan {
    NetPlan::clean(seed)
        .duplicate(0.2)
        .reorder(0.5, 200_000)
        .latency(10_000, 5_000)
}

fn run_case(total_points: usize, nt: usize, case: &Case, chaos: Option<u64>) -> JsonValue {
    let nx = (total_points / case.np).max(1);
    let params = StencilParams::new(nx, case.np, nt);

    let fabric = match chaos {
        // Lossless weather: duplicate + reorder + latency but never
        // destroy a frame, so the oracle equality below still must hold
        // bit-for-bit — dedup and ordering robustness, not availability.
        Some(seed) => Fabric::chaotic(
            case.world,
            chaos_plan(seed),
            |_| NetConfig::default(),
            |_| RuntimeConfig::with_workers(1),
        ),
        None => Fabric::loopback(case.world, |_| RuntimeConfig::with_workers(1)),
    };
    let instances: Vec<DistStencil> = (0..case.world)
        .map(|k| DistStencil::install(fabric.locality(k), params))
        .collect();

    let t0 = Instant::now();
    for inst in &instances {
        inst.start();
    }
    let grid = instances[0].gather().expect("distributed run settled");
    let wall = t0.elapsed();

    // Quiescence: every local block settled before gather returned, and
    // the remaining reply deliveries complete in microseconds; poll the
    // balance briefly so the printed books always agree.
    let deadline = Instant::now() + std::time::Duration::from_secs(5);
    let books = || {
        let sent: u64 = (0..case.world)
            .map(|k| fabric.locality(k).parcels().sent.get())
            .sum();
        let received: u64 = (0..case.world)
            .map(|k| fabric.locality(k).parcels().received.get())
            .sum();
        (sent, received)
    };
    let (sent, received) = loop {
        let (sent, received) = books();
        if sent == received || Instant::now() >= deadline {
            break (sent, received);
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    };
    let bytes: u64 = (0..case.world)
        .map(|k| fabric.locality(k).parcels().bytes_sent.get())
        .sum();
    let ser_ns: u64 = (0..case.world)
        .map(|k| fabric.locality(k).parcels().ser_ns.get())
        .sum();
    let ser_samples: u64 = (0..case.world)
        .map(|k| fabric.locality(k).parcels().ser_samples.get())
        .sum();
    let avg_ser = if ser_samples == 0 {
        0.0
    } else {
        ser_ns as f64 / ser_samples as f64
    };

    // Correctness spot check against the single-runtime oracle.
    let rt = Runtime::with_workers(1);
    let oracle = run_futurized(&rt, &params);
    assert_eq!(grid, oracle, "distributed result diverged from oracle");

    println!(
        "L={:<2} np={:<5} nx={:<6} | wall {:>10.3?} | parcels {:>6} (balance {}) | {:>8} B | avg-ser {:>7.0} ns",
        case.world,
        case.np,
        nx,
        wall,
        sent,
        if sent == received { "ok" } else { "MISMATCH" },
        bytes,
        avg_ser,
    );
    assert_eq!(sent, received, "parcel books must balance at quiescence");

    let mut row = vec![
        ("world".to_owned(), case.world.into()),
        ("np".to_owned(), case.np.into()),
        ("nx".to_owned(), nx.into()),
        ("wall_s".to_owned(), wall.as_secs_f64().into()),
        ("parcels".to_owned(), sent.into()),
        ("bytes_sent".to_owned(), bytes.into()),
        ("avg_ser_ns".to_owned(), avg_ser.into()),
    ];
    if let Some(net) = fabric.net() {
        assert!(
            net.wait_quiescent(Duration::from_secs(5)),
            "fabric failed to drain"
        );
        let ledger = net.ledger();
        assert!(ledger.conserved(), "parcel ledger leaked: {ledger:?}");
        // The dedup bump lands in the sink handler, which can trail the
        // fabric's own drained-state flip by a beat — poll briefly.
        let deduped_now = || {
            (0..case.world)
                .map(|k| fabric.locality(k).parcels().deduped.get())
                .sum::<u64>()
        };
        let deadline = Instant::now() + Duration::from_secs(5);
        while deduped_now() != ledger.duplicated && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let deduped = deduped_now();
        assert_eq!(
            deduped, ledger.duplicated,
            "every manufactured duplicate must be suppressed exactly once"
        );
        println!(
            "        chaos: {} duplicated / {} deduped / {} reordered-delivered, ledger conserved",
            ledger.duplicated, deduped, ledger.delivered,
        );
        row.push(("chaos_duplicated".to_owned(), ledger.duplicated.into()));
        row.push(("chaos_deduped".to_owned(), deduped.into()));
    }
    fabric.shutdown();
    JsonValue::Obj(row)
}

fn main() {
    let mut quick = false;
    let mut chaos: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--chaos" => {
                chaos = Some(args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("usage: dist_bench [--quick] [--chaos <seed>]");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("usage: dist_bench [--quick] [--chaos <seed>] (got {other})");
                std::process::exit(2);
            }
        }
    }
    println!("dist_bench: distributed stencil over loopback localities");
    if let Some(seed) = chaos {
        println!(
            "chaos mode: simulated fabric, seed {seed} (dup+reorder, lossless; oracle still exact)"
        );
    }
    println!(
        "host parallelism: {} (see header caveat: locality counts are protocol overhead, not speedup, when this is 1)",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );

    let (total_points, nt, cases): (usize, usize, Vec<Case>) = if chaos.is_some() {
        // Chaos stages: multi-locality only (world 1 has no links to
        // perturb), small shapes — this mode checks robustness
        // invariants, not throughput.
        (
            4096,
            10,
            vec![Case { world: 2, np: 16 }, Case { world: 4, np: 16 }],
        )
    } else if quick {
        (
            1024,
            8,
            vec![
                Case { world: 1, np: 8 },
                Case { world: 2, np: 8 },
                Case { world: 4, np: 8 },
            ],
        )
    } else {
        (
            65_536,
            50,
            vec![
                Case { world: 1, np: 16 },
                Case { world: 2, np: 16 },
                Case { world: 4, np: 16 },
                Case { world: 2, np: 64 },
                Case { world: 4, np: 64 },
                Case { world: 4, np: 256 },
            ],
        )
    };
    println!("total points {total_points}, {nt} time steps; result checked against the single-runtime oracle each case");
    println!();
    let mut rows = Vec::new();
    for case in &cases {
        rows.push(run_case(total_points, nt, case, chaos));
    }
    let snap = BenchSnapshot::new("dist")
        .config("quick", quick)
        .config("features", grain_bench::hotpath_features())
        .config("chaos_seed", chaos.map_or(-1i64, |s| s as i64))
        // The seed alone does not pin the weather — the probability and
        // latency knobs matter too. The fingerprint hashes the whole
        // plan, so two snapshots with equal fingerprints replayed the
        // byte-identical chaos.
        .config(
            "netplan_fingerprint",
            chaos.map_or_else(
                || "none".to_string(),
                |s| format!("{:016x}", chaos_plan(s).fingerprint()),
            ),
        )
        .config("total_points", total_points)
        .config("nt", nt)
        .config(
            "host_parallelism",
            std::thread::available_parallelism().map_or(0, |n| n.get()),
        )
        .metric("cases", JsonValue::Arr(rows));
    let out = Path::new("results/BENCH_dist.json");
    match append_snapshot(out, &snap) {
        Ok(()) => println!("\nrecorded snapshot -> {}", out.display()),
        Err(e) => eprintln!("\nwarning: could not record {}: {e}", out.display()),
    }
    println!();
    println!("OK");
}
