//! §IV-A / §IV-E decision-rule report: grain-size selection via the 30%
//! idle-rate threshold and via the pending-queue-access minimum, with
//! their execution-time penalties vs the sweep optimum.
//!
//! Paper reference points (Haswell, 28 cores): idle-rate ≤ 30% → partition
//! 78 125 (1.75 s vs the 1.71 s optimum at 40 000); pending-queue minimum
//! → partition 31 250 (1.925 s, within 13% of the minimum).

use grain_adaptive::{nx_minimizing_pending_accesses, smallest_nx_below_idle_rate};
use grain_bench::{sweep_platform, Cli};
use grain_metrics::table;

fn main() {
    let cli = Cli::parse();
    let p = cli.platform_or("haswell");
    let workers = p.usable_cores;
    let sweep = sweep_platform(&p, &cli.grid(), &[workers], cli.samples);

    let headers = [
        "rule",
        "chosen nx",
        "exec(s)",
        "best nx",
        "best exec(s)",
        "penalty",
    ];
    let mut rows = Vec::new();
    for (rule, sel) in [
        (
            "idle-rate <= 30% (SS IV-A)",
            smallest_nx_below_idle_rate(&sweep, workers, 0.30),
        ),
        (
            "idle-rate <= 10%",
            smallest_nx_below_idle_rate(&sweep, workers, 0.10),
        ),
        (
            "idle-rate <= 5%",
            smallest_nx_below_idle_rate(&sweep, workers, 0.05),
        ),
        (
            "pending-access minimum (SS IV-E)",
            nx_minimizing_pending_accesses(&sweep, workers),
        ),
    ] {
        match sel {
            Some(sel) => rows.push(vec![
                rule.to_owned(),
                table::fmt::count(sel.nx as f64),
                table::fmt::s(sel.exec_s),
                table::fmt::count(sel.best_nx as f64),
                table::fmt::s(sel.best_exec_s),
                table::fmt::pct(sel.penalty()),
            ]),
            None => rows.push(vec![
                rule.to_owned(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "no qualifying size".into(),
            ]),
        }
    }
    print!(
        "{}",
        table::render(
            &format!("Grain-size decision rules — {} {workers} cores", p.name),
            &headers,
            &rows
        )
    );
    if cli.csv {
        println!("CSV:");
        print!("{}", table::csv(&headers, &rows));
    }
    println!(
        "\nCheck: both rules select a partition size in the flat region of Fig. 3 with\n\
         a small execution-time penalty (the paper reports 2.3% for the idle-rate\n\
         rule and 13% for the queue-counter rule)."
    );
}
