//! Micro-benchmark granularity study — the paper notes (§I-C) that its
//! stencil results were corroborated by micro benchmarks. This binary
//! shows the same overhead-vs-granularity U-curve on two non-stencil
//! workloads:
//!
//! 1. `parallel_for` over a flat index space on the native runtime,
//!    varying the chunk (grain) size;
//! 2. fork-join and layered-random DAGs on the simulator, varying leaf
//!    task size at constant total work.

use grain_bench::Cli;
use grain_metrics::table;
use grain_runtime::{algorithms::parallel_for, Runtime};
use grain_sim::{simulate, SimConfig, SimWorkload};
use grain_topology::presets;

fn main() {
    let cli = Cli::parse();

    // Part 1: native parallel_for.
    let rt = Runtime::with_workers(grain_topology::host::available_cores().max(2));
    let n = 1 << 20; // 1M iterations of trivial work
    let headers = ["grain", "tasks", "exec(s)", "t_o/task", "idle-rate"];
    let mut rows = Vec::new();
    for grain in [8usize, 64, 512, 4_096, 32_768, 262_144, 1 << 20] {
        let mut best = f64::INFINITY;
        for _ in 0..cli.samples {
            rt.reset_counters();
            let t0 = std::time::Instant::now();
            parallel_for(&rt, 0..n, grain, |i| {
                std::hint::black_box(i * i);
            })
            .get();
            rt.wait_idle();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        let c = rt.counters();
        rows.push(vec![
            table::fmt::count(grain as f64),
            table::fmt::count(c.tasks.sum() as f64),
            format!("{best:.4}"),
            table::fmt::ns(c.task_overhead_ns()),
            table::fmt::pct(c.idle_rate()),
        ]);
    }
    print!(
        "{}",
        table::render(
            &format!("Micro 1: native parallel_for over {n} indices — grain sweep"),
            &headers,
            &rows
        )
    );
    println!();

    // Part 2: simulated fork-join at constant total work.
    let hw = presets::haswell();
    let headers = ["depth", "leaves", "leaf points", "exec(s)", "idle-rate"];
    let mut rows = Vec::new();
    let total_points: u64 = 1 << 26;
    for depth in [6u32, 10, 14, 18] {
        let leaves = 1u64 << depth;
        let wl = SimWorkload::fork_join(depth, total_points / leaves);
        let r = simulate(&hw, 16, &wl, &SimConfig::default());
        rows.push(vec![
            depth.to_string(),
            table::fmt::count(leaves as f64),
            table::fmt::count((total_points / leaves) as f64),
            table::fmt::s(r.wall_seconds()),
            table::fmt::pct(r.idle_rate()),
        ]);
    }
    print!(
        "{}",
        table::render(
            "Micro 2: simulated fork-join, constant total work — Haswell 16 cores",
            &headers,
            &rows
        )
    );
    println!();

    // Part 3: layered random DAG (irregular parallelism).
    let headers = [
        "width",
        "layers",
        "points/task",
        "exec(s)",
        "idle-rate",
        "stolen",
    ];
    let mut rows = Vec::new();
    for (width, layers, points) in [
        (512usize, 64usize, 2_000u64),
        (64, 512, 16_000),
        (8, 4096, 128_000),
    ] {
        let wl = SimWorkload::layered_random(layers, width, points, 7);
        let r = simulate(&hw, 16, &wl, &SimConfig::default());
        rows.push(vec![
            width.to_string(),
            layers.to_string(),
            table::fmt::count(points as f64),
            table::fmt::s(r.wall_seconds()),
            table::fmt::pct(r.idle_rate()),
            table::fmt::count(r.stolen as f64),
        ]);
    }
    print!(
        "{}",
        table::render(
            "Micro 3: layered random DAGs, constant total work — Haswell 16 cores",
            &headers,
            &rows
        )
    );
    println!(
        "\nCheck: all three workload families show the paper's pattern — overhead\n\
         share and idle-rate fall as task size grows, then starvation appears when\n\
         parallel slack runs out."
    );
}
