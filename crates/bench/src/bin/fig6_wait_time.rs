//! Fig. 6 — wait time per HPX-thread (Eq. 5) vs partition size in the
//! 10 000–90 000 point window on Haswell, for 4/8/16/28 cores.

use grain_bench::{print_series, sweep_platform, Cli};
use grain_metrics::sweep::grids;
use grain_metrics::table;

fn main() {
    let cli = Cli::parse();
    let p = cli.platform_or("haswell");
    let cores = [4, 8, 16, 28];
    let sweep = sweep_platform(&p, &grids::fig6_window(), &cores, cli.samples);
    print_series(
        "Fig. 6: wait time per task t_w = t_d - t_d1 (Eq. 5) — Haswell",
        &sweep,
        &cores,
        "t_w",
        cli.csv,
        |cell| table::fmt::ns(cell.wait_per_task_ns()),
    );
    println!(
        "Check (paper §IV-C): wait time per task increases with both the number of\n\
         cores and the partition size, reaching several hundred microseconds at\n\
         90 000 points on 28 cores (memory-bandwidth contention)."
    );
}
