//! `autotune` — convergence storms for per-tenant granularity control.
//!
//! Two phases:
//!
//! 1. **Modeled storm (stdout, bit-replayable).** Three tenants start at
//!    a pathologically coarse grain (≥10× the hand-tuned optimum — one
//!    giant task), a pathologically fine one (≤0.1× — overhead-bound),
//!    and an already-reasonable one. Each "job" is scored by the
//!    deterministic [`CostModel`] — the paper's `t_o + grain·w` cost on
//!    an idealized machine — so every line this phase prints is a pure
//!    function of the program text. The verify gate runs it twice and
//!    `cmp`s the transcripts; any wall-clock leak into a controller
//!    decision would show up as a diff.
//! 2. **Measured phase (stderr + JSON).** The same controller drives a
//!    real [`JobService`] through the policy hook: one tenant submits a
//!    `parallel_for` shape starting at one-task-per-job, with autotune
//!    enabled and then disabled, and the per-job measured overhead
//!    before/after convergence is appended to
//!    `results/BENCH_autotune.json`. Nothing measured reaches stdout.
//!
//! **Caveat (single-core hosts)**: the measured phase derives idle rate
//! from `turnaround × workers`; with one core the "idle" time is mostly
//! OS scheduling and the before/after contrast flattens. The modeled
//! phase is host-independent.
//!
//! Flags: `--quick` (fewer measured jobs for the CI smoke stage).

use grain_adaptive::tuner::TunerConfig;
use grain_autotune::{Autotune, AutotuneConfig, CostModel, ShapedWork};
use grain_metrics::{append_snapshot, BenchSnapshot, JsonValue};
use grain_service::{JobService, JobState, ServiceConfig};
use std::path::Path;

/// Work units per modeled job (busy-work iterations).
const MODEL_UNITS: u64 = 1 << 20;
/// Jobs per tenant in the modeled storm.
const MODEL_JOBS: usize = 12;
/// Workers for the measured phase.
const WORKERS: usize = 4;

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: autotune [--quick]\n\
         Runs the deterministic grain-convergence storm (stdout is\n\
         bit-replayable) plus a measured autotune-on/off phase on a real\n\
         job service, and records results/BENCH_autotune.json."
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 })
}

/// Outcome of one tenant's modeled storm.
struct StormResult {
    tenant: &'static str,
    start_grain: u64,
    final_grain: u64,
    jobs_to_converge: Option<usize>,
    adjustments: u64,
    wall_ratio_vs_optimal: f64,
    to_ratio_vs_optimal: f64,
}

impl StormResult {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("tenant".to_owned(), self.tenant.into()),
            ("start_grain".to_owned(), (self.start_grain as i64).into()),
            ("final_grain".to_owned(), (self.final_grain as i64).into()),
            (
                "jobs_to_converge".to_owned(),
                self.jobs_to_converge
                    .map_or(JsonValue::Int(-1), |j| JsonValue::Int(j as i64)),
            ),
            ("adjustments".to_owned(), (self.adjustments as i64).into()),
            (
                "wall_ratio_vs_optimal".to_owned(),
                self.wall_ratio_vs_optimal.into(),
            ),
            (
                "to_ratio_vs_optimal".to_owned(),
                self.to_ratio_vs_optimal.into(),
            ),
        ])
    }
}

/// Run one tenant's modeled storm, printing a deterministic per-job
/// trace.
fn modeled_storm(model: &CostModel, tenant: &'static str, initial_nx: usize) -> StormResult {
    let optimal = model.optimal_grain(MODEL_UNITS, &TunerConfig::default());
    let auto = Autotune::new(AutotuneConfig {
        cores: model.cores,
        tuner: TunerConfig {
            initial_nx,
            ..TunerConfig::default()
        },
        ..AutotuneConfig::default()
    });
    let mut jobs_to_converge = None;
    let mut final_grain = initial_nx as u64;
    println!("tenant {tenant}: start grain {initial_nx} (optimum {optimal})");
    for j in 0..MODEL_JOBS {
        let g = auto.grain_for(tenant);
        final_grain = g;
        let sig = model.signal(MODEL_UNITS, g);
        println!(
            "  job {j:>2}: grain {g:>8}  idle {:>5.3}  overhead {:>5.3}  tasks/core {:>8.2}  {}",
            sig.idle_rate,
            sig.overhead_frac,
            sig.tasks_per_core,
            if auto.converged(tenant) {
                "frozen"
            } else {
                "probing"
            },
        );
        auto.observe(tenant, &sig);
        if jobs_to_converge.is_none() && auto.converged(tenant) {
            jobs_to_converge = Some(j + 1);
        }
    }
    let wall_ratio = model.wall_ns(MODEL_UNITS, final_grain) / model.wall_ns(MODEL_UNITS, optimal);
    let to_ratio = model.measured_overhead_ns(MODEL_UNITS, final_grain)
        / model.measured_overhead_ns(MODEL_UNITS, optimal);
    println!(
        "  -> converged {} after {} jobs, grain {final_grain}, wall {wall_ratio:.3}x optimal, \
         t_o {to_ratio:.3}x optimal",
        jobs_to_converge.is_some(),
        jobs_to_converge.map_or(-1i64, |j| j as i64),
    );
    StormResult {
        tenant,
        start_grain: initial_nx as u64,
        final_grain,
        jobs_to_converge,
        adjustments: auto.adjustments(tenant),
        wall_ratio_vs_optimal: wall_ratio,
        to_ratio_vs_optimal: to_ratio,
    }
}

/// One measured job's digest (stderr + JSON only).
struct MeasuredJob {
    grain: u64,
    tasks: u64,
    wall_ms: f64,
    overhead_ns_per_task: f64,
}

impl MeasuredJob {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("grain".to_owned(), (self.grain as i64).into()),
            ("tasks".to_owned(), (self.tasks as i64).into()),
            ("wall_ms".to_owned(), self.wall_ms.into()),
            (
                "overhead_ns_per_task".to_owned(),
                self.overhead_ns_per_task.into(),
            ),
        ])
    }
}

/// Drive a real service with a shaped tenant; returns per-job digests.
fn measured_phase(enabled: bool, jobs: usize) -> Vec<MeasuredJob> {
    let shape = ShapedWork::ParallelFor {
        elements: 8192,
        iters_per_element: 500,
        seed: 17,
    };
    let units = shape.units();
    let auto = Autotune::new(AutotuneConfig {
        enabled,
        cores: WORKERS,
        tuner: TunerConfig {
            // Pathologically coarse: the whole job as one task.
            initial_nx: units as usize,
            max_nx: units as usize,
            ..TunerConfig::default()
        },
        ..AutotuneConfig::default()
    });
    let service = JobService::new(ServiceConfig {
        policy: Some(auto.policy_hook()),
        ..ServiceConfig::with_workers(WORKERS)
    });
    if let Err(e) = auto.attach(&service) {
        eprintln!("warning: counter registration failed: {e:?}");
    }
    let mut digests = Vec::with_capacity(jobs);
    for j in 0..jobs {
        let grain = auto.grain_for("measured");
        let outcome = auto
            .submit_shaped(&service, &format!("measured-{j}"), "measured", &shape)
            .wait();
        if outcome.state != JobState::Completed {
            eprintln!("warning: measured job {j} ended {:?}", outcome.state);
            continue;
        }
        let wall = outcome.turnaround.as_secs_f64().max(1e-9);
        let tasks = outcome.tasks_completed.max(1);
        let machine_ns = wall * 1e9 * WORKERS as f64;
        let overhead = (machine_ns - outcome.exec_ns as f64).max(0.0) / tasks as f64;
        eprintln!(
            "measured[{}] job {j}: grain {grain} tasks {tasks} wall {:.2}ms t_o {:.0}ns",
            if enabled { "on" } else { "off" },
            wall * 1e3,
            overhead,
        );
        digests.push(MeasuredJob {
            grain,
            tasks,
            wall_ms: wall * 1e3,
            overhead_ns_per_task: overhead,
        });
    }
    digests
}

fn main() {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }

    // ---- Phase 1: the deterministic modeled storm (stdout). ----
    let model = CostModel {
        overhead_ns_per_task: 2_000.0,
        ns_per_unit: 1.0,
        cores: 4,
    };
    let optimal = model.optimal_grain(MODEL_UNITS, &TunerConfig::default());
    println!(
        "autotune convergence storm: {MODEL_UNITS} units/job, modeled t_o \
         {}ns, {} cores, optimum grain {optimal}",
        model.overhead_ns_per_task as u64, model.cores,
    );
    println!();
    let coarse_start = (optimal.saturating_mul(10)).min(MODEL_UNITS) as usize;
    let fine_start = ((optimal / 100).max(16)) as usize;
    let tuned_start = (optimal / 8).max(16) as usize;
    let storms = [
        modeled_storm(&model, "coarse-10x", coarse_start),
        modeled_storm(&model, "fine-0.01x", fine_start),
        modeled_storm(&model, "reasonable", tuned_start),
    ];
    println!();
    let mut failed = false;
    for s in &storms {
        let converged = s.jobs_to_converge.is_some_and(|j| j <= 8);
        let near_opt = s.to_ratio_vs_optimal <= 1.10;
        if !converged || !near_opt {
            failed = true;
            println!(
                "FAIL tenant {}: converged<=8 {} t_o within 10% {}",
                s.tenant, converged, near_opt
            );
        }
    }

    // ---- Phase 2: measured on/off (stderr + JSON only). ----
    let jobs = if quick { 6 } else { 10 };
    let on = measured_phase(true, jobs);
    let off = measured_phase(false, jobs);
    let total_ms = |v: &[MeasuredJob]| v.iter().map(|d| d.wall_ms).sum::<f64>();
    eprintln!(
        "measured total: autotune on {:.2}ms, off (fixed one-task jobs) {:.2}ms",
        total_ms(&on),
        total_ms(&off),
    );

    let snap = BenchSnapshot::new("autotune")
        .config("quick", quick)
        .config("features", grain_bench::hotpath_features())
        .config("workers", WORKERS)
        .config("model_units", MODEL_UNITS as i64)
        .config("model_to_ns", model.overhead_ns_per_task)
        .metric(
            "storm",
            JsonValue::Arr(storms.iter().map(StormResult::to_json).collect()),
        )
        .metric(
            "measured",
            JsonValue::Obj(vec![
                (
                    "autotune_on".to_owned(),
                    JsonValue::Arr(on.iter().map(MeasuredJob::to_json).collect()),
                ),
                (
                    "autotune_off".to_owned(),
                    JsonValue::Arr(off.iter().map(MeasuredJob::to_json).collect()),
                ),
                ("on_total_ms".to_owned(), total_ms(&on).into()),
                ("off_total_ms".to_owned(), total_ms(&off).into()),
            ]),
        );
    let out = Path::new("results/BENCH_autotune.json");
    match append_snapshot(out, &snap) {
        Ok(()) => eprintln!("recorded snapshot -> {}", out.display()),
        Err(e) => eprintln!("warning: could not record {}: {e}", out.display()),
    }

    if failed {
        std::process::exit(1);
    }
    println!("OK");
}
