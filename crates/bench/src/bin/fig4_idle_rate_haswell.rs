//! Fig. 4 (a–c) — idle-rate and execution time vs partition size on
//! Haswell at 8, 16 and 28 cores.

use grain_bench::{fig_idle_rate, Cli};

fn main() {
    let cli = Cli::parse();
    let p = cli.platform_or("haswell");
    fig_idle_rate(&p, &[8, 16, 28], &cli, "Fig. 4");
}
