//! `taskbench` — the (graph family × task grain × communication volume)
//! granularity surface.
//!
//! The paper characterizes task-size overheads with one application, the
//! 1-D stencil, so its conclusions are a single curve per platform. This
//! binary (in the spirit of Task Bench) sweeps the same Eq. 1–6 metrics
//! over a *surface*: five dependency-graph families (stencil halo, FFT
//! butterfly, tree reduce-broadcast, seeded random DAG, embarrassingly-
//! parallel sweep) × calibrated task grains × bytes-per-edge, all
//! generated deterministically from one seed and executed three ways —
//! on a single runtime via futures, as a `grain-service` job, and across
//! grain-net loopback localities where cross-partition edges travel as
//! parcels.
//!
//! Every run's checksum is asserted against the sequential reference
//! (non-zero exit on divergence), and the whole sweep is appended to
//! `results/BENCH_taskbench.json` in the shared
//! `{bench, commit, config, metrics}` trajectory schema.
//!
//! **Caveat (single-core hosts)**: with one core the Eq. 1 idle rate and
//! Eq. 6 wait time mostly measure OS scheduling, not runtime contention,
//! and loopback localities multiply threads rather than cores. The
//! header prints detected parallelism so recorded results are
//! interpretable; compare numbers only within one host.
//!
//! Flags: `--quick` (bounded sweep for the CI smoke stage),
//! `--seed N`.

use grain_metrics::{append_snapshot, BenchSnapshot, JsonValue};
use grain_net::bootstrap::Fabric;
use grain_runtime::{Runtime, RuntimeConfig};
use grain_service::{JobService, JobSpec};
use grain_taskbench::{
    all_kinds, measure_local, run_service_job, Calibration, DistTaskBench, GraphSpec,
};
use std::path::Path;
use std::time::Duration;

/// Workers for the measured multi-worker runs (the td1 baseline always
/// uses one).
const WORKERS: usize = 4;

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: taskbench [--quick] [--seed N]\n\
         Sweeps five dependency-graph families over task grain and\n\
         communication volume, emits Eqs. 1-6 per cell, checks the three\n\
         executors (runtime / service / distributed) against the\n\
         sequential reference, and records results/BENCH_taskbench.json."
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 })
}

/// One measured cell of the surface.
struct Cell {
    family: &'static str,
    grain_iters: u64,
    payload: u32,
    tasks: u64,
    idle: f64,
    td_ns: f64,
    to_ns: f64,
    mgmt_s: f64,
    wait_s: f64,
    wall_ms: f64,
}

impl Cell {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("family".to_owned(), self.family.into()),
            ("grain_iters".to_owned(), self.grain_iters.into()),
            ("payload_bytes".to_owned(), self.payload.into()),
            ("tasks".to_owned(), self.tasks.into()),
            ("idle_rate".to_owned(), self.idle.into()),
            ("t_d_ns".to_owned(), self.td_ns.into()),
            ("t_o_ns".to_owned(), self.to_ns.into()),
            ("T_o_s".to_owned(), self.mgmt_s.into()),
            ("t_wait_s".to_owned(), self.wait_s.into()),
            ("wall_ms".to_owned(), self.wall_ms.into()),
        ])
    }
}

/// Sweep the surface on the local executor, asserting every checksum
/// against the sequential reference. Eq. 6 uses a 1-worker run of the
/// *same* cell as its t_d(1) baseline, per the paper's definition.
fn sweep(seed: u64, tasks_budget: usize, grains: &[u64], payloads: &[u32]) -> Vec<Cell> {
    let rt1 = Runtime::with_workers(1);
    let rt_w = Runtime::with_workers(WORKERS);
    let mut cells = Vec::new();
    println!(
        "{:<10} {:>10} {:>8} {:>6} {:>7} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "family",
        "grain-it",
        "payload",
        "tasks",
        "idle",
        "t_d(ns)",
        "t_o(ns)",
        "T_o(s)",
        "wait(s)",
        "wall(ms)"
    );
    for kind in all_kinds(tasks_budget) {
        for &grain in grains {
            for &payload in payloads {
                let graph = GraphSpec::shape(kind, seed)
                    .grain(grain)
                    .payload(payload)
                    .build();
                let want = graph.checksum_reference();

                let base = measure_local(&rt1, &graph).expect("1-worker run settles");
                assert_eq!(base.checksum, want, "1-worker {} diverged", kind.name());
                let td1_ns = base.record.task_duration_ns();

                let m = measure_local(&rt_w, &graph).expect("measured run settles");
                assert_eq!(m.checksum, want, "{} diverged from reference", kind.name());
                let r = &m.record;
                let cell = Cell {
                    family: kind.name(),
                    grain_iters: grain,
                    payload,
                    tasks: r.tasks,
                    idle: r.idle_rate(),
                    td_ns: r.task_duration_ns(),
                    to_ns: r.task_overhead_ns(),
                    mgmt_s: r.thread_management_s(),
                    wait_s: r.wait_time_s(td1_ns),
                    wall_ms: r.wall_s * 1e3,
                };
                println!(
                    "{:<10} {:>10} {:>8} {:>6} {:>6.1}% {:>10.0} {:>10.0} {:>9.6} {:>9.6} {:>9.2}",
                    cell.family,
                    cell.grain_iters,
                    cell.payload,
                    cell.tasks,
                    100.0 * cell.idle,
                    cell.td_ns,
                    cell.to_ns,
                    cell.mgmt_s,
                    cell.wait_s,
                    cell.wall_ms,
                );
                cells.push(cell);
            }
        }
    }
    cells
}

/// Run one random-DAG graph through all three executors and assert the
/// checksums are identical (and equal to the sequential reference).
/// Returns (checksum, parcels sent, payload bytes shipped) for the
/// recorded snapshot.
fn equivalence(seed: u64, tasks_budget: usize, grain: u64, payload: u32) -> (u64, u64, u64) {
    let side = (tasks_budget as f64).sqrt().ceil() as usize;
    let graph = std::sync::Arc::new(
        GraphSpec::shape(
            grain_taskbench::GraphKind::RandomDag {
                width: side,
                steps: side.saturating_sub(1).max(1),
                max_deps: 3,
            },
            seed,
        )
        .grain(grain)
        .payload(payload)
        .build(),
    );
    let want = graph.checksum_reference();

    let rt = Runtime::with_workers(2);
    let local = grain_taskbench::run_local(&rt, &graph).expect("local run settles");
    assert_eq!(local, want, "local executor diverged");

    let service = JobService::with_workers(2);
    let via_job = run_service_job(&service, JobSpec::new("taskbench-eq", "bench"), &graph)
        .expect("service job completes");
    assert_eq!(via_job, want, "service executor diverged");

    let fabric = Fabric::loopback(2, |_| RuntimeConfig::with_workers(1));
    let instances: Vec<DistTaskBench> = (0..2)
        .map(|k| DistTaskBench::install(fabric.locality(k), std::sync::Arc::clone(&graph)))
        .collect();
    for inst in &instances {
        inst.start();
    }
    let dist = instances[0].collect().expect("distributed run settles");
    assert_eq!(dist, want, "distributed executor diverged");
    let parcels: u64 = (0..2)
        .map(|k| fabric.locality(k).parcels().sent.get())
        .sum();
    let bytes: u64 = (0..2)
        .map(|k| fabric.locality(k).parcels().bytes_sent.get())
        .sum();
    fabric.shutdown();

    println!(
        "equivalence: {} nodes, checksum {want:#018x} identical on runtime / service / 2 localities \
         ({parcels} parcels, {bytes} B shipped)",
        graph.len()
    );

    // The same partitioned run, measured: one Eq. 1-6 RunRecord per
    // locality, so per-locality overhead is visible instead of folded
    // into a fabric-wide number. Wall times vary run to run; the
    // recombined checksum must not.
    let (total, per_loc) = grain_taskbench::measure_distributed_loopback(2, 1, &graph)
        .expect("measured loopback settles");
    assert_eq!(total, want, "measured distributed run diverged");
    for m in &per_loc {
        let r = &m.record;
        println!(
            "  locality {}: tasks {} exec {:.3} ms t_o {:.0} ns idle {:.3} partial {:#018x}",
            m.locality,
            r.tasks,
            r.sum_exec_ns as f64 / 1e6,
            r.task_overhead_ns(),
            r.idle_rate(),
            m.partial_checksum,
        );
    }
    (want, parcels, bytes)
}

fn main() {
    let mut quick = false;
    let mut seed: u64 = 42;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }

    let host = std::thread::available_parallelism().map_or(0, |n| n.get());
    println!("taskbench: dependency-graph granularity surface (graph x grain x comm)");
    println!(
        "host parallelism: {host} (idle/wait columns measure OS scheduling, not runtime \
         contention, when this is 1; loopback localities share the same cores)"
    );
    let cal = if quick {
        Calibration::quick()
    } else {
        Calibration::measure(5)
    };
    println!(
        "calibration: {:.2} ns per busy-work iteration on this host",
        cal.ns_per_iter
    );

    let tasks_budget = if quick { 40 } else { 192 };
    let grains: Vec<u64> = if quick {
        vec![
            cal.iters_for(Duration::from_micros(2)),
            cal.iters_for(Duration::from_micros(50)),
        ]
    } else {
        vec![
            cal.iters_for(Duration::from_micros(1)),
            cal.iters_for(Duration::from_micros(10)),
            cal.iters_for(Duration::from_micros(100)),
            cal.iters_for(Duration::from_micros(1000)),
        ]
    };
    let payloads: Vec<u32> = if quick {
        vec![0, 256]
    } else {
        vec![0, 256, 4096]
    };
    println!(
        "sweep: 5 families x grains {grains:?} iters x payloads {payloads:?} B, ~{tasks_budget} \
         tasks per graph, {WORKERS} workers (t_d(1) baseline re-run with 1 worker per cell)"
    );
    println!();

    let cells = sweep(seed, tasks_budget, &grains, &payloads);
    println!();
    let (checksum, parcels, bytes) = equivalence(seed, tasks_budget, grains[0], 128);

    let snap = BenchSnapshot::new("taskbench")
        .config("quick", quick)
        .config("features", grain_bench::hotpath_features())
        .config("seed", seed)
        .config("workers", WORKERS)
        .config("host_parallelism", host)
        .config("ns_per_iter", cal.ns_per_iter)
        .metric(
            "surface",
            JsonValue::Arr(cells.iter().map(Cell::to_json).collect()),
        )
        .metric(
            "equivalence",
            JsonValue::Obj(vec![
                ("checksum".to_owned(), format!("{checksum:#018x}").into()),
                ("parcels".to_owned(), parcels.into()),
                ("bytes_shipped".to_owned(), bytes.into()),
            ]),
        );
    let out = Path::new("results/BENCH_taskbench.json");
    match append_snapshot(out, &snap) {
        Ok(()) => println!("\nrecorded snapshot -> {}", out.display()),
        Err(e) => eprintln!("\nwarning: could not record {}: {e}", out.display()),
    }
    println!();
    println!("OK");
}
