//! Native-engine validation sweep: the same methodology as Fig. 3/4 run on
//! the *real* grain-runtime on this host (scaled problem). Demonstrates
//! that the characterization U-curve is a property of the real scheduler,
//! not only of the simulator.

use grain_bench::{print_series, Cli};
use grain_metrics::sweep::{run_sweep, NativeEngine};
use grain_metrics::table;
use grain_topology::host;

fn main() {
    let cli = Cli::parse();
    // Scale to the host: ~2M points, 10 steps keeps the fine end tractable.
    let engine = NativeEngine::scaled(2_000_000, 10);
    let grid = [
        500usize, 2_000, 10_000, 50_000, 200_000, 1_000_000, 2_000_000,
    ];
    let max = host::available_cores().clamp(2, 8);
    let cores: Vec<usize> = [1usize, 2, 4, 8]
        .iter()
        .copied()
        .filter(|&c| c <= max)
        .collect();
    eprintln!(
        "# native sweep on host ({} cores detected)…",
        host::available_cores()
    );
    let progress = |line: &str| eprintln!("#   {line}");
    let sweep = run_sweep(&engine, &grid, &cores, cli.samples, Some(&progress));

    print_series(
        "Native runtime: execution time (s) vs partition size — host",
        &sweep,
        &cores,
        "exec(s)",
        cli.csv,
        |cell| table::fmt::s(cell.agg.wall_s.mean()),
    );
    print_series(
        "Native runtime: idle-rate vs partition size — host",
        &sweep,
        &cores,
        "idle",
        cli.csv,
        |cell| table::fmt::pct(cell.agg.idle_rate.mean()),
    );
    print_series(
        "Native runtime: task duration t_d vs partition size — host",
        &sweep,
        &cores,
        "t_d",
        cli.csv,
        |cell| table::fmt::ns(cell.agg.task_duration_ns.mean()),
    );
    println!(
        "Check: the native runtime shows the same qualitative U-curve and idle-rate\n\
         extremes as the simulated Table I platforms (oversubscribed timing on this\n\
         host is noisy; the simulator carries the quantitative reproduction)."
    );
}
