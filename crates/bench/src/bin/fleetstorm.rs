//! `fleetstorm` — a seeded multi-tenant storm against the fleet
//! gateway, with kill / drain / partition / heal chaos, replayed twice
//! to prove the whole serving plane is deterministic.
//!
//! Part A replays a [`StormPlan`] (three tenants, one with a fault
//! window) through a [`FleetGateway`] over three fleet workers, with
//! [`StormPlan::with_fleet_chaos`] events applied at **quiesced
//! boundaries**: every job submitted before a chaos event is waited to
//! a terminal state before the event fires. That discipline makes the
//! per-batch terminal buckets a pure function of the plan — placement,
//! retry timing, and partition weather can vary the *route* a job
//! takes, never the bucket it lands in — so the report replays
//! byte-identically. The harness keeps a liveness invariant (at least
//! one accepting worker at all times) by skipping chaos events that
//! would empty the fleet; skips are plan-deterministic and reported.
//!
//! Part B drives five targeted failover stages with exact expected
//! counts, pinning jobs with the worker park latch:
//!
//! 1. **kill mid-run** — the lease is orphaned and re-dispatched
//!    exactly once; the completion names the surviving locality.
//! 2. **kill after complete** — a forged duplicate completion push for
//!    the settled job is absorbed, not double-counted.
//! 3. **drain under load** — queued jobs hand back with zero loss and
//!    finish on the survivor; the running job finishes where it is.
//! 4. **partition + heal** — the worker finishes behind a Hold cut;
//!    the hedge re-dispatches under a fresh epoch; on heal the stale
//!    push is fenced by epoch, and exactly one completion is accepted.
//! 5. **quorum shed** — below quorum, deadline-carrying jobs are shed
//!    immediately with `FleetUnavailable { retry_after }` instead of
//!    hanging; deadline-less jobs wait.
//!
//! Every stage asserts the gateway ledger identity `submitted ==
//! completed + failed + timed-out + cancelled + rejected + shed`. The
//! full storm runs **twice from the same seed** and the two reports are
//! compared byte-for-byte (`scripts/verify.sh` additionally runs the
//! binary twice and `cmp`s across process boundaries). A watchdog
//! kills the process if anything hangs.
//!
//! Flags: `--quick` (smaller storm, used by `scripts/verify.sh`),
//! `--seed <n>` (default 42).

use grain_fleet::wire::{FleetOutcome, ACTION_COMPLETE};
use grain_fleet::{
    FleetConfig, FleetGateway, FleetJobHandle, FleetJobSpec, FleetLedger, FleetWorker,
    FleetWorkerConfig, Placement,
};
use grain_metrics::{append_snapshot, BenchSnapshot};
use grain_net::bootstrap::Fabric;
use grain_net::locality::NetConfig;
use grain_runtime::RuntimeConfig;
use grain_service::{JobState, RejectReason};
use grain_sim::storm::{FleetAction, FleetChaos, GraphFamily, StormEvent, StormPlan, TenantStorm};
use grain_sim::{NetPlan, PartitionMode};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

const WATCHDOG_POLL: Duration = Duration::from_secs(30);

fn eventually(cond: impl Fn() -> bool) -> bool {
    let deadline = Instant::now() + WATCHDOG_POLL;
    while !cond() {
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    true
}

// ---------------------------------------------------------------------
// Part A: the storm with fleet chaos at quiesced boundaries.
// ---------------------------------------------------------------------

/// Three tenants; `cron` faults through the middle of the horizon.
fn storm_tenants() -> Vec<TenantStorm> {
    vec![
        TenantStorm::steady(
            "api",
            Duration::from_millis(40),
            (8, 16),
            (Duration::from_micros(10), Duration::from_micros(40)),
        )
        .family(GraphFamily::Tree),
        TenantStorm::steady(
            "batch",
            Duration::from_millis(70),
            (12, 24),
            (Duration::from_micros(20), Duration::from_micros(60)),
        )
        .family(GraphFamily::RandomDag),
        TenantStorm::steady(
            "cron",
            Duration::from_millis(100),
            (8, 16),
            (Duration::from_micros(10), Duration::from_micros(30)),
        )
        .faulting_during(0.4, 0.6),
    ]
}

fn spec_of(event: &StormEvent, seed: u64, idx: usize) -> FleetJobSpec {
    FleetJobSpec::new(event.name.clone(), event.tenant.clone())
        .family(event.family)
        .tasks(event.tasks)
        // Virtual grain → bounded busy-work, as in netstorm: chaos, not
        // compute, should dominate the run.
        .grain_iters((event.grain.as_micros() as u64).clamp(1, 100))
        .payload_bytes(64)
        .seed(seed ^ ((idx as u64) << 8))
        .faulty(event.faulty)
}

/// Harness-side fleet membership bookkeeping for the liveness invariant.
struct FleetState {
    workers: Vec<usize>,
    killed: BTreeSet<usize>,
    drained: BTreeSet<usize>,
    partitioned: BTreeSet<usize>,
}

impl FleetState {
    fn accepting(&self) -> Vec<usize> {
        self.workers
            .iter()
            .copied()
            .filter(|w| {
                !self.killed.contains(w)
                    && !self.drained.contains(w)
                    && !self.partitioned.contains(w)
            })
            .collect()
    }
}

struct PartASummary {
    jobs: usize,
    completed: u64,
    failed: u64,
    events_applied: usize,
    events_skipped: usize,
}

fn run_part_a(seed: u64, quick: bool, report: &mut String) -> PartASummary {
    let horizon = Duration::from_millis(if quick { 1_500 } else { 4_000 });
    let workers = vec![1usize, 2, 3];
    let chaos = FleetChaos {
        kills: 1,
        drains: 1,
        partitions: 1,
        partition_window: horizon / 5,
    };
    let plan = StormPlan::generate(seed, horizon, &storm_tenants())
        .with_fleet_chaos(seed, &workers, &chaos);
    let _ = writeln!(
        report,
        "partA seed={seed} horizon={}ms jobs={} fleet_events={}",
        horizon.as_millis(),
        plan.events.len(),
        plan.fleet.len()
    );

    let fabric = Fabric::chaotic(
        4,
        NetPlan::clean(seed ^ 0xF1EE).latency(1_000, 500),
        |_| NetConfig::default(),
        |i| RuntimeConfig {
            workers: 1,
            locality_id: i,
            ..RuntimeConfig::default()
        },
    );
    let fleet_workers: Vec<FleetWorker> = workers
        .iter()
        .map(|w| FleetWorker::install(fabric.locality(*w), FleetWorkerConfig::new(0, 1)))
        .collect();
    let mut cfg = FleetConfig::new(workers.clone());
    // Storm tuning: fail over *fast* around held partitions, and never
    // let routing churn exhaust a job's dispatch budget.
    cfg.ack_timeout = Duration::from_millis(150);
    cfg.retry_backoff = Duration::from_millis(15);
    cfg.max_dispatches = 64;
    cfg.breaker.failure_threshold = 2;
    cfg.breaker.cooldown = Duration::from_millis(300);
    let gateway = FleetGateway::install(fabric.locality(0), cfg);
    let net = fabric.net().expect("chaotic world");

    let mut state = FleetState {
        workers: workers.clone(),
        killed: BTreeSet::new(),
        drained: BTreeSet::new(),
        partitioned: BTreeSet::new(),
    };

    let mut handles: Vec<(FleetJobHandle, bool)> = Vec::new();
    let mut submitted = 0usize;
    let mut next_job = 0usize;
    let mut last = gateway.ledger();
    let mut applied = 0usize;
    let mut skipped = 0usize;

    // Submit every job planned before `until`, then wait the fleet
    // quiescent and report the batch's terminal-bucket delta.
    let mut quiesce = |until: Duration,
                       label: &str,
                       next_job: &mut usize,
                       handles: &mut Vec<(FleetJobHandle, bool)>,
                       last: &mut FleetLedger,
                       report: &mut String| {
        let mut batch_jobs = 0usize;
        let mut batch_faulty = 0usize;
        while *next_job < plan.events.len() && plan.events[*next_job].at < until {
            let e = &plan.events[*next_job];
            handles.push((gateway.submit(spec_of(e, seed, *next_job)), e.faulty));
            batch_jobs += 1;
            batch_faulty += usize::from(e.faulty);
            *next_job += 1;
        }
        submitted += batch_jobs;
        for (h, _) in handles.iter() {
            if h.wait_timeout(WATCHDOG_POLL).is_none() {
                eprintln!("--- partial report at hang ---\n{report}");
                panic!(
                    "storm job hung at a chaos boundary: key={} phase={} workers={} ledger={:?}",
                    h.key(),
                    gateway.debug_phase(h.key()),
                    gateway.debug_workers(),
                    gateway.ledger()
                );
            }
        }
        let now = gateway.ledger();
        let d_completed = now.completed - last.completed;
        let d_failed = now.failed - last.failed;
        // The buckets are plan-determined: chaos may re-route a job
        // but never change where it settles.
        assert_eq!(
            d_completed + d_failed,
            batch_jobs as u64,
            "batch jobs leaked: {now:?}"
        );
        assert_eq!(
            d_failed, batch_faulty as u64,
            "fault window drifted: {now:?}"
        );
        assert_eq!(now.shed + now.rejected, 0, "storm must not shed: {now:?}");
        assert!(now.conserved(), "ledger leaked: {now:?}");
        let _ = writeln!(
                report,
                "partA {label}: jobs={batch_jobs} completed=+{d_completed} failed=+{d_failed} conserved={}",
                now.conserved()
            );
        *last = now;
    };

    for (i, ev) in plan.fleet.iter().enumerate() {
        quiesce(
            ev.at,
            &format!("batch[{i}]"),
            &mut next_job,
            &mut handles,
            &mut last,
            report,
        );
        // Apply the event — unless it would leave the fleet with no
        // accepting worker (or target an unreachable peer). Skips are a
        // pure function of the plan, so the report stays replayable.
        let decision: &str = match ev.action {
            FleetAction::Kill { worker } => {
                if state.accepting() == vec![worker] {
                    skipped += 1;
                    "skipped(last-accepting-worker)"
                } else {
                    state.killed.insert(worker);
                    fabric.kill(worker);
                    applied += 1;
                    "applied"
                }
            }
            FleetAction::Drain { worker } => {
                if state.killed.contains(&worker) {
                    skipped += 1;
                    "skipped(worker-dead)"
                } else if state.partitioned.contains(&worker) {
                    skipped += 1;
                    "skipped(worker-partitioned)"
                } else if state.accepting() == vec![worker] {
                    skipped += 1;
                    "skipped(last-accepting-worker)"
                } else {
                    let handed = gateway.drain(worker).expect("drain reachable worker");
                    // Quiesced boundary: nothing is queued, so nothing
                    // hands back — targeted drains run in part B.
                    assert!(handed.is_empty(), "quiesced drain handed back {handed:?}");
                    state.drained.insert(worker);
                    applied += 1;
                    "applied"
                }
            }
            FleetAction::Partition { worker } => {
                if state.accepting() == vec![worker] {
                    skipped += 1;
                    "skipped(last-accepting-worker)"
                } else {
                    net.partition_now(0, worker, PartitionMode::Hold);
                    state.partitioned.insert(worker);
                    applied += 1;
                    "applied"
                }
            }
            FleetAction::Heal { worker } => {
                if state.partitioned.remove(&worker) {
                    net.heal_now(0, worker);
                    applied += 1;
                    "applied"
                } else {
                    skipped += 1;
                    "skipped(partition-not-applied)"
                }
            }
        };
        let _ = writeln!(
            report,
            "partA event[{i}] t={}ms {:?} {decision} accepting={:?}",
            ev.at.as_millis(),
            ev.action,
            state.accepting()
        );
    }
    quiesce(
        horizon + Duration::from_secs(1),
        "final",
        &mut next_job,
        &mut handles,
        &mut last,
        report,
    );

    let ledger = gateway.ledger();
    assert_eq!(ledger.submitted, plan.events.len() as u64);
    assert_eq!(
        ledger.orphaned, 0,
        "quiesced kills orphan nothing: {ledger:?}"
    );
    assert_eq!(ledger.hedged, 0, "hedging is off in part A: {ledger:?}");
    // Every re-dispatch traces to a counted cause (here: routing around
    // held or refusing workers). Exact counts are timing-shaped, so the
    // report carries the accounting *identity*, not the raw numbers.
    let accounted = ledger.redispatches
        <= ledger.orphaned
            + ledger.handed_back
            + ledger.hedged
            + ledger.dispatch_failures
            + ledger.worker_rejects;
    assert!(accounted, "unaccounted re-dispatch: {ledger:?}");
    let _ = writeln!(
        report,
        "partA ledger: submitted={} completed={} failed={} shed={} rejected={} conserved={} redispatches_accounted={accounted}",
        ledger.submitted, ledger.completed, ledger.failed, ledger.shed, ledger.rejected,
        ledger.conserved()
    );
    let summary = PartASummary {
        jobs: plan.events.len(),
        completed: ledger.completed,
        failed: ledger.failed,
        events_applied: applied,
        events_skipped: skipped,
    };
    drop(gateway);
    drop(fleet_workers);
    fabric.shutdown();
    summary
}

// ---------------------------------------------------------------------
// Part B: targeted failover stages with exact expected counts.
// ---------------------------------------------------------------------

fn loopback_world() -> Fabric {
    Fabric::loopback(3, |i| RuntimeConfig {
        workers: 1,
        locality_id: i,
        ..RuntimeConfig::default()
    })
}

/// Stage 1: kill the worker mid-run; the orphan re-dispatches once.
fn stage_kill_mid_run(report: &mut String) {
    let fabric = loopback_world();
    let w1 = FleetWorker::install(fabric.locality(1), FleetWorkerConfig::new(0, 1));
    let w2 = FleetWorker::install(fabric.locality(2), FleetWorkerConfig::new(0, 1));
    let mut cfg = FleetConfig::new(vec![1, 2]);
    cfg.placement = Placement::Prefer(1);
    let gateway = FleetGateway::install(fabric.locality(0), cfg);

    let handle = gateway.submit(FleetJobSpec::new("victim", "t").tasks(4).park(true));
    let key = handle.key();
    assert!(eventually(|| gateway.lease_of(key) == Some(1)));
    assert!(eventually(|| w1.tracked_keys().contains(&key)));
    fabric.kill(1);
    assert!(eventually(|| w2.tracked_keys().contains(&key)));
    w2.release_parked();
    let outcome = handle.wait_timeout(WATCHDOG_POLL).expect("job settles");
    let ledger = gateway.ledger();
    assert_eq!(outcome.state, JobState::Completed);
    assert_eq!(outcome.origin_locality, Some(2));
    assert_eq!(
        (
            ledger.completed,
            ledger.orphaned,
            ledger.redispatches,
            ledger.dispatches
        ),
        (1, 1, 1, 2),
        "{ledger:?}"
    );
    assert!(ledger.conserved());
    let _ = writeln!(
        report,
        "partB kill-mid-run: completed={} orphaned={} redispatches={} origin={:?} conserved={}",
        ledger.completed,
        ledger.orphaned,
        ledger.redispatches,
        outcome.origin_locality,
        ledger.conserved()
    );
    drop(gateway);
    drop(w2);
    drop(w1);
    fabric.shutdown();
}

/// Stage 2: the worker dies *after* completing; a replayed completion
/// push must not double-count.
fn stage_kill_after_complete(report: &mut String) {
    let fabric = loopback_world();
    let w1 = FleetWorker::install(fabric.locality(1), FleetWorkerConfig::new(0, 1));
    let w2 = FleetWorker::install(fabric.locality(2), FleetWorkerConfig::new(0, 1));
    let mut cfg = FleetConfig::new(vec![1, 2]);
    cfg.placement = Placement::Prefer(1);
    let gateway = FleetGateway::install(fabric.locality(0), cfg);

    let handle = gateway.submit(FleetJobSpec::new("done-then-die", "t").tasks(4));
    let key = handle.key();
    let outcome = handle.wait_timeout(WATCHDOG_POLL).expect("job settles");
    assert_eq!(outcome.state, JobState::Completed);
    assert_eq!(outcome.origin_locality, Some(1));
    fabric.kill(1);

    let forged = FleetOutcome {
        key,
        epoch: 1,
        origin: 1,
        state: JobState::Completed,
        tasks_completed: 4,
        tasks_spawned: 4,
        tasks_faulted: 0,
        exec_ns: 1,
        retries: 0,
        fault_msg: None,
        reject: None,
    };
    let verdict = fabric
        .locality(2)
        .async_remote::<FleetOutcome, u8>(0, ACTION_COMPLETE, &forged)
        .wait()
        .expect("forged push settles");
    assert_eq!(*verdict, 1);
    let ledger = gateway.ledger();
    assert_eq!(
        (
            ledger.completed,
            ledger.duplicates,
            ledger.orphaned,
            ledger.redispatches
        ),
        (1, 1, 0, 0),
        "{ledger:?}"
    );
    assert!(ledger.conserved());
    let _ = writeln!(
        report,
        "partB kill-after-complete: completed={} duplicates={} redispatches={} conserved={}",
        ledger.completed,
        ledger.duplicates,
        ledger.redispatches,
        ledger.conserved()
    );
    drop(gateway);
    drop(w2);
    drop(w1);
    fabric.shutdown();
}

/// Stage 3: drain a loaded worker; queued jobs hand back, zero loss.
fn stage_drain(report: &mut String) {
    let fabric = loopback_world();
    let mut w1_cfg = FleetWorkerConfig::new(0, 1);
    w1_cfg.service.admission.max_in_flight_tasks = 4;
    let w1 = FleetWorker::install(fabric.locality(1), w1_cfg);
    let w2 = FleetWorker::install(fabric.locality(2), FleetWorkerConfig::new(0, 1));
    let mut cfg = FleetConfig::new(vec![1, 2]);
    cfg.placement = Placement::Prefer(1);
    let gateway = FleetGateway::install(fabric.locality(0), cfg);

    let blocker = gateway.submit(FleetJobSpec::new("blocker", "t").tasks(4).park(true));
    assert!(eventually(|| gateway.lease_of(blocker.key()) == Some(1)));
    let queued: Vec<FleetJobHandle> = (0..2)
        .map(|i| gateway.submit(FleetJobSpec::new(format!("queued-{i}"), "t").tasks(4)))
        .collect();
    for h in &queued {
        assert!(eventually(|| gateway.lease_of(h.key()) == Some(1)));
    }
    let handed = gateway.drain(1).expect("drain settles");
    assert_eq!(handed.len(), 2);
    for h in &queued {
        let o = h
            .wait_timeout(WATCHDOG_POLL)
            .expect("handed-back job settles");
        assert_eq!(o.state, JobState::Completed);
        assert_eq!(o.origin_locality, Some(2));
    }
    w1.release_parked();
    let o = blocker
        .wait_timeout(WATCHDOG_POLL)
        .expect("running job settles");
    assert_eq!(o.state, JobState::Completed);
    assert_eq!(o.origin_locality, Some(1));
    let ledger = gateway.ledger();
    assert_eq!(
        (
            ledger.completed,
            ledger.handed_back,
            ledger.redispatches,
            ledger.orphaned
        ),
        (3, 2, 2, 0),
        "{ledger:?}"
    );
    assert!(ledger.conserved());
    let _ = writeln!(
        report,
        "partB drain: completed={} handed_back={} redispatches={} zero_loss=true conserved={}",
        ledger.completed,
        ledger.handed_back,
        ledger.redispatches,
        ledger.conserved()
    );
    drop(gateway);
    drop(w2);
    drop(w1);
    fabric.shutdown();
}

/// Stage 4: partition + heal; the stale epoch's push is fenced.
fn stage_partition_fence(seed: u64, report: &mut String) {
    let fabric = Fabric::chaotic(
        3,
        NetPlan::clean(seed ^ 0xFE4CE).latency(1_000, 0),
        |_| NetConfig::default(),
        |i| RuntimeConfig {
            workers: 1,
            locality_id: i,
            ..RuntimeConfig::default()
        },
    );
    let w1 = FleetWorker::install(fabric.locality(1), FleetWorkerConfig::new(0, 1));
    let w2 = FleetWorker::install(fabric.locality(2), FleetWorkerConfig::new(0, 1));
    let mut cfg = FleetConfig::new(vec![1, 2]);
    cfg.placement = Placement::Prefer(1);
    cfg.lease_timeout = Some(Duration::from_millis(200));
    cfg.ack_timeout = Duration::from_millis(100);
    cfg.retry_backoff = Duration::from_millis(10);
    cfg.breaker.failure_threshold = 1;
    cfg.breaker.cooldown = Duration::from_secs(60);
    let gateway = FleetGateway::install(fabric.locality(0), cfg);
    let net = fabric.net().expect("chaotic world");

    let handle = gateway.submit(FleetJobSpec::new("fenced", "t").tasks(4).park(true));
    let key = handle.key();
    assert!(eventually(|| gateway.lease_of(key) == Some(1)));
    assert!(eventually(|| w1.tracked_keys().contains(&key)));
    net.partition_now(0, 1, PartitionMode::Hold);
    w1.release_parked();
    assert!(eventually(|| w2.tracked_keys().contains(&key)));
    assert!(eventually(|| gateway.lease_of(key) == Some(2)));
    net.heal_now(0, 1);
    assert!(eventually(|| gateway.ledger().fenced >= 1));
    assert_eq!(gateway.ledger().completed, 0, "fenced push must not settle");
    w2.release_parked();
    let outcome = handle.wait_timeout(WATCHDOG_POLL).expect("job settles");
    assert_eq!(outcome.state, JobState::Completed);
    assert_eq!(outcome.origin_locality, Some(2));
    let ledger = gateway.ledger();
    assert_eq!((ledger.completed, ledger.completions), (1, 1), "{ledger:?}");
    assert!(ledger.hedged >= 1 && ledger.fenced >= 1, "{ledger:?}");
    assert!(ledger.conserved());
    assert!(gateway.breaker_opens(1) >= 1);
    let _ = writeln!(
        report,
        "partB partition-fence: completed={} completions={} fenced_ge1={} hedged_ge1={} breaker_opened={} conserved={}",
        ledger.completed,
        ledger.completions,
        ledger.fenced >= 1,
        ledger.hedged >= 1,
        gateway.breaker_opens(1) >= 1,
        ledger.conserved()
    );
    drop(gateway);
    drop(w2);
    drop(w1);
    fabric.shutdown();
}

/// Stage 5: below quorum, deadline-carrying jobs shed immediately with
/// a retry-after hint; deadline-less jobs wait instead.
fn stage_quorum_shed(report: &mut String) {
    let fabric = loopback_world();
    let w1 = FleetWorker::install(fabric.locality(1), FleetWorkerConfig::new(0, 1));
    let w2 = FleetWorker::install(fabric.locality(2), FleetWorkerConfig::new(0, 1));
    let mut cfg = FleetConfig::new(vec![1, 2]);
    cfg.quorum = 1.0; // both workers must be accepting
    cfg.shed_retry_after = Duration::from_millis(250);
    let gateway = FleetGateway::install(fabric.locality(0), cfg);

    fabric.kill(2);
    assert!(eventually(|| gateway.accepting_workers() == vec![1]));

    let shed: Vec<FleetJobHandle> = (0..4)
        .map(|i| {
            gateway.submit(
                FleetJobSpec::new(format!("deadline-{i}"), "t")
                    .tasks(4)
                    .deadline(Duration::from_secs(5)),
            )
        })
        .collect();
    let mut retry_after_ms = 0u128;
    for h in &shed {
        let o = h
            .wait_timeout(WATCHDOG_POLL)
            .expect("shed job settles fast");
        assert_eq!(o.state, JobState::Rejected);
        match o.reject_reason {
            Some(RejectReason::FleetUnavailable { retry_after }) => {
                retry_after_ms = retry_after.as_millis();
            }
            other => panic!("expected FleetUnavailable, got {other:?}"),
        }
    }
    // A deadline-less job is patient: it parks pending rather than shed.
    let patient = gateway.submit(FleetJobSpec::new("patient", "t").tasks(4));
    std::thread::sleep(Duration::from_millis(50));
    let still_pending = patient.outcome().is_none();
    assert!(still_pending, "deadline-less job must wait, not shed");

    let ledger = gateway.ledger();
    assert_eq!(ledger.shed, 4, "{ledger:?}");
    assert_eq!(ledger.settled(), 4, "{ledger:?}");
    let _ = writeln!(
        report,
        "partB quorum-shed: shed={} retry_after_ms={retry_after_ms} deadline_less_waits={still_pending}",
        ledger.shed
    );
    drop(gateway);
    drop(w2);
    drop(w1);
    fabric.shutdown();
}

/// Stage 6: a worker refusal surfaces the *originating* locality and
/// reason in the terminal outcome once the dispatch budget is spent.
fn stage_reject_origin(report: &mut String) {
    let fabric = loopback_world();
    // Every submission passes through the worker's queue, so cap it at
    // one waiter: the hog runs (parked), the filler takes the only
    // queue slot, and the third job is refused with `QueueFull`.
    let mut w1_cfg = FleetWorkerConfig::new(0, 1);
    w1_cfg.service.admission.max_in_flight_tasks = 4;
    w1_cfg.service.admission.max_queued_jobs = 1;
    let w1 = FleetWorker::install(fabric.locality(1), w1_cfg);
    let mut cfg = FleetConfig::new(vec![1]);
    cfg.max_dispatches = 2;
    cfg.retry_backoff = Duration::from_millis(10);
    cfg.breaker.failure_threshold = 10;
    let gateway = FleetGateway::install(fabric.locality(0), cfg);

    let blocker = gateway.submit(FleetJobSpec::new("hog", "t").tasks(4).park(true));
    assert!(eventually(|| gateway.lease_of(blocker.key()) == Some(1)));
    let filler = gateway.submit(FleetJobSpec::new("filler", "t").tasks(4));
    assert!(eventually(|| gateway.lease_of(filler.key()) == Some(1)));
    // Both dispatch attempts come back refused, and the refusal that
    // lands in the outcome names the refusing locality.
    let refused = gateway.submit(FleetJobSpec::new("refused", "t").tasks(4));
    let o = refused
        .wait_timeout(WATCHDOG_POLL)
        .expect("refusal settles");
    assert_eq!(o.state, JobState::Rejected);
    assert_eq!(o.origin_locality, Some(1), "refusal must name its origin");
    assert!(
        matches!(o.reject_reason, Some(RejectReason::QueueFull)),
        "{:?}",
        o.reject_reason
    );
    w1.release_parked();
    let done = blocker.wait_timeout(WATCHDOG_POLL).expect("hog settles");
    assert_eq!(done.state, JobState::Completed);
    let queued = filler.wait_timeout(WATCHDOG_POLL).expect("filler settles");
    assert_eq!(queued.state, JobState::Completed);
    let ledger = gateway.ledger();
    assert_eq!(
        (ledger.completed, ledger.rejected, ledger.worker_rejects),
        (2, 1, 2),
        "{ledger:?}"
    );
    assert!(ledger.conserved());
    let _ = writeln!(
        report,
        "partB reject-origin: rejected={} origin={:?} reason={:?} worker_rejects={} conserved={}",
        ledger.rejected,
        o.origin_locality,
        o.reject_reason,
        ledger.worker_rejects,
        ledger.conserved()
    );
    drop(gateway);
    drop(w1);
    fabric.shutdown();
}

/// One complete storm; the returned string is the replay unit.
fn run_once(seed: u64, quick: bool) -> (String, PartASummary) {
    let mut report = String::new();
    let summary = run_part_a(seed, quick, &mut report);
    stage_kill_mid_run(&mut report);
    stage_kill_after_complete(&mut report);
    stage_drain(&mut report);
    stage_partition_fence(seed, &mut report);
    stage_quorum_shed(&mut report);
    stage_reject_origin(&mut report);
    (report, summary)
}

fn main() {
    let mut quick = false;
    let mut seed: u64 = 42;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("usage: fleetstorm [--quick] [--seed <n>]");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("usage: fleetstorm [--quick] [--seed <n>] (got {other})");
                std::process::exit(2);
            }
        }
    }

    // A failover harness that can hang cannot certify "no hangs".
    let budget = Duration::from_secs(if quick { 120 } else { 300 });
    std::thread::spawn(move || {
        std::thread::sleep(budget);
        eprintln!("fleetstorm: watchdog expired after {budget:?} — a stage hung");
        std::process::exit(3);
    });

    println!("fleetstorm: multi-tenant storm against the fleet gateway under kill/drain/partition/heal chaos");
    println!(
        "host parallelism: {} (1-core hosts: placement signals saturate and stages serialize, but every invariant still holds)",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    println!();

    let (first, summary) = run_once(seed, quick);
    let (second, _) = run_once(seed, quick);

    print!("{first}");
    println!();
    if first != second {
        println!("replay: DIVERGED — the serving plane is not deterministic");
        println!("--- first run ---\n{first}");
        println!("--- second run ---\n{second}");
        std::process::exit(1);
    }
    println!(
        "replay: IDENTICAL ({} report bytes, seed {seed})",
        first.len()
    );

    let snap = BenchSnapshot::new("fleet")
        .config("quick", quick)
        .config("features", grain_bench::hotpath_features())
        .config("seed", seed as i64)
        .config(
            "host_parallelism",
            std::thread::available_parallelism().map_or(0, |n| n.get()),
        )
        .metric("storm_jobs", summary.jobs)
        .metric("storm_completed", summary.completed)
        .metric("storm_failed", summary.failed)
        .metric("fleet_events_applied", summary.events_applied)
        .metric("fleet_events_skipped", summary.events_skipped)
        .metric("report_bytes", first.len())
        .metric("replay_identical", true);
    let out = Path::new("results/BENCH_fleet.json");
    match append_snapshot(out, &snap) {
        Ok(()) => println!("recorded snapshot -> {}", out.display()),
        Err(e) => eprintln!("warning: could not record {}: {e}", out.display()),
    }
    println!();
    println!("OK");
}
