//! Table I — platform specifications of the four experimental nodes.

use grain_metrics::table;
use grain_topology::presets;

fn main() {
    let platforms = presets::table1();
    let headers = [
        "Node",
        "Processors",
        "Clock",
        "Microarchitecture",
        "HW threading",
        "Cores",
        "Cache/Core",
        "Shared cache",
        "RAM",
    ];
    let rows: Vec<Vec<String>> = platforms
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                p.processors.clone(),
                if p.turbo_ghz > p.clock_ghz {
                    format!("{} GHz ({} turbo)", p.clock_ghz, p.turbo_ghz)
                } else {
                    format!("{} GHz", p.clock_ghz)
                },
                p.microarchitecture.clone(),
                format!(
                    "{}-way{}",
                    p.hw_threads_per_core,
                    if p.hw_threads_active {
                        ""
                    } else {
                        " (deactivated)"
                    }
                ),
                p.cores.to_string(),
                format!(
                    "{} KB L1(D,I), {} KB L2",
                    p.cache.l1d_bytes / 1024,
                    p.cache.l2_bytes / 1024
                ),
                if p.cache.llc_bytes_per_socket > 0 {
                    format!("{} MB", p.cache.llc_bytes_per_socket / 1024 / 1024)
                } else {
                    "-".to_owned()
                },
                format!("{} GB", p.ram_bytes / 1024 / 1024 / 1024),
            ]
        })
        .collect();
    print!(
        "{}",
        table::render("Table I: Platform Specifications", &headers, &rows)
    );
    println!("CSV:");
    print!("{}", table::csv(&headers, &rows));
}
