//! Fig. 2 — dependency structure of the HPX-Stencil benchmark: each
//! partition's next step depends on the three closest partitions of the
//! previous step. Verified against both the simulated DAG and the native
//! futurized execution.

use grain_runtime::Runtime;
use grain_stencil::{run_futurized, run_sequential, stencil_workload, StencilParams};

fn main() {
    let params = StencilParams::new(8, 5, 3);
    let wl = stencil_workload(&params);

    println!("Fig. 2: HPX-Stencil dependencies (np=5 partitions, nt=3 steps)");
    println!();
    for t in 0..params.nt {
        for i in 0..params.np {
            let idx = t * params.np + i;
            let deps = &wl.tasks[idx].deps;
            if t == 0 {
                println!("  step {t} partition {i}: task#{idx:<3} <- (initial values ready)");
            } else {
                println!(
                    "  step {t} partition {i}: task#{idx:<3} <- tasks {:?} (partitions {}, {}, {} of step {})",
                    deps,
                    (i + params.np - 1) % params.np,
                    i,
                    (i + 1) % params.np,
                    t - 1
                );
            }
        }
    }
    wl.validate().expect("stencil DAG is well-formed");
    assert_eq!(wl.len(), params.total_tasks());

    // The dependency structure is not just shaped right — executing it
    // out-of-order under work stealing yields bit-identical physics.
    let rt = Runtime::with_workers(4);
    let fut = run_futurized(&rt, &params);
    let seq = run_sequential(&params);
    assert_eq!(
        fut, seq,
        "dataflow execution must match the sequential oracle"
    );
    println!();
    println!(
        "OK: {} tasks, 3 dependencies each past step 0; futurized execution on 4 \
         workers is bit-identical to the sequential oracle.",
        wl.len()
    );
}
