//! Calibration report: the simulator's headline numbers against the
//! values quoted in the paper's text (§IV-A, §IV-E, Fig. 3). This is the
//! paper-vs-measured source for EXPERIMENTS.md.

use grain_metrics::sweep::{SimEngine, StencilEngine};
use grain_metrics::table;
use grain_topology::presets;

fn row(name: &str, paper: &str, ours: String) -> Vec<String> {
    vec![name.to_owned(), paper.to_owned(), ours]
}

fn main() {
    let hw = SimEngine::paper(presets::haswell());
    let phi = SimEngine::paper(presets::xeon_phi());

    let mut rows = Vec::new();

    // t_d1 values (§IV-A).
    let r = hw.run(12_500, 1, 0);
    rows.push(row(
        "HW t_d1(12500)",
        "21 us",
        table::fmt::ns(r.task_duration_ns()),
    ));
    let serial_12500 = r.wall_s;
    let r = hw.run(78_125, 1, 0);
    rows.push(row(
        "HW t_d1(78125)",
        "99 us",
        table::fmt::ns(r.task_duration_ns()),
    ));
    let r = phi.run(12_500, 1, 0);
    rows.push(row(
        "Phi t_d1(12500)",
        "1.1 ms",
        table::fmt::ns(r.task_duration_ns()),
    ));

    // Serial flat region (Fig. 3c/d).
    rows.push(row(
        "HW serial exec @12500",
        "~5-8 s",
        table::fmt::s(serial_12500),
    ));
    let r = hw.run(1_000_000, 1, 0);
    rows.push(row(
        "HW serial exec @1e6",
        "~4.5-5.5 s",
        table::fmt::s(r.wall_s),
    ));
    let r = phi.run(1_000_000, 1, 0);
    rows.push(row(
        "Phi serial exec @1e6",
        "~45-60 s",
        table::fmt::s(r.wall_s),
    ));

    // The 28-core valley (§IV-A).
    let r = hw.run(40_000, 28, 0);
    rows.push(row("HW 28c exec @40000", "1.71 s", table::fmt::s(r.wall_s)));
    let r = hw.run(78_125, 28, 0);
    rows.push(row("HW 28c exec @78125", "1.75 s", table::fmt::s(r.wall_s)));
    let r = hw.run(31_250, 28, 0);
    rows.push(row(
        "HW 28c exec @31250",
        "1.925 s",
        table::fmt::s(r.wall_s),
    ));

    // Idle-rate extremes (Fig. 4c).
    let r = hw.run(1_000, 28, 0);
    rows.push(row(
        "HW 28c idle-rate @1000",
        "~85-90%",
        table::fmt::pct(r.idle_rate()),
    ));
    let fine_exec = r.wall_s;
    rows.push(row("HW 28c exec @1000", "~4.8 s", table::fmt::s(fine_exec)));
    let r = hw.run(100_000_000, 28, 0);
    rows.push(row(
        "HW 28c idle-rate @1e8",
        "~80-90%",
        table::fmt::pct(r.idle_rate()),
    ));

    // Wait time per task at 90 000 (Fig. 6).
    let base = hw.run(90_000, 1, 0);
    let r = hw.run(90_000, 28, 0);
    let tw = r.task_duration_ns() - base.task_duration_ns();
    rows.push(row("HW 28c t_w @90000", "~600-700 us", table::fmt::ns(tw)));
    let r8 = hw.run(90_000, 8, 0);
    let tw8 = r8.task_duration_ns() - base.task_duration_ns();
    rows.push(row("HW 8c t_w @90000", "~150-250 us", table::fmt::ns(tw8)));

    // Phi valley (Fig. 3d).
    let r = phi.run(100_000, 60, 0);
    rows.push(row(
        "Phi 60c exec @1e5",
        "~1.3-1.6 s",
        table::fmt::s(r.wall_s),
    ));

    print!(
        "{}",
        table::render(
            "Calibration: simulator vs the numbers quoted in the paper",
            &["quantity", "paper", "simulated"],
            &rows
        )
    );
    println!("\nSee EXPERIMENTS.md for the discussion of each residual.");
}
