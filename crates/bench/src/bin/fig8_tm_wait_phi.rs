//! Fig. 8 (a–c) — execution time vs HPX-thread management (Eq. 4), wait
//! time (Eq. 6) and their sum, on the Xeon Phi at 16/32/60 cores.

use grain_bench::{fig_tm_wait, Cli};

fn main() {
    let cli = Cli::parse();
    let p = cli.platform_or("xeon-phi");
    fig_tm_wait(&p, &[16, 32, 60], &cli, "Fig. 8");
}
