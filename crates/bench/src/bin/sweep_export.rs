//! Export full sweep data as CSV files for external plotting: one file
//! per platform under `results/`, every cell with every metric (exec
//! time mean/COV, Eqs. 1-6, queue counters).
//!
//! ```sh
//! cargo run --release -p grain-bench --bin sweep_export -- --quick
//! ```

use grain_bench::{sweep_platform, Cli};
use grain_topology::presets;

fn main() {
    let cli = Cli::parse();
    let platforms = match &cli.platform {
        Some(name) => vec![cli.platform_or(name)],
        None => presets::table1(),
    };
    std::fs::create_dir_all("results").expect("create results/");
    for p in platforms {
        let cores = p.core_sweep();
        let sweep = sweep_platform(&p, &cli.grid(), &cores, cli.samples);
        let path = format!(
            "results/sweep_{}.csv",
            p.name.to_ascii_lowercase().replace(' ', "_")
        );
        std::fs::write(&path, sweep.to_csv()).expect("write CSV");
        println!("wrote {path} ({} cells)", sweep.cells.len());
    }
}
