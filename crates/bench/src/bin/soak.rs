//! soak — chaos-soak harness for the service's overload resilience.
//!
//! Replays a seeded overload-and-fault storm ([`grain_sim::storm`])
//! against a real [`JobService`] for N *virtual* seconds (scaled to
//! ~20 ms of wall clock each), three times:
//!
//! 1. resilience **on** (pressure loop + per-tenant breakers, the
//!    defaults),
//! 2. resilience **off** (legacy behavior: fixed budget, queued
//!    deadline expiries become `TimedOut`),
//! 3. resilience **on** again with the same seed, to show the storm
//!    replays and the invariants hold deterministically.
//!
//! Two well-behaved tenants (`alpha`, `beta`) submit deadline jobs at
//! roughly 2× the service's drain rate while a `chaos` tenant floods it
//! with panicking retry jobs during the first 60 % of the horizon, then
//! recovers. After each pass the harness drains the service and checks
//! the overload invariants:
//!
//! * every submitted job reached a terminal state;
//! * the in-flight budget is exactly restored (no leak), queues and
//!   running set are empty;
//! * conservation: `admitted + rejected + shed + queued-timeouts`
//!   equals `submitted`;
//! * the `shed` counter equals the number of outcomes reporting
//!   `RejectReason::Shed`, and the breakers' rejection count equals the
//!   outcomes reporting `RejectReason::BreakerOpen`;
//! * with resilience on, the chaos tenant's breaker opened at least
//!   once and re-closed by the end, and the well-behaved tenants' job
//!   timeout count is lower than in the unprotected pass.
//!
//! Usage: `soak [--virtual-seconds N] [--seed N]`

use grain_service::{
    AdmissionConfig, FailurePolicy, JobHandle, JobService, JobSpec, JobState, RejectReason,
    ServiceConfig,
};
use grain_sim::storm::{GraphFamily, StormPlan, TenantStorm};
use grain_taskbench::{storm as shapes, Calibration};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Real wall-clock time per virtual second of storm time.
const TIME_SCALE: f64 = 0.02;

/// Scale a virtual duration from the storm plan to wall-clock time.
fn real(d: Duration) -> Duration {
    d.mul_f64(TIME_SCALE)
}

/// Keep a core busy for roughly `d` of real work.
fn spin_for(d: Duration) {
    let t0 = Instant::now();
    let mut x = 0u64;
    while t0.elapsed() < d {
        for i in 0..64u64 {
            x = x.wrapping_add(std::hint::black_box(i) * i);
        }
    }
    std::hint::black_box(x);
}

/// The storm cast: two well-behaved deadline tenants at a combined ~2×
/// the two-worker drain rate, one flooding tenant that panics during
/// the first 60 % of the horizon and then recovers. The well-behaved
/// tenants submit *graph-shaped* jobs (a taskbench stencil and tree
/// reduce-broadcast respectively), so shedding and breakers are
/// exercised against dependency-structured work, not just flat spawn
/// loops; chaos keeps the legacy flat shape.
fn profiles() -> Vec<TenantStorm> {
    vec![
        TenantStorm::steady(
            "alpha",
            Duration::from_millis(50),
            (2, 8),
            (Duration::from_millis(10), Duration::from_millis(25)),
        )
        .deadline(Duration::from_secs(2))
        .family(GraphFamily::Stencil),
        TenantStorm::steady(
            "beta",
            Duration::from_millis(80),
            (4, 12),
            (Duration::from_millis(15), Duration::from_millis(30)),
        )
        .deadline(Duration::from_secs(3))
        .family(GraphFamily::Tree),
        TenantStorm::steady(
            "chaos",
            Duration::from_millis(25),
            (1, 4),
            (Duration::from_millis(5), Duration::from_millis(10)),
        )
        .faulting_during(0.0, 0.6),
    ]
}

struct PassReport {
    label: &'static str,
    submitted: u64,
    admitted: u64,
    rejected: u64,
    shed: u64,
    completed: u64,
    timed_out: u64,
    failed: u64,
    cancelled: u64,
    /// Outcomes whose reject reason was `Shed`.
    shed_outcomes: u64,
    /// Outcomes whose reject reason was `BreakerOpen`.
    breaker_outcomes: u64,
    /// Rejections metered inside the breakers themselves.
    breaker_rejected: u64,
    /// `TimedOut` outcomes that never spawned a task (expired queued).
    queued_timeouts: u64,
    /// Well-behaved (`alpha`+`beta`) `TimedOut` outcomes.
    wb_timeouts: u64,
    /// Well-behaved completions.
    wb_completed: u64,
    /// Handles still non-terminal after the drain (invariant: 0).
    non_terminal: u64,
    /// `/service/tasks/budget-in-use` after the drain (invariant: 0).
    budget_in_use: f64,
    queue_len: usize,
    running_len: usize,
    chaos_opens: u64,
    chaos_closed: bool,
}

fn run_pass(label: &'static str, plan: &StormPlan, resilience: bool) -> PassReport {
    let mut config = ServiceConfig {
        runtime: grain_service::grain_runtime::RuntimeConfig::with_workers(2),
        admission: AdmissionConfig {
            max_in_flight_tasks: 16,
            max_queued_jobs: 64,
            default_tenant_weight: 1,
            tenant_weights: Vec::new(),
        },
        poll_interval: Duration::from_micros(200),
        ..ServiceConfig::default()
    };
    config.pressure.enabled = resilience;
    config.breaker.enabled = resilience;
    // The storm is short in wall-clock terms; trip and cool fast.
    config.breaker.min_samples = 4;
    config.breaker.window = 16;
    config.breaker.open_for = Duration::from_millis(40);
    config.breaker.probe_every = Duration::from_millis(5);
    let service = JobService::new(config);
    let cal = Calibration::quick();

    let t0 = Instant::now();
    let mut handles: Vec<(String, JobHandle)> = Vec::new();
    for (idx, e) in plan.events.iter().enumerate() {
        let due = real(e.at);
        if let Some(sleep) = due.checked_sub(t0.elapsed()) {
            std::thread::sleep(sleep);
        }
        let grain = real(e.grain);
        // Family tenants run a taskbench graph of ~`tasks` nodes at the
        // same per-task grain; `Flat` keeps the legacy spawn loop. The
        // shape depends only on the (deterministic) plan, so replays
        // resubmit identical bodies.
        let graph = shapes::spec_for_event(e.family, e.tasks, cal.iters_for(grain), 32, idx as u64)
            .map(|s| Arc::new(s.build()));
        let estimated = graph.as_ref().map_or(e.tasks, |g| g.len() as u64);
        let mut spec =
            JobSpec::new(e.name.clone(), e.tenant.clone()).estimated_tasks(estimated + 1);
        if let Some(d) = e.deadline {
            spec = spec.deadline(real(d));
        }
        if e.faulty {
            spec = spec.failure_policy(FailurePolicy::RetryWithBackoff {
                max_attempts: 3,
                base: Duration::from_micros(500),
                cap: Duration::from_millis(5),
            });
        }
        let faulty = e.faulty;
        let tasks = e.tasks;
        let handle = service.submit(spec, move |ctx| {
            if faulty {
                panic!("storm-planned fault");
            }
            match &graph {
                Some(g) => shapes::spawn_in_job(ctx, g),
                None => {
                    for _ in 0..tasks {
                        ctx.spawn(move |_| spin_for(grain));
                    }
                }
            }
        });
        handles.push((e.tenant.clone(), handle));
    }
    service.wait_all();

    let mut r = PassReport {
        label,
        submitted: service.counters().submitted.get(),
        admitted: service.counters().admitted.get(),
        rejected: service.counters().rejected.get(),
        shed: service.counters().shed.get(),
        completed: service.counters().completed.get(),
        timed_out: service.counters().timed_out.get(),
        failed: service.counters().failed.get(),
        cancelled: service.counters().cancelled.get(),
        shed_outcomes: 0,
        breaker_outcomes: 0,
        breaker_rejected: service.breaker_rejections(),
        queued_timeouts: 0,
        wb_timeouts: 0,
        wb_completed: 0,
        non_terminal: 0,
        budget_in_use: service
            .registry()
            .query("/service/tasks/budget-in-use")
            .map(|v| v.value)
            .unwrap_or(f64::NAN),
        queue_len: service.queue_len(),
        running_len: service.running_len(),
        chaos_opens: service.breaker_opens("chaos"),
        chaos_closed: service.breaker_state("chaos") != Some(grain_service::BreakerState::Open),
    };
    for (tenant, h) in &handles {
        if !h.state().is_terminal() {
            r.non_terminal += 1;
            continue;
        }
        let o = h.wait();
        let well_behaved = tenant != "chaos";
        match o.state {
            JobState::Completed if well_behaved => r.wb_completed += 1,
            JobState::TimedOut => {
                if well_behaved {
                    r.wb_timeouts += 1;
                }
                if o.tasks_spawned == 0 {
                    r.queued_timeouts += 1;
                }
            }
            JobState::Rejected => match o.reject_reason {
                Some(RejectReason::Shed) => r.shed_outcomes += 1,
                Some(RejectReason::BreakerOpen) => r.breaker_outcomes += 1,
                _ => {}
            },
            _ => {}
        }
    }
    r
}

/// Check the overload invariants; returns human-readable violations.
fn violations(r: &PassReport) -> Vec<String> {
    let mut v = Vec::new();
    if r.non_terminal != 0 {
        v.push(format!(
            "{} jobs never reached a terminal state",
            r.non_terminal
        ));
    }
    if r.budget_in_use != 0.0 {
        v.push(format!(
            "budget leak: {} tasks still charged",
            r.budget_in_use
        ));
    }
    if r.queue_len != 0 || r.running_len != 0 {
        v.push(format!(
            "not quiescent: {} queued, {} running",
            r.queue_len, r.running_len
        ));
    }
    let accounted = r.admitted + r.rejected + r.shed + r.queued_timeouts;
    if accounted != r.submitted {
        v.push(format!(
            "conservation broken: admitted {} + rejected {} + shed {} + queued-timeouts {} != submitted {}",
            r.admitted, r.rejected, r.shed, r.queued_timeouts, r.submitted
        ));
    }
    if r.shed != r.shed_outcomes {
        v.push(format!(
            "shed counter {} != outcomes reporting Shed {}",
            r.shed, r.shed_outcomes
        ));
    }
    if r.breaker_rejected != r.breaker_outcomes {
        v.push(format!(
            "breaker rejected counter {} != outcomes reporting BreakerOpen {}",
            r.breaker_rejected, r.breaker_outcomes
        ));
    }
    v
}

fn print_pass(r: &PassReport) {
    println!(
        "{:>10}: submitted {:>5}  admitted {:>5}  completed {:>5}  timed-out {:>4}  \
         failed {:>4}  cancelled {:>3}  rejected {:>5}  shed {:>4}  breaker-rej {:>4}",
        r.label,
        r.submitted,
        r.admitted,
        r.completed,
        r.timed_out,
        r.failed,
        r.cancelled,
        r.rejected,
        r.shed,
        r.breaker_rejected,
    );
    println!(
        "{:>10}  well-behaved: {} completed, {} timed out; chaos breaker: {} opens, closed at end: {}",
        "", r.wb_completed, r.wb_timeouts, r.chaos_opens, r.chaos_closed
    );
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: soak [--virtual-seconds N] [--seed N]\n\
         Replays a seeded overload+fault storm against the job service\n\
         (resilience on / off / on) and asserts the overload invariants."
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 })
}

fn main() {
    let mut virtual_seconds: u64 = 30;
    let mut seed: u64 = 7;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--virtual-seconds" => {
                virtual_seconds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .unwrap_or_else(|| usage("--virtual-seconds needs a positive integer"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }

    let horizon = Duration::from_secs(virtual_seconds);
    let plan = StormPlan::generate(seed, horizon, &profiles());
    let replay = StormPlan::generate(seed, horizon, &profiles());
    assert_eq!(
        plan.events, replay.events,
        "storm generation must be deterministic for one seed"
    );
    println!(
        "# soak: seed {seed}, {virtual_seconds} virtual seconds (~{:.1}s wall per pass), \
         {} events ({} faulty)",
        real(horizon).as_secs_f64(),
        plan.events.len(),
        plan.faulty_count()
    );

    let on = run_pass("shed on", &plan, true);
    let off = run_pass("shed off", &plan, false);
    let on2 = run_pass("on again", &plan, true);
    for r in [&on, &off, &on2] {
        print_pass(r);
        let v = violations(r);
        assert!(
            v.is_empty(),
            "invariants violated in pass `{}`:\n  {}",
            r.label,
            v.join("\n  ")
        );
    }

    // Resilience claims, checked on both protected passes.
    for r in [&on, &on2] {
        assert!(
            r.chaos_opens >= 1,
            "pass `{}`: the chaos tenant's breaker never opened",
            r.label
        );
        assert!(
            r.chaos_closed,
            "pass `{}`: the chaos breaker did not re-close after recovery",
            r.label
        );
        assert!(
            r.wb_timeouts <= off.wb_timeouts,
            "pass `{}`: shedding made well-behaved timeouts worse ({} > {})",
            r.label,
            r.wb_timeouts,
            off.wb_timeouts
        );
    }
    assert!(
        off.wb_timeouts > 0,
        "the unprotected pass must show timeouts for the comparison to mean anything"
    );
    assert!(
        on.wb_timeouts < off.wb_timeouts,
        "shedding must reduce well-behaved timeouts ({} vs {})",
        on.wb_timeouts,
        off.wb_timeouts
    );
    println!(
        "\nok: invariants held in all three passes; well-behaved timeouts {} -> {} with \
         shedding; chaos breaker opened and re-closed",
        off.wb_timeouts, on.wb_timeouts
    );
}
