//! Fig. 10 (a–c) — pending-queue accesses and execution time vs partition
//! size on the Xeon Phi at 16/32/60 cores.

use grain_bench::{fig_pending_queue, Cli};

fn main() {
    let cli = Cli::parse();
    let p = cli.platform_or("xeon-phi");
    fig_pending_queue(&p, &[16, 32, 60], &cli, "Fig. 10");
}
