//! Criterion micro-benchmarks of the substrate costs the paper's model
//! is built from: task spawn/dispatch, future composition, scheduler
//! queue operations, the stencil kernel, and the simulator engine itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grain_counters::ThreadCounters;
use grain_runtime::scheduler::Scheduler;
use grain_runtime::task::{Priority, StagedTask, TaskId};
use grain_runtime::{channel, when_all, Runtime, SchedulerKind, SharedFuture};
use grain_sim::{simulate, SimConfig, SimWorkload};
use grain_stencil::{heat_part, run_futurized, stencil_workload, StencilParams};
use grain_topology::{presets, NumaTopology};
use std::hint::black_box;

fn bench_task_spawn(c: &mut Criterion) {
    let mut g = c.benchmark_group("task_spawn");
    for workers in [1usize, 2, 4] {
        let rt = Runtime::with_workers(workers);
        let n = 5_000u64;
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("spawn_wait", workers), &n, |b, &n| {
            b.iter(|| {
                for i in 0..n {
                    rt.spawn(move |_| {
                        black_box(i);
                    });
                }
                rt.wait_idle();
            });
        });
    }
    g.finish();
}

fn bench_futures(c: &mut Criterion) {
    let mut g = c.benchmark_group("futures");
    g.bench_function("channel_set_get", |b| {
        b.iter(|| {
            let (p, f) = channel();
            p.set(black_box(42u64));
            black_box(*f.get())
        });
    });
    g.bench_function("when_all_64", |b| {
        b.iter(|| {
            let pairs: Vec<_> = (0..64).map(|_| channel::<u64>()).collect();
            let futs: Vec<SharedFuture<u64>> = pairs.iter().map(|(_, f)| f.clone()).collect();
            let all = when_all(&futs);
            for (i, (p, _)) in pairs.into_iter().enumerate() {
                p.set(i as u64);
            }
            black_box(all.get().len())
        });
    });
    let rt = Runtime::with_workers(2);
    g.bench_function("dataflow_chain_100", |b| {
        b.iter(|| {
            let mut f = rt.async_call(|_| 0u64);
            for _ in 0..100 {
                f = rt.dataflow(&[f], |_, v| *v[0] + 1);
            }
            black_box(*f.get())
        });
    });
    g.finish();
}

fn bench_scheduler_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    let numa = NumaTopology::block(4, 2);
    let sched = Scheduler::new(numa, SchedulerKind::PriorityLocalFifo, 1);
    let counters = ThreadCounters::new(4);
    g.bench_function("find_work_miss_sweep", |b| {
        b.iter(|| black_box(sched.find_work(0, &counters).is_none()));
    });
    g.bench_function("push_convert_dispatch", |b| {
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            sched
                .queues
                .push_staged(0, StagedTask::once(TaskId(id), Priority::Normal, |_| {}));
            black_box(sched.find_work(0, &counters).is_some())
        });
    });
    g.bench_function("steal_from_peer", |b| {
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            sched
                .queues
                .push_staged(1, StagedTask::once(TaskId(id), Priority::Normal, |_| {}));
            black_box(sched.find_work(0, &counters).is_some())
        });
    });
    g.finish();
}

fn bench_stencil_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("stencil_kernel");
    for nx in [1_000usize, 100_000] {
        let mid = vec![1.0f64; nx];
        let l = [0.5f64];
        let r = [2.0f64];
        g.throughput(Throughput::Elements(nx as u64));
        g.bench_with_input(BenchmarkId::new("heat_part", nx), &nx, |b, _| {
            b.iter(|| black_box(heat_part(0.5, &l, &mid, &r)));
        });
    }
    g.finish();
}

fn bench_native_stencil(c: &mut Criterion) {
    let mut g = c.benchmark_group("native_stencil");
    g.sample_size(10);
    for nx in [1_000usize, 25_000] {
        let params = StencilParams::for_total(100_000, nx, 5);
        let rt = Runtime::with_workers(2);
        g.throughput(Throughput::Elements((params.total_points() * params.nt) as u64));
        g.bench_with_input(BenchmarkId::new("run", nx), &params, |b, p| {
            b.iter(|| black_box(run_futurized(&rt, p).len()));
        });
    }
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    // Event throughput: 10k-task stencil DAG on 8 simulated cores.
    let params = StencilParams::for_total(1_000_000, 500, 5);
    let wl = stencil_workload(&params);
    let hw = presets::haswell();
    g.throughput(Throughput::Elements(wl.len() as u64));
    g.bench_function("stencil_10k_tasks_8c", |b| {
        b.iter(|| black_box(simulate(&hw, 8, &wl, &SimConfig::default()).tasks));
    });
    let wl = SimWorkload::independent(10_000, 1_000);
    g.throughput(Throughput::Elements(wl.len() as u64));
    g.bench_function("independent_10k_tasks_28c", |b| {
        b.iter(|| black_box(simulate(&hw, 28, &wl, &SimConfig::default()).tasks));
    });
    g.finish();
}

fn bench_parallel_for_grain(c: &mut Criterion) {
    use grain_runtime::algorithms::parallel_for;
    let mut g = c.benchmark_group("parallel_for_grain");
    g.sample_size(10);
    let rt = Runtime::with_workers(2);
    let n = 1 << 16;
    for grain in [16usize, 256, 4_096, 65_536] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("sum_squares", grain), &grain, |b, &grain| {
            b.iter(|| {
                parallel_for(&rt, 0..n, grain, |i| {
                    black_box(i * i);
                })
                .get()
            });
        });
    }
    g.finish();
}

fn bench_adaptive(c: &mut Criterion) {
    use grain_adaptive::{adapt, ThresholdTuner, TunerConfig};
    use grain_metrics::sweep::SimEngine;
    let mut g = c.benchmark_group("adaptive");
    g.sample_size(10);
    g.bench_function("threshold_tuner_convergence", |b| {
        b.iter(|| {
            let engine = SimEngine::scaled(presets::haswell(), 1_000_000, 4);
            let mut tuner = ThresholdTuner::new(TunerConfig {
                initial_nx: 250,
                ..TunerConfig::default()
            });
            black_box(adapt(&engine, 8, &mut tuner, 16).final_nx)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_task_spawn,
    bench_futures,
    bench_scheduler_queues,
    bench_stencil_kernel,
    bench_native_stencil,
    bench_simulator,
    bench_parallel_for_grain,
    bench_adaptive,
);
criterion_main!(benches);
