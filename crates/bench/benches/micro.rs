//! Micro-benchmarks of the substrate costs the paper's model is built
//! from: task spawn/dispatch, future composition, scheduler queue
//! operations, the stencil kernel, and the simulator engine itself.
//!
//! A dependency-free harness (`harness = false`): each case is warmed up,
//! then timed over enough iterations to fill a fixed measurement budget;
//! the median of several repeats is reported as ns/op. Run with
//! `cargo bench -p grain-bench` (append `-- --quick` for a fast pass).

use grain_counters::ThreadCounters;
use grain_runtime::scheduler::Scheduler;
use grain_runtime::task::{Priority, StagedTask, TaskId};
use grain_runtime::{channel, when_all, Runtime, SchedulerKind, SharedFuture};
use grain_sim::{simulate, SimConfig, SimWorkload};
use grain_stencil::{heat_part, run_futurized, stencil_workload, StencilParams};
use grain_topology::{presets, NumaTopology};
use std::hint::black_box;
use std::time::{Duration, Instant};

struct Harness {
    budget: Duration,
    repeats: usize,
}

impl Harness {
    fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        if quick {
            Self {
                budget: Duration::from_millis(20),
                repeats: 3,
            }
        } else {
            Self {
                budget: Duration::from_millis(200),
                repeats: 5,
            }
        }
    }

    /// Time `f`, printing `name: median ns/op (ops/s)`.
    fn bench(&self, name: &str, mut f: impl FnMut()) {
        // Warm up and estimate a single-iteration cost.
        f();
        let t0 = Instant::now();
        f();
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

        let mut samples: Vec<f64> = (0..self.repeats)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t.elapsed().as_nanos() as f64 / f64::from(iters)
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        println!(
            "{name:<42} {median:>14.1} ns/op {:>14.0} ops/s  ({iters} iters x {} repeats)",
            1e9 / median,
            self.repeats
        );
    }
}

fn bench_task_spawn(h: &Harness) {
    for workers in [1usize, 2, 4] {
        let rt = Runtime::with_workers(workers);
        let n = 5_000u64;
        h.bench(&format!("task_spawn/spawn_wait_5k/{workers}w"), || {
            for i in 0..n {
                rt.spawn(move |_| {
                    black_box(i);
                });
            }
            rt.wait_idle();
        });
    }
}

fn bench_futures(h: &Harness) {
    h.bench("futures/channel_set_get", || {
        let (p, f) = channel();
        p.set(black_box(42u64));
        black_box(*f.get());
    });
    h.bench("futures/when_all_64", || {
        let pairs: Vec<_> = (0..64).map(|_| channel::<u64>()).collect();
        let futs: Vec<SharedFuture<u64>> = pairs.iter().map(|(_, f)| f.clone()).collect();
        let all = when_all(&futs);
        for (i, (p, _)) in pairs.into_iter().enumerate() {
            p.set(i as u64);
        }
        black_box(all.get().len());
    });
    let rt = Runtime::with_workers(2);
    h.bench("futures/dataflow_chain_100", || {
        let mut f = rt.async_call(|_| 0u64);
        for _ in 0..100 {
            f = rt.dataflow(&[f], |_, v| *v[0] + 1);
        }
        black_box(*f.get());
    });
}

fn bench_scheduler_queues(h: &Harness) {
    let numa = NumaTopology::block(4, 2);
    let sched = Scheduler::new(numa, SchedulerKind::PriorityLocalFifo, 1);
    let counters = ThreadCounters::new(4);
    h.bench("scheduler/find_work_miss_sweep", || {
        black_box(sched.find_work(0, &counters).is_none());
    });
    let mut id = 0u64;
    h.bench("scheduler/push_convert_dispatch", || {
        id += 1;
        sched
            .queues
            .push_staged(0, StagedTask::once(TaskId(id), Priority::Normal, |_| {}));
        black_box(sched.find_work(0, &counters).is_some());
    });
    let mut id = 0u64;
    h.bench("scheduler/steal_from_peer", || {
        id += 1;
        sched
            .queues
            .push_staged(1, StagedTask::once(TaskId(id), Priority::Normal, |_| {}));
        black_box(sched.find_work(0, &counters).is_some());
    });
}

fn bench_stencil_kernel(h: &Harness) {
    for nx in [1_000usize, 100_000] {
        let mid = vec![1.0f64; nx];
        let l = [0.5f64];
        let r = [2.0f64];
        h.bench(&format!("stencil_kernel/heat_part/{nx}"), || {
            black_box(heat_part(0.5, &l, &mid, &r));
        });
    }
}

fn bench_native_stencil(h: &Harness) {
    for nx in [1_000usize, 25_000] {
        let params = StencilParams::for_total(100_000, nx, 5);
        let rt = Runtime::with_workers(2);
        h.bench(&format!("native_stencil/run/{nx}"), || {
            black_box(run_futurized(&rt, &params).len());
        });
    }
}

fn bench_simulator(h: &Harness) {
    let params = StencilParams::for_total(1_000_000, 500, 5);
    let wl = stencil_workload(&params);
    let hw = presets::haswell();
    h.bench("simulator/stencil_10k_tasks_8c", || {
        black_box(simulate(&hw, 8, &wl, &SimConfig::default()).tasks);
    });
    let wl = SimWorkload::independent(10_000, 1_000);
    h.bench("simulator/independent_10k_tasks_28c", || {
        black_box(simulate(&hw, 28, &wl, &SimConfig::default()).tasks);
    });
}

fn bench_parallel_for_grain(h: &Harness) {
    use grain_runtime::algorithms::parallel_for;
    let rt = Runtime::with_workers(2);
    let n = 1 << 16;
    for grain in [16usize, 256, 4_096, 65_536] {
        h.bench(&format!("parallel_for_grain/sum_squares/{grain}"), || {
            parallel_for(&rt, 0..n, grain, |i| {
                black_box(i * i);
            })
            .get();
        });
    }
}

fn bench_adaptive(h: &Harness) {
    use grain_adaptive::{adapt, ThresholdTuner, TunerConfig};
    use grain_metrics::sweep::SimEngine;
    h.bench("adaptive/threshold_tuner_convergence", || {
        let engine = SimEngine::scaled(presets::haswell(), 1_000_000, 4);
        let mut tuner = ThresholdTuner::new(TunerConfig {
            initial_nx: 250,
            ..TunerConfig::default()
        });
        black_box(adapt(&engine, 8, &mut tuner, 16).final_nx);
    });
}

fn main() {
    let h = Harness::from_args();
    println!("{:<42} {:>20} {:>20}", "benchmark", "time", "throughput");
    bench_task_spawn(&h);
    bench_futures(&h);
    bench_scheduler_queues(&h);
    bench_stencil_kernel(&h);
    bench_native_stencil(&h);
    bench_simulator(&h);
    bench_parallel_for_grain(&h);
    bench_adaptive(&h);
}
