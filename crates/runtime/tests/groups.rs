//! Behavioral tests for task groups and cooperative cancellation.

use grain_runtime::{Priority, Runtime, TaskGroup};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn group_wait_joins_only_its_members() {
    let rt = Runtime::with_workers(2);
    // A long-running background task outside the group.
    let blocker = Arc::new(AtomicUsize::new(0));
    let b = Arc::clone(&blocker);
    rt.spawn(move |_| {
        while b.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    });

    let group = TaskGroup::new();
    let done = Arc::new(AtomicUsize::new(0));
    for _ in 0..50 {
        let d = Arc::clone(&done);
        rt.spawn_in(&group, Priority::Normal, move |_| {
            d.fetch_add(1, Ordering::SeqCst);
        });
    }
    // Joining the group must not require the unrelated blocker to finish.
    assert!(
        group.wait_timeout(Duration::from_secs(5)),
        "group latch must release while an unrelated task still runs"
    );
    assert_eq!(done.load(Ordering::SeqCst), 50);
    assert_eq!(group.completed(), 50);
    assert!(rt.in_flight() >= 1, "the blocker is still in flight");
    blocker.store(1, Ordering::SeqCst);
    rt.wait_idle();
}

#[test]
fn children_inherit_their_parents_group() {
    let rt = Runtime::with_workers(2);
    let group = TaskGroup::new();
    let done = Arc::new(AtomicUsize::new(0));
    let d = Arc::clone(&done);
    rt.spawn_in(&group, Priority::Normal, move |ctx| {
        for _ in 0..10 {
            let d = Arc::clone(&d);
            ctx.spawn(move |ctx2| {
                let d = Arc::clone(&d);
                ctx2.spawn(move |_| {
                    d.fetch_add(1, Ordering::SeqCst);
                });
            });
        }
    });
    assert!(group.wait_timeout(Duration::from_secs(5)));
    assert_eq!(done.load(Ordering::SeqCst), 10);
    // root + 10 children + 10 grandchildren
    assert_eq!(group.spawned(), 21);
    assert_eq!(group.completed(), 21);
}

#[test]
fn cancellation_skips_queued_members() {
    let rt = Runtime::with_workers(1);
    let group = TaskGroup::new();
    let ran = Arc::new(AtomicUsize::new(0));

    // Occupy the lone worker so the grouped tasks stay queued.
    let gate = Arc::new(AtomicUsize::new(0));
    let g = Arc::clone(&gate);
    rt.spawn(move |_| {
        while g.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    });
    std::thread::sleep(Duration::from_millis(10));
    for _ in 0..100 {
        let r = Arc::clone(&ran);
        rt.spawn_in(&group, Priority::Normal, move |_| {
            r.fetch_add(1, Ordering::SeqCst);
        });
    }
    group.cancel();
    gate.store(1, Ordering::SeqCst);
    assert!(group.wait_timeout(Duration::from_secs(5)));
    assert_eq!(
        ran.load(Ordering::SeqCst),
        0,
        "no queued member may run after cancel"
    );
    assert_eq!(group.skipped(), 100);
    rt.wait_idle();
}

#[test]
fn cancellation_releases_dormant_dataflow_nodes() {
    let rt = Runtime::with_workers(2);
    let group = TaskGroup::new();
    let ran = Arc::new(AtomicUsize::new(0));

    // A dataflow node whose dependency never becomes ready while the
    // group lives.
    let (_promise, dep) = grain_runtime::channel::<u64>();
    let r = Arc::clone(&ran);
    let _out = rt.dataflow_in(&group, Priority::Normal, &[dep], move |_, _| {
        r.fetch_add(1, Ordering::SeqCst);
    });
    assert_eq!(group.in_flight(), 1, "dormant node holds a reservation");
    assert!(
        !group.wait_timeout(Duration::from_millis(20)),
        "group must not be quiescent while the node is dormant"
    );
    group.cancel();
    assert!(
        group.wait_timeout(Duration::from_secs(5)),
        "cancel must release the dormant reservation"
    );
    assert_eq!(ran.load(Ordering::SeqCst), 0);
    assert_eq!(group.skipped(), 1);
}

#[test]
fn running_tasks_observe_cancellation_cooperatively() {
    let rt = Runtime::with_workers(2);
    let group = TaskGroup::new();
    let bailed = Arc::new(AtomicUsize::new(0));
    let b = Arc::clone(&bailed);
    rt.spawn_in(&group, Priority::Normal, move |ctx| {
        // Long-running body polling for cancellation.
        for _ in 0..10_000 {
            if ctx.is_cancelled() {
                b.fetch_add(1, Ordering::SeqCst);
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    });
    std::thread::sleep(Duration::from_millis(10));
    group.cancel();
    assert!(
        group.wait_timeout(Duration::from_secs(5)),
        "polling body must observe the token and return"
    );
    assert_eq!(bailed.load(Ordering::SeqCst), 1);
    // A completed-but-bailed task counts as completed, not skipped.
    assert_eq!(group.completed(), 1);
}

#[test]
fn grouped_dataflow_chain_completes_and_accounts() {
    let rt = Runtime::with_workers(2);
    let group = TaskGroup::new();
    let mut f = rt.async_in(&group, Priority::Normal, |_| 0u64);
    for _ in 0..32 {
        f = rt.dataflow_in(&group, Priority::Normal, &[f], |_, v| *v[0] + 1);
    }
    assert_eq!(*f.get(), 32);
    assert!(group.wait_timeout(Duration::from_secs(5)));
    assert_eq!(group.spawned(), 33);
    assert_eq!(group.completed(), 33);
    assert_eq!(group.skipped(), 0);
    assert!(group.exec_ns() > 0 || group.completed() > 0);
}

#[test]
fn exhausted_budget_skips_queued_members_at_dispatch() {
    let rt = Runtime::with_workers(1);
    let group = TaskGroup::new();
    let ran = Arc::new(AtomicUsize::new(0));

    // Occupy the lone worker so the grouped tasks stay queued.
    let gate = Arc::new(AtomicUsize::new(0));
    let g = Arc::clone(&gate);
    rt.spawn(move |_| {
        while g.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    });
    std::thread::sleep(Duration::from_millis(10));
    for _ in 0..20 {
        let r = Arc::clone(&ran);
        rt.spawn_in(&group, Priority::Normal, move |_| {
            r.fetch_add(1, Ordering::SeqCst);
        });
    }
    // The budget expires while the members are still queued; the group is
    // NOT cancelled — the budget alone must keep the bodies from running.
    group.set_budget_deadline(std::time::Instant::now());
    gate.store(1, Ordering::SeqCst);
    assert!(group.wait_timeout(Duration::from_secs(5)));
    assert_eq!(
        ran.load(Ordering::SeqCst),
        0,
        "no member may run past the budget deadline"
    );
    assert_eq!(group.skipped(), 20);
    assert_eq!(group.budget_skipped(), 20);
    assert!(!group.is_cancelled());
    rt.wait_idle();
}

#[test]
fn budget_skipped_future_faults_with_cancelled() {
    let rt = Runtime::with_workers(1);
    let group = TaskGroup::new();
    let gate = Arc::new(AtomicUsize::new(0));
    let g = Arc::clone(&gate);
    rt.spawn(move |_| {
        while g.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    });
    std::thread::sleep(Duration::from_millis(10));
    let out = rt.async_in(&group, Priority::Normal, |_| 9u32);
    group.set_budget_deadline(std::time::Instant::now());
    gate.store(1, Ordering::SeqCst);
    assert_eq!(out.wait(), Err(grain_runtime::TaskError::Cancelled));
    // The promise settles from inside the skip path, slightly before the
    // group counters are bumped — join the group before reading them.
    assert!(group.wait_timeout(Duration::from_secs(5)));
    assert_eq!(group.budget_skipped(), 1);
    rt.wait_idle();
}

#[test]
fn remaining_budget_is_visible_to_running_bodies() {
    let rt = Runtime::with_workers(1);
    let group = TaskGroup::new();
    group.set_budget_deadline(std::time::Instant::now() + Duration::from_secs(60));
    let seen = rt.async_in(&group, Priority::Normal, |ctx| ctx.remaining_budget());
    let left = (*seen.get()).expect("grouped task sees its group's budget");
    assert!(left > Duration::from_secs(30), "left = {left:?}");
    // Ungrouped tasks have no ambient budget.
    let none = rt.async_call(|ctx| ctx.remaining_budget());
    assert_eq!(*none.get(), None);
    rt.wait_idle();
}

#[test]
fn cancel_token_outlives_context() {
    let rt = Runtime::with_workers(1);
    let group = TaskGroup::new();
    let (tx, rx) = std::sync::mpsc::channel();
    rt.spawn_in(&group, Priority::High, move |ctx| {
        tx.send(ctx.cancel_token().expect("grouped task has a token"))
            .unwrap();
    });
    let token = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    assert!(!token.is_cancelled());
    group.cancel();
    assert!(token.is_cancelled(), "token clones observe group cancel");
    rt.wait_idle();
}
