//! Regression tests pinning the accuracy of the phase clock that feeds
//! the paper's Eq. 1 counters (`cumulative-exec`, `cumulative-func`,
//! `idle-rate`).
//!
//! These run in both clock modes: with the default per-phase `Instant`
//! reads and with the `coarse-clock` feature's batched reads. The
//! batched clock replaces the dispatch-side timestamp with a
//! periodically recalibrated estimate, so these tests are the contract
//! that the estimate never misattributes parked/quiescent wall time as
//! work — the exact failure mode that would corrupt idle-rate and any
//! adaptive policy built on it.

use grain_runtime::{Runtime, RuntimeConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn rt(workers: usize) -> Runtime {
    Runtime::new(RuntimeConfig::with_workers(workers))
}

fn query(r: &Runtime, path: &str) -> f64 {
    r.registry()
        .query(path)
        .unwrap_or_else(|e| panic!("query {path}: {e:?}"))
        .value
}

const EXEC: &str = "/threads{locality#0/total}/time/cumulative-exec";
const FUNC: &str = "/threads{locality#0/total}/time/cumulative-func";
const IDLE: &str = "/threads{locality#0/total}/idle-rate";

/// Busy tasks self-measure their own wall time; the runtime's
/// cumulative-exec must agree within a coarse band, and the Eq. 1
/// invariants (exec ≤ func, idle-rate ∈ [0, 1]) must hold. Runs under a
/// throttled runtime (2 workers scaled down to 1) so the batched clock
/// also crosses the throttle/discontinuity path while work is flowing.
#[test]
fn cumulative_exec_tracks_self_measured_busy_time() {
    let r = rt(2);
    r.set_active_workers(1);
    let busy_ns = Arc::new(AtomicU64::new(0));
    const TASKS: usize = 60;
    const SPIN: Duration = Duration::from_micros(300);
    for _ in 0..TASKS {
        let busy = Arc::clone(&busy_ns);
        r.spawn(move |_| {
            let t0 = Instant::now();
            while t0.elapsed() < SPIN {
                std::hint::spin_loop();
            }
            busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        });
    }
    r.wait_idle();
    let exec = query(&r, EXEC);
    let func = query(&r, FUNC);
    let idle = query(&r, IDLE);
    let busy = busy_ns.load(Ordering::Relaxed) as f64;

    // The tasks spun ~18ms of measured wall time in total. The runtime's
    // attribution must not lose a large fraction of it (the coarse clock
    // subtracts only its dispatch estimate) nor inflate it by charging
    // idle/parked spans into exec. The upper margin absorbs OS
    // preemption between the body's last self-read and the phase end.
    assert!(
        exec >= 0.6 * busy,
        "exec under-attributed: exec={exec} busy={busy}"
    );
    assert!(
        exec <= busy + 100e6,
        "exec inflated beyond busy work: exec={exec} busy={busy}"
    );
    assert!(func >= exec, "Eq. 1 violated: func={func} < exec={exec}");
    assert!(
        (0.0..=1.0).contains(&idle),
        "idle-rate out of range: {idle}"
    );
}

/// Quiescent wall time must not be charged to cumulative-func: after the
/// runtime goes idle, a long sleep followed by a single trivial task may
/// add at most dispatch noise, never the sleep itself. This is the
/// quiescent-window discard rule; the batched clock forces a precise
/// re-read after every park so it cannot fold the parked span into its
/// dispatch estimate either.
#[test]
fn quiescent_windows_are_not_charged_to_func() {
    let r = rt(2);
    r.spawn(|_| {});
    r.wait_idle();
    let func0 = query(&r, FUNC);
    std::thread::sleep(Duration::from_millis(500));
    r.spawn(|_| {});
    r.wait_idle();
    let func1 = query(&r, FUNC);
    let delta_ms = (func1 - func0) / 1e6;
    // Both workers charging the full sleep would show ~1000ms here; the
    // correct behavior is microseconds (one park timeout per wake, plus
    // one trivial phase). 250ms distinguishes the two with a wide berth
    // for a loaded CI host.
    assert!(
        delta_ms < 250.0,
        "quiescent sleep was charged to func: Δ={delta_ms}ms"
    );
}

/// Idle-rate must reflect a mostly-idle runtime as high idleness — the
/// coarse clock's estimate must not swallow the idle window. Uses a
/// burst of tiny tasks separated by a long quiescent gap, then checks
/// exec stays small in absolute terms.
#[test]
fn tiny_tasks_do_not_accumulate_phantom_exec() {
    let r = rt(2);
    for _ in 0..200 {
        r.spawn(|_| {});
    }
    r.wait_idle();
    std::thread::sleep(Duration::from_millis(200));
    for _ in 0..200 {
        r.spawn(|_| {});
    }
    r.wait_idle();
    let exec_ms = query(&r, EXEC) / 1e6;
    // 400 empty bodies are microseconds of real work. Allow generous CI
    // slop, but a clock that misattributes the 200ms gap (or park
    // timeouts) into exec lands far above this.
    assert!(exec_ms < 150.0, "phantom exec accumulated: {exec_ms}ms");
    let func = query(&r, FUNC);
    let exec = query(&r, EXEC);
    assert!(func >= exec, "Eq. 1 violated: func={func} < exec={exec}");
}
