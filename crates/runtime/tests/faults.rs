//! Fault-tolerance behavior, observed through the public API: panic
//! isolation, fault propagation through futures and DAGs, bounded
//! waits, the stall watchdog, dead-worker detection, and (behind the
//! `fault-inject` feature) deterministic seeded fault replay.

use grain_runtime::{
    channel, when_all, Poll, Priority, Runtime, RuntimeConfig, TaskError, TaskGroup, WatchdogConfig,
};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn two_workers() -> Runtime {
    Runtime::new(RuntimeConfig::with_workers(2))
}

#[test]
fn panicking_task_faults_only_its_future() {
    let rt = two_workers();
    let bad = rt.async_call(|_| -> u32 { panic!("boom {}", 42) });
    match bad.wait() {
        Err(TaskError::Panicked { message }) => assert!(message.contains("boom 42")),
        other => panic!("expected Panicked, got {other:?}"),
    }
    // The worker that hosted the panic survives and keeps serving work.
    let ok = rt.async_call(|_| 7u32);
    assert_eq!(*ok.get(), 7);
    rt.wait_idle();
    assert_eq!(rt.counters().faulted.sum(), 1);
    // A faulted task is not a completed task.
    assert_eq!(rt.counters().tasks.sum(), 1);
}

#[test]
fn mid_dag_panic_propagates_a_cause_chain() {
    let rt = two_workers();
    let a = rt.async_call(|_| -> u32 { panic!("stage a failed") });
    let b = rt.dataflow(&[a], |_, v| *v[0] + 1);
    let c = rt.dataflow(&[b], |_, v| *v[0] + 1);
    let err = c.wait().expect_err("fault must reach the DAG tail");
    assert!(err.chain_len() >= 2, "expected a cause chain, got {err}");
    match err.root_cause() {
        TaskError::Panicked { message } => assert!(message.contains("stage a failed")),
        other => panic!("expected Panicked root cause, got {other:?}"),
    }
    rt.wait_idle();
}

#[test]
fn runtime_survives_every_task_panicking() {
    let rt = Runtime::new(RuntimeConfig::with_workers(4));
    let futs: Vec<_> = (0..32u32)
        .map(|i| rt.async_call(move |_| -> u32 { panic!("task {i} down") }))
        .collect();
    for f in &futs {
        assert!(f.wait().is_err());
    }
    rt.wait_idle();
    assert_eq!(rt.counters().faulted.sum(), 32);
    assert_eq!(*rt.async_call(|_| 1u8).get(), 1);
}

#[test]
fn when_all_fails_if_any_input_faults() {
    let rt = two_workers();
    let good = rt.async_call(|_| 1u32);
    let bad = rt.async_call(|_| -> u32 { panic!("partial failure") });
    let err = when_all(&[good, bad])
        .wait()
        .expect_err("one faulted input must fault the join");
    assert!(matches!(err, TaskError::Dependency { .. }));
    assert!(matches!(err.root_cause(), TaskError::Panicked { .. }));
    rt.wait_idle();
}

#[test]
fn wait_timeout_reports_elapsed_timeout() {
    let (keep, future) = channel::<u32>();
    let err = future
        .wait_timeout(Duration::from_millis(30))
        .expect_err("nobody fulfils the promise");
    match err {
        TaskError::Timeout { waited } => assert!(waited >= Duration::from_millis(30)),
        other => panic!("expected Timeout, got {other:?}"),
    }
    // Still fulfillable after the bounded wait gave up.
    keep.set(9);
    assert_eq!(*future.get(), 9);
}

#[test]
fn dropping_a_promise_breaks_the_future() {
    let (promise, future) = channel::<u32>();
    drop(promise);
    assert_eq!(future.wait(), Err(TaskError::BrokenPromise));
}

#[test]
fn cancelled_group_faults_skipped_futures_with_cancelled() {
    let rt = Runtime::new(RuntimeConfig::with_workers(1));
    let group = TaskGroup::new();
    let started = Arc::new(AtomicBool::new(false));
    let gate = Arc::new(AtomicBool::new(false));
    let (s, g) = (Arc::clone(&started), Arc::clone(&gate));
    // Pin the only worker so the next task stays queued until we cancel.
    rt.spawn_in(&group, Priority::Normal, move |_| {
        s.store(true, Ordering::SeqCst);
        while !g.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
    });
    while !started.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }
    let skipped = rt.async_in(&group, Priority::Normal, |_| 5u32);
    group.cancel();
    gate.store(true, Ordering::SeqCst);
    assert_eq!(skipped.wait(), Err(TaskError::Cancelled));
    rt.wait_idle();
}

#[test]
fn watchdog_reports_a_dependency_cycle() {
    let rt = Runtime::new(RuntimeConfig {
        watchdog: Some(WatchdogConfig {
            interval: Duration::from_millis(10),
            stall_after: Duration::from_millis(40),
        }),
        ..RuntimeConfig::with_workers(2)
    });
    // Two dormant dataflow nodes, each gated on a future only the other
    // could fulfil: in-flight 0, dormant 2, forever. Tasks can't detect
    // this from inside; the watchdog must.
    let (pa, fa) = channel::<u32>();
    let (pb, fb) = channel::<u32>();
    let da = rt.dataflow(&[fb], move |_, v| pa.set(*v[0]));
    let db = rt.dataflow(&[fa], move |_, v| pb.set(*v[0]));
    std::thread::sleep(Duration::from_millis(250));
    let stalls = rt
        .registry()
        .query("/runtime{locality#0/total}/watchdog/stalls")
        .expect("watchdog counters are registered")
        .value;
    let dumps = rt
        .registry()
        .query("/runtime{locality#0/total}/watchdog/dumps")
        .expect("watchdog counters are registered")
        .value;
    assert!(stalls >= 1.0, "cycle not detected: stalls = {stalls}");
    assert!(dumps >= 1.0, "stall detected but no diagnostic dump");
    drop((da, db));
}

#[test]
fn watchdog_stays_quiet_on_a_healthy_run() {
    let rt = Runtime::new(RuntimeConfig {
        watchdog: Some(WatchdogConfig {
            interval: Duration::from_millis(5),
            stall_after: Duration::from_millis(30),
        }),
        ..RuntimeConfig::with_workers(2)
    });
    for _ in 0..4 {
        let futs: Vec<_> = (0..16u64).map(|i| rt.async_call(move |_| i * i)).collect();
        for f in &futs {
            f.get();
        }
    }
    rt.wait_idle();
    // Idle-with-no-work must not read as a stall, no matter how long.
    std::thread::sleep(Duration::from_millis(150));
    let q = |name: &str| {
        rt.registry()
            .query(&format!("/runtime{{locality#0/total}}/watchdog/{name}"))
            .expect("watchdog counters are registered")
            .value
    };
    assert!(q("checks") >= 1.0, "watchdog thread never sampled");
    assert_eq!(q("stalls"), 0.0);
    assert_eq!(q("dumps"), 0.0);
}

#[test]
fn watchdog_stays_quiet_while_throttled_to_zero_workers() {
    let rt = Runtime::new(RuntimeConfig {
        watchdog: Some(WatchdogConfig {
            interval: Duration::from_millis(5),
            stall_after: Duration::from_millis(30),
        }),
        ..RuntimeConfig::with_workers(2)
    });
    // Pause the runtime, then queue work. The signature is flat and work
    // exists, but zero active workers means "deliberately paused", not
    // "stalled" — the watchdog must not page.
    rt.set_active_workers(0);
    let fut = rt.async_call(|_| 11u32);
    std::thread::sleep(Duration::from_millis(150));
    let q = |name: &str| {
        rt.registry()
            .query(&format!("/runtime{{locality#0/total}}/watchdog/{name}"))
            .expect("watchdog counters are registered")
            .value
    };
    assert!(q("checks") >= 1.0, "watchdog thread never sampled");
    assert_eq!(q("stalls"), 0.0, "paused runtime misread as a stall");
    assert_eq!(q("dumps"), 0.0);
    // Resuming drains the queued work normally.
    rt.set_active_workers(2);
    assert_eq!(*fut.get(), 11);
    rt.wait_idle();
}

#[test]
fn dead_worker_turns_wait_idle_into_a_loud_failure() {
    let rt = two_workers();
    // Returning Suspend without registering a wake source violates the
    // runtime contract and kills the hosting worker; the suspended task
    // is stranded. The old behavior was to hang in wait_idle forever.
    rt.spawn_phased(Priority::Normal, |_| Poll::Suspend);
    let joined = std::panic::catch_unwind(AssertUnwindSafe(|| rt.wait_idle()));
    let message = match joined {
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default(),
        Ok(()) => panic!("wait_idle returned despite a stranded task"),
    };
    assert!(
        message.contains("would hang"),
        "unexpected panic message: {message:?}"
    );
    // Drop of the runtime must NOT panic (it force-shuts-down instead);
    // reaching the end of this test exercises that.
}

#[cfg(feature = "fault-inject")]
mod inject {
    use super::*;
    use grain_runtime::FaultPlan;

    /// One seeded run: 64 single-phase tasks on one worker. Returns the
    /// per-task verdicts and the faulted-counter total.
    fn run(seed: u64) -> (Vec<bool>, u64) {
        let rt = Runtime::new(RuntimeConfig {
            fault_plan: Some(
                FaultPlan::new(seed)
                    .with_panic_rate(0.25)
                    .with_delay(0.2, Duration::from_micros(50))
                    .with_spurious_wake_rate(0.1),
            ),
            ..RuntimeConfig::with_workers(1)
        });
        let futs: Vec<_> = (0..64u64).map(|i| rt.async_call(move |_| i)).collect();
        let verdicts: Vec<bool> = futs.iter().map(|f| f.wait().is_ok()).collect();
        rt.wait_idle();
        let faulted = rt.counters().faulted.sum();
        (verdicts, faulted)
    }

    #[test]
    fn seeded_injection_replays_bit_identically() {
        let (a, faulted_a) = run(0xDEAD_BEEF);
        let (b, faulted_b) = run(0xDEAD_BEEF);
        assert_eq!(a, b, "same seed must fault the same tasks");
        assert_eq!(faulted_a, faulted_b);
        assert!(
            a.iter().any(|ok| !ok),
            "panic rate 0.25 over 64 tasks should fault at least one"
        );
        assert!(a.iter().any(|ok| *ok), "not every task should fault");
        assert_eq!(faulted_a, a.iter().filter(|ok| !**ok).count() as u64);

        let (c, _) = run(0x5EED);
        assert_ne!(a, c, "a different seed should pick different victims");
    }
}
