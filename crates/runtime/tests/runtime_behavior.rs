//! End-to-end behavioral tests of the runtime: spawning, dataflow,
//! suspension, priorities, stealing, counters, and shutdown.

use grain_runtime::{
    when_all, Poll, Priority, Runtime, RuntimeConfig, SchedulerKind, SharedFuture,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn rt(workers: usize) -> Runtime {
    Runtime::new(RuntimeConfig::with_workers(workers))
}

#[test]
fn runs_a_single_task() {
    let r = rt(1);
    let hit = Arc::new(AtomicUsize::new(0));
    let h = Arc::clone(&hit);
    r.spawn(move |_| {
        h.fetch_add(1, Ordering::SeqCst);
    });
    r.wait_idle();
    assert_eq!(hit.load(Ordering::SeqCst), 1);
    assert_eq!(r.counters().tasks.sum(), 1);
}

#[test]
fn runs_many_tasks_on_many_workers() {
    let r = rt(4);
    let hits = Arc::new(AtomicUsize::new(0));
    for _ in 0..10_000 {
        let h = Arc::clone(&hits);
        r.spawn(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
    }
    r.wait_idle();
    assert_eq!(hits.load(Ordering::SeqCst), 10_000);
    assert_eq!(r.counters().tasks.sum(), 10_000);
    assert_eq!(r.in_flight(), 0);
}

#[test]
fn tasks_spawn_children_recursively() {
    let r = rt(2);
    let hits = Arc::new(AtomicUsize::new(0));

    fn fan_out(ctx: &grain_runtime::TaskContext<'_>, depth: usize, hits: Arc<AtomicUsize>) {
        hits.fetch_add(1, Ordering::SeqCst);
        if depth > 0 {
            for _ in 0..2 {
                let h = Arc::clone(&hits);
                ctx.spawn(move |ctx| fan_out(ctx, depth - 1, h));
            }
        }
    }

    let h = Arc::clone(&hits);
    r.spawn(move |ctx| fan_out(ctx, 10, h));
    r.wait_idle();
    // 2^0 + 2^1 + … + 2^10 = 2047.
    assert_eq!(hits.load(Ordering::SeqCst), 2047);
}

#[test]
fn async_call_returns_value() {
    let r = rt(2);
    let f = r.async_call(|_| 6 * 7);
    assert_eq!(*f.get(), 42);
}

#[test]
fn dataflow_chains_compose() {
    let r = rt(2);
    // A diamond: a → (b, c) → d.
    let a = r.async_call(|_| 1u64);
    let b = r.dataflow(std::slice::from_ref(&a), |_, v| *v[0] + 10);
    let c = r.dataflow(&[a], |_, v| *v[0] + 100);
    let d = r.dataflow(&[b, c], |_, v| *v[0] + *v[1]);
    assert_eq!(*d.get(), 112);
}

#[test]
fn dataflow_waits_for_all_inputs() {
    let r = rt(2);
    let (p, gate) = grain_runtime::channel::<u32>();
    let fast = r.async_call(|_| 5u32);
    let sum = r.dataflow(&[gate, fast], |_, v| *v[0] + *v[1]);
    std::thread::sleep(Duration::from_millis(20));
    assert!(!sum.is_ready(), "must wait for the gated input");
    p.set(37);
    assert_eq!(*sum.get(), 42);
}

#[test]
fn long_dataflow_chain() {
    let r = rt(2);
    let mut f = r.async_call(|_| 0u64);
    for _ in 0..1_000 {
        f = r.dataflow(&[f], |_, v| *v[0] + 1);
    }
    assert_eq!(*f.get(), 1_000);
}

#[test]
fn when_all_inside_runtime() {
    let r = rt(2);
    let futs: Vec<SharedFuture<u64>> = (0..64).map(|i| r.async_call(move |_| i)).collect();
    let all = when_all(&futs);
    let total: u64 = all.get().iter().map(|a| **a).sum();
    assert_eq!(total, (0..64).sum());
}

#[test]
fn multiphase_task_yields() {
    let r = rt(1);
    let phases_seen = Arc::new(AtomicUsize::new(0));
    let p = Arc::clone(&phases_seen);
    let mut remaining = 5;
    r.spawn_phased(Priority::Normal, move |_ctx| {
        p.fetch_add(1, Ordering::SeqCst);
        remaining -= 1;
        if remaining == 0 {
            Poll::Complete
        } else {
            Poll::Yield
        }
    });
    r.wait_idle();
    assert_eq!(phases_seen.load(Ordering::SeqCst), 5);
    assert_eq!(r.counters().tasks.sum(), 1, "one task…");
    assert_eq!(r.counters().phases.sum(), 5, "…five phases");
}

#[test]
fn suspension_and_resume() {
    let r = rt(2);
    let (p, gate) = grain_runtime::channel::<u32>();
    let result = Arc::new(AtomicUsize::new(0));
    let res = Arc::clone(&result);
    let gate2 = gate.clone();
    r.spawn_phased(Priority::Normal, move |ctx| match gate2.try_get() {
        Some(v) => {
            res.store(*v.expect("gate not faulted") as usize, Ordering::SeqCst);
            Poll::Complete
        }
        None => {
            ctx.suspend_until(&gate2);
            Poll::Suspend
        }
    });
    std::thread::sleep(Duration::from_millis(20));
    assert_eq!(result.load(Ordering::SeqCst), 0);
    p.set(99);
    r.wait_idle();
    assert_eq!(result.load(Ordering::SeqCst), 99);
    assert_eq!(r.counters().tasks.sum(), 1);
    assert_eq!(r.counters().phases.sum(), 2, "suspension creates a phase");
}

#[test]
fn high_priority_runs_before_backlog() {
    // One worker, seeded with a slow backlog; a high-priority task spawned
    // afterwards must run before the rest of the backlog drains.
    let r = rt(1);
    let order = Arc::new(grain_runtime::grain_counters::sync::Mutex::new(Vec::new()));
    // Block the worker briefly so the backlog stays queued.
    for i in 0..50 {
        let o = Arc::clone(&order);
        r.spawn(move |_| {
            std::thread::sleep(Duration::from_micros(500));
            o.lock().push(format!("normal-{i}"));
        });
    }
    let o = Arc::clone(&order);
    r.spawn_with(Priority::High, move |_| {
        o.lock().push("high".to_owned());
    });
    r.wait_idle();
    let order = order.lock();
    let high_pos = order.iter().position(|s| s == "high").unwrap();
    assert!(
        high_pos < 25,
        "high-priority task ran at position {high_pos} of {}",
        order.len()
    );
}

#[test]
fn low_priority_runs_last_on_single_worker() {
    let r = rt(1);
    let order = Arc::new(grain_runtime::grain_counters::sync::Mutex::new(Vec::new()));
    // Occupy the single worker with a busy gate task so everything below
    // queues up before anything runs.
    let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
    {
        let release = Arc::clone(&release);
        r.spawn(move |_| {
            while !release.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
        });
    }
    std::thread::sleep(Duration::from_millis(10)); // let the gate start
    let o = Arc::clone(&order);
    r.spawn_with(Priority::Low, move |_| o.lock().push("low"));
    for _ in 0..10 {
        let o = Arc::clone(&order);
        r.spawn(move |_| o.lock().push("normal"));
    }
    release.store(true, Ordering::SeqCst);
    r.wait_idle();
    let order = order.lock();
    assert_eq!(*order.last().unwrap(), "low");
}

#[test]
fn work_is_stolen_across_workers() {
    // Spawn everything from the main thread targeting round-robin queues,
    // then check that multiple workers executed tasks (requires stealing
    // or the round-robin spread; both exercise cross-queue flow).
    let r = rt(4);
    for _ in 0..4_000 {
        r.spawn(|_| {
            std::hint::black_box(0u64);
        });
    }
    r.wait_idle();
    let per_worker = r.counters().tasks.values();
    let active_workers = per_worker.iter().filter(|&&n| n > 0).count();
    assert!(
        active_workers >= 2,
        "expected work spread over workers, got {per_worker:?}"
    );
    assert_eq!(per_worker.iter().sum::<u64>(), 4_000);
}

#[test]
fn nosteal_keeps_work_local() {
    let cfg = RuntimeConfig {
        workers: 2,
        scheduler: SchedulerKind::NoSteal,
        ..RuntimeConfig::default()
    };
    let r = Runtime::new(cfg);
    for _ in 0..100 {
        r.spawn(|_| {});
    }
    r.wait_idle();
    assert_eq!(r.counters().stolen.sum(), 0);
    assert_eq!(r.counters().tasks.sum(), 100);
}

#[test]
fn counter_invariants_hold_after_a_run() {
    let r = rt(3);
    for i in 0..2_000u64 {
        r.spawn(move |_| {
            std::hint::black_box(i * i);
        });
    }
    r.wait_idle();
    let c = r.counters();
    assert_eq!(c.tasks.sum(), 2_000);
    assert!(c.phases.sum() >= c.tasks.sum());
    assert!(
        c.func_ns.sum() >= c.exec_ns.sum(),
        "Σt_func ≥ Σt_exec must hold (Eq. 1 denominator)"
    );
    assert!(c.pending_accesses.sum() >= c.pending_misses.sum());
    assert!(c.staged_accesses.sum() >= c.staged_misses.sum());
    assert_eq!(c.converted.sum(), 2_000, "every task is converted once");
    let ir = c.idle_rate();
    assert!((0.0..=1.0).contains(&ir));
}

#[test]
fn registry_queries_work_during_execution() {
    let r = rt(2);
    for _ in 0..500 {
        r.spawn(|_| std::thread::sleep(Duration::from_micros(50)));
    }
    // Query while tasks are in flight — counters are introspectable at
    // runtime, the property the paper's adaptivity goal relies on.
    let v = r
        .registry()
        .query("/threads{locality#0/total}/count/cumulative")
        .unwrap();
    assert!(v.value >= 0.0);
    r.wait_idle();
    let after = r
        .registry()
        .query("/threads{locality#0/total}/count/cumulative")
        .unwrap();
    assert_eq!(after.value as u64, 500);
}

#[test]
fn reset_counters_starts_a_new_epoch() {
    let r = rt(2);
    for _ in 0..100 {
        r.spawn(|_| {});
    }
    r.wait_idle();
    assert_eq!(r.counters().tasks.sum(), 100);
    r.reset_counters();
    assert_eq!(r.counters().tasks.sum(), 0);
    for _ in 0..10 {
        r.spawn(|_| {});
    }
    r.wait_idle();
    assert_eq!(r.counters().tasks.sum(), 10);
}

#[test]
fn wait_idle_with_no_tasks_returns_immediately() {
    let r = rt(2);
    r.wait_idle();
    r.wait_idle();
}

#[test]
fn drop_waits_for_in_flight_tasks() {
    let hits = Arc::new(AtomicUsize::new(0));
    {
        let r = rt(2);
        for _ in 0..100 {
            let h = Arc::clone(&hits);
            r.spawn(move |_| {
                std::thread::sleep(Duration::from_micros(100));
                h.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Drop without explicit wait_idle.
    }
    assert_eq!(hits.load(Ordering::SeqCst), 100);
}

#[test]
fn stress_mixed_workload() {
    let r = rt(4);
    let hits = Arc::new(AtomicUsize::new(0));
    let mut leaves = Vec::new();
    for i in 0..200u64 {
        let h = Arc::clone(&hits);
        let f = r.async_call(move |ctx| {
            h.fetch_add(1, Ordering::SeqCst);
            // Children at mixed priorities.
            for p in [Priority::High, Priority::Normal, Priority::Low] {
                ctx.spawn_with(p, |_| {
                    std::hint::black_box(1u8);
                });
            }
            i
        });
        leaves.push(f);
    }
    let total: u64 = leaves.iter().map(|f| *f.get()).sum();
    assert_eq!(total, (0..200).sum());
    r.wait_idle();
    assert_eq!(hits.load(Ordering::SeqCst), 200);
    assert_eq!(r.counters().tasks.sum(), 200 * 4);
}

#[test]
fn two_runtimes_coexist() {
    let r1 = rt(2);
    let r2 = rt(2);
    let f1 = r1.async_call(|_| 1);
    let f2 = r2.async_call(|_| 2);
    assert_eq!(*f1.get() + *f2.get(), 3);
    r1.wait_idle();
    r2.wait_idle();
    assert_eq!(r1.counters().tasks.sum(), 1);
    assert_eq!(r2.counters().tasks.sum(), 1);
}

#[test]
fn cross_runtime_spawn_routes_to_rr_queue() {
    // A task in runtime 1 spawning into runtime 2 must not be treated as
    // a worker of runtime 2 (the thread-local carries the runtime
    // address).
    let r1 = rt(1);
    let r2 = Arc::new(rt(1));
    let r2c = Arc::clone(&r2);
    let f = r1.async_call(move |_| {
        let inner = r2c.async_call(|_| 7u32);
        *inner.get()
    });
    assert_eq!(*f.get(), 7);
}

#[test]
fn queue_length_counters_reflect_backlog() {
    let r = rt(1);
    // Occupy the single worker so spawned tasks stay queued.
    let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
    {
        let release = Arc::clone(&release);
        r.spawn(move |_| {
            while !release.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
        });
    }
    std::thread::sleep(Duration::from_millis(10));
    for _ in 0..25 {
        r.spawn(|_| {});
    }
    std::thread::sleep(Duration::from_millis(5));
    let staged = r
        .registry()
        .query("/threads{locality#0/total}/count/staged-queue-length")
        .unwrap();
    assert!(
        staged.value >= 20.0,
        "backlog not visible: {}",
        staged.value
    );
    release.store(true, Ordering::SeqCst);
    r.wait_idle();
    let staged = r
        .registry()
        .query("/threads{locality#0/total}/count/staged-queue-length")
        .unwrap();
    assert_eq!(staged.value, 0.0);
}

#[test]
fn parallel_for_interacts_with_counters() {
    use grain_runtime::algorithms::parallel_for;
    let r = rt(2);
    parallel_for(&r, 0..4096, 64, |i| {
        std::hint::black_box(i);
    })
    .get();
    r.wait_idle();
    assert_eq!(r.counters().tasks.sum(), 64);
    assert_eq!(r.counters().converted.sum(), 64);
}

#[test]
fn starvation_shows_up_in_idle_rate() {
    // Two workers, one long task: the starving worker's searching time
    // must flow into Σt_func (the paper's coarse-grain idle-rate effect).
    let r = rt(2);
    r.spawn(|_| std::thread::sleep(Duration::from_millis(120)));
    r.wait_idle();
    let c = r.counters();
    let ir = c.idle_rate();
    assert!(
        ir > 0.25,
        "starving second worker should push idle-rate up, got {ir}"
    );
}

#[test]
fn busy_saturated_run_has_low_idle_rate() {
    // Plenty of equally-sized compute-bound tasks: idle-rate should be
    // small (the flat middle of Fig. 4).
    let r = rt(2);
    for _ in 0..200 {
        r.spawn(|_| {
            let mut x = 0u64;
            for i in 0..40_000u64 {
                // black_box keeps release builds from collapsing the loop
                // into a closed form (which would shrink tasks to ~0 ns
                // and make the idle-rate meaningless).
                x = x.wrapping_add(std::hint::black_box(i) * i);
            }
            std::hint::black_box(x);
        });
    }
    r.wait_idle();
    let ir = r.counters().idle_rate();
    assert!(
        ir < 0.35,
        "saturated run should have low idle-rate, got {ir}"
    );
}

#[test]
fn multiple_high_priority_queues_work() {
    let r = Runtime::new(RuntimeConfig {
        workers: 2,
        high_queues: 4,
        ..RuntimeConfig::default()
    });
    let hits = Arc::new(AtomicUsize::new(0));
    for _ in 0..100 {
        let h = Arc::clone(&hits);
        r.spawn_with(Priority::High, move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
    }
    r.wait_idle();
    assert_eq!(hits.load(Ordering::SeqCst), 100);
    assert_eq!(r.counters().tasks.sum(), 100);
}

#[test]
fn phase_counters_exceed_task_counters_with_yields() {
    let r = rt(2);
    for _ in 0..20 {
        let mut left = 3;
        r.spawn_phased(Priority::Normal, move |_| {
            left -= 1;
            if left == 0 {
                Poll::Complete
            } else {
                Poll::Yield
            }
        });
    }
    r.wait_idle();
    assert_eq!(r.counters().tasks.sum(), 20);
    assert_eq!(r.counters().phases.sum(), 60);
    // The per-phase average must be smaller than the per-task average.
    let per_task = r.counters().task_duration_ns();
    let per_phase = r.counters().exec_ns.sum() as f64 / r.counters().phases.sum() as f64;
    assert!(per_phase <= per_task);
}

#[test]
fn spawned_counter_tracks_origins() {
    let r = rt(2);
    // 10 external spawns, each spawning 3 children from worker context.
    for _ in 0..10 {
        r.spawn(|ctx| {
            for _ in 0..3 {
                ctx.spawn(|_| {});
            }
        });
    }
    r.wait_idle();
    assert_eq!(r.counters().spawned.sum(), 40);
    assert_eq!(r.counters().tasks.sum(), 40);
}

#[test]
fn throttled_workers_take_no_work() {
    let r = rt(4);
    r.set_active_workers(1);
    for _ in 0..500 {
        r.spawn(|_| {
            std::hint::black_box(7u64);
        });
    }
    r.wait_idle();
    let per_worker = r.counters().tasks.values();
    assert_eq!(per_worker[0], 500, "all work on worker 0: {per_worker:?}");
    assert!(per_worker[1..].iter().all(|&n| n == 0));
}

#[test]
fn raising_the_throttle_reactivates_workers() {
    let r = rt(4);
    r.set_active_workers(1);
    for _ in 0..50 {
        r.spawn(|_| std::thread::sleep(Duration::from_micros(200)));
    }
    r.set_active_workers(4);
    for _ in 0..2000 {
        r.spawn(|_| std::thread::sleep(Duration::from_micros(50)));
    }
    r.wait_idle();
    let per_worker = r.counters().tasks.values();
    let active = per_worker.iter().filter(|&&n| n > 0).count();
    assert!(
        active >= 2,
        "reactivated workers should run tasks: {per_worker:?}"
    );
    assert_eq!(per_worker.iter().sum::<u64>(), 2050);
}

#[test]
fn throttle_limit_is_clamped() {
    let r = rt(3);
    r.set_active_workers(0);
    assert_eq!(r.active_workers(), 1);
    r.set_active_workers(99);
    assert_eq!(r.active_workers(), 3);
}

#[test]
fn throttled_runtime_still_drains_and_shuts_down() {
    let hits = Arc::new(AtomicUsize::new(0));
    {
        let r = rt(4);
        r.set_active_workers(2);
        for _ in 0..300 {
            let h = Arc::clone(&hits);
            r.spawn(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Drop: wait_idle + join, with two workers permanently throttled.
    }
    assert_eq!(hits.load(Ordering::SeqCst), 300);
}

#[test]
fn tracing_captures_the_timeline() {
    let r = Runtime::new(RuntimeConfig {
        workers: 2,
        trace: true,
        ..RuntimeConfig::default()
    });
    for _ in 0..100 {
        r.spawn(|_| std::thread::sleep(Duration::from_micros(30)));
    }
    r.wait_idle();
    let trace = r.take_trace();
    assert!(!trace.is_empty());
    assert_eq!(trace.phases_per_worker().iter().sum::<usize>(), 100);
    let busy = trace.busy_ns_per_worker();
    assert!(busy.iter().sum::<u64>() > 100 * 25_000);
    assert!(trace.load_imbalance() >= 1.0);
    let gantt = trace.render_gantt(40);
    assert_eq!(gantt.lines().count(), 2);
    // Draining is destructive.
    assert!(r.take_trace().is_empty());
}

#[test]
fn tracing_disabled_by_default_costs_nothing() {
    let r = rt(2);
    for _ in 0..50 {
        r.spawn(|_| {});
    }
    r.wait_idle();
    assert!(r.take_trace().is_empty());
}
