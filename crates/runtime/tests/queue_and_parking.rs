//! Stress tests for the lock-free scheduler queues and the eventcount
//! parking protocol.
//!
//! The queue tests hammer [`MpmcQueue`] directly with many producers and
//! consumers and assert the two properties the scheduler relies on: no
//! item is ever lost or duplicated, and each producer's items come out in
//! the order that producer pushed them (observed per consumer — the only
//! vantage point from which FIFO is even meaningful under concurrency).
//!
//! The parking tests drive whole runtimes through spawn-then-quiesce
//! cycles with an effectively infinite `park_timeout` and zero spin
//! rounds, so the *only* thing that can get a parked worker running again
//! is a correct wake. Pre-PR, a spawn could slip between a worker's final
//! empty search and its park and the worker would sleep through the work
//! (masked in practice by the 200µs timeout); the generation ticket makes
//! that window detectable — these tests hang (and are killed by the
//! guard thread) if it ever reopens.

use grain_runtime::queue::{MpmcQueue, BLOCK_CAP};
use grain_runtime::{Runtime, RuntimeConfig};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// N producers × N consumers; every item tagged (producer, seq). Asserts
/// conservation (no loss, no duplication) and per-producer FIFO within
/// each consumer's pop sequence.
#[test]
fn queue_contention_no_loss_no_dup_per_producer_fifo() {
    const PRODUCERS: usize = 8;
    const CONSUMERS: usize = 8;
    const PER_PRODUCER: u64 = 20_000;

    let q = Arc::new(MpmcQueue::new());
    let remaining = Arc::new(AtomicU64::new(PRODUCERS as u64 * PER_PRODUCER));

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for seq in 0..PER_PRODUCER {
                    q.push((p, seq));
                    if seq % 512 == 0 {
                        std::thread::yield_now(); // shuffle interleavings
                    }
                }
            })
        })
        .collect();

    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let q = Arc::clone(&q);
            let remaining = Arc::clone(&remaining);
            std::thread::spawn(move || {
                // Per-producer counts and last-seen sequence numbers.
                let mut counts = [0u64; PRODUCERS];
                let mut last_seq = [None::<u64>; PRODUCERS];
                loop {
                    match q.pop() {
                        Some((p, seq)) => {
                            remaining.fetch_sub(1, Ordering::SeqCst);
                            counts[p] += 1;
                            if let Some(prev) = last_seq[p] {
                                assert!(
                                    seq > prev,
                                    "per-producer FIFO violated: producer {p} \
                                     seq {seq} popped after {prev}"
                                );
                            }
                            last_seq[p] = Some(seq);
                        }
                        None => {
                            if remaining.load(Ordering::SeqCst) == 0 {
                                return counts;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            })
        })
        .collect();

    for p in producers {
        p.join().expect("producer panicked");
    }
    let mut totals = [0u64; PRODUCERS];
    for c in consumers {
        let counts = c.join().expect("consumer panicked");
        for (t, n) in totals.iter_mut().zip(counts) {
            *t += n;
        }
    }
    for (p, t) in totals.iter().enumerate() {
        assert_eq!(
            *t, PER_PRODUCER,
            "producer {p}: popped {t} of {PER_PRODUCER} items"
        );
    }
    assert!(q.is_empty() && q.pop().is_none());
}

/// Producers and consumers crossing segment boundaries while the queue
/// population oscillates around a multiple of BLOCK_CAP — the regime
/// where segment install/advance/destroy races are most likely.
#[test]
fn queue_contention_across_segment_boundaries() {
    let q = Arc::new(MpmcQueue::new());
    // Standing population just under two segments.
    let standing = 2 * BLOCK_CAP - 3;
    for i in 0..standing as u64 {
        q.push(i);
    }
    let pushed = Arc::new(AtomicU64::new(standing as u64));
    let popped = Arc::new(AtomicU64::new(0));
    const OPS: u64 = 50_000;

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let q = Arc::clone(&q);
            let pushed = Arc::clone(&pushed);
            let popped = Arc::clone(&popped);
            std::thread::spawn(move || {
                // Each thread alternates push/pop, keeping the population
                // hovering at the boundary.
                for _ in 0..OPS {
                    q.push(pushed.fetch_add(1, Ordering::Relaxed));
                    while q.pop().is_none() {
                        std::thread::yield_now();
                    }
                    popped.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    assert_eq!(popped.load(Ordering::SeqCst), 4 * OPS);
    assert_eq!(q.len(), standing, "population must be conserved");
}

/// Run `f` but fail loudly if it takes longer than `limit` — the
/// signature of a worker asleep through available work (with the huge
/// park_timeout used below, a lost wakeup turns into a near-infinite
/// stall instead of a silently slow test).
fn bounded(limit: Duration, name: &str, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = std::sync::mpsc::channel();
    let t = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(limit) {
        Ok(()) => t.join().expect("test body panicked"),
        Err(_) => panic!("{name}: exceeded {limit:?} — a worker likely slept through work"),
    }
}

/// Spawn-then-quiesce cycles with parking as the only idle mechanism
/// (spin_rounds = 0) and a park_timeout far beyond the test bound: every
/// cycle's completion proves no worker slept through its spawns.
#[test]
fn no_lost_wakeups_across_spawn_quiesce_cycles() {
    bounded(Duration::from_secs(60), "spawn/quiesce cycles", || {
        let mut cfg = RuntimeConfig::with_workers(2);
        cfg.spin_rounds = 0;
        cfg.park_timeout = Duration::from_secs(600);
        let r = Runtime::new(cfg);
        let hits = Arc::new(AtomicUsize::new(0));
        let mut expected = 0;
        for round in 0..2_000 {
            // Alternate burst sizes so rounds end with workers racing
            // into park at different phases.
            let batch = 1 + (round % 7);
            for _ in 0..batch {
                let h = Arc::clone(&hits);
                r.spawn(move |_| {
                    h.fetch_add(1, Ordering::SeqCst);
                });
            }
            expected += batch;
            r.wait_idle();
            assert_eq!(hits.load(Ordering::SeqCst), expected);
        }
    });
}

/// The same race, attacked from outside the runtime: an external thread
/// spawning single tasks back-to-back against workers that park with a
/// 10-minute timeout. Any one lost wakeup stalls the whole chain.
#[test]
fn single_task_chain_never_stalls() {
    bounded(Duration::from_secs(60), "single-task chain", || {
        let mut cfg = RuntimeConfig::with_workers(4);
        cfg.spin_rounds = 0;
        cfg.park_timeout = Duration::from_secs(600);
        let r = Runtime::new(cfg);
        for i in 0..5_000u64 {
            let f = r.async_call(move |_| i * 2);
            let v = f.wait().expect("task must not fault");
            assert_eq!(*v, i * 2);
        }
    });
}

/// Throttled workers must wake promptly when the limit is raised (the
/// throttle park aborts on a generation bump), and a throttled runtime
/// must still finish its work with the surviving active workers.
#[test]
fn throttle_and_unthrottle_never_strands_work() {
    bounded(Duration::from_secs(60), "throttle cycling", || {
        let mut cfg = RuntimeConfig::with_workers(4);
        cfg.spin_rounds = 0;
        cfg.park_timeout = Duration::from_secs(600);
        let r = Runtime::new(cfg);
        let hits = Arc::new(AtomicUsize::new(0));
        let mut expected = 0;
        for round in 0..200 {
            r.set_active_workers(1 + round % 4);
            for _ in 0..20 {
                let h = Arc::clone(&hits);
                r.spawn(move |_| {
                    h.fetch_add(1, Ordering::SeqCst);
                });
            }
            expected += 20;
            r.wait_idle();
            assert_eq!(hits.load(Ordering::SeqCst), expected);
        }
    });
}
