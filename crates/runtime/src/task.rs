//! The task ("HPX-thread") model.
//!
//! Tasks are first-class objects with an id, a priority and a lifecycle of
//! five states, exactly the ones named in §I-B of the paper:
//!
//! ```text
//! staged ──convert──▶ pending ──dispatch──▶ active ──▶ terminated
//!                        ▲                    │
//!                        └──── resume ── suspended
//! ```
//!
//! A *staged* task is a lightweight description sitting in a staged queue
//! ("easily created and can be moved to queues associated with other
//! memory domains with only very small associated memory costs"). The
//! scheduler *converts* it — allocating its execution frame — into a
//! *pending* task ready to run. A running (*active*) task executes one
//! *thread phase* per activation: it may complete, yield (cooperatively
//! end its phase and go back to pending), or suspend on a future and be
//! resumed later. The scheduler is cooperative: nothing preempts an
//! active task.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique task identifier ("immutable name in the global address space").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// Monotone task-id allocator.
#[derive(Debug, Default)]
pub struct TaskIdAllocator {
    next: AtomicU64,
}

impl TaskIdAllocator {
    /// Fresh allocator starting at id 0.
    pub const fn new() -> Self {
        Self {
            next: AtomicU64::new(0),
        }
    }

    /// Allocate the next id.
    pub fn allocate(&self) -> TaskId {
        TaskId(self.next.fetch_add(1, Ordering::Relaxed))
    }
}

/// Scheduling priority. The Priority Local scheduler keeps dedicated
/// high-priority dual queues, per-worker normal queues, and one
/// low-priority queue "for threads that will be scheduled only when all
/// other work has been done" (§I-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Runs before any normal work.
    High,
    /// Default.
    #[default]
    Normal,
    /// Runs only when nothing else is available.
    Low,
}

/// Task lifecycle states (§I-B). Kept on the task for introspection and
/// asserted on every transition in debug builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskState {
    /// Created as a description, not yet given an execution frame.
    Staged,
    /// Runnable, waiting in a pending queue.
    Pending,
    /// Currently executing a phase on some worker.
    Active,
    /// Waiting on a future; will be resumed into `Pending`.
    Suspended,
    /// Finished.
    Terminated,
    /// Terminal: the task's body panicked and the panic was isolated
    /// (the worker survived; the task's promise faulted).
    Faulted,
}

/// What a task phase decided to do next.
pub enum Poll {
    /// The task is done; its `n`-th phase was its last.
    Complete,
    /// Cooperatively end this phase; requeue as pending immediately.
    Yield,
    /// End this phase and wait; the task context has registered a resumer
    /// via [`crate::runtime::TaskContext::suspend_until`]. Returning
    /// `Suspend` without such a registration is a programming error and
    /// panics.
    Suspend,
}

/// A task body: invoked once per phase.
///
/// `Heap` is the default storage (one `Box` per spawn). With the
/// `task-slab` feature, spawn paths store small bodies in recycled
/// generation-tagged slots instead ([`crate::slab`]); oversize bodies
/// still fall back to `Heap`. Both variants execute identically — the
/// feature changes allocator traffic, never semantics.
pub enum TaskBody {
    /// `Box`ed closure (default path, and the slab's oversize fallback).
    Heap(Box<dyn FnMut(&mut crate::runtime::TaskContext<'_>) -> Poll + Send>),
    /// Closure in a pooled, generation-tagged slot.
    #[cfg(feature = "task-slab")]
    Pooled(crate::slab::PooledBody),
}

impl TaskBody {
    /// Run one phase.
    #[inline]
    pub fn call(&mut self, ctx: &mut crate::runtime::TaskContext<'_>) -> Poll {
        match self {
            TaskBody::Heap(b) => b(ctx),
            #[cfg(feature = "task-slab")]
            TaskBody::Pooled(p) => p.call(ctx),
        }
    }

    /// Type-erase a closure into body storage: pooled when the slab
    /// feature is on and a size class fits, heap otherwise.
    fn erase(
        id: TaskId,
        body: impl FnMut(&mut crate::runtime::TaskContext<'_>) -> Poll + Send + 'static,
    ) -> Self {
        #[cfg(feature = "task-slab")]
        {
            crate::slab::global().alloc(id, body)
        }
        #[cfg(not(feature = "task-slab"))]
        {
            let _ = id;
            TaskBody::Heap(Box::new(body))
        }
    }
}

/// A staged task: the cheap descriptor placed in staged queues by
/// `spawn`. Conversion (see [`Task::convert`]) turns it into a runnable
/// [`Task`] with an execution frame.
pub struct StagedTask {
    /// Task id, assigned at spawn time.
    pub id: TaskId,
    /// Scheduling priority.
    pub priority: Priority,
    /// The body to run.
    pub body: TaskBody,
    /// Group membership (None: ungrouped). The group's in-flight count is
    /// managed by the spawn paths, not by this struct.
    pub group: Option<std::sync::Arc<crate::group::TaskGroup>>,
}

impl StagedTask {
    /// Create a staged one-phase task from a `FnOnce`.
    pub fn once(
        id: TaskId,
        priority: Priority,
        f: impl FnOnce(&mut crate::runtime::TaskContext<'_>) + Send + 'static,
    ) -> Self {
        let mut f = Some(f);
        Self {
            id,
            priority,
            body: TaskBody::erase(id, move |ctx| {
                let f = f.take().expect("one-phase task polled twice");
                f(ctx);
                Poll::Complete
            }),
            group: None,
        }
    }

    /// Create a staged multi-phase task from a `FnMut` returning [`Poll`].
    pub fn phased(
        id: TaskId,
        priority: Priority,
        body: impl FnMut(&mut crate::runtime::TaskContext<'_>) -> Poll + Send + 'static,
    ) -> Self {
        Self {
            id,
            priority,
            body: TaskBody::erase(id, body),
            group: None,
        }
    }

    /// Attach group membership (builder-style).
    pub fn with_group(mut self, group: Option<std::sync::Arc<crate::group::TaskGroup>>) -> Self {
        self.group = group;
        self
    }
}

impl fmt::Debug for StagedTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StagedTask")
            .field("id", &self.id)
            .field("priority", &self.priority)
            .finish_non_exhaustive()
    }
}

/// A runnable task: a staged description plus its execution frame.
///
/// The frame is what HPX allocates at conversion time (context +
/// registers); here it carries the per-task bookkeeping that exists only
/// once the task can actually run.
pub struct Task {
    /// Task id.
    pub id: TaskId,
    /// Scheduling priority.
    pub priority: Priority,
    /// Current lifecycle state.
    pub state: TaskState,
    /// Completed phases so far.
    pub phases: u64,
    /// Total execution (closure) nanoseconds accumulated over phases.
    pub exec_ns: u64,
    /// The body.
    pub body: TaskBody,
    /// Group membership (None: ungrouped).
    pub group: Option<std::sync::Arc<crate::group::TaskGroup>>,
    /// Where the task was when the converting worker found it — set at
    /// conversion time and consumed when the *converting* worker
    /// dispatches the task from its own pending queue. It must ride on
    /// the task itself (not on the converter's stack) because a third
    /// worker can raid the pending queue between conversion and
    /// dispatch; the raider discards the note and reports the
    /// pending-queue steal it actually performed. `None` for tasks
    /// enqueued directly as pending (resumes, yields).
    pub origin: Option<crate::scheduler::Provenance>,
}

impl Task {
    /// Convert a staged description into a runnable task (the
    /// staged→pending transition; the caller must then enqueue it).
    pub fn convert(staged: StagedTask) -> Self {
        Self {
            id: staged.id,
            priority: staged.priority,
            state: TaskState::Pending,
            phases: 0,
            exec_ns: 0,
            body: staged.body,
            group: staged.group,
            origin: None,
        }
    }

    /// Transition to a new state, asserting legality in debug builds.
    pub fn transition(&mut self, to: TaskState) {
        debug_assert!(
            matches!(
                (self.state, to),
                (TaskState::Pending, TaskState::Active)
                    | (TaskState::Active, TaskState::Pending)
                    | (TaskState::Active, TaskState::Suspended)
                    | (TaskState::Active, TaskState::Terminated)
                    | (TaskState::Active, TaskState::Faulted)
                    | (TaskState::Suspended, TaskState::Pending)
            ),
            "illegal task state transition {:?} → {:?}",
            self.state,
            to
        );
        self.state = to;
    }
}

impl fmt::Debug for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Task")
            .field("id", &self.id)
            .field("priority", &self.priority)
            .field("state", &self.state)
            .field("phases", &self.phases)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_allocator_is_monotone_and_unique() {
        let alloc = TaskIdAllocator::new();
        let a = alloc.allocate();
        let b = alloc.allocate();
        assert!(a < b);
        assert_ne!(a, b);
        assert_eq!(a.to_string(), "task#0");
    }

    #[test]
    fn id_allocator_is_thread_safe() {
        let alloc = std::sync::Arc::new(TaskIdAllocator::new());
        let mut handles = Vec::with_capacity(4);
        for _ in 0..4 {
            let alloc = std::sync::Arc::clone(&alloc);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| alloc.allocate().0).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "ids must be unique");
    }

    #[test]
    fn default_priority_is_normal() {
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn convert_produces_pending_task() {
        let staged = StagedTask::once(TaskId(7), Priority::High, |_| {});
        let task = Task::convert(staged);
        assert_eq!(task.id, TaskId(7));
        assert_eq!(task.priority, Priority::High);
        assert_eq!(task.state, TaskState::Pending);
        assert_eq!(task.phases, 0);
    }

    #[test]
    fn legal_transitions_pass() {
        let staged = StagedTask::once(TaskId(0), Priority::Normal, |_| {});
        let mut t = Task::convert(staged);
        t.transition(TaskState::Active);
        t.transition(TaskState::Suspended);
        t.transition(TaskState::Pending);
        t.transition(TaskState::Active);
        t.transition(TaskState::Terminated);
        assert_eq!(t.state, TaskState::Terminated);
    }

    #[test]
    #[should_panic(expected = "illegal task state transition")]
    #[cfg(debug_assertions)]
    fn illegal_transition_panics_in_debug() {
        let staged = StagedTask::once(TaskId(0), Priority::Normal, |_| {});
        let mut t = Task::convert(staged);
        t.transition(TaskState::Terminated); // pending → terminated: illegal
    }
}
