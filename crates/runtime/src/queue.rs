//! A dependency-free MPMC FIFO used for every scheduler queue.
//!
//! The seed used `crossbeam::SegQueue` here; to keep tier-1 builds fully
//! offline this is a std-only replacement with the same interface shape
//! (`push`/`pop`/`len`/`is_empty`). Internally it is a `VecDeque` behind a
//! [`Mutex`] plus a relaxed atomic length so the scheduler's frequent
//! emptiness probes (steps 1–6 of the Fig. 1 search) never take the lock:
//! a probe of an empty queue — the common case while stealing — costs one
//! atomic load. The length is published *after* the enqueue and *before*
//! the dequeue completes, so `len() > 0` implies a concurrent `pop` will
//! see the element unless another consumer takes it first; spurious
//! emptiness is tolerated by every caller (the worker loop re-probes).

use grain_counters::sync::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Unbounded multi-producer multi-consumer FIFO.
#[derive(Debug)]
pub struct MpmcQueue<T> {
    items: Mutex<VecDeque<T>>,
    len: AtomicUsize,
}

impl<T> Default for MpmcQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MpmcQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        Self {
            items: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Enqueue at the back.
    pub fn push(&self, value: T) {
        let mut q = self.items.lock();
        q.push_back(value);
        // Publish under the lock so `len` never exceeds the true queue
        // length observed by the next locker.
        self.len.store(q.len(), Ordering::Release);
    }

    /// Dequeue from the front.
    pub fn pop(&self) -> Option<T> {
        // Fast path: skip the lock when the queue advertises empty.
        if self.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut q = self.items.lock();
        let out = q.pop_front();
        self.len.store(q.len(), Ordering::Release);
        out
    }

    /// Number of queued items (racy, for load introspection).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True when the queue is (momentarily) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = MpmcQueue::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(MpmcQueue::new());
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        q.push(p * 1000 + i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while got.len() < 1000 {
                        if let Some(v) = q.pop() {
                            got.push(v);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "every pushed item popped exactly once");
    }

    #[test]
    fn per_producer_order_is_preserved() {
        // Single producer, single consumer: strict FIFO.
        let q = Arc::new(MpmcQueue::new());
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            for i in 0..10_000u32 {
                q2.push(i);
            }
        });
        let mut last = None;
        let mut seen = 0;
        while seen < 10_000 {
            if let Some(v) = q.pop() {
                if let Some(prev) = last {
                    assert!(v > prev, "FIFO violated: {v} after {prev}");
                }
                last = Some(v);
                seen += 1;
            }
        }
        t.join().unwrap();
    }
}
