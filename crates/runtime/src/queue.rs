//! Lock-free MPMC FIFOs for every scheduler queue.
//!
//! [`SegmentedQueue`] is a std-only *segmented* lock-free FIFO in the mould of
//! crossbeam's `SegQueue` (the queue the seed originally used, re-derived
//! here because tier-1 builds are hermetic): storage is a linked list of
//! fixed-size **segments** of [`BLOCK_CAP`] slots each; the global
//! `head`/`tail` cursors are single atomic **indices** advanced by CAS,
//! and each slot carries a small atomic **state word** that sequences the
//! hand-off between the index CAS and the actual value write/read.
//!
//! ## Protocol (per operation)
//!
//! * `push`: claim the next tail index with a CAS, then write the value
//!   into the claimed slot and set its `WRITE` bit (`Release`). A
//!   producer that claims the last slot of a segment also installs the
//!   next segment (pre-allocated *before* the CAS so the install is
//!   wait-free for everyone else).
//! * `pop`: claim the head index with a CAS (after an emptiness check
//!   against the tail), spin until the slot's `WRITE` bit shows the value
//!   is present, read it, and mark the slot `READ`. The consumer of a
//!   segment's last slot frees the segment — cooperating through per-slot
//!   `DESTROY` bits with any consumer still inside it, so reclamation
//!   needs no epochs or hazard pointers.
//! * The index layout reserves one index per lap ([`LAP`]` = BLOCK_CAP +
//!   1`) as the end-of-segment marker, and bit 0 of the head index
//!   (`HAS_NEXT`) caches "a next segment exists", letting `pop` skip the
//!   tail load on the fast path.
//!
//! Emptiness probes — the common case while stealing (Fig. 1 steps 3–6)
//! — cost two atomic loads and no stores. `len`/`is_empty` are racy
//! snapshots, as every caller tolerates (the worker loop re-probes).
//!
//! Contention is observable: every lost head/tail CAS and every segment
//! allocation is counted in a [`QueueStats`] (shared across a whole
//! [`crate::scheduler::QueueSet`] and surfaced as the
//! `/threads{locality#0/total}/queue/*` counters).
//!
//! The pre-PR implementation — a `VecDeque` behind a [`Mutex`] with an
//! atomic length fast path — survives as [`MutexQueue`]: it is the
//! before/after baseline of `queue_bench` and a readable reference
//! semantics for the lock-free queue's tests.
//!
//! The scheduler consumes the [`MpmcQueue`] alias, which resolves to
//! [`SegmentedQueue`] normally and to [`MutexQueue`] when the
//! `mutex-queue` cargo feature is on — a zero-runtime-cost A/B switch so
//! the pre-PR queue's end-to-end behaviour (overhead floor, idle-rate
//! curves) stays reproducible on the live runtime.

#![deny(clippy::unwrap_used)]

use grain_counters::sync::Mutex;
use grain_counters::RawCounter;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

/// Contention statistics for a family of queues.
///
/// One instance is shared by every queue of a [`crate::scheduler::QueueSet`]
/// so the runtime can expose scheduler-wide contention as two counters:
/// `/threads{…/total}/queue/cas-retries` and `…/queue/segment-allocations`.
#[derive(Debug, Default)]
pub struct QueueStats {
    /// Head/tail CAS attempts that lost a race and had to retry.
    pub cas_retries: Arc<RawCounter>,
    /// Segments allocated (each queue's initial segment plus every
    /// segment installed as a queue grew past a [`BLOCK_CAP`] boundary).
    pub segment_allocs: Arc<RawCounter>,
}

/// The queue type every scheduler queue is built from: the lock-free
/// [`SegmentedQueue`], or the pre-PR [`MutexQueue`] when the
/// `mutex-queue` feature re-instates it for before/after measurement.
#[cfg(not(feature = "mutex-queue"))]
pub type MpmcQueue<T> = SegmentedQueue<T>;
/// The queue type every scheduler queue is built from (`mutex-queue`
/// build: the pre-PR mutexed baseline).
#[cfg(feature = "mutex-queue")]
pub type MpmcQueue<T> = MutexQueue<T>;

/// Slots per segment. One index per lap is reserved as the end-of-segment
/// marker, so a lap spans `BLOCK_CAP + 1` indices.
pub const BLOCK_CAP: usize = 31;
/// Indices per segment lap (must be a power of two: the offset within a
/// lap is taken by mask).
const LAP: usize = BLOCK_CAP + 1;
/// The head/tail indices advance in units of `1 << SHIFT`; bit 0 of the
/// head index is the `HAS_NEXT` flag.
const SHIFT: usize = 1;
/// Head-index bit: the head segment has a successor (lets `pop` skip
/// loading the tail).
const HAS_NEXT: usize = 1;

/// Slot state bit: the producer has finished writing the value.
const WRITE: usize = 1;
/// Slot state bit: the consumer has finished reading the value.
const READ: usize = 2;
/// Slot state bit: the segment destroyer found this slot still in use and
/// delegates destruction to its reader.
const DESTROY: usize = 4;

/// Bounded exponential backoff: spin first, yield the OS thread once the
/// contention persists (essential on oversubscribed hosts, where the slot
/// writer we wait for may not even be scheduled).
struct Backoff {
    step: u32,
}

impl Backoff {
    const SPIN_LIMIT: u32 = 6;

    fn new() -> Self {
        Self { step: 0 }
    }

    /// Back off after a lost CAS (caller retries immediately after).
    fn spin(&mut self) {
        for _ in 0..1u32 << self.step.min(Self::SPIN_LIMIT) {
            std::hint::spin_loop();
        }
        if self.step <= Self::SPIN_LIMIT {
            self.step += 1;
        }
    }

    /// Back off while blocked on another thread's progress (a producer
    /// mid-write or mid-install): escalate to `yield_now`.
    fn snooze(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..1u32 << self.step {
                std::hint::spin_loop();
            }
            self.step += 1;
        } else {
            std::thread::yield_now();
        }
    }
}

/// One value cell: the value storage plus the state word sequencing the
/// producer/consumer hand-off for this slot.
struct Slot<T> {
    value: UnsafeCell<MaybeUninit<T>>,
    state: AtomicUsize,
}

impl<T> Slot<T> {
    /// Spin until the producer that claimed this slot has stored the
    /// value (set the `WRITE` bit).
    fn wait_write(&self) {
        let mut backoff = Backoff::new();
        while self.state.load(Ordering::Acquire) & WRITE == 0 {
            backoff.snooze();
        }
    }
}

/// A fixed-size segment of the queue.
struct Block<T> {
    next: AtomicPtr<Block<T>>,
    slots: [Slot<T>; BLOCK_CAP],
}

impl<T> Block<T> {
    fn new() -> Box<Self> {
        Box::new(Self {
            next: AtomicPtr::new(std::ptr::null_mut()),
            slots: std::array::from_fn(|_| Slot {
                value: UnsafeCell::new(MaybeUninit::uninit()),
                state: AtomicUsize::new(0),
            }),
        })
    }

    /// Spin until the producer that claimed the last slot of this block
    /// has installed the successor block.
    fn wait_next(&self) -> *mut Block<T> {
        let mut backoff = Backoff::new();
        loop {
            let next = self.next.load(Ordering::Acquire);
            if !next.is_null() {
                return next;
            }
            backoff.snooze();
        }
    }

    /// Cooperative reclamation: called by the consumer of the block's
    /// last slot (with `start = 0`) or by a reader that found the
    /// `DESTROY` bit set on its slot (with `start` = its successor).
    /// Whoever encounters a slot whose reader is still inside it marks it
    /// `DESTROY` and hands responsibility to that reader; otherwise the
    /// block is freed here.
    ///
    /// # Safety
    /// `this` must have been fully consumed: the head index has moved
    /// past the block, so no new reader can enter it.
    unsafe fn destroy(this: *mut Block<T>, start: usize) {
        // The last slot's reader is the one calling with start == 0, so
        // it never needs a DESTROY mark.
        for i in start..BLOCK_CAP - 1 {
            let slot = unsafe { (*this).slots.get_unchecked(i) };
            if slot.state.load(Ordering::Acquire) & READ == 0
                && slot.state.fetch_or(DESTROY, Ordering::AcqRel) & READ == 0
            {
                // A reader is still inside this slot; it sees DESTROY
                // when it finishes and continues the destruction.
                return;
            }
        }
        drop(unsafe { Box::from_raw(this) });
    }
}

/// A queue cursor: an index (slot sequence number, shifted by [`SHIFT`])
/// and the segment it currently points into. Padded so head and tail
/// never share a cache line.
#[repr(align(128))]
struct Position<T> {
    index: AtomicUsize,
    block: AtomicPtr<Block<T>>,
}

/// Unbounded lock-free multi-producer multi-consumer FIFO.
///
/// See the module docs for the protocol. `push` and `pop` are lock-free;
/// `len`/`is_empty` are wait-free racy snapshots.
pub struct SegmentedQueue<T> {
    head: Position<T>,
    tail: Position<T>,
    stats: Arc<QueueStats>,
}

// SAFETY: values are moved in by `push` and out by `pop` with the slot
// state word ordering the hand-off (WRITE released by the producer,
// acquired by the consumer), so a `T` is only ever touched by one thread
// at a time. `T: Send` is therefore sufficient for both auto traits.
unsafe impl<T: Send> Send for SegmentedQueue<T> {}
unsafe impl<T: Send> Sync for SegmentedQueue<T> {}

impl<T> Default for SegmentedQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SegmentedQueue<T> {
    /// Empty queue with private stats.
    pub fn new() -> Self {
        Self::with_stats(Arc::new(QueueStats::default()))
    }

    /// Empty queue recording contention into a shared [`QueueStats`].
    pub fn with_stats(stats: Arc<QueueStats>) -> Self {
        // The first segment is allocated eagerly: it removes the
        // null-block branch from the push hot path, and scheduler queues
        // all see traffic anyway.
        let first = Box::into_raw(Block::new());
        stats.segment_allocs.incr();
        Self {
            head: Position {
                index: AtomicUsize::new(0),
                block: AtomicPtr::new(first),
            },
            tail: Position {
                index: AtomicUsize::new(0),
                block: AtomicPtr::new(first),
            },
            stats,
        }
    }

    /// The stats sink this queue records into.
    pub fn stats(&self) -> &Arc<QueueStats> {
        &self.stats
    }

    /// Enqueue at the back.
    pub fn push(&self, value: T) {
        let mut backoff = Backoff::new();
        let mut tail = self.tail.index.load(Ordering::Acquire);
        let mut block = self.tail.block.load(Ordering::Acquire);
        let mut next_block: Option<Box<Block<T>>> = None;
        loop {
            let offset = (tail >> SHIFT) % LAP;
            if offset == BLOCK_CAP {
                // Another producer claimed the last slot and is installing
                // the next segment; wait for the new tail.
                backoff.snooze();
                tail = self.tail.index.load(Ordering::Acquire);
                block = self.tail.block.load(Ordering::Acquire);
                continue;
            }
            // About to claim the last slot: pre-allocate the successor so
            // installing it after the CAS is just two stores.
            if offset + 1 == BLOCK_CAP && next_block.is_none() {
                next_block = Some(Block::new());
            }
            let new_tail = tail + (1 << SHIFT);
            match self.tail.index.compare_exchange_weak(
                tail,
                new_tail,
                Ordering::SeqCst,
                Ordering::Acquire,
            ) {
                Ok(_) => unsafe {
                    if offset + 1 == BLOCK_CAP {
                        // We claimed the segment's last slot: install the
                        // pre-allocated successor and advance the tail
                        // index over the end-of-segment marker.
                        let Some(next) = next_block.take() else {
                            unreachable!("successor pre-allocated above")
                        };
                        let next = Box::into_raw(next);
                        self.stats.segment_allocs.incr();
                        let next_index = new_tail.wrapping_add(1 << SHIFT);
                        self.tail.block.store(next, Ordering::Release);
                        self.tail.index.store(next_index, Ordering::Release);
                        (*block).next.store(next, Ordering::Release);
                    }
                    let slot = (*block).slots.get_unchecked(offset);
                    slot.value.get().write(MaybeUninit::new(value));
                    slot.state.fetch_or(WRITE, Ordering::Release);
                    return;
                },
                Err(t) => {
                    self.stats.cas_retries.incr();
                    tail = t;
                    block = self.tail.block.load(Ordering::Acquire);
                    backoff.spin();
                }
            }
        }
    }

    /// Dequeue from the front.
    pub fn pop(&self) -> Option<T> {
        let mut backoff = Backoff::new();
        let mut head = self.head.index.load(Ordering::Acquire);
        let mut block = self.head.block.load(Ordering::Acquire);
        loop {
            let offset = (head >> SHIFT) % LAP;
            if offset == BLOCK_CAP {
                // The consumer of the last slot is moving the head to the
                // next segment; wait for the new head.
                backoff.snooze();
                head = self.head.index.load(Ordering::Acquire);
                block = self.head.block.load(Ordering::Acquire);
                continue;
            }
            let mut new_head = head + (1 << SHIFT);
            if new_head & HAS_NEXT == 0 {
                // The cached flag says this may be the last segment:
                // consult the tail for emptiness, and re-derive the flag.
                fence(Ordering::SeqCst);
                let tail = self.tail.index.load(Ordering::Relaxed);
                if head >> SHIFT == tail >> SHIFT {
                    return None;
                }
                if (head >> SHIFT) / LAP != (tail >> SHIFT) / LAP {
                    new_head |= HAS_NEXT;
                }
            }
            match self.head.index.compare_exchange_weak(
                head,
                new_head,
                Ordering::SeqCst,
                Ordering::Acquire,
            ) {
                Ok(_) => unsafe {
                    if offset + 1 == BLOCK_CAP {
                        // We claimed the segment's last slot: advance the
                        // head to the successor (installed by the producer
                        // of that slot's value — may still be in flight).
                        let next = (*block).wait_next();
                        let mut next_index = (new_head & !HAS_NEXT).wrapping_add(1 << SHIFT);
                        if !(*next).next.load(Ordering::Relaxed).is_null() {
                            next_index |= HAS_NEXT;
                        }
                        self.head.block.store(next, Ordering::Release);
                        self.head.index.store(next_index, Ordering::Release);
                    }
                    let slot = (*block).slots.get_unchecked(offset);
                    slot.wait_write();
                    let value = slot.value.get().read().assume_init();
                    if offset + 1 == BLOCK_CAP {
                        // Last slot consumed: start destroying the block.
                        Block::destroy(block, 0);
                    } else if slot.state.fetch_or(READ, Ordering::AcqRel) & DESTROY != 0 {
                        // The block destroyer passed us the baton.
                        Block::destroy(block, offset + 1);
                    }
                    return Some(value);
                },
                Err(h) => {
                    self.stats.cas_retries.incr();
                    head = h;
                    block = self.head.block.load(Ordering::Acquire);
                    backoff.spin();
                }
            }
        }
    }

    /// Number of queued items (racy, for load introspection).
    pub fn len(&self) -> usize {
        loop {
            // A consistent (tail, head) pair: re-read the tail to make
            // sure it did not move while we read the head.
            let mut tail = self.tail.index.load(Ordering::SeqCst);
            let mut head = self.head.index.load(Ordering::SeqCst);
            if self.tail.index.load(Ordering::SeqCst) == tail {
                // Strip the HAS_NEXT bit, then count in slot units,
                // discounting one end-of-segment marker index per lap.
                tail &= !((1 << SHIFT) - 1);
                head &= !((1 << SHIFT) - 1);
                if (tail >> SHIFT) & (LAP - 1) == LAP - 1 {
                    tail = tail.wrapping_add(1 << SHIFT);
                }
                if (head >> SHIFT) & (LAP - 1) == LAP - 1 {
                    head = head.wrapping_add(1 << SHIFT);
                }
                let lap = (head >> SHIFT) / LAP;
                tail = tail.wrapping_sub((lap * LAP) << SHIFT);
                head = head.wrapping_sub((lap * LAP) << SHIFT);
                tail >>= SHIFT;
                head >>= SHIFT;
                return tail - head - tail / LAP;
            }
        }
    }

    /// True when the queue is (momentarily) empty.
    pub fn is_empty(&self) -> bool {
        let head = self.head.index.load(Ordering::SeqCst);
        let tail = self.tail.index.load(Ordering::SeqCst);
        head >> SHIFT == tail >> SHIFT
    }
}

impl<T> Drop for SegmentedQueue<T> {
    fn drop(&mut self) {
        // Exclusive access: walk the remaining items, dropping each value
        // and freeing each exhausted segment.
        let mut head = *self.head.index.get_mut();
        let mut tail = *self.tail.index.get_mut();
        let mut block = *self.head.block.get_mut();
        head &= !((1 << SHIFT) - 1);
        tail &= !((1 << SHIFT) - 1);
        unsafe {
            while head != tail {
                let offset = (head >> SHIFT) % LAP;
                if offset < BLOCK_CAP {
                    let slot = (*block).slots.get_unchecked(offset);
                    (*slot.value.get()).assume_init_drop();
                } else {
                    let next = *(*block).next.get_mut();
                    drop(Box::from_raw(block));
                    block = next;
                }
                head = head.wrapping_add(1 << SHIFT);
            }
            if !block.is_null() {
                drop(Box::from_raw(block));
            }
        }
    }
}

impl<T> fmt::Debug for SegmentedQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SegmentedQueue")
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

/// The pre-PR queue: a `VecDeque` behind a [`Mutex`] plus a relaxed
/// atomic length so emptiness probes never take the lock. Kept as the
/// `queue_bench` baseline, as readable reference semantics for the
/// lock-free queue — and as the scheduler's queue when the `mutex-queue`
/// feature pins [`MpmcQueue`] back to it.
#[derive(Debug)]
pub struct MutexQueue<T> {
    items: Mutex<VecDeque<T>>,
    len: AtomicUsize,
    /// Carried only so the [`MpmcQueue`] alias is drop-in; a mutexed
    /// queue has no CAS races or segments to count.
    stats: Arc<QueueStats>,
}

impl<T> Default for MutexQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MutexQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        Self::with_stats(Arc::new(QueueStats::default()))
    }

    /// Empty queue sharing a [`QueueStats`] (which stays at zero: there
    /// is no lock-free contention to record).
    pub fn with_stats(stats: Arc<QueueStats>) -> Self {
        Self {
            items: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
            stats,
        }
    }

    /// The stats sink this queue was built with (never incremented).
    pub fn stats(&self) -> &Arc<QueueStats> {
        &self.stats
    }

    /// Enqueue at the back.
    pub fn push(&self, value: T) {
        let mut q = self.items.lock();
        q.push_back(value);
        // Publish under the lock so `len` never exceeds the true queue
        // length observed by the next locker.
        self.len.store(q.len(), Ordering::Release);
    }

    /// Dequeue from the front.
    pub fn pop(&self) -> Option<T> {
        // Fast path: skip the lock when the queue advertises empty.
        if self.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut q = self.items.lock();
        let out = q.pop_front();
        self.len.store(q.len(), Ordering::Release);
        out
    }

    /// Number of queued items (racy, for load introspection).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True when the queue is (momentarily) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = SegmentedQueue::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_order_across_many_segments() {
        // Push/pop far past several BLOCK_CAP boundaries, interleaved
        // and in bulk, so segment install/advance/destroy all run.
        let q = SegmentedQueue::new();
        for i in 0..10 * BLOCK_CAP {
            q.push(i);
        }
        assert_eq!(q.len(), 10 * BLOCK_CAP);
        for i in 0..10 * BLOCK_CAP {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
        // Interleaved, with a standing population of ~1.5 segments.
        let keep = BLOCK_CAP + BLOCK_CAP / 2;
        for i in 0..keep {
            q.push(i);
        }
        for i in 0..20 * BLOCK_CAP {
            q.push(keep + i);
            assert_eq!(q.pop(), Some(i));
            assert_eq!(q.len(), keep);
        }
    }

    #[test]
    fn len_is_exact_when_quiescent() {
        let q = SegmentedQueue::new();
        for n in 0..4 * BLOCK_CAP {
            assert_eq!(q.len(), n);
            assert_eq!(q.is_empty(), n == 0);
            q.push(n);
        }
        for n in (0..4 * BLOCK_CAP).rev() {
            q.pop().unwrap();
            assert_eq!(q.len(), n);
        }
    }

    #[test]
    fn drop_releases_queued_values() {
        // Values spanning multiple segments are dropped with the queue.
        let live = Arc::new(AtomicUsize::new(0));
        struct Tracked(Arc<AtomicUsize>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let q = SegmentedQueue::new();
        for _ in 0..3 * BLOCK_CAP + 7 {
            live.fetch_add(1, Ordering::SeqCst);
            q.push(Tracked(Arc::clone(&live)));
        }
        for _ in 0..BLOCK_CAP {
            drop(q.pop().unwrap());
        }
        drop(q);
        assert_eq!(live.load(Ordering::SeqCst), 0, "queued values leaked");
    }

    #[test]
    fn stats_record_segment_allocations() {
        let q = SegmentedQueue::new();
        let initial = q.stats().segment_allocs.get();
        assert_eq!(initial, 1, "eager first segment");
        for i in 0..2 * BLOCK_CAP {
            q.push(i);
        }
        assert!(q.stats().segment_allocs.get() >= 3);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(SegmentedQueue::new());
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        q.push(p * 1000 + i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while got.len() < 1000 {
                        if let Some(v) = q.pop() {
                            got.push(v);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "every pushed item popped exactly once");
    }

    #[test]
    fn per_producer_order_is_preserved() {
        // Single producer, single consumer: strict FIFO.
        let q = Arc::new(SegmentedQueue::new());
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            for i in 0..10_000u32 {
                q2.push(i);
            }
        });
        let mut last = None;
        let mut seen = 0;
        while seen < 10_000 {
            if let Some(v) = q.pop() {
                if let Some(prev) = last {
                    assert!(v > prev, "FIFO violated: {v} after {prev}");
                }
                last = Some(v);
                seen += 1;
            }
        }
        t.join().unwrap();
    }

    #[test]
    fn mutex_queue_baseline_still_works() {
        let q = MutexQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }
}
