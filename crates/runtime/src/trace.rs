//! Task-event tracing — lightweight per-worker timelines.
//!
//! The counters aggregate; sometimes you need the *sequence*: which
//! worker ran which task phase when, and where work was stolen. That is
//! what APEX-style tools layer on HPX (the paper's §VI integration
//! target). Tracing is off by default
//! ([`crate::RuntimeConfig::trace`]); when enabled, each worker appends
//! fixed-size events to its own buffer (one mutex per worker, never
//! contended across workers), and [`Trace`] offers timeline analysis:
//! per-worker busy fractions, load imbalance, steal counts and a text
//! Gantt rendering for small runs.

use crate::task::TaskId;
use grain_counters::sync::Mutex;
use std::time::Instant;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A task phase began executing.
    PhaseStart,
    /// The phase ended (completed, yielded or suspended).
    PhaseEnd,
    /// The dispatched task was stolen from `from`'s queues.
    Steal {
        /// Victim worker.
        from: u32,
    },
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the tracer's epoch.
    pub t_ns: u64,
    /// Worker that recorded the event.
    pub worker: u32,
    /// Task involved.
    pub task: TaskId,
    /// Event kind.
    pub kind: TraceEventKind,
}

/// Shared trace collector (one buffer per worker).
#[derive(Debug)]
pub(crate) struct Tracer {
    enabled: bool,
    epoch: Instant,
    buffers: Vec<Mutex<Vec<TraceEvent>>>,
}

impl Tracer {
    pub(crate) fn new(workers: usize, enabled: bool) -> Self {
        Self {
            enabled,
            epoch: Instant::now(),
            buffers: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    pub(crate) fn record(&self, worker: usize, task: TaskId, kind: TraceEventKind) {
        if !self.enabled {
            return;
        }
        let t_ns = self.epoch.elapsed().as_nanos() as u64;
        self.buffers[worker].lock().push(TraceEvent {
            t_ns,
            worker: worker as u32,
            task,
            kind,
        });
    }

    /// Drain all buffers into a time-sorted [`Trace`].
    pub(crate) fn take(&self) -> Trace {
        let mut events = Vec::new();
        for b in &self.buffers {
            events.append(&mut b.lock());
        }
        events.sort_by_key(|e| (e.t_ns, e.worker));
        Trace {
            workers: self.buffers.len(),
            events,
        }
    }
}

/// A captured timeline.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Worker count of the traced runtime.
    pub workers: usize,
    /// Events sorted by time.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Total events captured.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Busy nanoseconds per worker (sum of phase start→end spans).
    pub fn busy_ns_per_worker(&self) -> Vec<u64> {
        let mut busy = vec![0u64; self.workers];
        let mut open = vec![None::<u64>; self.workers];
        for e in &self.events {
            let w = e.worker as usize;
            match e.kind {
                TraceEventKind::PhaseStart => open[w] = Some(e.t_ns),
                TraceEventKind::PhaseEnd => {
                    if let Some(start) = open[w].take() {
                        busy[w] += e.t_ns.saturating_sub(start);
                    }
                }
                TraceEventKind::Steal { .. } => {}
            }
        }
        busy
    }

    /// Load imbalance: `max(busy) / mean(busy)` over workers that ran
    /// anything; 1.0 is perfect balance. Returns 0 for an empty trace.
    pub fn load_imbalance(&self) -> f64 {
        let busy = self.busy_ns_per_worker();
        let total: u64 = busy.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / busy.len() as f64;
        let max = *busy.iter().max().unwrap() as f64;
        max / mean
    }

    /// Number of steal events.
    pub fn steals(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::Steal { .. }))
            .count()
    }

    /// Phases executed per worker.
    pub fn phases_per_worker(&self) -> Vec<usize> {
        let mut n = vec![0usize; self.workers];
        for e in &self.events {
            if e.kind == TraceEventKind::PhaseEnd {
                n[e.worker as usize] += 1;
            }
        }
        n
    }

    /// Render a coarse text Gantt chart: one row per worker, `cols`
    /// time buckets, `#` where the worker was busy for most of a bucket,
    /// `.` where partially busy, space where idle.
    pub fn render_gantt(&self, cols: usize) -> String {
        let end = self.events.last().map(|e| e.t_ns).unwrap_or(0).max(1);
        let bucket = (end / cols as u64).max(1);
        let mut grid = vec![vec![0u64; cols]; self.workers]; // busy ns per cell
        let mut open = vec![None::<u64>; self.workers];
        for e in &self.events {
            let w = e.worker as usize;
            match e.kind {
                TraceEventKind::PhaseStart => open[w] = Some(e.t_ns),
                TraceEventKind::PhaseEnd => {
                    if let Some(start) = open[w].take() {
                        // Spread the busy span over the buckets it covers.
                        let (mut lo, hi) = (start, e.t_ns.max(start));
                        while lo < hi {
                            let cell = ((lo / bucket) as usize).min(cols - 1);
                            // Everything past the last cell's nominal end
                            // still belongs to the last cell.
                            let cell_end = if cell == cols - 1 {
                                hi
                            } else {
                                ((cell as u64) + 1) * bucket
                            };
                            let step = cell_end.min(hi).max(lo + 1) - lo;
                            grid[w][cell] += step;
                            lo += step;
                        }
                    }
                }
                TraceEventKind::Steal { .. } => {}
            }
        }
        let mut out = String::new();
        for (w, row) in grid.iter().enumerate() {
            out.push_str(&format!("w{w:<3}|"));
            for &busy in row {
                let frac = busy as f64 / bucket as f64;
                out.push(if frac > 0.5 {
                    '#'
                } else if frac > 0.05 {
                    '.'
                } else {
                    ' '
                });
            }
            out.push_str("|\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, w: u32, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            t_ns: t,
            worker: w,
            task: TaskId(0),
            kind,
        }
    }

    fn sample() -> Trace {
        Trace {
            workers: 2,
            events: vec![
                ev(0, 0, TraceEventKind::PhaseStart),
                ev(100, 0, TraceEventKind::PhaseEnd),
                ev(100, 1, TraceEventKind::Steal { from: 0 }),
                ev(110, 1, TraceEventKind::PhaseStart),
                ev(410, 1, TraceEventKind::PhaseEnd),
            ],
        }
    }

    #[test]
    fn busy_time_per_worker() {
        let t = sample();
        assert_eq!(t.busy_ns_per_worker(), vec![100, 300]);
    }

    #[test]
    fn load_imbalance_ratio() {
        let t = sample();
        // busy = [100, 300]; mean 200; max 300 → 1.5.
        assert!((t.load_imbalance() - 1.5).abs() < 1e-12);
        let empty = Trace {
            workers: 2,
            events: vec![],
        };
        assert_eq!(empty.load_imbalance(), 0.0);
    }

    #[test]
    fn steal_and_phase_counts() {
        let t = sample();
        assert_eq!(t.steals(), 1);
        assert_eq!(t.phases_per_worker(), vec![1, 1]);
    }

    #[test]
    fn gantt_marks_busy_cells() {
        let t = sample();
        let g = t.render_gantt(8);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('#') || lines[0].contains('.'));
        assert!(lines[1].contains('#'));
    }

    #[test]
    fn tracer_disabled_records_nothing() {
        let tr = Tracer::new(2, false);
        tr.record(0, TaskId(1), TraceEventKind::PhaseStart);
        assert!(tr.take().is_empty());
    }

    #[test]
    fn tracer_enabled_collects_sorted() {
        let tr = Tracer::new(2, true);
        tr.record(1, TaskId(1), TraceEventKind::PhaseStart);
        tr.record(0, TaskId(2), TraceEventKind::PhaseStart);
        tr.record(1, TaskId(1), TraceEventKind::PhaseEnd);
        let t = tr.take();
        assert_eq!(t.len(), 3);
        assert!(t.events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        // Draining leaves the buffers empty.
        assert!(tr.take().is_empty());
    }
}
