//! The Priority Local-FIFO scheduler.
//!
//! Direct implementation of §I-B and Fig. 1 of the paper:
//!
//! * every worker owns a *dual queue* — one staged, one pending — both
//!   lock-free FIFOs;
//! * a configurable number of *high-priority* dual queues run before any
//!   normal work;
//! * one *low-priority* queue runs only when everything else is empty;
//! * work search order (Fig. 1):
//!   1. local pending queue
//!   2. local staged queue (convert → run)
//!   3. staged queues of other workers in the local NUMA domain
//!   4. pending queues of other workers in the local NUMA domain
//!   5. staged queues in remote NUMA domains
//!   6. pending queues in remote NUMA domains
//!
//! Every probe bumps the access counter of the probed queue family and the
//! miss counter when it comes back empty — including low-priority probes,
//! which count against the staged family (the low queue holds staged
//! descriptions) — those are the
//! `/threads/count/pending-accesses`/`-misses` counters of §II-A, shown in
//! Figs. 9 and 10 to be a timestamp-free granularity signal.
//!
//! Steal accounting happens at **dispatch** time, keyed off the
//! provenance that survives the conversion round-trip (a converted task
//! carries its origin on [`Task::origin`]): a staged steal that is
//! converted, parked in the converter's pending queue, and then raided by
//! a third worker counts as exactly one steal — the raid — not two.

#![deny(clippy::unwrap_used)]

use crate::queue::{MpmcQueue, QueueStats};
use crate::task::{StagedTask, Task};
use grain_counters::threads::ThreadCounters;
use grain_topology::NumaTopology;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Scheduling policy variants. The paper measures Priority Local-FIFO;
/// the other two exist for the ablation study (DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// The paper's policy: NUMA-aware six-step search (Fig. 1).
    #[default]
    PriorityLocalFifo,
    /// No stealing: a worker only ever runs what lands in its own queues
    /// (plus the shared high/low-priority queues).
    NoSteal,
    /// Stealing ignores NUMA domains: steps 3+5 and 4+6 collapse into
    /// flat staged-then-pending sweeps over all workers.
    NumaBlind,
}

/// One worker's dual queue.
#[derive(Debug, Default)]
pub struct DualQueue {
    /// Staged task descriptions (cheap, not yet converted).
    pub staged: MpmcQueue<StagedTask>,
    /// Converted, runnable tasks.
    pub pending: MpmcQueue<Task>,
}

impl DualQueue {
    fn new(stats: &std::sync::Arc<QueueStats>) -> Self {
        Self {
            staged: MpmcQueue::with_stats(std::sync::Arc::clone(stats)),
            pending: MpmcQueue::with_stats(std::sync::Arc::clone(stats)),
        }
    }

    /// Tasks currently queued (racy, for load introspection).
    pub fn len(&self) -> usize {
        self.staged.len() + self.pending.len()
    }

    /// True when both queues are (momentarily) empty.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty() && self.pending.is_empty()
    }
}

/// The complete queue system of a runtime.
#[derive(Debug)]
pub struct QueueSet {
    /// One dual queue per worker.
    pub workers: Vec<DualQueue>,
    /// High-priority dual queues (shared; probed before everything).
    pub high: Vec<DualQueue>,
    /// The single low-priority queue.
    pub low: MpmcQueue<StagedTask>,
    /// Round-robin cursor for spawns from external threads.
    rr: AtomicUsize,
    /// Round-robin cursor for high-priority spawns.
    rr_high: AtomicUsize,
    /// Contention statistics shared by every queue in the set.
    stats: std::sync::Arc<QueueStats>,
}

impl QueueSet {
    /// Build queues for `workers` workers and `high_queues` high-priority
    /// dual queues (≥ 1).
    pub fn new(workers: usize, high_queues: usize) -> Self {
        assert!(workers > 0);
        let stats = std::sync::Arc::new(QueueStats::default());
        Self {
            workers: (0..workers).map(|_| DualQueue::new(&stats)).collect(),
            high: (0..high_queues.max(1))
                .map(|_| DualQueue::new(&stats))
                .collect(),
            low: MpmcQueue::with_stats(std::sync::Arc::clone(&stats)),
            rr: AtomicUsize::new(0),
            rr_high: AtomicUsize::new(0),
            stats,
        }
    }

    /// The contention statistics (CAS retries, segment allocations)
    /// aggregated over every queue in the set.
    pub fn stats(&self) -> &std::sync::Arc<QueueStats> {
        &self.stats
    }

    /// Enqueue a normal-priority staged task on `worker`'s queue.
    pub fn push_staged(&self, worker: usize, task: StagedTask) {
        self.workers[worker].staged.push(task);
    }

    /// Enqueue a converted (pending) task on `worker`'s queue.
    pub fn push_pending(&self, worker: usize, task: Task) {
        self.workers[worker].pending.push(task);
    }

    /// Enqueue a high-priority staged task (round-robin over the
    /// high-priority queues).
    pub fn push_high(&self, task: StagedTask) {
        let i = self.rr_high.fetch_add(1, Ordering::Relaxed) % self.high.len();
        self.high[i].staged.push(task);
    }

    /// Enqueue a low-priority staged task.
    pub fn push_low(&self, task: StagedTask) {
        self.low.push(task);
    }

    /// Pick a target worker for a spawn from an external thread.
    pub fn next_rr(&self) -> usize {
        self.rr.fetch_add(1, Ordering::Relaxed) % self.workers.len()
    }

    /// Total queued tasks across all queues (racy).
    pub fn total_len(&self) -> usize {
        self.workers.iter().map(DualQueue::len).sum::<usize>()
            + self.high.iter().map(DualQueue::len).sum::<usize>()
            + self.low.len()
    }
}

/// The work-finding engine: owns the policy, the NUMA map and the counter
/// hooks. One instance per runtime, shared by all workers.
#[derive(Debug)]
pub struct Scheduler {
    /// Queue system (shared so instantaneous queue-length counters can
    /// observe it).
    pub queues: std::sync::Arc<QueueSet>,
    /// NUMA topology used for search ordering.
    pub numa: NumaTopology,
    /// Policy variant.
    pub kind: SchedulerKind,
}

/// Where a found task came from — used by the worker to bump the right
/// counters and by tests to assert the search order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// High-priority queue (own or any).
    HighPriority,
    /// The worker's own pending queue.
    LocalPending,
    /// The worker's own staged queue (converted on the spot).
    LocalStaged,
    /// Stolen: staged queue of a same-NUMA peer.
    NumaStaged(usize),
    /// Stolen: pending queue of a same-NUMA peer.
    NumaPending(usize),
    /// Stolen: staged queue of a remote-NUMA peer.
    RemoteStaged(usize),
    /// Stolen: pending queue of a remote-NUMA peer.
    RemotePending(usize),
    /// The low-priority queue.
    LowPriority,
}

/// Outcome of a single pass of the Fig. 1 search
/// ([`Scheduler::search_step`]).
#[derive(Debug)]
pub enum SearchStep {
    /// A runnable task is being handed to the worker, with the provenance
    /// of the queue it was actually dispatched from.
    Dispatched(Task, Provenance),
    /// A staged description was converted and parked in a pending queue;
    /// the caller should search again (the converted task is normally
    /// picked up by step 1 of the next pass — unless someone else got
    /// there first, which is legal).
    Converted,
    /// Every probed queue was empty this pass.
    Empty,
}

impl Provenance {
    /// True if this required taking work from another worker's queue.
    pub fn is_steal(&self) -> bool {
        matches!(
            self,
            Provenance::NumaStaged(_)
                | Provenance::NumaPending(_)
                | Provenance::RemoteStaged(_)
                | Provenance::RemotePending(_)
        )
    }
}

impl Scheduler {
    /// Build a scheduler.
    pub fn new(numa: NumaTopology, kind: SchedulerKind, high_queues: usize) -> Self {
        let workers = numa.workers();
        Self {
            queues: std::sync::Arc::new(QueueSet::new(workers, high_queues)),
            numa,
            kind,
        }
    }

    /// One full search round for worker `w`, following the policy's order.
    /// Returns a runnable task and where it came from, or `None` if every
    /// probed queue was empty. Counter updates (accesses/misses/converted/
    /// stolen) are recorded against worker `w` in `counters`.
    ///
    /// This simply loops [`Scheduler::search_step`] until a pass either
    /// dispatches a task or comes up empty.
    pub fn find_work(&self, w: usize, counters: &ThreadCounters) -> Option<(Task, Provenance)> {
        loop {
            match self.search_step(w, counters) {
                SearchStep::Dispatched(t, prov) => return Some((t, prov)),
                SearchStep::Converted => continue,
                SearchStep::Empty => return None,
            }
        }
    }

    /// A single pass of the Fig. 1 search for worker `w`.
    ///
    /// Conversion follows the HPX dual-queue flow: a staged description is
    /// converted and *placed in a pending queue* (the worker's own one for
    /// normal/low priority, the same high-priority queue for high
    /// priority), and the pass ends with [`SearchStep::Converted`] — the
    /// converted task is normally dispatched from the pending queue on
    /// the caller's next pass. The provenance note rides on
    /// [`Task::origin`] (not on this frame's stack) because between
    /// conversion and re-dispatch the pending queue is live: a third
    /// worker may legitimately raid it, in which case the raider discards
    /// the note and reports (and is charged for) the pending steal it
    /// actually performed.
    ///
    /// `counters.stolen` is bumped only here, at dispatch, keyed off the
    /// final provenance — so one task stolen while staged and again while
    /// pending charges exactly one steal, to the worker that got it.
    ///
    /// Exposed (not just `find_work`) so tests can freeze the search
    /// mid-conversion and exercise the round-trip races deterministically.
    pub fn search_step(&self, w: usize, counters: &ThreadCounters) -> SearchStep {
        // High-priority queues always come first: own-indexed one,
        // then the rest (pending before staged inside each).
        let nh = self.queues.high.len();
        for off in 0..nh {
            let q = &self.queues.high[(w + off) % nh];
            if let Some(mut t) = self.pop_pending(q, w, counters) {
                t.origin = None;
                return Self::dispatch(t, Provenance::HighPriority, w, counters);
            }
            if let Some(t) = self.pop_staged(q, w, counters, None) {
                q.pending.push(t);
                return SearchStep::Converted;
            }
        }

        // 1. Local pending: the only pop that honours a surviving origin
        // note — the converting worker reclaiming its own conversion.
        let own = &self.queues.workers[w];
        if let Some(mut t) = self.pop_pending(own, w, counters) {
            let prov = t.origin.take().unwrap_or(Provenance::LocalPending);
            return Self::dispatch(t, prov, w, counters);
        }
        // 2. Local staged (convert → own pending → caller redoes the search).
        if let Some(t) = self.pop_staged(own, w, counters, Some(Provenance::LocalStaged)) {
            self.queues.push_pending(w, t);
            return SearchStep::Converted;
        }

        match self.kind {
            SchedulerKind::NoSteal => {}
            SchedulerKind::PriorityLocalFifo => {
                // 3. Same-NUMA staged.
                for p in self.numa.same_domain_peers(w) {
                    let origin = Some(Provenance::NumaStaged(p));
                    if let Some(t) = self.pop_staged(&self.queues.workers[p], w, counters, origin) {
                        self.queues.push_pending(w, t);
                        return SearchStep::Converted;
                    }
                }
                // 4. Same-NUMA pending.
                for p in self.numa.same_domain_peers(w) {
                    if let Some(mut t) = self.pop_pending(&self.queues.workers[p], w, counters) {
                        t.origin = None;
                        return Self::dispatch(t, Provenance::NumaPending(p), w, counters);
                    }
                }
                // 5. Remote-NUMA staged.
                for p in self.numa.remote_domain_peers(w) {
                    let origin = Some(Provenance::RemoteStaged(p));
                    if let Some(t) = self.pop_staged(&self.queues.workers[p], w, counters, origin) {
                        self.queues.push_pending(w, t);
                        return SearchStep::Converted;
                    }
                }
                // 6. Remote-NUMA pending.
                for p in self.numa.remote_domain_peers(w) {
                    if let Some(mut t) = self.pop_pending(&self.queues.workers[p], w, counters) {
                        t.origin = None;
                        return Self::dispatch(t, Provenance::RemotePending(p), w, counters);
                    }
                }
            }
            SchedulerKind::NumaBlind => {
                // Blind to domains for *ordering* only: provenance still
                // reports the victim's true domain relative to `w`.
                let peers: Vec<usize> = {
                    let mut v = self.numa.same_domain_peers(w);
                    v.extend(self.numa.remote_domain_peers(w));
                    v.sort_unstable_by_key(|&p| {
                        (p + self.numa.workers() - w) % self.numa.workers()
                    });
                    v
                };
                for &p in &peers {
                    let origin = Some(if self.numa.same_domain(w, p) {
                        Provenance::NumaStaged(p)
                    } else {
                        Provenance::RemoteStaged(p)
                    });
                    if let Some(t) = self.pop_staged(&self.queues.workers[p], w, counters, origin) {
                        self.queues.push_pending(w, t);
                        return SearchStep::Converted;
                    }
                }
                for &p in &peers {
                    if let Some(mut t) = self.pop_pending(&self.queues.workers[p], w, counters) {
                        t.origin = None;
                        let prov = if self.numa.same_domain(w, p) {
                            Provenance::NumaPending(p)
                        } else {
                            Provenance::RemotePending(p)
                        };
                        return Self::dispatch(t, prov, w, counters);
                    }
                }
            }
        }

        // Low-priority queue: only when all other work is exhausted. It
        // holds staged descriptions, so the probe counts against the
        // staged access/miss family like every other staged probe.
        counters.staged_accesses.incr(w);
        if let Some(staged) = self.queues.low.pop() {
            counters.converted.incr(w);
            let mut t = Task::convert(staged);
            t.origin = Some(Provenance::LowPriority);
            self.queues.push_pending(w, t);
            return SearchStep::Converted;
        }
        counters.staged_misses.incr(w);
        SearchStep::Empty
    }

    /// Final hand-off of a found task: charge the steal (if the final
    /// provenance is one) to the dispatching worker, exactly once.
    fn dispatch(task: Task, prov: Provenance, w: usize, counters: &ThreadCounters) -> SearchStep {
        if prov.is_steal() {
            counters.stolen.incr(w);
        }
        SearchStep::Dispatched(task, prov)
    }

    fn pop_pending(&self, q: &DualQueue, w: usize, counters: &ThreadCounters) -> Option<Task> {
        counters.pending_accesses.incr(w);
        match q.pending.pop() {
            Some(t) => Some(t),
            None => {
                counters.pending_misses.incr(w);
                None
            }
        }
    }

    /// Probe a staged queue; on a hit, convert and stamp the task's
    /// origin note (where worker `w` found the description).
    fn pop_staged(
        &self,
        q: &DualQueue,
        w: usize,
        counters: &ThreadCounters,
        origin: Option<Provenance>,
    ) -> Option<Task> {
        counters.staged_accesses.incr(w);
        match q.staged.pop() {
            Some(staged) => {
                counters.converted.incr(w);
                let mut t = Task::convert(staged);
                t.origin = origin;
                Some(t)
            }
            None => {
                counters.staged_misses.incr(w);
                None
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::task::{Priority, StagedTask, TaskId};

    fn staged(id: u64) -> StagedTask {
        StagedTask::once(TaskId(id), Priority::Normal, |_| {})
    }

    fn sched(workers: usize, domains: usize, kind: SchedulerKind) -> (Scheduler, ThreadCounters) {
        let numa = NumaTopology::block(workers, domains);
        (Scheduler::new(numa, kind, 1), ThreadCounters::new(workers))
    }

    #[test]
    fn local_pending_beats_local_staged() {
        let (s, c) = sched(2, 1, SchedulerKind::PriorityLocalFifo);
        s.queues.push_staged(0, staged(1));
        s.queues.push_pending(0, Task::convert(staged(2)));
        let (t, prov) = s.find_work(0, &c).unwrap();
        assert_eq!(t.id, TaskId(2));
        assert_eq!(prov, Provenance::LocalPending);
    }

    #[test]
    fn local_staged_beats_stealing() {
        let (s, c) = sched(2, 1, SchedulerKind::PriorityLocalFifo);
        s.queues.push_staged(1, staged(1)); // peer's
        s.queues.push_staged(0, staged(2)); // own
        let (t, prov) = s.find_work(0, &c).unwrap();
        assert_eq!(t.id, TaskId(2));
        assert_eq!(prov, Provenance::LocalStaged);
        assert_eq!(c.converted.sum(), 1);
    }

    #[test]
    fn steals_numa_staged_before_numa_pending() {
        let (s, c) = sched(2, 1, SchedulerKind::PriorityLocalFifo);
        s.queues.push_pending(1, Task::convert(staged(1)));
        s.queues.push_staged(1, staged(2));
        let (t, prov) = s.find_work(0, &c).unwrap();
        assert_eq!(t.id, TaskId(2), "staged steals first (Fig. 1 step 3)");
        assert_eq!(prov, Provenance::NumaStaged(1));
        assert_eq!(c.stolen.sum(), 1);
    }

    #[test]
    fn local_numa_beats_remote_numa() {
        // 4 workers, 2 domains: {0,1} and {2,3}.
        let (s, c) = sched(4, 2, SchedulerKind::PriorityLocalFifo);
        s.queues.push_staged(2, staged(1)); // remote for worker 0
        s.queues.push_staged(1, staged(2)); // local domain
        let (t, prov) = s.find_work(0, &c).unwrap();
        assert_eq!(t.id, TaskId(2));
        assert_eq!(prov, Provenance::NumaStaged(1));
    }

    #[test]
    fn remote_staged_beats_remote_pending() {
        let (s, c) = sched(4, 2, SchedulerKind::PriorityLocalFifo);
        s.queues.push_pending(2, Task::convert(staged(1)));
        s.queues.push_staged(3, staged(2));
        let (t, prov) = s.find_work(0, &c).unwrap();
        assert_eq!(t.id, TaskId(2));
        assert_eq!(prov, Provenance::RemoteStaged(3));
    }

    #[test]
    fn full_order_matches_fig1() {
        // Seed every tier and drain from worker 0; provenance must follow
        // the six-step order.
        let (s, c) = sched(4, 2, SchedulerKind::PriorityLocalFifo);
        s.queues.push_pending(0, Task::convert(staged(10)));
        s.queues.push_staged(0, staged(11));
        s.queues.push_staged(1, staged(12));
        s.queues.push_pending(1, Task::convert(staged(13)));
        s.queues.push_staged(2, staged(14));
        s.queues.push_pending(3, Task::convert(staged(15)));
        s.queues.push_low(staged(16));

        let mut got = Vec::new();
        while let Some((t, prov)) = s.find_work(0, &c) {
            got.push((t.id.0, prov));
        }
        assert_eq!(
            got,
            vec![
                (10, Provenance::LocalPending),
                (11, Provenance::LocalStaged),
                (12, Provenance::NumaStaged(1)),
                (13, Provenance::NumaPending(1)),
                (14, Provenance::RemoteStaged(2)),
                (15, Provenance::RemotePending(3)),
                (16, Provenance::LowPriority),
            ]
        );
    }

    #[test]
    fn high_priority_preempts_everything_queued() {
        let (s, c) = sched(2, 1, SchedulerKind::PriorityLocalFifo);
        s.queues.push_pending(0, Task::convert(staged(1)));
        s.queues.push_high(staged(2));
        let (t, prov) = s.find_work(0, &c).unwrap();
        assert_eq!(t.id, TaskId(2));
        assert_eq!(prov, Provenance::HighPriority);
    }

    #[test]
    fn low_priority_runs_only_when_drained() {
        let (s, c) = sched(1, 1, SchedulerKind::PriorityLocalFifo);
        s.queues.push_low(staged(1));
        s.queues.push_staged(0, staged(2));
        let (t, _) = s.find_work(0, &c).unwrap();
        assert_eq!(t.id, TaskId(2));
        let (t, prov) = s.find_work(0, &c).unwrap();
        assert_eq!(t.id, TaskId(1));
        assert_eq!(prov, Provenance::LowPriority);
    }

    #[test]
    fn nosteal_never_touches_peers() {
        let (s, c) = sched(2, 1, SchedulerKind::NoSteal);
        s.queues.push_staged(1, staged(1));
        s.queues.push_pending(1, Task::convert(staged(2)));
        assert!(s.find_work(0, &c).is_none());
        assert_eq!(c.stolen.sum(), 0);
        // Worker 1 still gets its own work.
        assert!(s.find_work(1, &c).is_some());
    }

    #[test]
    fn numa_blind_still_steals() {
        let (s, c) = sched(4, 2, SchedulerKind::NumaBlind);
        s.queues.push_staged(3, staged(1));
        let (t, prov) = s.find_work(0, &c).unwrap();
        assert_eq!(t.id, TaskId(1));
        assert_eq!(c.stolen.sum(), 1);
        // Worker 3 lives in the other domain; the blind policy may steal
        // from it out of order but must not mislabel where it was.
        assert_eq!(prov, Provenance::RemoteStaged(3));
    }

    #[test]
    fn numa_blind_reports_true_domain() {
        // Regression: NumaBlind used to stamp every steal NumaStaged/
        // NumaPending even for remote-domain victims. 4 workers, 2
        // domains: {0,1} and {2,3}.
        let (s, c) = sched(4, 2, SchedulerKind::NumaBlind);
        s.queues.push_staged(1, staged(1)); // same-domain victim
        let (_, prov) = s.find_work(0, &c).unwrap();
        assert_eq!(prov, Provenance::NumaStaged(1));

        s.queues.push_pending(3, Task::convert(staged(2))); // remote victim
        let (_, prov) = s.find_work(0, &c).unwrap();
        assert_eq!(prov, Provenance::RemotePending(3));

        s.queues.push_pending(1, Task::convert(staged(3))); // same-domain
        let (_, prov) = s.find_work(0, &c).unwrap();
        assert_eq!(prov, Provenance::NumaPending(1));
    }

    #[test]
    fn counters_track_accesses_and_misses() {
        let (s, c) = sched(2, 1, SchedulerKind::PriorityLocalFifo);
        assert!(s.find_work(0, &c).is_none());
        // hp pending+staged, own pending+staged, peer staged+pending, low:
        // pending probes: hp(1) + own(1) + peer(1) = 3, all misses;
        // staged probes: hp(1) + own(1) + peer(1) + low(1) = 4, all misses.
        assert_eq!(c.pending_accesses.sum(), 3);
        assert_eq!(c.pending_misses.sum(), 3);
        assert_eq!(c.staged_accesses.sum(), 4);
        assert_eq!(c.staged_misses.sum(), 4);

        s.queues.push_pending(0, Task::convert(staged(1)));
        assert!(s.find_work(0, &c).is_some());
        // hp pending(miss), hp staged(miss), own pending(hit).
        assert_eq!(c.pending_accesses.sum(), 5);
        assert_eq!(c.pending_misses.sum(), 4);
        assert_eq!(c.staged_accesses.sum(), 5);
        assert_eq!(c.staged_misses.sum(), 5);
    }

    #[test]
    fn low_priority_probes_bump_staged_counters() {
        // Regression: the low-queue probe used to bypass the staged
        // access/miss counters entirely, contradicting the module doc.
        let (s, c) = sched(1, 1, SchedulerKind::PriorityLocalFifo);
        s.queues.push_low(staged(1));
        let (t, prov) = s.find_work(0, &c).unwrap();
        assert_eq!(t.id, TaskId(1));
        assert_eq!(prov, Provenance::LowPriority);
        // Pass 1: hp staged miss, own staged miss, low HIT (access only);
        // pass 2 reaches hp staged (miss) before the own-pending hit.
        assert_eq!(c.staged_accesses.sum(), 4, "low probe must count");
        assert_eq!(c.staged_misses.sum(), 3, "a low hit is not a miss");
        assert_eq!(c.converted.sum(), 1);

        // And an unsuccessful probe is a counted miss.
        assert!(s.find_work(0, &c).is_none());
        assert_eq!(c.staged_accesses.sum(), 7);
        assert_eq!(c.staged_misses.sum(), 6);
    }

    #[test]
    fn raided_conversion_counts_one_steal_for_the_raider() {
        // Regression: worker 0 steals a staged description from peer 1,
        // converts it, and parks it in its own pending queue. Before it
        // can reloop, worker 2 (remote domain) raids that pending queue.
        // The old code charged worker 0 a steal at conversion time and
        // worker 2 another at the raid — double-counting one task and
        // attributing a steal to a worker that never dispatched anything.
        let (s, c) = sched(4, 2, SchedulerKind::PriorityLocalFifo);
        s.queues.push_staged(1, staged(7));

        // Freeze worker 0 mid-round-trip: exactly one search pass.
        assert!(matches!(s.search_step(0, &c), SearchStep::Converted));
        assert_eq!(c.stolen.sum(), 0, "no dispatch yet, so no steal");
        assert_eq!(c.converted.sum(), 1);
        assert_eq!(s.queues.workers[0].pending.len(), 1);

        // Worker 2 raids worker 0's pending queue (Fig. 1 step 6 for it).
        let (t, prov) = s.find_work(2, &c).unwrap();
        assert_eq!(t.id, TaskId(7));
        assert_eq!(prov, Provenance::RemotePending(0), "true final source");
        assert_eq!(c.stolen.sum(), 1, "exactly one steal: the raid");
        assert_eq!(c.stolen.get(2), 1, "charged to the raider");

        // Worker 0 reloops and finds nothing; the count must not move.
        assert!(s.find_work(0, &c).is_none());
        assert_eq!(c.stolen.sum(), 1);
    }

    #[test]
    fn conversion_provenance_survives_own_roundtrip() {
        // The flip side: when the converting worker does win the reloop,
        // dispatch reports the original staged-steal provenance and
        // charges the (single) steal to the converter.
        let (s, c) = sched(2, 1, SchedulerKind::PriorityLocalFifo);
        s.queues.push_staged(1, staged(9));
        let (t, prov) = s.find_work(0, &c).unwrap();
        assert_eq!(t.id, TaskId(9));
        assert_eq!(prov, Provenance::NumaStaged(1));
        assert_eq!(c.stolen.sum(), 1);
        assert_eq!(c.stolen.get(0), 1);
    }

    #[test]
    fn provenance_steal_classification() {
        assert!(Provenance::NumaStaged(1).is_steal());
        assert!(Provenance::RemotePending(2).is_steal());
        assert!(!Provenance::LocalPending.is_steal());
        assert!(!Provenance::HighPriority.is_steal());
        assert!(!Provenance::LowPriority.is_steal());
    }

    #[test]
    fn queueset_total_len_counts_everything() {
        let q = QueueSet::new(2, 1);
        q.push_staged(0, staged(1));
        q.push_pending(1, Task::convert(staged(2)));
        q.push_high(staged(3));
        q.push_low(staged(4));
        assert_eq!(q.total_len(), 4);
    }
}
