//! The Priority Local-FIFO scheduler.
//!
//! Direct implementation of §I-B and Fig. 1 of the paper:
//!
//! * every worker owns a *dual queue* — one staged, one pending — both
//!   lock-free FIFOs;
//! * a configurable number of *high-priority* dual queues run before any
//!   normal work;
//! * one *low-priority* queue runs only when everything else is empty;
//! * work search order (Fig. 1):
//!   1. local pending queue
//!   2. local staged queue (convert → run)
//!   3. staged queues of other workers in the local NUMA domain
//!   4. pending queues of other workers in the local NUMA domain
//!   5. staged queues in remote NUMA domains
//!   6. pending queues in remote NUMA domains
//!
//! Every probe bumps the access counter of the probed queue family and the
//! miss counter when it comes back empty — those are the
//! `/threads/count/pending-accesses`/`-misses` counters of §II-A, shown in
//! Figs. 9 and 10 to be a timestamp-free granularity signal.

use crate::queue::MpmcQueue;
use crate::task::{StagedTask, Task};
use grain_counters::threads::ThreadCounters;
use grain_topology::NumaTopology;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Scheduling policy variants. The paper measures Priority Local-FIFO;
/// the other two exist for the ablation study (DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// The paper's policy: NUMA-aware six-step search (Fig. 1).
    #[default]
    PriorityLocalFifo,
    /// No stealing: a worker only ever runs what lands in its own queues
    /// (plus the shared high/low-priority queues).
    NoSteal,
    /// Stealing ignores NUMA domains: steps 3+5 and 4+6 collapse into
    /// flat staged-then-pending sweeps over all workers.
    NumaBlind,
}

/// One worker's dual queue.
#[derive(Debug, Default)]
pub struct DualQueue {
    /// Staged task descriptions (cheap, not yet converted).
    pub staged: MpmcQueue<StagedTask>,
    /// Converted, runnable tasks.
    pub pending: MpmcQueue<Task>,
}

impl DualQueue {
    fn new() -> Self {
        Self {
            staged: MpmcQueue::new(),
            pending: MpmcQueue::new(),
        }
    }

    /// Tasks currently queued (racy, for load introspection).
    pub fn len(&self) -> usize {
        self.staged.len() + self.pending.len()
    }

    /// True when both queues are (momentarily) empty.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty() && self.pending.is_empty()
    }
}

/// The complete queue system of a runtime.
#[derive(Debug)]
pub struct QueueSet {
    /// One dual queue per worker.
    pub workers: Vec<DualQueue>,
    /// High-priority dual queues (shared; probed before everything).
    pub high: Vec<DualQueue>,
    /// The single low-priority queue.
    pub low: MpmcQueue<StagedTask>,
    /// Round-robin cursor for spawns from external threads.
    rr: AtomicUsize,
    /// Round-robin cursor for high-priority spawns.
    rr_high: AtomicUsize,
}

impl QueueSet {
    /// Build queues for `workers` workers and `high_queues` high-priority
    /// dual queues (≥ 1).
    pub fn new(workers: usize, high_queues: usize) -> Self {
        assert!(workers > 0);
        Self {
            workers: (0..workers).map(|_| DualQueue::new()).collect(),
            high: (0..high_queues.max(1)).map(|_| DualQueue::new()).collect(),
            low: MpmcQueue::new(),
            rr: AtomicUsize::new(0),
            rr_high: AtomicUsize::new(0),
        }
    }

    /// Enqueue a normal-priority staged task on `worker`'s queue.
    pub fn push_staged(&self, worker: usize, task: StagedTask) {
        self.workers[worker].staged.push(task);
    }

    /// Enqueue a converted (pending) task on `worker`'s queue.
    pub fn push_pending(&self, worker: usize, task: Task) {
        self.workers[worker].pending.push(task);
    }

    /// Enqueue a high-priority staged task (round-robin over the
    /// high-priority queues).
    pub fn push_high(&self, task: StagedTask) {
        let i = self.rr_high.fetch_add(1, Ordering::Relaxed) % self.high.len();
        self.high[i].staged.push(task);
    }

    /// Enqueue a low-priority staged task.
    pub fn push_low(&self, task: StagedTask) {
        self.low.push(task);
    }

    /// Pick a target worker for a spawn from an external thread.
    pub fn next_rr(&self) -> usize {
        self.rr.fetch_add(1, Ordering::Relaxed) % self.workers.len()
    }

    /// Total queued tasks across all queues (racy).
    pub fn total_len(&self) -> usize {
        self.workers.iter().map(DualQueue::len).sum::<usize>()
            + self.high.iter().map(DualQueue::len).sum::<usize>()
            + self.low.len()
    }
}

/// The work-finding engine: owns the policy, the NUMA map and the counter
/// hooks. One instance per runtime, shared by all workers.
#[derive(Debug)]
pub struct Scheduler {
    /// Queue system (shared so instantaneous queue-length counters can
    /// observe it).
    pub queues: std::sync::Arc<QueueSet>,
    /// NUMA topology used for search ordering.
    pub numa: NumaTopology,
    /// Policy variant.
    pub kind: SchedulerKind,
}

/// Where a found task came from — used by the worker to bump the right
/// counters and by tests to assert the search order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// High-priority queue (own or any).
    HighPriority,
    /// The worker's own pending queue.
    LocalPending,
    /// The worker's own staged queue (converted on the spot).
    LocalStaged,
    /// Stolen: staged queue of a same-NUMA peer.
    NumaStaged(usize),
    /// Stolen: pending queue of a same-NUMA peer.
    NumaPending(usize),
    /// Stolen: staged queue of a remote-NUMA peer.
    RemoteStaged(usize),
    /// Stolen: pending queue of a remote-NUMA peer.
    RemotePending(usize),
    /// The low-priority queue.
    LowPriority,
}

impl Provenance {
    /// True if this required taking work from another worker's queue.
    pub fn is_steal(&self) -> bool {
        matches!(
            self,
            Provenance::NumaStaged(_)
                | Provenance::NumaPending(_)
                | Provenance::RemoteStaged(_)
                | Provenance::RemotePending(_)
        )
    }
}

impl Scheduler {
    /// Build a scheduler.
    pub fn new(numa: NumaTopology, kind: SchedulerKind, high_queues: usize) -> Self {
        let workers = numa.workers();
        Self {
            queues: std::sync::Arc::new(QueueSet::new(workers, high_queues)),
            numa,
            kind,
        }
    }

    /// One full search round for worker `w`, following the policy's order.
    /// Returns a runnable task and where it came from, or `None` if every
    /// probed queue was empty. Counter updates (accesses/misses/converted/
    /// stolen) are recorded against worker `w` in `counters`.
    ///
    /// Conversion follows the HPX dual-queue flow: a staged description is
    /// converted and *placed in a pending queue* (the worker's own one for
    /// normal/low priority, the same high-priority queue for high
    /// priority), and the search restarts — the converted task is then
    /// normally dispatched from the pending queue on the next pass. A
    /// provenance note survives the round trip so dispatch reports where
    /// the task actually came from.
    pub fn find_work(&self, w: usize, counters: &ThreadCounters) -> Option<(Task, Provenance)> {
        let mut converted_from: Option<(crate::task::TaskId, Provenance)> = None;
        'search: loop {
            // High-priority queues always come first: own-indexed one,
            // then the rest (pending before staged inside each).
            let nh = self.queues.high.len();
            for off in 0..nh {
                let q = &self.queues.high[(w + off) % nh];
                if let Some(t) = self.pop_pending(q, w, counters) {
                    return Some((t, Provenance::HighPriority));
                }
                if let Some(t) = self.pop_staged(q, w, counters) {
                    q.pending.push(t);
                    continue 'search;
                }
            }

            // 1. Local pending.
            let own = &self.queues.workers[w];
            if let Some(t) = self.pop_pending(own, w, counters) {
                let prov = match converted_from.take() {
                    Some((id, p)) if id == t.id => p,
                    _ => Provenance::LocalPending,
                };
                return Some((t, prov));
            }
            // 2. Local staged (convert → own pending → redo the search).
            if let Some(t) = self.pop_staged(own, w, counters) {
                converted_from = Some((t.id, Provenance::LocalStaged));
                self.queues.push_pending(w, t);
                continue 'search;
            }

            match self.kind {
                SchedulerKind::NoSteal => {}
                SchedulerKind::PriorityLocalFifo => {
                    // 3. Same-NUMA staged.
                    for p in self.numa.same_domain_peers(w) {
                        if let Some(t) = self.pop_staged(&self.queues.workers[p], w, counters) {
                            counters.stolen.incr(w);
                            converted_from = Some((t.id, Provenance::NumaStaged(p)));
                            self.queues.push_pending(w, t);
                            continue 'search;
                        }
                    }
                    // 4. Same-NUMA pending.
                    for p in self.numa.same_domain_peers(w) {
                        if let Some(t) = self.pop_pending(&self.queues.workers[p], w, counters) {
                            counters.stolen.incr(w);
                            return Some((t, Provenance::NumaPending(p)));
                        }
                    }
                    // 5. Remote-NUMA staged.
                    for p in self.numa.remote_domain_peers(w) {
                        if let Some(t) = self.pop_staged(&self.queues.workers[p], w, counters) {
                            counters.stolen.incr(w);
                            converted_from = Some((t.id, Provenance::RemoteStaged(p)));
                            self.queues.push_pending(w, t);
                            continue 'search;
                        }
                    }
                    // 6. Remote-NUMA pending.
                    for p in self.numa.remote_domain_peers(w) {
                        if let Some(t) = self.pop_pending(&self.queues.workers[p], w, counters) {
                            counters.stolen.incr(w);
                            return Some((t, Provenance::RemotePending(p)));
                        }
                    }
                }
                SchedulerKind::NumaBlind => {
                    let peers: Vec<usize> = {
                        let mut v = self.numa.same_domain_peers(w);
                        v.extend(self.numa.remote_domain_peers(w));
                        v.sort_unstable_by_key(|&p| {
                            (p + self.numa.workers() - w) % self.numa.workers()
                        });
                        v
                    };
                    for &p in &peers {
                        if let Some(t) = self.pop_staged(&self.queues.workers[p], w, counters) {
                            counters.stolen.incr(w);
                            converted_from = Some((t.id, Provenance::NumaStaged(p)));
                            self.queues.push_pending(w, t);
                            continue 'search;
                        }
                    }
                    for &p in &peers {
                        if let Some(t) = self.pop_pending(&self.queues.workers[p], w, counters) {
                            counters.stolen.incr(w);
                            return Some((t, Provenance::NumaPending(p)));
                        }
                    }
                }
            }

            // Low-priority queue: only when all other work is exhausted.
            if let Some(staged) = self.queues.low.pop() {
                counters.converted.incr(w);
                let t = Task::convert(staged);
                converted_from = Some((t.id, Provenance::LowPriority));
                self.queues.push_pending(w, t);
                continue 'search;
            }
            return None;
        }
    }

    fn pop_pending(&self, q: &DualQueue, w: usize, counters: &ThreadCounters) -> Option<Task> {
        counters.pending_accesses.incr(w);
        match q.pending.pop() {
            Some(t) => Some(t),
            None => {
                counters.pending_misses.incr(w);
                None
            }
        }
    }

    fn pop_staged(&self, q: &DualQueue, w: usize, counters: &ThreadCounters) -> Option<Task> {
        counters.staged_accesses.incr(w);
        match q.staged.pop() {
            Some(staged) => {
                counters.converted.incr(w);
                Some(Task::convert(staged))
            }
            None => {
                counters.staged_misses.incr(w);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Priority, StagedTask, TaskId};

    fn staged(id: u64) -> StagedTask {
        StagedTask::once(TaskId(id), Priority::Normal, |_| {})
    }

    fn sched(workers: usize, domains: usize, kind: SchedulerKind) -> (Scheduler, ThreadCounters) {
        let numa = NumaTopology::block(workers, domains);
        (Scheduler::new(numa, kind, 1), ThreadCounters::new(workers))
    }

    #[test]
    fn local_pending_beats_local_staged() {
        let (s, c) = sched(2, 1, SchedulerKind::PriorityLocalFifo);
        s.queues.push_staged(0, staged(1));
        s.queues.push_pending(0, Task::convert(staged(2)));
        let (t, prov) = s.find_work(0, &c).unwrap();
        assert_eq!(t.id, TaskId(2));
        assert_eq!(prov, Provenance::LocalPending);
    }

    #[test]
    fn local_staged_beats_stealing() {
        let (s, c) = sched(2, 1, SchedulerKind::PriorityLocalFifo);
        s.queues.push_staged(1, staged(1)); // peer's
        s.queues.push_staged(0, staged(2)); // own
        let (t, prov) = s.find_work(0, &c).unwrap();
        assert_eq!(t.id, TaskId(2));
        assert_eq!(prov, Provenance::LocalStaged);
        assert_eq!(c.converted.sum(), 1);
    }

    #[test]
    fn steals_numa_staged_before_numa_pending() {
        let (s, c) = sched(2, 1, SchedulerKind::PriorityLocalFifo);
        s.queues.push_pending(1, Task::convert(staged(1)));
        s.queues.push_staged(1, staged(2));
        let (t, prov) = s.find_work(0, &c).unwrap();
        assert_eq!(t.id, TaskId(2), "staged steals first (Fig. 1 step 3)");
        assert_eq!(prov, Provenance::NumaStaged(1));
        assert_eq!(c.stolen.sum(), 1);
    }

    #[test]
    fn local_numa_beats_remote_numa() {
        // 4 workers, 2 domains: {0,1} and {2,3}.
        let (s, c) = sched(4, 2, SchedulerKind::PriorityLocalFifo);
        s.queues.push_staged(2, staged(1)); // remote for worker 0
        s.queues.push_staged(1, staged(2)); // local domain
        let (t, prov) = s.find_work(0, &c).unwrap();
        assert_eq!(t.id, TaskId(2));
        assert_eq!(prov, Provenance::NumaStaged(1));
    }

    #[test]
    fn remote_staged_beats_remote_pending() {
        let (s, c) = sched(4, 2, SchedulerKind::PriorityLocalFifo);
        s.queues.push_pending(2, Task::convert(staged(1)));
        s.queues.push_staged(3, staged(2));
        let (t, prov) = s.find_work(0, &c).unwrap();
        assert_eq!(t.id, TaskId(2));
        assert_eq!(prov, Provenance::RemoteStaged(3));
    }

    #[test]
    fn full_order_matches_fig1() {
        // Seed every tier and drain from worker 0; provenance must follow
        // the six-step order.
        let (s, c) = sched(4, 2, SchedulerKind::PriorityLocalFifo);
        s.queues.push_pending(0, Task::convert(staged(10)));
        s.queues.push_staged(0, staged(11));
        s.queues.push_staged(1, staged(12));
        s.queues.push_pending(1, Task::convert(staged(13)));
        s.queues.push_staged(2, staged(14));
        s.queues.push_pending(3, Task::convert(staged(15)));
        s.queues.push_low(staged(16));

        let mut got = Vec::new();
        while let Some((t, prov)) = s.find_work(0, &c) {
            got.push((t.id.0, prov));
        }
        assert_eq!(
            got,
            vec![
                (10, Provenance::LocalPending),
                (11, Provenance::LocalStaged),
                (12, Provenance::NumaStaged(1)),
                (13, Provenance::NumaPending(1)),
                (14, Provenance::RemoteStaged(2)),
                (15, Provenance::RemotePending(3)),
                (16, Provenance::LowPriority),
            ]
        );
    }

    #[test]
    fn high_priority_preempts_everything_queued() {
        let (s, c) = sched(2, 1, SchedulerKind::PriorityLocalFifo);
        s.queues.push_pending(0, Task::convert(staged(1)));
        s.queues.push_high(staged(2));
        let (t, prov) = s.find_work(0, &c).unwrap();
        assert_eq!(t.id, TaskId(2));
        assert_eq!(prov, Provenance::HighPriority);
    }

    #[test]
    fn low_priority_runs_only_when_drained() {
        let (s, c) = sched(1, 1, SchedulerKind::PriorityLocalFifo);
        s.queues.push_low(staged(1));
        s.queues.push_staged(0, staged(2));
        let (t, _) = s.find_work(0, &c).unwrap();
        assert_eq!(t.id, TaskId(2));
        let (t, prov) = s.find_work(0, &c).unwrap();
        assert_eq!(t.id, TaskId(1));
        assert_eq!(prov, Provenance::LowPriority);
    }

    #[test]
    fn nosteal_never_touches_peers() {
        let (s, c) = sched(2, 1, SchedulerKind::NoSteal);
        s.queues.push_staged(1, staged(1));
        s.queues.push_pending(1, Task::convert(staged(2)));
        assert!(s.find_work(0, &c).is_none());
        assert_eq!(c.stolen.sum(), 0);
        // Worker 1 still gets its own work.
        assert!(s.find_work(1, &c).is_some());
    }

    #[test]
    fn numa_blind_still_steals() {
        let (s, c) = sched(4, 2, SchedulerKind::NumaBlind);
        s.queues.push_staged(3, staged(1));
        let (t, _) = s.find_work(0, &c).unwrap();
        assert_eq!(t.id, TaskId(1));
        assert_eq!(c.stolen.sum(), 1);
    }

    #[test]
    fn counters_track_accesses_and_misses() {
        let (s, c) = sched(2, 1, SchedulerKind::PriorityLocalFifo);
        assert!(s.find_work(0, &c).is_none());
        // hp pending+staged, own pending+staged, peer staged+pending, low:
        // pending probes: hp(1) + own(1) + peer(1) = 3, all misses.
        assert_eq!(c.pending_accesses.sum(), 3);
        assert_eq!(c.pending_misses.sum(), 3);
        assert_eq!(c.staged_accesses.sum(), 3);
        assert_eq!(c.staged_misses.sum(), 3);

        s.queues.push_pending(0, Task::convert(staged(1)));
        assert!(s.find_work(0, &c).is_some());
        // hp pending(miss), hp staged(miss), own pending(hit).
        assert_eq!(c.pending_accesses.sum(), 5);
        assert_eq!(c.pending_misses.sum(), 4);
    }

    #[test]
    fn provenance_steal_classification() {
        assert!(Provenance::NumaStaged(1).is_steal());
        assert!(Provenance::RemotePending(2).is_steal());
        assert!(!Provenance::LocalPending.is_steal());
        assert!(!Provenance::HighPriority.is_steal());
        assert!(!Provenance::LowPriority.is_steal());
    }

    #[test]
    fn queueset_total_len_counts_everything() {
        let q = QueueSet::new(2, 1);
        q.push_staged(0, staged(1));
        q.push_pending(1, Task::convert(staged(2)));
        q.push_high(staged(3));
        q.push_low(staged(4));
        assert_eq!(q.total_len(), 4);
    }
}
