//! Generation-tagged slab for task body frames (feature `task-slab`).
//!
//! Every spawn needs somewhere to put the task's closure — its *body
//! frame*. The default path `Box`es it, which costs one
//! malloc/free round trip per task; at the paper's fine-grain end
//! (tasks of a few microseconds) that round trip is a measurable slice
//! of t_o (Eq. 1). This module recycles those frames instead:
//!
//! * Frames live in fixed-size **size-class slots** (64/128/256/512
//!   payload bytes, 16-byte aligned). A spawn takes a slot from the
//!   matching class's free list, or mints a fresh one only when the
//!   list is empty; dropping the body returns the slot. Steady-state
//!   spawn traffic therefore touches the global allocator only while
//!   the arena is still growing toward the peak number of concurrently
//!   live tasks.
//! * Every slot carries a **generation counter**, bumped each time the
//!   slot is freed. Handles ([`FrameHandle`]) pair the slot address
//!   with the generation observed at allocation, so a stale handle —
//!   one that outlived its task — probes as a clean miss (`None`),
//!   never as a read of whichever task recycled the slot. Slots are
//!   *never* returned to the OS (the free lists only grow to the
//!   high-water mark), which is what makes probing a stale handle safe
//!   rather than a use-after-free.
//! * The closure is type-erased through a two-entry vtable (call +
//!   drop) instead of a `Box<dyn FnMut>`: same dynamic dispatch cost,
//!   no per-task heap allocation. Closures larger than the biggest
//!   class (or over-aligned) fall back to the plain `Box` path and are
//!   counted under [`ArenaStats::oversize`].
//!
//! The arena is process-global ([`global`]) so every spawn path — the
//! runtime's, the benches' direct `StagedTask` constructions, tests —
//! shares one pool. Tests that need deterministic slot reuse build a
//! private leaked arena instead.
//!
//! Future `Shared` state (`future.rs`) deliberately stays on the global
//! allocator: a shared future is jointly owned by any number of
//! consumers through an `Arc`, so its storage cannot be recycled on a
//! single drop the way a uniquely-owned body frame can. The common
//! `async_call`/`dataflow` spawns still route their promise *through*
//! the pooled frame (the promise is captured by the closure), so the
//! per-async allocation count drops from two to one amortized.

#![deny(clippy::unwrap_used)]

use crate::runtime::TaskContext;
use crate::task::{Poll, TaskBody, TaskId};
use grain_counters::sync::Mutex;
use std::alloc::Layout;
use std::marker::PhantomData;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Payload bytes per size class. Spawn-path closures (an `Option`-ed
/// user `FnOnce` plus a promise and captured inputs) cluster in the
/// 32–300 byte range; 512 covers the fat tail of dataflow nodes
/// capturing a `Vec` of dependency values.
const CLASS_SIZES: [usize; 4] = [64, 128, 256, 512];

/// Strictest closure alignment a slot supports. Stricter closures
/// (rare: explicit SIMD captures) take the `Box` fallback.
const MAX_ALIGN: usize = 16;

/// `task_id` value of a slot not currently owned by a live body.
const FREE_ID: u64 = u64::MAX;

/// Per-slot bookkeeping, laid out immediately before the payload.
#[repr(C)]
struct SlotHeader {
    /// Bumped on every free; a handle whose generation no longer
    /// matches is stale.
    gen: AtomicU32,
    /// Size-class index, fixed at mint time.
    class: u32,
    /// Owning task while occupied, [`FREE_ID`] while free. Read by
    /// [`FrameHandle::probe`] under a generation seqlock.
    task_id: AtomicU64,
}

// The payload starts at `base + HEADER`; keeping the header exactly 16
// bytes keeps the payload at MAX_ALIGN for free.
const HEADER: usize = 16;
const _: () = assert!(std::mem::size_of::<SlotHeader>() == HEADER);
const _: () = assert!(std::mem::align_of::<SlotHeader>() <= MAX_ALIGN);

/// A raw pointer to a minted slot. Slots are plain memory with atomic
/// headers; moving the pointer between threads is safe, and exclusive
/// payload access is enforced by `PooledBody` ownership.
struct SlotPtr(NonNull<SlotHeader>);
unsafe impl Send for SlotPtr {}

fn slot_layout(class: usize) -> Layout {
    // Infallible for the fixed class table; checked in debug builds.
    Layout::from_size_align(HEADER + CLASS_SIZES[class], MAX_ALIGN)
        .expect("slot layout is statically valid")
}

fn payload_ptr(slot: NonNull<SlotHeader>) -> *mut u8 {
    unsafe { slot.as_ptr().cast::<u8>().add(HEADER) }
}

/// Allocation-traffic counters, readable for observability and tests.
#[derive(Debug, Default)]
pub struct ArenaStats {
    /// Frames served from a recycled slot.
    pub reused: AtomicU64,
    /// Frames that minted a fresh slot (arena growth).
    pub minted: AtomicU64,
    /// Frames that fell back to the `Box` path (too big / over-aligned).
    pub oversize: AtomicU64,
}

/// The slab: one free list per size class plus traffic stats.
pub struct BodyArena {
    free: [Mutex<Vec<SlotPtr>>; CLASS_SIZES.len()],
    stats: ArenaStats,
}

impl BodyArena {
    /// An empty arena. `const` so the process-global instance needs no
    /// lazy initialization on the spawn path.
    pub const fn new() -> Self {
        Self {
            free: [
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
            ],
            stats: ArenaStats {
                reused: AtomicU64::new(0),
                minted: AtomicU64::new(0),
                oversize: AtomicU64::new(0),
            },
        }
    }

    /// Allocation-traffic counters.
    pub fn stats(&self) -> &ArenaStats {
        &self.stats
    }

    /// Store `body` in a pooled frame owned by `task_id`, falling back
    /// to the heap when no size class fits.
    pub fn alloc<F>(&'static self, task_id: TaskId, body: F) -> TaskBody
    where
        F: FnMut(&mut TaskContext<'_>) -> Poll + Send + 'static,
    {
        let size = std::mem::size_of::<F>();
        let align = std::mem::align_of::<F>();
        let Some(class) = CLASS_SIZES
            .iter()
            .position(|&c| size <= c)
            .filter(|_| align <= MAX_ALIGN)
        else {
            self.stats.oversize.fetch_add(1, Ordering::Relaxed);
            return TaskBody::Heap(Box::new(body));
        };
        let slot = match self.free[class].lock().pop() {
            Some(s) => {
                self.stats.reused.fetch_add(1, Ordering::Relaxed);
                s
            }
            None => {
                self.stats.minted.fetch_add(1, Ordering::Relaxed);
                mint_slot(class)
            }
        };
        let slot = slot.0;
        unsafe {
            let hdr = slot.as_ref();
            hdr.task_id.store(task_id.0, Ordering::Release);
            // The slot is exclusively ours (off every free list, header
            // says occupied); writing the closure into the payload is a
            // plain initialization.
            payload_ptr(slot).cast::<F>().write(body);
            TaskBody::Pooled(PooledBody {
                slot,
                gen: hdr.gen.load(Ordering::Acquire),
                vtable: &VTableOf::<F>::VTABLE,
                arena: self,
            })
        }
    }
}

impl Default for BodyArena {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-global arena every spawn path shares.
pub fn global() -> &'static BodyArena {
    static GLOBAL: BodyArena = BodyArena::new();
    &GLOBAL
}

fn mint_slot(class: usize) -> SlotPtr {
    let layout = slot_layout(class);
    let raw = unsafe { std::alloc::alloc(layout) }.cast::<SlotHeader>();
    let Some(slot) = NonNull::new(raw) else {
        std::alloc::handle_alloc_error(layout)
    };
    unsafe {
        slot.as_ptr().write(SlotHeader {
            gen: AtomicU32::new(0),
            class: class as u32,
            task_id: AtomicU64::new(FREE_ID),
        });
    }
    SlotPtr(slot)
}

/// Call/drop vtable for a type-erased closure stored in a slot payload.
struct BodyVTable {
    /// # Safety: `payload` must point at a live, initialized `F`.
    call: unsafe fn(payload: *mut u8, ctx: &mut TaskContext<'_>) -> Poll,
    /// # Safety: `payload` must point at a live, initialized `F`; the
    /// value is dead afterwards.
    drop_in_place: unsafe fn(payload: *mut u8),
}

unsafe fn call_erased<F>(payload: *mut u8, ctx: &mut TaskContext<'_>) -> Poll
where
    F: FnMut(&mut TaskContext<'_>) -> Poll + Send + 'static,
{
    (*payload.cast::<F>())(ctx)
}

unsafe fn drop_erased<F>(payload: *mut u8) {
    std::ptr::drop_in_place(payload.cast::<F>());
}

struct VTableOf<F>(PhantomData<F>);

impl<F> VTableOf<F>
where
    F: FnMut(&mut TaskContext<'_>) -> Poll + Send + 'static,
{
    const VTABLE: BodyVTable = BodyVTable {
        call: call_erased::<F>,
        drop_in_place: drop_erased::<F>,
    };
}

/// A task body living in a pooled slot. Uniquely owns the slot's
/// payload; dropping it destroys the closure, bumps the generation
/// (invalidating outstanding [`FrameHandle`]s), and recycles the slot.
pub struct PooledBody {
    slot: NonNull<SlotHeader>,
    gen: u32,
    vtable: &'static BodyVTable,
    arena: &'static BodyArena,
}

// The stored closure is `Send` (bounded at `alloc`), the header is
// atomics, and payload access is exclusive through `&mut self`.
unsafe impl Send for PooledBody {}

impl PooledBody {
    /// Run one phase of the stored closure.
    #[inline]
    pub(crate) fn call(&mut self, ctx: &mut TaskContext<'_>) -> Poll {
        debug_assert_eq!(
            unsafe { self.slot.as_ref() }.gen.load(Ordering::Acquire),
            self.gen,
            "pooled body frame outlived its generation"
        );
        unsafe { (self.vtable.call)(payload_ptr(self.slot), ctx) }
    }

    /// A weak, copyable reference to this frame's slot + generation.
    pub fn handle(&self) -> FrameHandle {
        FrameHandle {
            addr: self.slot.as_ptr() as usize,
            gen: self.gen,
        }
    }
}

impl Drop for PooledBody {
    fn drop(&mut self) {
        unsafe {
            (self.vtable.drop_in_place)(payload_ptr(self.slot));
            let hdr = self.slot.as_ref();
            hdr.task_id.store(FREE_ID, Ordering::Release);
            // Invalidate handles *before* the slot becomes takeable, so
            // no window exists where a stale handle can observe the
            // next occupant under the old generation.
            hdr.gen.fetch_add(1, Ordering::Release);
            let class = hdr.class as usize;
            self.arena.free[class].lock().push(SlotPtr(self.slot));
        }
    }
}

/// A generation-tagged reference to a (possibly former) body frame.
///
/// Probing never dereferences freed memory — slots are permanent — and
/// never reports another task's identity: the generation check brackets
/// the id read, so a recycled slot is always a clean `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHandle {
    addr: usize,
    gen: u32,
}

impl FrameHandle {
    /// The owning task, or `None` if the frame was freed (and possibly
    /// recycled) since this handle was taken.
    pub fn probe(self) -> Option<TaskId> {
        let hdr = unsafe { &*(self.addr as *const SlotHeader) };
        if hdr.gen.load(Ordering::Acquire) != self.gen {
            return None;
        }
        let id = hdr.task_id.load(Ordering::Acquire);
        // Re-check: a concurrent free/realloc between the two loads
        // would have bumped the generation before publishing a new id.
        if hdr.gen.load(Ordering::Acquire) != self.gen || id == FREE_ID {
            return None;
        }
        Some(TaskId(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    /// A private arena with deterministic free lists (the global one is
    /// shared with every concurrently running test).
    fn private_arena() -> &'static BodyArena {
        Box::leak(Box::new(BodyArena::new()))
    }

    fn call_once(body: &mut TaskBody) -> Poll {
        // Exercising a body requires a TaskContext, which requires a
        // runtime; route through a real one-worker runtime instead.
        let rt = crate::Runtime::with_workers(1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let b = std::mem::replace(body, TaskBody::Heap(Box::new(|_| Poll::Complete)));
        let mut b = Some(b);
        rt.async_call(move |ctx| {
            let mut b = b.take().expect("single run");
            let p = b.call(ctx);
            d.fetch_add(1, Ordering::SeqCst);
            matches!(p, Poll::Complete)
        })
        .get();
        assert_eq!(done.load(Ordering::SeqCst), 1);
        Poll::Complete
    }

    #[test]
    fn recycles_slots_and_detects_stale_handles() {
        let arena = private_arena();
        let touched = Arc::new(AtomicUsize::new(0));
        let t = Arc::clone(&touched);
        let body = arena.alloc(TaskId(7), move |_ctx| {
            t.fetch_add(1, Ordering::SeqCst);
            Poll::Complete
        });
        let TaskBody::Pooled(body) = body else {
            panic!("small closure must pool");
        };
        let stale = body.handle();
        assert_eq!(stale.probe(), Some(TaskId(7)), "live handle resolves");
        drop(body);
        assert_eq!(stale.probe(), None, "freed frame probes as a miss");

        // The freed slot is recycled for the next same-class frame; the
        // stale handle still misses cleanly — never task 8's identity.
        let body2 = arena.alloc(TaskId(8), move |_ctx| Poll::Complete);
        let TaskBody::Pooled(body2) = body2 else {
            panic!("small closure must pool");
        };
        assert_eq!(
            body2.handle().probe(),
            Some(TaskId(8)),
            "new occupant resolves via its own handle"
        );
        assert_eq!(
            stale.handle_addr(),
            body2.handle().handle_addr(),
            "slot was recycled (single-threaded arena: LIFO free list)"
        );
        assert_eq!(
            stale.probe(),
            None,
            "stale handle must miss, not read the recycled occupant"
        );
        assert_eq!(arena.stats().reused.load(Ordering::Relaxed), 1);
        assert_eq!(arena.stats().minted.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pooled_body_runs_and_drops_captures_exactly_once() {
        struct DropTally(Arc<AtomicUsize>);
        impl Drop for DropTally {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let arena = private_arena();
        let drops = Arc::new(AtomicUsize::new(0));
        let tally = DropTally(Arc::clone(&drops));
        let mut body = arena.alloc(TaskId(1), move |_ctx| {
            let _keep = &tally;
            Poll::Complete
        });
        call_once(&mut body);
        drop(body);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            1,
            "captured values drop exactly once with the frame"
        );
    }

    #[test]
    fn oversize_closures_fall_back_to_the_heap() {
        let arena = private_arena();
        let big = [0u8; 600];
        let body = arena.alloc(TaskId(2), move |_ctx| {
            std::hint::black_box(&big);
            Poll::Complete
        });
        assert!(matches!(body, TaskBody::Heap(_)));
        assert_eq!(arena.stats().oversize.load(Ordering::Relaxed), 1);
    }

    impl FrameHandle {
        fn handle_addr(self) -> usize {
            self.addr
        }
    }
}
