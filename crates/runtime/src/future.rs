//! Lightweight shared futures and promises.
//!
//! HPX expresses task dependencies with `hpx::future` / `hpx::async` and
//! composes them "sequentially and in parallel" into a dependency tree
//! (§I-C). These futures are *not* Rust `std::future`s — HPX-threads are
//! cooperative user-level threads, not poll-based async — so we implement
//! the HPX shape directly:
//!
//! * [`Promise`] — single producer; [`Promise::set`] publishes a value,
//!   [`Promise::fail`] publishes an error. Dropping a promise unfulfilled
//!   settles the future with [`TaskError::BrokenPromise`] (or the panic /
//!   cancellation that caused the drop), so consumers are never stranded.
//! * [`SharedFuture`] — many consumers; readable any number of times
//!   (values are `Arc`-shared), attachable continuations, blocking `get`
//!   for external (non-worker) threads. A future *settles* exactly once:
//!   either ready with a value or faulted with a [`TaskError`].
//! * [`when_all`] — N-ary conjunction, the edge/intermediate nodes of the
//!   dependency graph in the paper's Fig. 2. The first faulted input
//!   faults the conjunction with a [`TaskError::Dependency`] cause chain.
//!
//! Continuations run inline on the thread that settles the promise,
//! which on a worker means "as part of the completing task's phase" —
//! the same attribution HPX uses for cheap continuations.

use crate::fault::{self, TaskError};
use grain_counters::sync::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The settled outcome of a future: a shared value or the task error.
pub type Settled<T> = Result<Arc<T>, TaskError>;

/// Callback attached to a future; observes the settled outcome.
type Continuation<T> = Box<dyn FnOnce(&Settled<T>) + Send>;

enum State<T> {
    Empty(Vec<Continuation<T>>),
    Ready(Arc<T>),
    Faulted(TaskError),
}

struct Shared<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> Shared<T> {
    /// Settle the future (value or error), waking blocked waiters and
    /// running all attached continuations inline on this thread.
    ///
    /// # Panics
    /// Panics if the future was already settled.
    fn settle(&self, outcome: Settled<T>) {
        let new_state = match &outcome {
            Ok(v) => State::Ready(Arc::clone(v)),
            Err(e) => State::Faulted(e.clone()),
        };
        let continuations = {
            let mut st = self.state.lock();
            match std::mem::replace(&mut *st, new_state) {
                State::Empty(conts) => conts,
                State::Ready(_) | State::Faulted(_) => panic!("promise fulfilled twice"),
            }
        };
        self.ready.notify_all();
        for c in continuations {
            c(&outcome);
        }
    }
}

/// The write end of a future.
///
/// Exactly one settle happens per promise: [`Promise::set`],
/// [`Promise::fail`], or — if the promise is dropped unfulfilled — an
/// automatic fault carrying the reason for the drop (the captured panic
/// message when dropped by an unwind, [`TaskError::Cancelled`] when the
/// owning task was skipped, [`TaskError::BrokenPromise`] otherwise).
pub struct Promise<T> {
    shared: Option<Arc<Shared<T>>>,
}

/// The read end: shareable, clonable, multi-consumer.
pub struct SharedFuture<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for SharedFuture<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// Create a connected promise/future pair.
pub fn channel<T>() -> (Promise<T>, SharedFuture<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State::Empty(Vec::new())),
        ready: Condvar::new(),
    });
    (
        Promise {
            shared: Some(Arc::clone(&shared)),
        },
        SharedFuture { shared },
    )
}

impl<T> Promise<T> {
    /// Publish the value, waking blocked `get`s and running all attached
    /// continuations inline on this thread.
    ///
    /// # Panics
    /// Panics if the promise was already fulfilled.
    pub fn set(mut self, value: T) {
        let shared = self.shared.take().expect("promise already consumed");
        shared.settle(Ok(Arc::new(value)));
    }

    /// Publish an error instead of a value. Waiters and continuations
    /// observe `Err(error)`.
    ///
    /// # Panics
    /// Panics if the promise was already fulfilled.
    pub fn fail(mut self, error: TaskError) {
        let shared = self.shared.take().expect("promise already consumed");
        shared.settle(Err(error));
    }
}

impl<T> Drop for Promise<T> {
    fn drop(&mut self) {
        let Some(shared) = self.shared.take() else {
            return; // consumed by set/fail
        };
        // Dropped unfulfilled: settle with the most specific error we can
        // attribute. During an unwind the panic hook has captured the
        // message; deliberate teardown (cancellation skip, post-panic
        // frame disposal) sets an ambient drop reason.
        let error = if std::thread::panicking() {
            TaskError::Panicked {
                message: fault::captured_panic()
                    .unwrap_or_else(|| "task panicked (message unavailable)".to_string()),
            }
        } else if let Some(reason) = fault::drop_reason() {
            reason
        } else {
            TaskError::BrokenPromise
        };
        shared.settle(Err(error));
    }
}

impl<T> SharedFuture<T> {
    /// A future that is already fulfilled ("make_ready_future").
    pub fn ready(value: T) -> Self {
        let (p, f) = channel();
        p.set(value);
        f
    }

    /// A future that is already faulted with `error`.
    pub fn faulted(error: TaskError) -> Self {
        let (p, f) = channel();
        p.fail(error);
        f
    }

    /// The settled outcome, if the future has settled: `Some(Ok(value))`
    /// once ready, `Some(Err(error))` once faulted, `None` while pending.
    pub fn try_get(&self) -> Option<Settled<T>> {
        match &*self.shared.state.lock() {
            State::Ready(v) => Some(Ok(Arc::clone(v))),
            State::Faulted(e) => Some(Err(e.clone())),
            State::Empty(_) => None,
        }
    }

    /// True once the future has settled (ready *or* faulted) — i.e. a
    /// suspended task waiting on it would be resumed.
    pub fn is_ready(&self) -> bool {
        self.try_get().is_some()
    }

    /// True if the future settled with an error.
    pub fn is_faulted(&self) -> bool {
        matches!(self.try_get(), Some(Err(_)))
    }

    /// The error the future faulted with, if it did.
    pub fn error(&self) -> Option<TaskError> {
        match self.try_get() {
            Some(Err(e)) => Some(e),
            _ => None,
        }
    }

    /// Block the calling thread until the value is available.
    ///
    /// Intended for *external* threads (e.g. `main` collecting a result).
    /// A worker thread must never block here — it would stall its queue;
    /// tasks wait by suspension instead
    /// ([`crate::runtime::TaskContext::suspend_until`]).
    ///
    /// # Panics
    /// Panics if the future faults (producing task panicked, was
    /// cancelled, or lost its promise). Use [`SharedFuture::wait`] or
    /// [`SharedFuture::wait_timeout`] for a fallible join.
    pub fn get(&self) -> Arc<T> {
        match self.wait() {
            Ok(v) => v,
            Err(e) => panic!("SharedFuture::get on a faulted future: {e}"),
        }
    }

    /// Block until the future settles; the fallible form of
    /// [`SharedFuture::get`].
    pub fn wait(&self) -> Settled<T> {
        let mut st = self.shared.state.lock();
        loop {
            match &*st {
                State::Ready(v) => return Ok(Arc::clone(v)),
                State::Faulted(e) => return Err(e.clone()),
                State::Empty(_) => self.shared.ready.wait(&mut st),
            }
        }
    }

    /// Block until the future settles or `timeout` elapses. Returns
    /// `Err(TaskError::Timeout)` on expiry — the only blocking join safe
    /// against a stalled producer.
    pub fn wait_timeout(&self, timeout: Duration) -> Settled<T> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock();
        loop {
            match &*st {
                State::Ready(v) => return Ok(Arc::clone(v)),
                State::Faulted(e) => return Err(e.clone()),
                State::Empty(_) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(TaskError::Timeout { waited: timeout });
                    }
                    self.shared.ready.wait_for(&mut st, deadline - now);
                }
            }
        }
    }

    /// Attach a continuation observing the settled outcome: runs
    /// immediately (inline) if already settled, otherwise at settle time
    /// on the settling thread.
    pub fn on_settled(&self, f: impl FnOnce(&Settled<T>) + Send + 'static) {
        let mut f = Some(f);
        let run_now = {
            let mut st = self.shared.state.lock();
            match &mut *st {
                State::Ready(v) => Some(Ok(Arc::clone(v))),
                State::Faulted(e) => Some(Err(e.clone())),
                State::Empty(conts) => {
                    let f = f.take().unwrap();
                    conts.push(Box::new(f));
                    None
                }
            }
        };
        if let Some(outcome) = run_now {
            (f.take().unwrap())(&outcome);
        }
    }

    /// Attach a continuation that runs only if the future becomes ready
    /// with a value (a fault silently skips it — prefer
    /// [`SharedFuture::on_settled`] when the error path matters).
    pub fn on_ready(&self, f: impl FnOnce(&Arc<T>) + Send + 'static) {
        self.on_settled(move |outcome| {
            if let Ok(v) = outcome {
                f(v);
            }
        });
    }
}

/// A future for the conjunction of `futures`: ready when all inputs are,
/// carrying the input values in order — or faulted as soon as any input
/// faults, with that input's error as the [`TaskError::Dependency`]
/// cause.
///
/// This is the paper's dependency-graph "intermediate node": HPX-Stencil
/// combines the three neighbouring partitions of the previous time step
/// with `when_all` before launching the update task.
pub fn when_all<T: Send + Sync + 'static>(
    futures: &[SharedFuture<T>],
) -> SharedFuture<Vec<Arc<T>>> {
    let n = futures.len();
    let (promise, out) = channel();
    if n == 0 {
        promise.set(Vec::new());
        return out;
    }

    type GatherState<T> = (Vec<Option<Arc<T>>>, usize, Option<Promise<Vec<Arc<T>>>>);
    struct Gather<T> {
        slots: Mutex<GatherState<T>>,
    }
    let gather = Arc::new(Gather {
        slots: Mutex::new((vec![None; n], 0, Some(promise))),
    });

    for (i, fut) in futures.iter().enumerate() {
        let gather = Arc::clone(&gather);
        fut.on_settled(move |outcome| {
            match outcome {
                Ok(v) => {
                    let finished = {
                        let mut g = gather.slots.lock();
                        debug_assert!(g.0[i].is_none(), "when_all slot filled twice");
                        g.0[i] = Some(Arc::clone(v));
                        g.1 += 1;
                        if g.1 == n {
                            // A faulted sibling may have consumed the
                            // promise already; then there is nothing to do.
                            g.2.take()
                                .map(|p| (p, g.0.iter_mut().map(|s| s.take().unwrap()).collect()))
                        } else {
                            None
                        }
                    };
                    if let Some((promise, values)) = finished {
                        promise.set(values);
                    }
                }
                Err(e) => {
                    // First fault wins; the conjunction inherits it.
                    let promise = gather.slots.lock().2.take();
                    if let Some(promise) = promise {
                        promise.fail(TaskError::Dependency {
                            cause: Arc::new(e.clone()),
                        });
                    }
                }
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn set_then_get() {
        let (p, f) = channel();
        p.set(42);
        assert_eq!(*f.get(), 42);
        assert_eq!(*f.try_get().unwrap().unwrap(), 42);
        assert!(f.is_ready());
        assert!(!f.is_faulted());
    }

    #[test]
    fn try_get_before_set_is_none() {
        let (_p, f) = channel::<i32>();
        assert!(f.try_get().is_none());
        assert!(!f.is_ready());
    }

    #[test]
    fn ready_constructor() {
        let f = SharedFuture::ready("hi");
        assert_eq!(*f.get(), "hi");
    }

    #[test]
    fn faulted_constructor_and_error() {
        let f = SharedFuture::<i32>::faulted(TaskError::Cancelled);
        assert!(f.is_ready(), "faulted counts as settled");
        assert!(f.is_faulted());
        assert_eq!(f.error(), Some(TaskError::Cancelled));
        assert_eq!(f.wait(), Err(TaskError::Cancelled));
    }

    #[test]
    #[should_panic(expected = "fulfilled twice")]
    fn double_set_panics() {
        let (p, f) = channel();
        p.set(1);
        // A second promise to the same shared state can't be constructed
        // through the public API; exercise the internal double-settle
        // guard with a hand-made promise.
        let p2 = Promise {
            shared: Some(Arc::clone(&f.shared)),
        };
        p2.set(2);
    }

    #[test]
    fn dropped_promise_faults_with_broken_promise() {
        let (p, f) = channel::<u8>();
        drop(p);
        assert_eq!(f.error(), Some(TaskError::BrokenPromise));
        assert_eq!(f.wait(), Err(TaskError::BrokenPromise));
    }

    #[test]
    #[should_panic(expected = "faulted future")]
    fn get_on_faulted_future_panics() {
        let f = SharedFuture::<u8>::faulted(TaskError::BrokenPromise);
        let _ = f.get();
    }

    #[test]
    fn wait_timeout_expires_on_pending_future() {
        let (_p, f) = channel::<u8>();
        match f.wait_timeout(Duration::from_millis(5)) {
            Err(TaskError::Timeout { waited }) => {
                assert_eq!(waited, Duration::from_millis(5));
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn wait_timeout_returns_value_when_set() {
        let (p, f) = channel();
        let t = std::thread::spawn(move || f.wait_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        p.set(3u8);
        assert_eq!(*t.join().unwrap().unwrap(), 3);
    }

    #[test]
    fn continuation_runs_on_set() {
        let (p, f) = channel();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        f.on_ready(move |v| {
            assert_eq!(**v, 9);
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        p.set(9);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn continuation_runs_immediately_if_ready() {
        let f = SharedFuture::ready(1);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        f.on_ready(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn on_ready_is_skipped_on_fault_but_on_settled_fires() {
        let (p, f) = channel::<u8>();
        let ready_hits = Arc::new(AtomicUsize::new(0));
        let settled_errs = Arc::new(AtomicUsize::new(0));
        let rh = Arc::clone(&ready_hits);
        f.on_ready(move |_| {
            rh.fetch_add(1, Ordering::SeqCst);
        });
        let se = Arc::clone(&settled_errs);
        f.on_settled(move |outcome| {
            if outcome.is_err() {
                se.fetch_add(1, Ordering::SeqCst);
            }
        });
        p.fail(TaskError::Cancelled);
        assert_eq!(ready_hits.load(Ordering::SeqCst), 0);
        assert_eq!(settled_errs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn multiple_consumers_share_value() {
        let (p, f) = channel();
        let f2 = f.clone();
        let f3 = f.clone();
        p.set(vec![1, 2, 3]);
        assert_eq!(*f.get(), vec![1, 2, 3]);
        assert!(Arc::ptr_eq(&f2.get(), &f3.get()));
    }

    #[test]
    fn get_blocks_until_set() {
        let (p, f) = channel();
        let t = std::thread::spawn(move || *f.get());
        std::thread::sleep(std::time::Duration::from_millis(10));
        p.set(7u32);
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    fn when_all_empty_is_immediately_ready() {
        let out = when_all::<i32>(&[]);
        assert!(out.is_ready());
        assert!(out.get().is_empty());
    }

    #[test]
    fn when_all_collects_in_order() {
        let (p1, f1) = channel();
        let (p2, f2) = channel();
        let (p3, f3) = channel();
        let out = when_all(&[f1, f2, f3]);
        p2.set(20);
        assert!(!out.is_ready());
        p3.set(30);
        p1.set(10);
        let v = out.get();
        let vals: Vec<i32> = v.iter().map(|a| **a).collect();
        assert_eq!(vals, vec![10, 20, 30]);
    }

    #[test]
    fn when_all_with_already_ready_inputs() {
        let f1 = SharedFuture::ready(1);
        let (p2, f2) = channel();
        let out = when_all(&[f1, f2]);
        assert!(!out.is_ready());
        p2.set(2);
        let vals: Vec<i32> = out.get().iter().map(|a| **a).collect();
        assert_eq!(vals, vec![1, 2]);
    }

    #[test]
    fn when_all_faults_on_first_faulted_input() {
        let (p1, f1) = channel::<i32>();
        let (p2, f2) = channel::<i32>();
        let out = when_all(&[f1, f2]);
        p1.fail(TaskError::Panicked {
            message: "boom".into(),
        });
        let err = out.error().expect("conjunction must fault");
        assert_eq!(
            err.root_cause(),
            &TaskError::Panicked {
                message: "boom".into()
            }
        );
        assert_eq!(err.chain_len(), 1);
        // A late sibling value must not double-settle.
        p2.set(2);
        assert!(out.is_faulted());
    }

    #[test]
    fn when_all_fault_after_values_still_faults() {
        let (p1, f1) = channel::<i32>();
        let (p2, f2) = channel::<i32>();
        let out = when_all(&[f1, f2]);
        p1.set(1);
        p2.fail(TaskError::Cancelled);
        assert!(out.is_faulted());
        assert_eq!(out.error().unwrap().root_cause(), &TaskError::Cancelled);
    }

    #[test]
    fn when_all_concurrent_setters() {
        let pairs: Vec<_> = (0..32).map(|_| channel::<usize>()).collect();
        let futures: Vec<_> = pairs.iter().map(|(_, f)| f.clone()).collect();
        let out = when_all(&futures);
        let handles: Vec<_> = pairs
            .into_iter()
            .enumerate()
            .map(|(i, (p, _))| std::thread::spawn(move || p.set(i)))
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let vals: Vec<usize> = out.get().iter().map(|a| **a).collect();
        assert_eq!(vals, (0..32).collect::<Vec<_>>());
    }
}
