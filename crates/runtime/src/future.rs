//! Lightweight shared futures and promises.
//!
//! HPX expresses task dependencies with `hpx::future` / `hpx::async` and
//! composes them "sequentially and in parallel" into a dependency tree
//! (§I-C). These futures are *not* Rust `std::future`s — HPX-threads are
//! cooperative user-level threads, not poll-based async — so we implement
//! the HPX shape directly:
//!
//! * [`Promise`] — single producer; [`Promise::set`] publishes a value.
//! * [`SharedFuture`] — many consumers; readable any number of times
//!   (values are `Arc`-shared), attachable continuations, blocking `get`
//!   for external (non-worker) threads.
//! * [`when_all`] — N-ary conjunction, the edge/intermediate nodes of the
//!   dependency graph in the paper's Fig. 2.
//!
//! Continuations run inline on the thread that fulfills the promise,
//! which on a worker means "as part of the completing task's phase" —
//! the same attribution HPX uses for cheap continuations.

use grain_counters::sync::{Condvar, Mutex};
use std::sync::Arc;

/// Callback attached to a future.
type Continuation<T> = Box<dyn FnOnce(&Arc<T>) + Send>;

enum State<T> {
    Empty(Vec<Continuation<T>>),
    Ready(Arc<T>),
}

struct Shared<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

/// The write end of a future. Dropping a promise without setting it leaves
/// the future forever empty (consumers relying on `get` would block; the
/// runtime's dataflow layer never drops promises unfulfilled).
pub struct Promise<T> {
    shared: Arc<Shared<T>>,
}

/// The read end: shareable, clonable, multi-consumer.
pub struct SharedFuture<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for SharedFuture<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// Create a connected promise/future pair.
pub fn channel<T>() -> (Promise<T>, SharedFuture<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State::Empty(Vec::new())),
        ready: Condvar::new(),
    });
    (
        Promise {
            shared: Arc::clone(&shared),
        },
        SharedFuture { shared },
    )
}

impl<T> Promise<T> {
    /// Publish the value, waking blocked `get`s and running all attached
    /// continuations inline on this thread.
    ///
    /// # Panics
    /// Panics if the promise was already fulfilled.
    pub fn set(self, value: T) {
        let value = Arc::new(value);
        let continuations = {
            let mut st = self.shared.state.lock();
            match std::mem::replace(&mut *st, State::Ready(Arc::clone(&value))) {
                State::Empty(conts) => conts,
                State::Ready(_) => panic!("promise fulfilled twice"),
            }
        };
        self.shared.ready.notify_all();
        for c in continuations {
            c(&value);
        }
    }
}

impl<T> SharedFuture<T> {
    /// A future that is already fulfilled ("make_ready_future").
    pub fn ready(value: T) -> Self {
        let (p, f) = channel();
        p.set(value);
        f
    }

    /// The value, if already available.
    pub fn try_get(&self) -> Option<Arc<T>> {
        match &*self.shared.state.lock() {
            State::Ready(v) => Some(Arc::clone(v)),
            State::Empty(_) => None,
        }
    }

    /// True once the value is available.
    pub fn is_ready(&self) -> bool {
        self.try_get().is_some()
    }

    /// Block the calling thread until the value is available.
    ///
    /// Intended for *external* threads (e.g. `main` collecting a result).
    /// A worker thread must never block here — it would stall its queue;
    /// tasks wait by suspension instead
    /// ([`crate::runtime::TaskContext::suspend_until`]).
    pub fn get(&self) -> Arc<T> {
        let mut st = self.shared.state.lock();
        loop {
            match &*st {
                State::Ready(v) => return Arc::clone(v),
                State::Empty(_) => self.shared.ready.wait(&mut st),
            }
        }
    }

    /// Attach a continuation: runs immediately (inline) if the value is
    /// already available, otherwise at `set` time on the fulfilling
    /// thread.
    pub fn on_ready(&self, f: impl FnOnce(&Arc<T>) + Send + 'static) {
        let mut f = Some(f);
        let run_now = {
            let mut st = self.shared.state.lock();
            match &mut *st {
                State::Ready(v) => Some(Arc::clone(v)),
                State::Empty(conts) => {
                    let f = f.take().unwrap();
                    conts.push(Box::new(f));
                    None
                }
            }
        };
        if let Some(v) = run_now {
            (f.take().unwrap())(&v);
        }
    }
}

/// A future for the conjunction of `futures`: ready when all inputs are,
/// carrying the input values in order.
///
/// This is the paper's dependency-graph "intermediate node": HPX-Stencil
/// combines the three neighbouring partitions of the previous time step
/// with `when_all` before launching the update task.
pub fn when_all<T: Send + Sync + 'static>(
    futures: &[SharedFuture<T>],
) -> SharedFuture<Vec<Arc<T>>> {
    let n = futures.len();
    let (promise, out) = channel();
    if n == 0 {
        promise.set(Vec::new());
        return out;
    }

    type GatherState<T> = (Vec<Option<Arc<T>>>, usize, Option<Promise<Vec<Arc<T>>>>);
    struct Gather<T> {
        slots: Mutex<GatherState<T>>,
    }
    let gather = Arc::new(Gather {
        slots: Mutex::new((vec![None; n], 0, Some(promise))),
    });

    for (i, fut) in futures.iter().enumerate() {
        let gather = Arc::clone(&gather);
        fut.on_ready(move |v| {
            let finished = {
                let mut g = gather.slots.lock();
                debug_assert!(g.0[i].is_none(), "when_all slot filled twice");
                g.0[i] = Some(Arc::clone(v));
                g.1 += 1;
                if g.1 == n {
                    let values = g.0.iter_mut().map(|s| s.take().unwrap()).collect();
                    Some((g.2.take().unwrap(), values))
                } else {
                    None
                }
            };
            if let Some((promise, values)) = finished {
                promise.set(values);
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn set_then_get() {
        let (p, f) = channel();
        p.set(42);
        assert_eq!(*f.get(), 42);
        assert_eq!(*f.try_get().unwrap(), 42);
        assert!(f.is_ready());
    }

    #[test]
    fn try_get_before_set_is_none() {
        let (_p, f) = channel::<i32>();
        assert!(f.try_get().is_none());
        assert!(!f.is_ready());
    }

    #[test]
    fn ready_constructor() {
        let f = SharedFuture::ready("hi");
        assert_eq!(*f.get(), "hi");
    }

    #[test]
    #[should_panic(expected = "fulfilled twice")]
    fn double_set_panics() {
        let (p, f) = channel();
        p.set(1);
        // A second promise to the same shared state can't be constructed
        // through the public API; simulate the error via a cloned future
        // feeding a second channel — instead check the direct panic by
        // reconstructing a Promise. Easiest legal repro: set through two
        // promises is impossible, so emulate by calling set twice via
        // unsafe clone — not possible either. Instead: on_ready + set is
        // fine; this test exercises the panic with a hand-made promise.
        let p2 = Promise {
            shared: Arc::clone(&f.shared),
        };
        p2.set(2);
    }

    #[test]
    fn continuation_runs_on_set() {
        let (p, f) = channel();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        f.on_ready(move |v| {
            assert_eq!(**v, 9);
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        p.set(9);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn continuation_runs_immediately_if_ready() {
        let f = SharedFuture::ready(1);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        f.on_ready(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn multiple_consumers_share_value() {
        let (p, f) = channel();
        let f2 = f.clone();
        let f3 = f.clone();
        p.set(vec![1, 2, 3]);
        assert_eq!(*f.get(), vec![1, 2, 3]);
        assert!(Arc::ptr_eq(&f2.get(), &f3.get()));
    }

    #[test]
    fn get_blocks_until_set() {
        let (p, f) = channel();
        let t = std::thread::spawn(move || *f.get());
        std::thread::sleep(std::time::Duration::from_millis(10));
        p.set(7u32);
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    fn when_all_empty_is_immediately_ready() {
        let out = when_all::<i32>(&[]);
        assert!(out.is_ready());
        assert!(out.get().is_empty());
    }

    #[test]
    fn when_all_collects_in_order() {
        let (p1, f1) = channel();
        let (p2, f2) = channel();
        let (p3, f3) = channel();
        let out = when_all(&[f1, f2, f3]);
        p2.set(20);
        assert!(!out.is_ready());
        p3.set(30);
        p1.set(10);
        let v = out.get();
        let vals: Vec<i32> = v.iter().map(|a| **a).collect();
        assert_eq!(vals, vec![10, 20, 30]);
    }

    #[test]
    fn when_all_with_already_ready_inputs() {
        let f1 = SharedFuture::ready(1);
        let (p2, f2) = channel();
        let out = when_all(&[f1, f2]);
        assert!(!out.is_ready());
        p2.set(2);
        let vals: Vec<i32> = out.get().iter().map(|a| **a).collect();
        assert_eq!(vals, vec![1, 2]);
    }

    #[test]
    fn when_all_concurrent_setters() {
        let pairs: Vec<_> = (0..32).map(|_| channel::<usize>()).collect();
        let futures: Vec<_> = pairs.iter().map(|(_, f)| f.clone()).collect();
        let out = when_all(&futures);
        let handles: Vec<_> = pairs
            .into_iter()
            .enumerate()
            .map(|(i, (p, _))| std::thread::spawn(move || p.set(i)))
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let vals: Vec<usize> = out.get().iter().map(|a| **a).collect();
        assert_eq!(vals, (0..32).collect::<Vec<_>>());
    }
}
