//! Task groups and cooperative cancellation.
//!
//! A [`TaskGroup`] collects a set of related tasks (typically: every task
//! of one submitted *job*) and tracks them as a unit:
//!
//! * **in-flight accounting** — `enter`/`exit` pairs count members from
//!   the moment they are promised (spawned, or reserved by a grouped
//!   dataflow node whose inputs are not ready yet) until they terminate;
//! * **a completion latch** — [`TaskGroup::wait`] and
//!   [`TaskGroup::on_quiescent`] fire when the count reaches zero, so a
//!   caller can join *one job* without draining the whole runtime;
//! * **cooperative cancellation** — [`TaskGroup::cancel`] trips a shared
//!   [`CancelToken`]; queued members are skipped at dispatch (their
//!   bodies never run), reserved dataflow nodes are released without
//!   spawning, and running tasks can poll
//!   [`crate::runtime::TaskContext::is_cancelled`] to bail out early.
//!   Nothing is preempted — cancellation is a request, honoured at the
//!   next scheduling point, which is exactly the guarantee a cooperative
//!   M:N runtime can make.
//!
//! Membership is inherited: a task spawned from inside a grouped task
//! (via the [`crate::runtime::TaskContext`] spawn/async/dataflow API)
//! joins its parent's group automatically, so a whole DAG spawned from a
//! grouped root is covered by the root's group.

use crate::fault::TaskError;
use grain_counters::sync::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cheaply clonable cooperative cancellation flag.
///
/// Tokens are shared: every clone observes the same flag. Task bodies
/// receive the ambient token through
/// [`crate::runtime::TaskContext::is_cancelled`] /
/// [`crate::runtime::TaskContext::cancel_token`]; standalone tokens can
/// be created for ad-hoc use.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the flag. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Has [`cancel`](Self::cancel) been called (on any clone)?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

type FaultHook = Box<dyn FnOnce(&TaskError) + Send>;

#[derive(Default)]
struct Hooks {
    /// Callbacks to run when the group next becomes quiescent.
    quiescent: Vec<Box<dyn FnOnce() + Send>>,
    /// Callbacks to run when the group is cancelled (used by grouped
    /// dataflow nodes to release their reservations).
    cancel: Vec<Box<dyn FnOnce() + Send>>,
    /// Callbacks to run when the group's first fault is recorded (used by
    /// the job service's fail-fast policy).
    fault: Vec<FaultHook>,
}

/// Sentinel for "no budget installed" in [`TaskGroup::budget_ns`].
const NO_BUDGET: u64 = u64::MAX;

/// A group of related tasks with in-flight accounting, a completion
/// latch, cooperative cancellation, and an optional *deadline budget*.
/// See the [module docs](self).
pub struct TaskGroup {
    token: CancelToken,
    in_flight: AtomicUsize,
    spawned: AtomicU64,
    completed: AtomicU64,
    skipped: AtomicU64,
    faulted: AtomicU64,
    exec_ns: AtomicU64,
    /// Time anchor for the deadline budget: `budget_ns` is measured from
    /// here so the hot-path check is a single atomic load plus a
    /// monotonic clock read (no locked `Instant` needed).
    created_at: Instant,
    /// Absolute budget deadline as nanoseconds since `created_at`;
    /// [`NO_BUDGET`] means no budget is installed.
    budget_ns: AtomicU64,
    /// Members skipped at dispatch specifically because the budget was
    /// exhausted (a subset of `skipped`).
    budget_skipped: AtomicU64,
    first_fault: Mutex<Option<TaskError>>,
    hooks: Mutex<Hooks>,
    cv: Condvar,
}

impl Default for TaskGroup {
    fn default() -> Self {
        Self {
            token: CancelToken::new(),
            in_flight: AtomicUsize::new(0),
            spawned: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            faulted: AtomicU64::new(0),
            exec_ns: AtomicU64::new(0),
            created_at: Instant::now(),
            budget_ns: AtomicU64::new(NO_BUDGET),
            budget_skipped: AtomicU64::new(0),
            first_fault: Mutex::new(None),
            hooks: Mutex::new(Hooks::default()),
            cv: Condvar::new(),
        }
    }
}

impl TaskGroup {
    /// A fresh, empty (hence quiescent), un-cancelled group.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A clone of the group's cancellation token.
    pub fn token(&self) -> CancelToken {
        self.token.clone()
    }

    /// Request cancellation: trips the token and releases every
    /// registered cancel hook (pending dataflow reservations). Idempotent;
    /// already-running members finish their current phase.
    pub fn cancel(&self) {
        self.token.cancel();
        let hooks = {
            let mut g = self.hooks.lock();
            std::mem::take(&mut g.cancel)
        };
        for h in hooks {
            h();
        }
    }

    /// Has the group been cancelled?
    pub fn is_cancelled(&self) -> bool {
        self.token.is_cancelled()
    }

    /// Members currently in flight (spawned or reserved, not yet
    /// terminated).
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Total members ever entered into the group.
    pub fn spawned(&self) -> u64 {
        self.spawned.load(Ordering::SeqCst)
    }

    /// Members that ran to completion.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::SeqCst)
    }

    /// Members skipped (never executed) because the group was cancelled.
    pub fn skipped(&self) -> u64 {
        self.skipped.load(Ordering::SeqCst)
    }

    /// Members whose body panicked (isolated) or inherited a dependency
    /// fault.
    pub fn faulted(&self) -> u64 {
        self.faulted.load(Ordering::SeqCst)
    }

    /// The first fault recorded since the last
    /// [`reset_faults`](Self::reset_faults), if any.
    pub fn first_fault(&self) -> Option<TaskError> {
        self.first_fault.lock().clone()
    }

    /// Total execution nanoseconds accumulated by the group's phases.
    pub fn exec_ns(&self) -> u64 {
        self.exec_ns.load(Ordering::SeqCst)
    }

    /// Install a deadline budget: after `deadline`, members of this group
    /// are cancelled at dispatch (their bodies never run) instead of
    /// executed-then-discarded. The job service calls this with the job's
    /// absolute deadline so a job that has already lost its race does not
    /// keep burning worker time on tasks nobody will collect. Idempotent;
    /// the latest call wins.
    pub fn set_budget_deadline(&self, deadline: Instant) {
        let ns = deadline
            .saturating_duration_since(self.created_at)
            .as_nanos()
            .min(u128::from(NO_BUDGET - 1)) as u64;
        self.budget_ns.store(ns, Ordering::SeqCst);
    }

    /// Remove the budget (members dispatch normally again).
    pub fn clear_budget(&self) {
        self.budget_ns.store(NO_BUDGET, Ordering::SeqCst);
    }

    /// Time remaining before the budget deadline, or `None` if no budget
    /// is installed. Returns `Some(ZERO)` once the budget is exhausted.
    pub fn remaining_budget(&self) -> Option<Duration> {
        let ns = self.budget_ns.load(Ordering::SeqCst);
        if ns == NO_BUDGET {
            return None;
        }
        let elapsed = self.created_at.elapsed();
        Some(Duration::from_nanos(ns).saturating_sub(elapsed))
    }

    /// Is a budget installed *and* already spent? The worker's dispatch
    /// skip path polls this, so it is a single atomic load when no budget
    /// is installed.
    pub fn budget_exhausted(&self) -> bool {
        let ns = self.budget_ns.load(Ordering::SeqCst);
        ns != NO_BUDGET && self.created_at.elapsed().as_nanos() >= u128::from(ns)
    }

    /// Members skipped at dispatch because the budget was exhausted (a
    /// subset of [`skipped`](Self::skipped)).
    pub fn budget_skipped(&self) -> u64 {
        self.budget_skipped.load(Ordering::SeqCst)
    }

    /// A member was discarded at dispatch because the group's budget was
    /// exhausted. Counts into both `budget_skipped` and `skipped`. Pairs
    /// with [`enter`](Self::enter).
    pub fn exit_over_budget(&self) {
        self.budget_skipped.fetch_add(1, Ordering::SeqCst);
        self.exit_skipped();
    }

    /// Account a member into the group. Called by the grouped spawn
    /// paths; pairs with an eventual [`exit_completed`](Self::exit_completed)
    /// or [`exit_skipped`](Self::exit_skipped).
    pub fn enter(&self) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        self.spawned.fetch_add(1, Ordering::SeqCst);
    }

    /// Add execution time from one phase of a member task.
    pub(crate) fn add_exec_ns(&self, ns: u64) {
        self.exec_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// A member terminated after running to completion. Pairs with
    /// [`enter`](Self::enter).
    pub fn exit_completed(&self) {
        self.completed.fetch_add(1, Ordering::SeqCst);
        self.exit();
    }

    /// A member was discarded without running (cancelled while queued, or
    /// a dataflow reservation released by [`cancel`](Self::cancel)). Pairs
    /// with [`enter`](Self::enter).
    pub fn exit_skipped(&self) {
        self.skipped.fetch_add(1, Ordering::SeqCst);
        self.exit();
    }

    /// A member terminated in the `Faulted` state (its body panicked, or
    /// a dependency fault propagated into it). Records the group's first
    /// fault, fires [`on_fault`](Self::on_fault) hooks, then exits. Pairs
    /// with [`enter`](Self::enter).
    pub fn exit_faulted(&self, error: TaskError) {
        self.faulted.fetch_add(1, Ordering::SeqCst);
        let hooks = {
            let mut first = self.first_fault.lock();
            if first.is_none() {
                *first = Some(error.clone());
            }
            let mut g = self.hooks.lock();
            std::mem::take(&mut g.fault)
        };
        for h in hooks {
            h(&error);
        }
        self.exit();
    }

    /// Run `f` when the group records a fault. If a fault is already
    /// recorded, `f` runs inline with the first fault. Hooks fire once
    /// (on the fault that drains them) and are *not* re-armed by
    /// [`reset_faults`](Self::reset_faults).
    pub fn on_fault(&self, f: impl FnOnce(&TaskError) + Send + 'static) {
        let already = {
            let first = self.first_fault.lock();
            match &*first {
                Some(e) => Some(e.clone()),
                None => {
                    let mut g = self.hooks.lock();
                    g.fault.push(Box::new(f));
                    return;
                }
            }
        };
        if let Some(e) = already {
            f(&e);
        }
    }

    /// Clear the fault count and the recorded first fault (the job
    /// service calls this before re-running a retried job in the same
    /// group). Cumulative spawn/complete/skip counters are *not* reset.
    pub fn reset_faults(&self) {
        *self.first_fault.lock() = None;
        self.faulted.store(0, Ordering::SeqCst);
    }

    fn exit(&self) {
        if self.in_flight.fetch_sub(1, Ordering::SeqCst) == 1 {
            let hooks = {
                let mut g = self.hooks.lock();
                let hooks = std::mem::take(&mut g.quiescent);
                self.cv.notify_all();
                hooks
            };
            for h in hooks {
                h();
            }
        }
    }

    /// Run `f` when the group next becomes quiescent (in-flight count
    /// reaches zero). If the group is *already* quiescent, `f` runs
    /// inline. `f` runs on whichever thread retires the last member —
    /// keep it short.
    pub fn on_quiescent(&self, f: impl FnOnce() + Send + 'static) {
        {
            let mut g = self.hooks.lock();
            if self.in_flight.load(Ordering::SeqCst) != 0 {
                g.quiescent.push(Box::new(f));
                return;
            }
        }
        f();
    }

    /// Run `f` when the group is cancelled; used by grouped dataflow
    /// nodes to release reservations. If already cancelled, `f` runs
    /// inline.
    pub(crate) fn on_cancel(&self, f: impl FnOnce() + Send + 'static) {
        {
            let mut g = self.hooks.lock();
            if !self.is_cancelled() {
                g.cancel.push(Box::new(f));
                return;
            }
        }
        f();
    }

    /// Block until the group is quiescent (in-flight count zero). Unlike
    /// [`crate::Runtime::wait_idle`] this joins *only this group's*
    /// members — other jobs sharing the runtime keep it busy without
    /// holding this wait up.
    pub fn wait(&self) {
        let mut g = self.hooks.lock();
        while self.in_flight.load(Ordering::SeqCst) != 0 {
            self.cv.wait_for(&mut g, Duration::from_millis(1));
        }
    }

    /// [`wait`](Self::wait) with a deadline; returns `true` if the group
    /// went quiescent, `false` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = self.hooks.lock();
        while self.in_flight.load(Ordering::SeqCst) != 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let step = (deadline - now).min(Duration::from_millis(1));
            self.cv.wait_for(&mut g, step);
        }
        true
    }
}

impl std::fmt::Debug for TaskGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskGroup")
            .field("in_flight", &self.in_flight())
            .field("spawned", &self.spawned())
            .field("completed", &self.completed())
            .field("skipped", &self.skipped())
            .field("faulted", &self.faulted())
            .field("cancelled", &self.is_cancelled())
            .field("remaining_budget", &self.remaining_budget())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_shared_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn fresh_group_is_quiescent() {
        let g = TaskGroup::new();
        assert_eq!(g.in_flight(), 0);
        let fired = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&fired);
        g.on_quiescent(move || f.store(true, Ordering::SeqCst));
        assert!(fired.load(Ordering::SeqCst), "fires inline when quiescent");
        assert!(g.wait_timeout(Duration::from_millis(1)));
    }

    #[test]
    fn latch_fires_when_last_member_exits() {
        let g = TaskGroup::new();
        g.enter();
        g.enter();
        let fired = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&fired);
        g.on_quiescent(move || f.store(true, Ordering::SeqCst));
        assert!(!fired.load(Ordering::SeqCst));
        g.exit_completed();
        assert!(!fired.load(Ordering::SeqCst));
        g.exit_skipped();
        assert!(fired.load(Ordering::SeqCst));
        assert_eq!(g.completed(), 1);
        assert_eq!(g.skipped(), 1);
        assert_eq!(g.spawned(), 2);
    }

    #[test]
    fn cancel_releases_hooks_once() {
        let g = TaskGroup::new();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        g.on_cancel(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        g.cancel();
        g.cancel(); // idempotent; hooks already drained
        assert_eq!(count.load(Ordering::SeqCst), 1);
        // Hooks registered after cancellation run inline.
        let c = Arc::clone(&count);
        g.on_cancel(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn wait_blocks_until_exit() {
        let g = TaskGroup::new();
        g.enter();
        let g2 = Arc::clone(&g);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            g2.exit_completed();
        });
        g.wait();
        assert_eq!(g.in_flight(), 0);
        h.join().unwrap();
    }

    #[test]
    fn fault_records_first_error_and_fires_hooks() {
        let g = TaskGroup::new();
        g.enter();
        g.enter();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = Arc::clone(&seen);
        g.on_fault(move |e| s.lock().push(e.clone()));
        g.exit_faulted(TaskError::Panicked {
            message: "first".into(),
        });
        g.exit_faulted(TaskError::Panicked {
            message: "second".into(),
        });
        assert_eq!(g.faulted(), 2);
        assert_eq!(
            g.first_fault(),
            Some(TaskError::Panicked {
                message: "first".into()
            })
        );
        // The hook fired once, on the first fault.
        assert_eq!(seen.lock().len(), 1);
        // Hooks registered after a fault run inline.
        let s = Arc::clone(&seen);
        g.on_fault(move |e| s.lock().push(e.clone()));
        assert_eq!(seen.lock().len(), 2);
        // Reset clears the record for a retry attempt.
        g.reset_faults();
        assert_eq!(g.faulted(), 0);
        assert!(g.first_fault().is_none());
    }

    #[test]
    fn budget_defaults_to_none_and_clamps_at_zero() {
        let g = TaskGroup::new();
        assert_eq!(g.remaining_budget(), None);
        assert!(!g.budget_exhausted());
        g.set_budget_deadline(Instant::now() + Duration::from_secs(60));
        let left = g.remaining_budget().expect("budget installed");
        assert!(left > Duration::from_secs(50), "left = {left:?}");
        assert!(!g.budget_exhausted());
        // A deadline in the past saturates to zero remaining.
        g.set_budget_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(g.remaining_budget(), Some(Duration::ZERO));
        assert!(g.budget_exhausted());
        g.clear_budget();
        assert_eq!(g.remaining_budget(), None);
        assert!(!g.budget_exhausted());
    }

    #[test]
    fn over_budget_exit_counts_into_both_skip_counters() {
        let g = TaskGroup::new();
        g.enter();
        g.enter();
        g.exit_over_budget();
        g.exit_skipped();
        assert_eq!(g.budget_skipped(), 1);
        assert_eq!(g.skipped(), 2);
        assert_eq!(g.in_flight(), 0);
    }

    #[test]
    fn wait_timeout_expires() {
        let g = TaskGroup::new();
        g.enter();
        assert!(!g.wait_timeout(Duration::from_millis(10)));
        g.exit_completed();
        assert!(g.wait_timeout(Duration::from_millis(10)));
    }
}
