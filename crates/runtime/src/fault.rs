//! The task failure model: error values, panic capture, watchdog config.
//!
//! A panicking task must terminate *only itself*. The worker loop wraps
//! every phase in `catch_unwind`; the panic becomes a [`TaskError`] that
//! settles the task's promise, faults its [`crate::TaskGroup`], and
//! propagates along `when_all`/`dataflow` edges as a
//! [`TaskError::Dependency`] cause chain. Blocking consumers keep the
//! historical panic-on-error `get()`, while `try_get`/`wait_timeout`
//! expose the error as a value.
//!
//! Panic *messages* travel out-of-band: promises are usually dropped mid-
//! unwind (deep inside the panicking closure's frame), where the payload
//! is no longer reachable. A process-wide panic hook stores the rendered
//! message in a thread-local while a worker phase is on the stack, so
//! [`crate::Promise`]'s drop glue — and the worker after `catch_unwind`
//! returns — can attach the real message instead of a placeholder.

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;
use std::sync::Once;
use std::time::Duration;

/// Why a future settled without a value. Cheap to clone (the cause chain
/// is `Arc`-shared) so one fault can fan out to many dependents.
#[derive(Debug, Clone)]
pub enum TaskError {
    /// The task's body panicked; the panic was isolated to the task.
    Panicked {
        /// The rendered panic message.
        message: String,
    },
    /// A dependency of this task faulted; `cause` is the upstream error.
    Dependency {
        /// The upstream failure this task inherited.
        cause: Arc<TaskError>,
    },
    /// The task was skipped because its group was cancelled.
    Cancelled,
    /// The promise was dropped without being set — the value can never
    /// arrive (e.g. a producing task was lost).
    BrokenPromise,
    /// A bounded wait elapsed before the future settled.
    Timeout {
        /// How long the caller waited.
        waited: Duration,
    },
    /// A remote call failed at the protocol level — the action was not
    /// registered on the destination, or arguments/results failed to
    /// decode. Distinct from [`TaskError::Panicked`], which a remote
    /// *task* fault maps back to: `Remote` means the call never ran (or
    /// its result never materialized) as a task at all.
    Remote {
        /// Locality the call was addressed to.
        locality: usize,
        /// What went wrong, as reported by the parcel layer.
        message: String,
    },
    /// The connection to a locality was lost (peer died or was shut
    /// down) before its reply arrived. Every future still outstanding
    /// against that locality settles with this error — a dead peer must
    /// never hang `wait_all`.
    Disconnected {
        /// The locality that went away.
        locality: usize,
    },
}

impl TaskError {
    /// Walk the [`TaskError::Dependency`] chain to the originating error.
    pub fn root_cause(&self) -> &TaskError {
        let mut e = self;
        while let TaskError::Dependency { cause } = e {
            e = cause;
        }
        e
    }

    /// Depth of the dependency chain (0 for a root error).
    pub fn chain_len(&self) -> usize {
        let mut n = 0;
        let mut e = self;
        while let TaskError::Dependency { cause } = e {
            n += 1;
            e = cause;
        }
        n
    }
}

impl PartialEq for TaskError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (TaskError::Panicked { message: a }, TaskError::Panicked { message: b }) => a == b,
            (TaskError::Dependency { cause: a }, TaskError::Dependency { cause: b }) => a == b,
            (TaskError::Cancelled, TaskError::Cancelled) => true,
            (TaskError::BrokenPromise, TaskError::BrokenPromise) => true,
            (TaskError::Timeout { waited: a }, TaskError::Timeout { waited: b }) => a == b,
            (
                TaskError::Remote {
                    locality: a,
                    message: am,
                },
                TaskError::Remote {
                    locality: b,
                    message: bm,
                },
            ) => a == b && am == bm,
            (TaskError::Disconnected { locality: a }, TaskError::Disconnected { locality: b }) => {
                a == b
            }
            _ => false,
        }
    }
}

impl Eq for TaskError {}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::Panicked { message } => write!(f, "task panicked: {message}"),
            TaskError::Dependency { cause } => write!(f, "dependency faulted: {cause}"),
            TaskError::Cancelled => write!(f, "task cancelled before running"),
            TaskError::BrokenPromise => write!(f, "promise dropped without a value"),
            TaskError::Timeout { waited } => write!(f, "timed out after {waited:?}"),
            TaskError::Remote { locality, message } => {
                write!(f, "remote call failed on locality#{locality}: {message}")
            }
            TaskError::Disconnected { locality } => {
                write!(
                    f,
                    "connection to locality#{locality} lost before the reply arrived"
                )
            }
        }
    }
}

impl std::error::Error for TaskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TaskError::Dependency { cause } => Some(cause.as_ref()),
            _ => None,
        }
    }
}

/// Stall-watchdog configuration (see [`crate::RuntimeConfig::watchdog`]).
///
/// The watchdog thread samples a progress signature (phases executed,
/// tasks completed, tasks in flight, dormant dataflow reservations) every
/// `interval`. If work exists but the signature has not moved for
/// `stall_after`, it declares a stall: bumps `/runtime/watchdog/stalls`,
/// and emits one diagnostic dump per stall episode (per-worker queue
/// depths, sleepers, dead workers, stall age).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// How often the watchdog samples progress.
    pub interval: Duration,
    /// How long the signature must be flat (while work exists) before a
    /// stall is declared.
    pub stall_after: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(50),
            stall_after: Duration::from_millis(500),
        }
    }
}

thread_local! {
    /// Message of the most recent panic raised while a worker phase was
    /// executing on this thread.
    static CAPTURED_PANIC: RefCell<Option<String>> = const { RefCell::new(None) };
    /// `true` while a worker phase is on this thread's stack (set by
    /// [`PhaseScope`]). Gates the panic hook: panics outside task phases
    /// keep the default behaviour (message printed to stderr).
    static IN_PHASE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Error to use when a promise is dropped unfulfilled on this thread
    /// (set around intentional drops: cancellation skips, post-panic
    /// frame teardown).
    static DROP_REASON: RefCell<Option<TaskError>> = const { RefCell::new(None) };
}

/// Install the process-wide panic hook that captures messages of panics
/// raised inside worker phases (idempotent; chains to the previous hook
/// for all other panics).
pub(crate) fn install_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if IN_PHASE.with(|p| p.get()) {
                let message = payload_message(info.payload());
                CAPTURED_PANIC.with(|c| *c.borrow_mut() = Some(message));
                // Swallow the default stderr report: an isolated task
                // panic is an error *value*, not a crash.
            } else {
                previous(info);
            }
        }));
    });
}

/// Render a panic payload (`&str` / `String` / other) to a message.
pub(crate) fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// RAII marker: a worker phase is executing on this thread. While alive,
/// the panic hook captures (and silences) panic messages.
pub(crate) struct PhaseScope {
    _private: (),
}

impl PhaseScope {
    pub(crate) fn enter() -> Self {
        IN_PHASE.with(|p| p.set(true));
        CAPTURED_PANIC.with(|c| c.borrow_mut().take());
        Self { _private: () }
    }
}

impl Drop for PhaseScope {
    fn drop(&mut self) {
        IN_PHASE.with(|p| p.set(false));
    }
}

/// The message captured by the panic hook for the current phase, if any.
/// Peeks (does not clear): several promises may be dropped during one
/// unwind and each should see the same message.
pub(crate) fn captured_panic() -> Option<String> {
    CAPTURED_PANIC.with(|c| c.borrow().clone())
}

/// Take and clear the captured message (end-of-phase, worker side).
pub(crate) fn take_captured_panic() -> Option<String> {
    CAPTURED_PANIC.with(|c| c.borrow_mut().take())
}

/// Run `f` with `reason` as the ambient error for promises dropped
/// unfulfilled on this thread (used when a task frame is discarded
/// deliberately: cancellation skip, post-panic teardown).
pub(crate) fn with_drop_reason<R>(reason: TaskError, f: impl FnOnce() -> R) -> R {
    DROP_REASON.with(|r| *r.borrow_mut() = Some(reason));
    let out = f();
    DROP_REASON.with(|r| r.borrow_mut().take());
    out
}

/// The ambient drop reason, if any (peeked, not cleared — one teardown
/// may drop several promises).
pub(crate) fn drop_reason() -> Option<TaskError> {
    DROP_REASON.with(|r| r.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_cause_unwraps_dependency_chain() {
        let root = TaskError::Panicked {
            message: "boom".into(),
        };
        let mid = TaskError::Dependency {
            cause: Arc::new(root.clone()),
        };
        let top = TaskError::Dependency {
            cause: Arc::new(mid),
        };
        assert_eq!(top.chain_len(), 2);
        assert_eq!(top.root_cause(), &root);
        assert_eq!(root.chain_len(), 0);
    }

    #[test]
    fn display_includes_cause() {
        let e = TaskError::Dependency {
            cause: Arc::new(TaskError::Panicked {
                message: "div by zero".into(),
            }),
        };
        let s = e.to_string();
        assert!(s.contains("dependency faulted"), "{s}");
        assert!(s.contains("div by zero"), "{s}");
    }

    #[test]
    fn error_source_follows_chain() {
        use std::error::Error;
        let e = TaskError::Dependency {
            cause: Arc::new(TaskError::BrokenPromise),
        };
        assert!(e.source().is_some());
        assert!(TaskError::BrokenPromise.source().is_none());
    }

    #[test]
    fn payload_message_handles_both_string_kinds() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static");
        assert_eq!(payload_message(s.as_ref()), "static");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(payload_message(s.as_ref()), "owned");
        let s: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(payload_message(s.as_ref()), "<non-string panic payload>");
    }
}
