//! The runtime: worker pool, spawn paths, task context, termination.

use crate::fault::{TaskError, WatchdogConfig};
use crate::future::{channel, when_all, SharedFuture};
use crate::group::{CancelToken, TaskGroup};
use crate::scheduler::{Scheduler, SchedulerKind};
use crate::task::{Poll, Priority, StagedTask, Task, TaskId, TaskIdAllocator, TaskState};
use grain_counters::sync::{Condvar, Mutex};
use grain_counters::threads::ThreadCounters;
use grain_counters::{FaultPlan, RawCounter, Registry, Unit};
use grain_topology::{host, NumaTopology};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Runtime configuration. Start from [`RuntimeConfig::default`] (all host
/// cores, the paper's Priority Local-FIFO policy) and override fields.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of worker OS threads ("one static OS thread per core" by
    /// default; oversubscription is allowed and functionally sound).
    pub workers: usize,
    /// NUMA domains to split the workers into. `None` detects the host.
    pub numa_domains: Option<usize>,
    /// Scheduling policy.
    pub scheduler: SchedulerKind,
    /// Number of high-priority dual queues (§I-B: "a specified number of
    /// high priority dual queues").
    pub high_queues: usize,
    /// Failed full search rounds before a worker parks.
    pub spin_rounds: u32,
    /// Upper bound on one parking nap (re-checks for work after).
    pub park_timeout: Duration,
    /// Record per-worker task-event timelines (see [`crate::trace`]).
    /// Off by default: tracing costs one buffer append per phase.
    pub trace: bool,
    /// Deterministic fault-injection plan. `None` (default) injects
    /// nothing. Only consulted when the crate is built with the
    /// `fault-inject` feature — release builds without it compile the
    /// injection hooks out entirely.
    pub fault_plan: Option<FaultPlan>,
    /// Stall watchdog. `None` (default) runs no monitor thread; `Some`
    /// starts one that samples progress every `interval` and reports
    /// stalls (see [`WatchdogConfig`] and `/runtime/watchdog/*`).
    pub watchdog: Option<WatchdogConfig>,
    /// Id of the locality this runtime represents (default 0, the root).
    /// Parameterizes every registered counter path — a runtime on
    /// locality 3 exposes `/threads{locality#3/total}/…` — so a
    /// multi-locality deployment gets a disjoint counter namespace per
    /// process/locality (the namespace HPX's distributed monitoring
    /// queries).
    pub locality_id: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: host::available_cores(),
            numa_domains: None,
            scheduler: SchedulerKind::PriorityLocalFifo,
            high_queues: 1,
            spin_rounds: 8,
            park_timeout: Duration::from_micros(200),
            trace: false,
            fault_plan: None,
            watchdog: None,
            locality_id: 0,
        }
    }
}

impl RuntimeConfig {
    /// Config with an explicit worker count and defaults elsewhere.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers,
            ..Self::default()
        }
    }
}

/// Eventcount-style parking spot.
///
/// `generation` closes the classic lost-wakeup window between a worker's
/// final empty work search and its decision to sleep: a worker snapshots
/// the generation *before* searching ([`Inner::park_ticket`]); every
/// [`Inner::wake`] bumps it (whether or not anyone is asleep yet). At
/// park time a stale ticket proves work may have arrived after the search
/// started, so the worker aborts the park and searches again — checked
/// both before and after taking the lock, so a wake that lands between
/// "announce sleep" and "actually wait" can never be missed.
struct Parker {
    lock: Mutex<()>,
    cv: Condvar,
    sleepers: AtomicUsize,
    generation: AtomicUsize,
}

struct IdleGate {
    lock: Mutex<()>,
    cv: Condvar,
}

/// Watchdog event counters, registered as `/runtime{...}/watchdog/*`.
pub(crate) struct WatchdogCounters {
    /// Progress samples taken.
    pub(crate) checks: Arc<RawCounter>,
    /// Stall episodes detected (no progress for `stall_after` while work
    /// existed).
    pub(crate) stalls: Arc<RawCounter>,
    /// Diagnostic dumps emitted (one per stall episode).
    pub(crate) dumps: Arc<RawCounter>,
}

/// Shared state of a runtime: queues, counters, lifecycle flags.
pub(crate) struct Inner {
    pub(crate) scheduler: Scheduler,
    pub(crate) counters: ThreadCounters,
    pub(crate) registry: Registry,
    pub(crate) ids: TaskIdAllocator,
    pub(crate) in_flight: AtomicUsize,
    pub(crate) shutdown: AtomicBool,
    /// Workers with index ≥ this limit are throttled (parked without
    /// taking work) — the Porterfield-style thread-throttling actuator
    /// the paper's §V/§VI discuss driving with these counters.
    pub(crate) active_limit: AtomicUsize,
    pub(crate) tracer: crate::trace::Tracer,
    pub(crate) config: RuntimeConfig,
    /// Dormant dataflow reservations: nodes whose dependencies have not
    /// settled yet. Not part of `in_flight` (no task exists yet), but
    /// still "work the runtime owes" — the watchdog counts them when
    /// judging whether a flat progress signature is a stall (a dependency
    /// cycle is exactly `in_flight == 0 && dormant > 0`, forever).
    pub(crate) dormant: AtomicUsize,
    /// Worker threads that died from an uncontained panic (e.g. a
    /// runtime-internal bug). Non-zero turns indefinite waits into loud
    /// failures instead of hangs.
    pub(crate) dead_workers: AtomicUsize,
    pub(crate) watchdog: WatchdogCounters,
    parker: Parker,
    idle: IdleGate,
    /// Wakes the watchdog thread early (shutdown).
    monitor: Parker,
}

thread_local! {
    /// (address of the runtime's Inner, worker index) when the current
    /// thread is a worker.
    static CURRENT_WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

impl Inner {
    fn addr(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    /// Worker index if the calling thread is one of this runtime's workers.
    pub(crate) fn current_worker(self: &Arc<Self>) -> Option<usize> {
        CURRENT_WORKER.with(|c| match c.get() {
            Some((addr, w)) if addr == self.addr() => Some(w),
            _ => None,
        })
    }

    pub(crate) fn bind_worker(self: &Arc<Self>, w: usize) {
        let addr = self.addr();
        CURRENT_WORKER.with(|c| c.set(Some((addr, w))));
    }

    pub(crate) fn unbind_worker(&self) {
        CURRENT_WORKER.with(|c| c.set(None));
    }

    /// Core spawn path: route a staged task to its queue and wake a
    /// sleeper.
    pub(crate) fn spawn_staged(self: &Arc<Self>, staged: StagedTask) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let here = self.current_worker();
        let w = here.unwrap_or_else(|| self.scheduler.queues.next_rr());
        self.counters.spawned.incr(w);
        match staged.priority {
            Priority::High => self.scheduler.queues.push_high(staged),
            Priority::Normal => self.scheduler.queues.push_staged(w, staged),
            Priority::Low => self.scheduler.queues.push_low(staged),
        }
        self.wake();
    }

    /// Spawn a one-phase closure with a priority; returns the task id.
    pub(crate) fn spawn_once(
        self: &Arc<Self>,
        priority: Priority,
        f: impl FnOnce(&mut TaskContext<'_>) + Send + 'static,
    ) -> TaskId {
        self.spawn_once_in(None, priority, f)
    }

    /// Spawn a one-phase closure as a member of `group` (None: ungrouped).
    /// Enters the group before the task becomes visible to the scheduler,
    /// so the group can never look quiescent while the task is queued.
    pub(crate) fn spawn_once_in(
        self: &Arc<Self>,
        group: Option<Arc<TaskGroup>>,
        priority: Priority,
        f: impl FnOnce(&mut TaskContext<'_>) + Send + 'static,
    ) -> TaskId {
        if let Some(g) = &group {
            g.enter();
        }
        let id = self.ids.allocate();
        self.spawn_staged(StagedTask::once(id, priority, f).with_group(group));
        id
    }

    /// Spawn a multi-phase body.
    pub(crate) fn spawn_phased(
        self: &Arc<Self>,
        priority: Priority,
        body: impl FnMut(&mut TaskContext<'_>) -> Poll + Send + 'static,
    ) -> TaskId {
        let id = self.ids.allocate();
        self.spawn_staged(StagedTask::phased(id, priority, body));
        id
    }

    /// `hpx::async`: run `f` as a task, return a future for its result.
    pub(crate) fn async_call<R: Send + Sync + 'static>(
        self: &Arc<Self>,
        priority: Priority,
        f: impl FnOnce(&mut TaskContext<'_>) -> R + Send + 'static,
    ) -> SharedFuture<R> {
        self.async_call_in(None, priority, f)
    }

    /// Grouped `hpx::async`. If the group is cancelled before dispatch the
    /// body never runs and the future never becomes ready — join grouped
    /// work through the group latch, not by blocking on its futures.
    pub(crate) fn async_call_in<R: Send + Sync + 'static>(
        self: &Arc<Self>,
        group: Option<Arc<TaskGroup>>,
        priority: Priority,
        f: impl FnOnce(&mut TaskContext<'_>) -> R + Send + 'static,
    ) -> SharedFuture<R> {
        let (promise, future) = channel();
        self.spawn_once_in(group, priority, move |ctx| promise.set(f(ctx)));
        future
    }

    /// `hpx::dataflow`: when every dependency is ready, spawn a task that
    /// consumes their values; return the future of its result. The task is
    /// *not created* until the inputs are ready — dependencies hold only a
    /// lightweight continuation, matching HPX's staging economy.
    pub(crate) fn dataflow<T, R>(
        self: &Arc<Self>,
        priority: Priority,
        deps: &[SharedFuture<T>],
        f: impl FnOnce(&mut TaskContext<'_>, Vec<Arc<T>>) -> R + Send + 'static,
    ) -> SharedFuture<R>
    where
        T: Send + Sync + 'static,
        R: Send + Sync + 'static,
    {
        self.dataflow_in(None, priority, deps, f)
    }

    /// Grouped `hpx::dataflow`. The node is accounted into the group
    /// *immediately* as a reservation — before its inputs are ready — so
    /// the group cannot look quiescent while part of its DAG is still
    /// dormant. Cancellation releases dormant reservations without
    /// spawning them: a cancel hook and the readiness continuation race on
    /// a claim flag and exactly one side retires the node.
    pub(crate) fn dataflow_in<T, R>(
        self: &Arc<Self>,
        group: Option<Arc<TaskGroup>>,
        priority: Priority,
        deps: &[SharedFuture<T>],
        f: impl FnOnce(&mut TaskContext<'_>, Vec<Arc<T>>) -> R + Send + 'static,
    ) -> SharedFuture<R>
    where
        T: Send + Sync + 'static,
        R: Send + Sync + 'static,
    {
        let (promise, future) = channel();
        let inner = Arc::clone(self);
        self.dormant.fetch_add(1, Ordering::SeqCst);
        match group {
            None => {
                when_all(deps).on_settled(move |outcome| {
                    inner.dormant.fetch_sub(1, Ordering::SeqCst);
                    match outcome {
                        Ok(vals) => {
                            let vals: Vec<Arc<T>> = vals.iter().map(Arc::clone).collect();
                            inner.spawn_once(priority, move |ctx| promise.set(f(ctx, vals)));
                        }
                        Err(e) => {
                            // `when_all` already wrapped the input fault in
                            // a Dependency cause — pass it along unchanged
                            // (one wrap per dependency hop).
                            promise.fail(e.clone());
                        }
                    }
                });
            }
            Some(g) => {
                g.enter();
                let claimed = Arc::new(AtomicBool::new(false));
                {
                    let g = Arc::clone(&g);
                    let claimed = Arc::clone(&claimed);
                    let inner = Arc::clone(&inner);
                    g.clone().on_cancel(move || {
                        if !claimed.swap(true, Ordering::SeqCst) {
                            inner.dormant.fetch_sub(1, Ordering::SeqCst);
                            g.exit_skipped();
                        }
                    });
                }
                when_all(deps).on_settled(move |outcome| {
                    if claimed.swap(true, Ordering::SeqCst) {
                        // The cancel hook won the race and already retired
                        // this reservation; settle the output so waiters
                        // are not stranded.
                        promise.fail(TaskError::Cancelled);
                        return;
                    }
                    inner.dormant.fetch_sub(1, Ordering::SeqCst);
                    if g.is_cancelled() {
                        g.exit_skipped();
                        promise.fail(TaskError::Cancelled);
                        return;
                    }
                    match outcome {
                        Ok(vals) => {
                            let vals: Vec<Arc<T>> = vals.iter().map(Arc::clone).collect();
                            let id = inner.ids.allocate();
                            // The reservation already entered the group;
                            // hand it to the staged task without entering
                            // again.
                            inner.spawn_staged(
                                StagedTask::once(id, priority, move |ctx| {
                                    promise.set(f(ctx, vals))
                                })
                                .with_group(Some(g)),
                            );
                        }
                        Err(e) => {
                            // The node inherits its dependency's fault: it
                            // never runs, the group records the fault, and
                            // the output carries the cause chain onward.
                            g.exit_faulted(e.clone());
                            promise.fail(e.clone());
                        }
                    }
                });
            }
        }
        future
    }

    /// Called when a task reaches `Terminated`.
    pub(crate) fn task_done(&self) {
        if self.in_flight.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _g = self.idle.lock.lock();
            self.idle.cv.notify_all();
        }
    }

    /// Resume a previously suspended task.
    pub(crate) fn resume(self: &Arc<Self>, mut task: Task) {
        task.transition(TaskState::Pending);
        let w = self
            .current_worker()
            .unwrap_or_else(|| self.scheduler.queues.next_rr());
        self.scheduler.queues.push_pending(w, task);
        self.wake();
    }

    /// Snapshot the wake generation. Taken at the top of a worker-loop
    /// iteration, *before* the work search, so any spawn/resume/shutdown
    /// that lands during or after the search invalidates the ticket and
    /// turns the subsequent [`park`](Self::park) into a no-op re-probe.
    pub(crate) fn park_ticket(&self) -> usize {
        self.parker.generation.load(Ordering::SeqCst)
    }

    /// Wake sleeping workers. Always advances the generation first so a
    /// worker between its final empty search and its park observes the
    /// event through its stale ticket even though it is not asleep yet.
    pub(crate) fn wake(&self) {
        self.parker.generation.fetch_add(1, Ordering::SeqCst);
        if self.parker.sleepers.load(Ordering::SeqCst) > 0 {
            let _g = self.parker.lock.lock();
            self.parker.cv.notify_all();
        }
    }

    /// Park the calling worker until woken or timed out — but only if no
    /// wake happened since `ticket` was taken, the queues still look
    /// empty, and shutdown has not begun.
    pub(crate) fn park(&self, ticket: usize) {
        self.park_if(ticket, || self.scheduler.queues.total_len() == 0)
    }

    /// Park a *throttled* worker: same protocol, but queued work does not
    /// keep it awake (it must not take any) — only a wake (generation
    /// bump, e.g. from [`Runtime::set_active_workers`] or shutdown) or
    /// the timeout gets it back up to re-check the throttle limit.
    pub(crate) fn park_throttled(&self, ticket: usize) {
        self.park_if(ticket, || true)
    }

    fn park_if(&self, ticket: usize, quiet: impl Fn() -> bool) {
        self.parker.sleepers.fetch_add(1, Ordering::SeqCst);
        // Re-check after announcing sleep: a stale ticket means a wake
        // fired after our search started — the work it signalled may be
        // work we already failed to find, so re-search instead of
        // sleeping on it.
        if self.parker.generation.load(Ordering::SeqCst) != ticket
            || !quiet()
            || self.shutdown.load(Ordering::SeqCst)
        {
            self.parker.sleepers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let mut g = self.parker.lock.lock();
        // Final check under the lock: `wake` bumps the generation before
        // taking this lock to notify, so a bump observed here happened
        // strictly before our wait — and one we don't observe will take
        // the lock after us and its notify_all reaches our wait.
        if self.parker.generation.load(Ordering::SeqCst) == ticket {
            self.parker.cv.wait_for(&mut g, self.config.park_timeout);
        }
        drop(g);
        self.parker.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Block until no task is in flight (staged, pending, active or
    /// suspended).
    ///
    /// # Panics
    /// Panics — instead of hanging forever — if a worker thread has died
    /// and the remaining workers make no progress on the in-flight tasks.
    pub(crate) fn wait_idle(&self) {
        if !self.try_wait_idle() {
            panic!(
                "Runtime::wait_idle would hang: {} worker thread(s) died and {} task(s) \
                 are stranded without progress",
                self.dead_workers.load(Ordering::SeqCst),
                self.in_flight.load(Ordering::SeqCst),
            );
        }
    }

    /// [`wait_idle`](Self::wait_idle) that reports strandedness instead of
    /// panicking: returns `false` if a worker died and the in-flight count
    /// stopped moving (the wait would otherwise never finish).
    pub(crate) fn try_wait_idle(&self) -> bool {
        const STRANDED_AFTER: Duration = Duration::from_millis(200);
        let mut g = self.idle.lock.lock();
        let mut last_sig = (0u64, 0usize);
        let mut flat_since = Instant::now();
        while self.in_flight.load(Ordering::SeqCst) != 0 {
            self.idle.cv.wait_for(&mut g, Duration::from_millis(1));
            if self.dead_workers.load(Ordering::SeqCst) > 0 {
                let sig = (
                    self.counters.phases.sum(),
                    self.in_flight.load(Ordering::SeqCst),
                );
                if sig != last_sig {
                    last_sig = sig;
                    flat_since = Instant::now();
                } else if flat_since.elapsed() >= STRANDED_AFTER {
                    return false;
                }
            }
        }
        true
    }
}

/// Handle passed to every task phase: identifies the task and worker, and
/// exposes the spawn/dataflow API so tasks can create more work (the
/// execution tree of §I-C is "generated at runtime").
pub struct TaskContext<'a> {
    pub(crate) inner: &'a Arc<Inner>,
    /// Index of the worker executing this phase.
    pub worker: usize,
    /// Id of the running task.
    pub task_id: TaskId,
    /// Zero-based phase number of this activation.
    pub phase: u64,
    pub(crate) suspend_registration: Option<Box<dyn FnOnce(Resumer) + Send>>,
    pub(crate) group: Option<Arc<TaskGroup>>,
}

impl TaskContext<'_> {
    /// Spawn a one-phase child task at normal priority. The child joins
    /// this task's group, if any.
    pub fn spawn(&self, f: impl FnOnce(&mut TaskContext<'_>) + Send + 'static) -> TaskId {
        self.inner
            .spawn_once_in(self.group.clone(), Priority::Normal, f)
    }

    /// Spawn a one-phase child task with an explicit priority. The child
    /// joins this task's group, if any.
    pub fn spawn_with(
        &self,
        priority: Priority,
        f: impl FnOnce(&mut TaskContext<'_>) + Send + 'static,
    ) -> TaskId {
        self.inner.spawn_once_in(self.group.clone(), priority, f)
    }

    /// `hpx::async` from inside a task. The child joins this task's
    /// group, if any.
    pub fn async_call<R: Send + Sync + 'static>(
        &self,
        f: impl FnOnce(&mut TaskContext<'_>) -> R + Send + 'static,
    ) -> SharedFuture<R> {
        self.inner
            .async_call_in(self.group.clone(), Priority::Normal, f)
    }

    /// `hpx::dataflow` from inside a task. The node joins this task's
    /// group, if any (reserved immediately — see
    /// [`Runtime::dataflow_in`]).
    pub fn dataflow<T, R>(
        &self,
        deps: &[SharedFuture<T>],
        f: impl FnOnce(&mut TaskContext<'_>, Vec<Arc<T>>) -> R + Send + 'static,
    ) -> SharedFuture<R>
    where
        T: Send + Sync + 'static,
        R: Send + Sync + 'static,
    {
        self.inner
            .dataflow_in(self.group.clone(), Priority::Normal, deps, f)
    }

    /// Has this task's group been cancelled? Long-running bodies should
    /// poll this and return early — cancellation is cooperative; nothing
    /// preempts an active phase. Always `false` for ungrouped tasks.
    pub fn is_cancelled(&self) -> bool {
        self.group.as_deref().is_some_and(TaskGroup::is_cancelled)
    }

    /// A clone of the ambient cancellation token (None for ungrouped
    /// tasks) — pass it into nested closures or foreign threads that need
    /// to observe cancellation.
    pub fn cancel_token(&self) -> Option<CancelToken> {
        self.group.as_deref().map(TaskGroup::token)
    }

    /// The group this task belongs to, if any.
    pub fn group(&self) -> Option<&Arc<TaskGroup>> {
        self.group.as_ref()
    }

    /// Time left in the ambient deadline budget
    /// ([`TaskGroup::remaining_budget`]), or `None` when the task is
    /// ungrouped or its group has no budget installed. Long-running bodies
    /// can use this to right-size their next slice of work — the dispatch
    /// path already skips whole tasks once the budget is spent, but only a
    /// running body can cut *itself* short.
    pub fn remaining_budget(&self) -> Option<Duration> {
        self.group.as_deref().and_then(TaskGroup::remaining_budget)
    }

    /// Arrange for this task to be resumed when `future` becomes ready,
    /// then return [`Poll::Suspend`] from the body. The task enters the
    /// *suspended* state and its next activation is a new thread phase.
    ///
    /// ```ignore
    /// move |ctx| {
    ///     if !input.is_ready() {
    ///         ctx.suspend_until(&input);
    ///         return Poll::Suspend;
    ///     }
    ///     consume(&input.try_get().unwrap());
    ///     Poll::Complete
    /// }
    /// ```
    pub fn suspend_until<T: Send + Sync + 'static>(&mut self, future: &SharedFuture<T>) {
        let future = future.clone();
        self.suspend_registration = Some(Box::new(move |resumer: Resumer| {
            // Resume on *settle*, not just on value: a faulted dependency
            // must wake the task (which then observes the error via
            // `try_get`) rather than strand it suspended forever.
            future.on_settled(move |_| resumer.resume());
        }));
    }

    /// Number of workers in this runtime.
    pub fn num_workers(&self) -> usize {
        self.inner.counters.workers()
    }
}

/// Token that re-enqueues a suspended task when invoked. Created by the
/// worker when a body returns [`Poll::Suspend`]; consumed by the future's
/// continuation.
pub struct Resumer {
    pub(crate) inner: Arc<Inner>,
    pub(crate) task: Option<Task>,
}

impl Resumer {
    /// Put the suspended task back into a pending queue.
    pub fn resume(mut self) {
        let task = self.task.take().expect("resumer consumed twice");
        self.inner.resume(task);
    }
}

impl Drop for Resumer {
    fn drop(&mut self) {
        // A dropped resumer would strand its task forever; surface that
        // loudly in debug builds (release: the task leaks, in_flight never
        // reaches zero and wait_idle hangs — still detectable).
        debug_assert!(
            self.task.is_none(),
            "Resumer dropped without resuming its task"
        );
    }
}

/// The task runtime: an M:N cooperative scheduler in the mould of HPX's
/// thread manager, with first-class performance counters.
///
/// ```
/// use grain_runtime::{Runtime, RuntimeConfig};
///
/// let rt = Runtime::new(RuntimeConfig::with_workers(2));
/// let doubled = rt.async_call(|_ctx| 21 * 2);
/// assert_eq!(*doubled.get(), 42);
/// rt.wait_idle();
/// assert!(rt.counters().tasks.sum() >= 1);
/// ```
pub struct Runtime {
    inner: Arc<Inner>,
    threads: Vec<std::thread::JoinHandle<()>>,
    watchdog_thread: Option<std::thread::JoinHandle<()>>,
}

/// Reports a worker thread that dies from an uncontained panic (a
/// runtime-internal bug — task panics are caught in the worker loop and
/// never reach this). Arms loud failure of `wait_idle`/`Drop` instead of
/// a silent hang, and wakes current waiters so they notice immediately.
struct WorkerDeathSentinel {
    inner: Arc<Inner>,
    worker: usize,
}

impl Drop for WorkerDeathSentinel {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.inner.dead_workers.fetch_add(1, Ordering::SeqCst);
            eprintln!(
                "grain-runtime: worker {} died from an uncontained panic; \
                 {} task(s) in flight",
                self.worker,
                self.inner.in_flight.load(Ordering::SeqCst),
            );
            self.inner.wake();
            let _g = self.inner.idle.lock.lock();
            self.inner.idle.cv.notify_all();
        }
    }
}

/// The stall-watchdog loop: samples a progress signature every
/// `cfg.interval`; if work exists (tasks in flight or dormant dataflow
/// reservations) but the signature stays flat for `cfg.stall_after`,
/// records a stall and emits one diagnostic dump for the episode.
fn watchdog_loop(inner: Arc<Inner>, cfg: WatchdogConfig) {
    let mut last_sig = (u64::MAX, u64::MAX, usize::MAX, usize::MAX);
    let mut flat_since = Instant::now();
    let mut dumped = false;
    loop {
        {
            let mut g = inner.monitor.lock.lock();
            if inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            inner.monitor.cv.wait_for(&mut g, cfg.interval);
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        inner.watchdog.checks.incr();
        let sig = (
            inner.counters.phases.sum(),
            inner.counters.tasks.sum(),
            inner.in_flight.load(Ordering::SeqCst),
            inner.dormant.load(Ordering::SeqCst),
        );
        // A flat signature is only suspicious if the runtime could have
        // made progress: there must be work (tasks in flight or dormant
        // dataflow reservations) *and* at least one active worker. A
        // runtime throttled to zero workers (`set_active_workers(0)` — a
        // paused/idle service) is expected to sit still; counting that as
        // a stall would page on every quiet period.
        let paused = inner.active_limit.load(Ordering::SeqCst) == 0;
        let work_exists = (sig.2 > 0 || sig.3 > 0) && !paused;
        if sig != last_sig {
            last_sig = sig;
            flat_since = Instant::now();
            dumped = false;
            continue;
        }
        if !work_exists {
            flat_since = Instant::now();
            dumped = false;
            continue;
        }
        let stall_age = flat_since.elapsed();
        if stall_age >= cfg.stall_after && !dumped {
            dumped = true;
            inner.watchdog.stalls.incr();
            inner.watchdog.dumps.incr();
            watchdog_dump(&inner, stall_age);
        }
    }
}

/// One diagnostic dump: global progress state plus per-worker queue
/// depths, so a stalled run tells you *where* the work is stuck.
fn watchdog_dump(inner: &Inner, stall_age: Duration) {
    let q = &inner.scheduler.queues;
    eprintln!(
        "grain-runtime watchdog: no progress for {:?} — in-flight {}, dormant dataflow \
         reservations {}, sleepers {}, dead workers {}, phases {}, tasks {}",
        stall_age,
        inner.in_flight.load(Ordering::SeqCst),
        inner.dormant.load(Ordering::SeqCst),
        inner.parker.sleepers.load(Ordering::SeqCst),
        inner.dead_workers.load(Ordering::SeqCst),
        inner.counters.phases.sum(),
        inner.counters.tasks.sum(),
    );
    for (w, d) in q.workers.iter().enumerate() {
        let staged = d.staged.len();
        let pending = d.pending.len();
        if staged > 0 || pending > 0 {
            eprintln!("  worker {w}: staged {staged}, pending {pending}");
        }
    }
    if inner.dormant.load(Ordering::SeqCst) > 0 && inner.in_flight.load(Ordering::SeqCst) == 0 {
        eprintln!(
            "  likely cause: a dependency cycle or an unfulfilled external promise — \
             dataflow nodes are waiting on futures nothing will ever settle"
        );
    }
}

impl Runtime {
    /// Start a runtime with the given configuration. Worker threads are
    /// created immediately (HPX: static OS threads at startup).
    pub fn new(config: RuntimeConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        // Panic isolation needs the message-capturing hook (process-wide,
        // installed once, chains to the previous hook for non-task panics).
        crate::fault::install_panic_hook();
        let numa = match config.numa_domains {
            Some(d) => NumaTopology::block(config.workers, d),
            None => host::host_topology(config.workers),
        };
        let scheduler = Scheduler::new(numa, config.scheduler, config.high_queues);
        let counters = ThreadCounters::new(config.workers);
        let registry = Registry::new();
        // Every counter path is parameterized by the configured locality
        // id so non-root localities expose a correct, disjoint namespace.
        let t = grain_counters::CounterPath::total_instance_for(config.locality_id);
        counters
            .register_at(&registry, config.locality_id)
            .expect("fresh registry cannot have duplicates");
        // Instantaneous queue-length counters (not in the paper's list but
        // part of HPX's monitoring surface; useful for load introspection).
        {
            use grain_counters::{derived::DerivedCounter, Unit};
            let q = std::sync::Arc::clone(&scheduler.queues);
            registry
                .register(
                    &format!("/threads{{{t}}}/count/staged-queue-length"),
                    DerivedCounter::new(Unit::Count, move || {
                        q.workers.iter().map(|d| d.staged.len()).sum::<usize>() as f64
                    }),
                )
                .expect("fresh registry");
            let q = std::sync::Arc::clone(&scheduler.queues);
            registry
                .register(
                    &format!("/threads{{{t}}}/count/pending-queue-length"),
                    DerivedCounter::new(Unit::Count, move || {
                        q.workers.iter().map(|d| d.pending.len()).sum::<usize>() as f64
                    }),
                )
                .expect("fresh registry");
        }
        // Queue-contention counters: aggregated over every queue in the
        // set (see `queue::QueueStats`). Lost head/tail CAS races and
        // segment allocations are the lock-free queue's analogue of lock
        // contention — flat curves here under fine grain are exactly what
        // the mutex queue could not deliver.
        {
            use grain_counters::registry::RawView;
            let stats = scheduler.queues.stats();
            registry
                .register(
                    &format!("/threads{{{t}}}/queue/cas-retries"),
                    RawView::new(Arc::clone(&stats.cas_retries), Unit::Count),
                )
                .expect("fresh registry");
            registry
                .register(
                    &format!("/threads{{{t}}}/queue/segment-allocations"),
                    RawView::new(Arc::clone(&stats.segment_allocs), Unit::Count),
                )
                .expect("fresh registry");
        }
        let watchdog = WatchdogCounters {
            checks: Arc::new(RawCounter::new()),
            stalls: Arc::new(RawCounter::new()),
            dumps: Arc::new(RawCounter::new()),
        };
        {
            use grain_counters::registry::RawView;
            for (name, c) in [
                ("checks", &watchdog.checks),
                ("stalls", &watchdog.stalls),
                ("dumps", &watchdog.dumps),
            ] {
                registry
                    .register(
                        &format!("/runtime{{{t}}}/watchdog/{name}"),
                        RawView::new(Arc::clone(c), Unit::Count),
                    )
                    .expect("fresh registry");
            }
        }
        let inner = Arc::new(Inner {
            scheduler,
            counters,
            registry,
            ids: TaskIdAllocator::new(),
            in_flight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            active_limit: AtomicUsize::new(config.workers),
            tracer: crate::trace::Tracer::new(config.workers, config.trace),
            config: config.clone(),
            dormant: AtomicUsize::new(0),
            dead_workers: AtomicUsize::new(0),
            watchdog,
            parker: Parker {
                lock: Mutex::new(()),
                cv: Condvar::new(),
                sleepers: AtomicUsize::new(0),
                generation: AtomicUsize::new(0),
            },
            idle: IdleGate {
                lock: Mutex::new(()),
                cv: Condvar::new(),
            },
            monitor: Parker {
                lock: Mutex::new(()),
                cv: Condvar::new(),
                sleepers: AtomicUsize::new(0),
                generation: AtomicUsize::new(0),
            },
        });
        let threads = (0..config.workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("grain-worker-{w}"))
                    .spawn(move || {
                        let _sentinel = WorkerDeathSentinel {
                            inner: Arc::clone(&inner),
                            worker: w,
                        };
                        crate::worker::worker_loop(inner, w);
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        let watchdog_thread = config.watchdog.clone().map(|cfg| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("grain-watchdog".to_string())
                .spawn(move || watchdog_loop(inner, cfg))
                .expect("failed to spawn watchdog thread")
        });
        Self {
            inner,
            threads,
            watchdog_thread,
        }
    }

    /// Runtime with `workers` workers and default settings.
    pub fn with_workers(workers: usize) -> Self {
        Self::new(RuntimeConfig::with_workers(workers))
    }

    /// Spawn a one-phase task at normal priority.
    pub fn spawn(&self, f: impl FnOnce(&mut TaskContext<'_>) + Send + 'static) -> TaskId {
        self.inner.spawn_once(Priority::Normal, f)
    }

    /// Spawn a one-phase task with an explicit priority.
    pub fn spawn_with(
        &self,
        priority: Priority,
        f: impl FnOnce(&mut TaskContext<'_>) + Send + 'static,
    ) -> TaskId {
        self.inner.spawn_once(priority, f)
    }

    /// Spawn a multi-phase task (may yield and suspend between phases).
    pub fn spawn_phased(
        &self,
        priority: Priority,
        body: impl FnMut(&mut TaskContext<'_>) -> Poll + Send + 'static,
    ) -> TaskId {
        self.inner.spawn_phased(priority, body)
    }

    /// `hpx::async`: run `f` as a task; get a future for its result.
    pub fn async_call<R: Send + Sync + 'static>(
        &self,
        f: impl FnOnce(&mut TaskContext<'_>) -> R + Send + 'static,
    ) -> SharedFuture<R> {
        self.inner.async_call(Priority::Normal, f)
    }

    /// `hpx::dataflow`: spawn `f` when all `deps` are ready.
    pub fn dataflow<T, R>(
        &self,
        deps: &[SharedFuture<T>],
        f: impl FnOnce(&mut TaskContext<'_>, Vec<Arc<T>>) -> R + Send + 'static,
    ) -> SharedFuture<R>
    where
        T: Send + Sync + 'static,
        R: Send + Sync + 'static,
    {
        self.inner.dataflow(Priority::Normal, deps, f)
    }

    /// Spawn a one-phase task at `priority` as a member of `group`.
    /// Children spawned from inside the task inherit the group; join the
    /// whole tree with [`TaskGroup::wait`] and cancel it with
    /// [`TaskGroup::cancel`].
    pub fn spawn_in(
        &self,
        group: &Arc<TaskGroup>,
        priority: Priority,
        f: impl FnOnce(&mut TaskContext<'_>) + Send + 'static,
    ) -> TaskId {
        self.inner
            .spawn_once_in(Some(Arc::clone(group)), priority, f)
    }

    /// `hpx::async` as a member of `group`. If the group is cancelled
    /// before the task runs, the returned future never becomes ready —
    /// join grouped work through the group latch rather than by blocking
    /// on its futures.
    pub fn async_in<R: Send + Sync + 'static>(
        &self,
        group: &Arc<TaskGroup>,
        priority: Priority,
        f: impl FnOnce(&mut TaskContext<'_>) -> R + Send + 'static,
    ) -> SharedFuture<R> {
        self.inner
            .async_call_in(Some(Arc::clone(group)), priority, f)
    }

    /// `hpx::dataflow` as a member of `group`: the node is reserved in the
    /// group immediately (even while dormant) and released — unspawned —
    /// if the group is cancelled first.
    pub fn dataflow_in<T, R>(
        &self,
        group: &Arc<TaskGroup>,
        priority: Priority,
        deps: &[SharedFuture<T>],
        f: impl FnOnce(&mut TaskContext<'_>, Vec<Arc<T>>) -> R + Send + 'static,
    ) -> SharedFuture<R>
    where
        T: Send + Sync + 'static,
        R: Send + Sync + 'static,
    {
        self.inner
            .dataflow_in(Some(Arc::clone(group)), priority, deps, f)
    }

    /// Block until every spawned task has terminated.
    pub fn wait_idle(&self) {
        self.inner.wait_idle();
    }

    /// The runtime's raw counters.
    pub fn counters(&self) -> &ThreadCounters {
        &self.inner.counters
    }

    /// The performance-counter registry (query by symbolic path).
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.inner.counters.workers()
    }

    /// Id of the locality this runtime represents (see
    /// [`RuntimeConfig::locality_id`]).
    pub fn locality_id(&self) -> usize {
        self.inner.config.locality_id
    }

    /// Tasks currently in flight (staged + pending + active + suspended).
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight.load(Ordering::SeqCst)
    }

    /// Reset all counters (start of a measurement epoch).
    pub fn reset_counters(&self) {
        self.inner.registry.reset_all();
    }

    /// Throttle the pool: only workers `0..n` take work; the rest park
    /// until the limit is raised again. Clamped to `1..=num_workers()`.
    /// Queued work on throttled workers' queues remains stealable (do not
    /// combine throttling with [`SchedulerKind::NoSteal`] unless stranded
    /// queues are acceptable).
    ///
    /// This is the actuator the paper's related work (§V, Porterfield et
    /// al.) exposes; combined with the counters it enables core-count
    /// adaptation alongside grain-size adaptation.
    pub fn set_active_workers(&self, n: usize) {
        let n = n.clamp(1, self.num_workers());
        self.inner.active_limit.store(n, Ordering::SeqCst);
        self.inner.wake();
    }

    /// Current throttle limit (= `num_workers()` when unthrottled).
    pub fn active_workers(&self) -> usize {
        self.inner.active_limit.load(Ordering::SeqCst)
    }

    /// Drain the captured task-event timeline (empty unless
    /// [`RuntimeConfig::trace`] was set). Draining is destructive; call
    /// once per measurement window.
    pub fn take_trace(&self) -> crate::trace::Trace {
        self.inner.tracer.take()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Let in-flight work finish, then stop the workers. Never panic
        // in drop: if a dead worker stranded tasks, report and force
        // shutdown instead of waiting forever (or aborting).
        if !self.inner.try_wait_idle() {
            eprintln!(
                "grain-runtime: shutting down with {} stranded task(s) ({} dead worker(s))",
                self.inner.in_flight.load(Ordering::SeqCst),
                self.inner.dead_workers.load(Ordering::SeqCst),
            );
        }
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Wake everyone repeatedly until all workers observed the flag.
        for t in self.threads.drain(..) {
            self.inner.wake();
            let _ = t.join();
        }
        if let Some(t) = self.watchdog_thread.take() {
            let _g = self.inner.monitor.lock.lock();
            self.inner.monitor.cv.notify_all();
            drop(_g);
            let _ = t.join();
        }
    }
}
