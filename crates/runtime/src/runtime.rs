//! The runtime: worker pool, spawn paths, task context, termination.

use crate::future::{channel, when_all, SharedFuture};
use crate::group::{CancelToken, TaskGroup};
use crate::scheduler::{Scheduler, SchedulerKind};
use crate::task::{Poll, Priority, StagedTask, Task, TaskId, TaskIdAllocator, TaskState};
use grain_counters::sync::{Condvar, Mutex};
use grain_counters::threads::ThreadCounters;
use grain_counters::Registry;
use grain_topology::{host, NumaTopology};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Runtime configuration. Start from [`RuntimeConfig::default`] (all host
/// cores, the paper's Priority Local-FIFO policy) and override fields.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of worker OS threads ("one static OS thread per core" by
    /// default; oversubscription is allowed and functionally sound).
    pub workers: usize,
    /// NUMA domains to split the workers into. `None` detects the host.
    pub numa_domains: Option<usize>,
    /// Scheduling policy.
    pub scheduler: SchedulerKind,
    /// Number of high-priority dual queues (§I-B: "a specified number of
    /// high priority dual queues").
    pub high_queues: usize,
    /// Failed full search rounds before a worker parks.
    pub spin_rounds: u32,
    /// Upper bound on one parking nap (re-checks for work after).
    pub park_timeout: Duration,
    /// Record per-worker task-event timelines (see [`crate::trace`]).
    /// Off by default: tracing costs one buffer append per phase.
    pub trace: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: host::available_cores(),
            numa_domains: None,
            scheduler: SchedulerKind::PriorityLocalFifo,
            high_queues: 1,
            spin_rounds: 8,
            park_timeout: Duration::from_micros(200),
            trace: false,
        }
    }
}

impl RuntimeConfig {
    /// Config with an explicit worker count and defaults elsewhere.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers,
            ..Self::default()
        }
    }
}

struct Parker {
    lock: Mutex<()>,
    cv: Condvar,
    sleepers: AtomicUsize,
}

struct IdleGate {
    lock: Mutex<()>,
    cv: Condvar,
}

/// Shared state of a runtime: queues, counters, lifecycle flags.
pub(crate) struct Inner {
    pub(crate) scheduler: Scheduler,
    pub(crate) counters: ThreadCounters,
    pub(crate) registry: Registry,
    pub(crate) ids: TaskIdAllocator,
    pub(crate) in_flight: AtomicUsize,
    pub(crate) shutdown: AtomicBool,
    /// Workers with index ≥ this limit are throttled (parked without
    /// taking work) — the Porterfield-style thread-throttling actuator
    /// the paper's §V/§VI discuss driving with these counters.
    pub(crate) active_limit: AtomicUsize,
    pub(crate) tracer: crate::trace::Tracer,
    pub(crate) config: RuntimeConfig,
    parker: Parker,
    idle: IdleGate,
}

thread_local! {
    /// (address of the runtime's Inner, worker index) when the current
    /// thread is a worker.
    static CURRENT_WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

impl Inner {
    fn addr(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    /// Worker index if the calling thread is one of this runtime's workers.
    pub(crate) fn current_worker(self: &Arc<Self>) -> Option<usize> {
        CURRENT_WORKER.with(|c| match c.get() {
            Some((addr, w)) if addr == self.addr() => Some(w),
            _ => None,
        })
    }

    pub(crate) fn bind_worker(self: &Arc<Self>, w: usize) {
        let addr = self.addr();
        CURRENT_WORKER.with(|c| c.set(Some((addr, w))));
    }

    pub(crate) fn unbind_worker(&self) {
        CURRENT_WORKER.with(|c| c.set(None));
    }

    /// Core spawn path: route a staged task to its queue and wake a
    /// sleeper.
    pub(crate) fn spawn_staged(self: &Arc<Self>, staged: StagedTask) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let here = self.current_worker();
        let w = here.unwrap_or_else(|| self.scheduler.queues.next_rr());
        self.counters.spawned.incr(w);
        match staged.priority {
            Priority::High => self.scheduler.queues.push_high(staged),
            Priority::Normal => self.scheduler.queues.push_staged(w, staged),
            Priority::Low => self.scheduler.queues.push_low(staged),
        }
        self.wake();
    }

    /// Spawn a one-phase closure with a priority; returns the task id.
    pub(crate) fn spawn_once(
        self: &Arc<Self>,
        priority: Priority,
        f: impl FnOnce(&mut TaskContext<'_>) + Send + 'static,
    ) -> TaskId {
        self.spawn_once_in(None, priority, f)
    }

    /// Spawn a one-phase closure as a member of `group` (None: ungrouped).
    /// Enters the group before the task becomes visible to the scheduler,
    /// so the group can never look quiescent while the task is queued.
    pub(crate) fn spawn_once_in(
        self: &Arc<Self>,
        group: Option<Arc<TaskGroup>>,
        priority: Priority,
        f: impl FnOnce(&mut TaskContext<'_>) + Send + 'static,
    ) -> TaskId {
        if let Some(g) = &group {
            g.enter();
        }
        let id = self.ids.allocate();
        self.spawn_staged(StagedTask::once(id, priority, f).with_group(group));
        id
    }

    /// Spawn a multi-phase body.
    pub(crate) fn spawn_phased(
        self: &Arc<Self>,
        priority: Priority,
        body: impl FnMut(&mut TaskContext<'_>) -> Poll + Send + 'static,
    ) -> TaskId {
        let id = self.ids.allocate();
        self.spawn_staged(StagedTask::phased(id, priority, body));
        id
    }

    /// `hpx::async`: run `f` as a task, return a future for its result.
    pub(crate) fn async_call<R: Send + Sync + 'static>(
        self: &Arc<Self>,
        priority: Priority,
        f: impl FnOnce(&mut TaskContext<'_>) -> R + Send + 'static,
    ) -> SharedFuture<R> {
        self.async_call_in(None, priority, f)
    }

    /// Grouped `hpx::async`. If the group is cancelled before dispatch the
    /// body never runs and the future never becomes ready — join grouped
    /// work through the group latch, not by blocking on its futures.
    pub(crate) fn async_call_in<R: Send + Sync + 'static>(
        self: &Arc<Self>,
        group: Option<Arc<TaskGroup>>,
        priority: Priority,
        f: impl FnOnce(&mut TaskContext<'_>) -> R + Send + 'static,
    ) -> SharedFuture<R> {
        let (promise, future) = channel();
        self.spawn_once_in(group, priority, move |ctx| promise.set(f(ctx)));
        future
    }

    /// `hpx::dataflow`: when every dependency is ready, spawn a task that
    /// consumes their values; return the future of its result. The task is
    /// *not created* until the inputs are ready — dependencies hold only a
    /// lightweight continuation, matching HPX's staging economy.
    pub(crate) fn dataflow<T, R>(
        self: &Arc<Self>,
        priority: Priority,
        deps: &[SharedFuture<T>],
        f: impl FnOnce(&mut TaskContext<'_>, Vec<Arc<T>>) -> R + Send + 'static,
    ) -> SharedFuture<R>
    where
        T: Send + Sync + 'static,
        R: Send + Sync + 'static,
    {
        self.dataflow_in(None, priority, deps, f)
    }

    /// Grouped `hpx::dataflow`. The node is accounted into the group
    /// *immediately* as a reservation — before its inputs are ready — so
    /// the group cannot look quiescent while part of its DAG is still
    /// dormant. Cancellation releases dormant reservations without
    /// spawning them: a cancel hook and the readiness continuation race on
    /// a claim flag and exactly one side retires the node.
    pub(crate) fn dataflow_in<T, R>(
        self: &Arc<Self>,
        group: Option<Arc<TaskGroup>>,
        priority: Priority,
        deps: &[SharedFuture<T>],
        f: impl FnOnce(&mut TaskContext<'_>, Vec<Arc<T>>) -> R + Send + 'static,
    ) -> SharedFuture<R>
    where
        T: Send + Sync + 'static,
        R: Send + Sync + 'static,
    {
        let (promise, future) = channel();
        let inner = Arc::clone(self);
        match group {
            None => {
                when_all(deps).on_ready(move |vals| {
                    let vals: Vec<Arc<T>> = vals.iter().map(Arc::clone).collect();
                    inner.spawn_once(priority, move |ctx| promise.set(f(ctx, vals)));
                });
            }
            Some(g) => {
                g.enter();
                let claimed = Arc::new(AtomicBool::new(false));
                {
                    let g = Arc::clone(&g);
                    let claimed = Arc::clone(&claimed);
                    g.clone().on_cancel(move || {
                        if !claimed.swap(true, Ordering::SeqCst) {
                            g.exit_skipped();
                        }
                    });
                }
                when_all(deps).on_ready(move |vals| {
                    if claimed.swap(true, Ordering::SeqCst) {
                        // The cancel hook won the race and already retired
                        // this reservation.
                        return;
                    }
                    if g.is_cancelled() {
                        g.exit_skipped();
                        return;
                    }
                    let vals: Vec<Arc<T>> = vals.iter().map(Arc::clone).collect();
                    let id = inner.ids.allocate();
                    // The reservation already entered the group; hand it to
                    // the staged task without entering again.
                    inner.spawn_staged(
                        StagedTask::once(id, priority, move |ctx| promise.set(f(ctx, vals)))
                            .with_group(Some(g)),
                    );
                });
            }
        }
        future
    }

    /// Called when a task reaches `Terminated`.
    pub(crate) fn task_done(&self) {
        if self.in_flight.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _g = self.idle.lock.lock();
            self.idle.cv.notify_all();
        }
    }

    /// Resume a previously suspended task.
    pub(crate) fn resume(self: &Arc<Self>, mut task: Task) {
        task.transition(TaskState::Pending);
        let w = self
            .current_worker()
            .unwrap_or_else(|| self.scheduler.queues.next_rr());
        self.scheduler.queues.push_pending(w, task);
        self.wake();
    }

    /// Wake sleeping workers if any.
    pub(crate) fn wake(&self) {
        if self.parker.sleepers.load(Ordering::SeqCst) > 0 {
            let _g = self.parker.lock.lock();
            self.parker.cv.notify_all();
        }
    }

    /// Park the calling worker until woken or timed out. Returns quickly
    /// if work appeared or shutdown began in the meantime.
    pub(crate) fn park(&self) {
        self.parker.sleepers.fetch_add(1, Ordering::SeqCst);
        // Re-check after announcing sleep to close the lost-wakeup window.
        if self.scheduler.queues.total_len() > 0 || self.shutdown.load(Ordering::SeqCst) {
            self.parker.sleepers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let mut g = self.parker.lock.lock();
        self.parker.cv.wait_for(&mut g, self.config.park_timeout);
        drop(g);
        self.parker.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Block until no task is in flight (staged, pending, active or
    /// suspended).
    pub(crate) fn wait_idle(&self) {
        let mut g = self.idle.lock.lock();
        while self.in_flight.load(Ordering::SeqCst) != 0 {
            self.idle.cv.wait_for(&mut g, Duration::from_millis(1));
        }
    }
}

/// Handle passed to every task phase: identifies the task and worker, and
/// exposes the spawn/dataflow API so tasks can create more work (the
/// execution tree of §I-C is "generated at runtime").
pub struct TaskContext<'a> {
    pub(crate) inner: &'a Arc<Inner>,
    /// Index of the worker executing this phase.
    pub worker: usize,
    /// Id of the running task.
    pub task_id: TaskId,
    /// Zero-based phase number of this activation.
    pub phase: u64,
    pub(crate) suspend_registration: Option<Box<dyn FnOnce(Resumer) + Send>>,
    pub(crate) group: Option<Arc<TaskGroup>>,
}

impl TaskContext<'_> {
    /// Spawn a one-phase child task at normal priority. The child joins
    /// this task's group, if any.
    pub fn spawn(&self, f: impl FnOnce(&mut TaskContext<'_>) + Send + 'static) -> TaskId {
        self.inner
            .spawn_once_in(self.group.clone(), Priority::Normal, f)
    }

    /// Spawn a one-phase child task with an explicit priority. The child
    /// joins this task's group, if any.
    pub fn spawn_with(
        &self,
        priority: Priority,
        f: impl FnOnce(&mut TaskContext<'_>) + Send + 'static,
    ) -> TaskId {
        self.inner.spawn_once_in(self.group.clone(), priority, f)
    }

    /// `hpx::async` from inside a task. The child joins this task's
    /// group, if any.
    pub fn async_call<R: Send + Sync + 'static>(
        &self,
        f: impl FnOnce(&mut TaskContext<'_>) -> R + Send + 'static,
    ) -> SharedFuture<R> {
        self.inner
            .async_call_in(self.group.clone(), Priority::Normal, f)
    }

    /// `hpx::dataflow` from inside a task. The node joins this task's
    /// group, if any (reserved immediately — see
    /// [`Runtime::dataflow_in`]).
    pub fn dataflow<T, R>(
        &self,
        deps: &[SharedFuture<T>],
        f: impl FnOnce(&mut TaskContext<'_>, Vec<Arc<T>>) -> R + Send + 'static,
    ) -> SharedFuture<R>
    where
        T: Send + Sync + 'static,
        R: Send + Sync + 'static,
    {
        self.inner
            .dataflow_in(self.group.clone(), Priority::Normal, deps, f)
    }

    /// Has this task's group been cancelled? Long-running bodies should
    /// poll this and return early — cancellation is cooperative; nothing
    /// preempts an active phase. Always `false` for ungrouped tasks.
    pub fn is_cancelled(&self) -> bool {
        self.group.as_deref().is_some_and(TaskGroup::is_cancelled)
    }

    /// A clone of the ambient cancellation token (None for ungrouped
    /// tasks) — pass it into nested closures or foreign threads that need
    /// to observe cancellation.
    pub fn cancel_token(&self) -> Option<CancelToken> {
        self.group.as_deref().map(TaskGroup::token)
    }

    /// The group this task belongs to, if any.
    pub fn group(&self) -> Option<&Arc<TaskGroup>> {
        self.group.as_ref()
    }

    /// Arrange for this task to be resumed when `future` becomes ready,
    /// then return [`Poll::Suspend`] from the body. The task enters the
    /// *suspended* state and its next activation is a new thread phase.
    ///
    /// ```ignore
    /// move |ctx| {
    ///     if !input.is_ready() {
    ///         ctx.suspend_until(&input);
    ///         return Poll::Suspend;
    ///     }
    ///     consume(&input.try_get().unwrap());
    ///     Poll::Complete
    /// }
    /// ```
    pub fn suspend_until<T: Send + Sync + 'static>(&mut self, future: &SharedFuture<T>) {
        let future = future.clone();
        self.suspend_registration = Some(Box::new(move |resumer: Resumer| {
            future.on_ready(move |_| resumer.resume());
        }));
    }

    /// Number of workers in this runtime.
    pub fn num_workers(&self) -> usize {
        self.inner.counters.workers()
    }
}

/// Token that re-enqueues a suspended task when invoked. Created by the
/// worker when a body returns [`Poll::Suspend`]; consumed by the future's
/// continuation.
pub struct Resumer {
    pub(crate) inner: Arc<Inner>,
    pub(crate) task: Option<Task>,
}

impl Resumer {
    /// Put the suspended task back into a pending queue.
    pub fn resume(mut self) {
        let task = self.task.take().expect("resumer consumed twice");
        self.inner.resume(task);
    }
}

impl Drop for Resumer {
    fn drop(&mut self) {
        // A dropped resumer would strand its task forever; surface that
        // loudly in debug builds (release: the task leaks, in_flight never
        // reaches zero and wait_idle hangs — still detectable).
        debug_assert!(
            self.task.is_none(),
            "Resumer dropped without resuming its task"
        );
    }
}

/// The task runtime: an M:N cooperative scheduler in the mould of HPX's
/// thread manager, with first-class performance counters.
///
/// ```
/// use grain_runtime::{Runtime, RuntimeConfig};
///
/// let rt = Runtime::new(RuntimeConfig::with_workers(2));
/// let doubled = rt.async_call(|_ctx| 21 * 2);
/// assert_eq!(*doubled.get(), 42);
/// rt.wait_idle();
/// assert!(rt.counters().tasks.sum() >= 1);
/// ```
pub struct Runtime {
    inner: Arc<Inner>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Runtime {
    /// Start a runtime with the given configuration. Worker threads are
    /// created immediately (HPX: static OS threads at startup).
    pub fn new(config: RuntimeConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        let numa = match config.numa_domains {
            Some(d) => NumaTopology::block(config.workers, d),
            None => host::host_topology(config.workers),
        };
        let scheduler = Scheduler::new(numa, config.scheduler, config.high_queues);
        let counters = ThreadCounters::new(config.workers);
        let registry = Registry::new();
        counters
            .register(&registry)
            .expect("fresh registry cannot have duplicates");
        // Instantaneous queue-length counters (not in the paper's list but
        // part of HPX's monitoring surface; useful for load introspection).
        {
            use grain_counters::{derived::DerivedCounter, Unit};
            let q = std::sync::Arc::clone(&scheduler.queues);
            registry
                .register(
                    "/threads{locality#0/total}/count/staged-queue-length",
                    DerivedCounter::new(Unit::Count, move || {
                        q.workers.iter().map(|d| d.staged.len()).sum::<usize>() as f64
                    }),
                )
                .expect("fresh registry");
            let q = std::sync::Arc::clone(&scheduler.queues);
            registry
                .register(
                    "/threads{locality#0/total}/count/pending-queue-length",
                    DerivedCounter::new(Unit::Count, move || {
                        q.workers.iter().map(|d| d.pending.len()).sum::<usize>() as f64
                    }),
                )
                .expect("fresh registry");
        }
        let inner = Arc::new(Inner {
            scheduler,
            counters,
            registry,
            ids: TaskIdAllocator::new(),
            in_flight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            active_limit: AtomicUsize::new(config.workers),
            tracer: crate::trace::Tracer::new(config.workers, config.trace),
            config: config.clone(),
            parker: Parker {
                lock: Mutex::new(()),
                cv: Condvar::new(),
                sleepers: AtomicUsize::new(0),
            },
            idle: IdleGate {
                lock: Mutex::new(()),
                cv: Condvar::new(),
            },
        });
        let threads = (0..config.workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("grain-worker-{w}"))
                    .spawn(move || crate::worker::worker_loop(inner, w))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self { inner, threads }
    }

    /// Runtime with `workers` workers and default settings.
    pub fn with_workers(workers: usize) -> Self {
        Self::new(RuntimeConfig::with_workers(workers))
    }

    /// Spawn a one-phase task at normal priority.
    pub fn spawn(&self, f: impl FnOnce(&mut TaskContext<'_>) + Send + 'static) -> TaskId {
        self.inner.spawn_once(Priority::Normal, f)
    }

    /// Spawn a one-phase task with an explicit priority.
    pub fn spawn_with(
        &self,
        priority: Priority,
        f: impl FnOnce(&mut TaskContext<'_>) + Send + 'static,
    ) -> TaskId {
        self.inner.spawn_once(priority, f)
    }

    /// Spawn a multi-phase task (may yield and suspend between phases).
    pub fn spawn_phased(
        &self,
        priority: Priority,
        body: impl FnMut(&mut TaskContext<'_>) -> Poll + Send + 'static,
    ) -> TaskId {
        self.inner.spawn_phased(priority, body)
    }

    /// `hpx::async`: run `f` as a task; get a future for its result.
    pub fn async_call<R: Send + Sync + 'static>(
        &self,
        f: impl FnOnce(&mut TaskContext<'_>) -> R + Send + 'static,
    ) -> SharedFuture<R> {
        self.inner.async_call(Priority::Normal, f)
    }

    /// `hpx::dataflow`: spawn `f` when all `deps` are ready.
    pub fn dataflow<T, R>(
        &self,
        deps: &[SharedFuture<T>],
        f: impl FnOnce(&mut TaskContext<'_>, Vec<Arc<T>>) -> R + Send + 'static,
    ) -> SharedFuture<R>
    where
        T: Send + Sync + 'static,
        R: Send + Sync + 'static,
    {
        self.inner.dataflow(Priority::Normal, deps, f)
    }

    /// Spawn a one-phase task at `priority` as a member of `group`.
    /// Children spawned from inside the task inherit the group; join the
    /// whole tree with [`TaskGroup::wait`] and cancel it with
    /// [`TaskGroup::cancel`].
    pub fn spawn_in(
        &self,
        group: &Arc<TaskGroup>,
        priority: Priority,
        f: impl FnOnce(&mut TaskContext<'_>) + Send + 'static,
    ) -> TaskId {
        self.inner
            .spawn_once_in(Some(Arc::clone(group)), priority, f)
    }

    /// `hpx::async` as a member of `group`. If the group is cancelled
    /// before the task runs, the returned future never becomes ready —
    /// join grouped work through the group latch rather than by blocking
    /// on its futures.
    pub fn async_in<R: Send + Sync + 'static>(
        &self,
        group: &Arc<TaskGroup>,
        priority: Priority,
        f: impl FnOnce(&mut TaskContext<'_>) -> R + Send + 'static,
    ) -> SharedFuture<R> {
        self.inner
            .async_call_in(Some(Arc::clone(group)), priority, f)
    }

    /// `hpx::dataflow` as a member of `group`: the node is reserved in the
    /// group immediately (even while dormant) and released — unspawned —
    /// if the group is cancelled first.
    pub fn dataflow_in<T, R>(
        &self,
        group: &Arc<TaskGroup>,
        priority: Priority,
        deps: &[SharedFuture<T>],
        f: impl FnOnce(&mut TaskContext<'_>, Vec<Arc<T>>) -> R + Send + 'static,
    ) -> SharedFuture<R>
    where
        T: Send + Sync + 'static,
        R: Send + Sync + 'static,
    {
        self.inner
            .dataflow_in(Some(Arc::clone(group)), priority, deps, f)
    }

    /// Block until every spawned task has terminated.
    pub fn wait_idle(&self) {
        self.inner.wait_idle();
    }

    /// The runtime's raw counters.
    pub fn counters(&self) -> &ThreadCounters {
        &self.inner.counters
    }

    /// The performance-counter registry (query by symbolic path).
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.inner.counters.workers()
    }

    /// Tasks currently in flight (staged + pending + active + suspended).
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight.load(Ordering::SeqCst)
    }

    /// Reset all counters (start of a measurement epoch).
    pub fn reset_counters(&self) {
        self.inner.registry.reset_all();
    }

    /// Throttle the pool: only workers `0..n` take work; the rest park
    /// until the limit is raised again. Clamped to `1..=num_workers()`.
    /// Queued work on throttled workers' queues remains stealable (do not
    /// combine throttling with [`SchedulerKind::NoSteal`] unless stranded
    /// queues are acceptable).
    ///
    /// This is the actuator the paper's related work (§V, Porterfield et
    /// al.) exposes; combined with the counters it enables core-count
    /// adaptation alongside grain-size adaptation.
    pub fn set_active_workers(&self, n: usize) {
        let n = n.clamp(1, self.num_workers());
        self.inner.active_limit.store(n, Ordering::SeqCst);
        self.inner.wake();
    }

    /// Current throttle limit (= `num_workers()` when unthrottled).
    pub fn active_workers(&self) -> usize {
        self.inner.active_limit.load(Ordering::SeqCst)
    }

    /// Drain the captured task-event timeline (empty unless
    /// [`RuntimeConfig::trace`] was set). Draining is destructive; call
    /// once per measurement window.
    pub fn take_trace(&self) -> crate::trace::Trace {
        self.inner.tracer.take()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Let in-flight work finish, then stop the workers.
        self.inner.wait_idle();
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Wake everyone repeatedly until all workers observed the flag.
        for t in self.threads.drain(..) {
            self.inner.wake();
            let _ = t.join();
        }
    }
}
