//! The worker loop: dispatch, timing, starvation accounting, parking.
//!
//! Timing follows the paper's counter semantics (§II-A):
//!
//! * `t_exec` — the closure time of each phase, accumulated into
//!   `Σt_exec` (`/threads/time/cumulative-exec`);
//! * `t_func` — "the total time to complete each HPX-thread": measured
//!   from the end of the previous dispatch (i.e. including the search
//!   for work, conversion, dequeue, state transitions) to the end of the
//!   current phase. Starvation while work exists *somewhere* is flushed
//!   into `Σt_func` before a worker parks, so coarse-grained runs show
//!   the rising idle-rate of Fig. 4/5's right-hand side. Time spent
//!   while the whole runtime is quiescent (no task in flight) is *not*
//!   charged — otherwise the counters would drift between benchmark runs.
//!
//! With the `coarse-clock` feature the three `Instant::now()` reads per
//! phase collapse to one in steady state (see [`PhaseClock`]); Σt_func
//! stays exact, Σt_exec inherits a bounded estimate error, and every
//! park/quiescent/throttle path still reads real time.
//!
//! Every phase runs under `catch_unwind`: a panicking body terminates
//! only its task (→ `Faulted`, promise settled with
//! [`TaskError::Panicked`], group notified), never the worker. The one
//! deliberate exception is the `Poll::Suspend`-without-registration
//! programming error below, which stays worker-fatal — the dead-worker
//! detection in [`crate::Runtime`] exists to surface exactly that class
//! of bug loudly instead of hanging.

#![deny(clippy::unwrap_used)]

use crate::fault::{self, TaskError};
use crate::runtime::{Inner, Resumer, TaskContext};
use crate::task::{Poll, TaskState};
use crate::trace::TraceEventKind;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

pub(crate) fn worker_loop(inner: Arc<Inner>, w: usize) {
    inner.bind_worker(w);
    let counters = &inner.counters;
    let mut mark = Instant::now();
    let mut clock = PhaseClock::new();
    let mut failed_rounds: u32 = 0;

    loop {
        // Eventcount ticket, taken before any probe of this iteration:
        // any wake() fired after this point (spawn, resume, throttle
        // change, shutdown) makes a later park() of this iteration
        // return immediately instead of sleeping through the event.
        let ticket = inner.park_ticket();
        if w >= inner.active_limit.load(Ordering::SeqCst) {
            if inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // Throttled: park without taking work; throttled time is
            // deliberate and never charged as starvation.
            inner.park_throttled(ticket);
            mark = Instant::now();
            clock.discontinuity();
            failed_rounds = 0;
            continue;
        }
        match inner.scheduler.find_work(w, counters) {
            Some((mut task, prov)) => {
                failed_rounds = 0;
                let skip = task.group.as_ref().and_then(|g| {
                    if g.is_cancelled() {
                        Some((std::sync::Arc::clone(g), false))
                    } else if g.budget_exhausted() {
                        // Deadline budget propagation: the job this task
                        // belongs to has already spent its deadline, so
                        // running the body would be work nobody collects.
                        Some((std::sync::Arc::clone(g), true))
                    } else {
                        None
                    }
                });
                if let Some((group, over_budget)) = skip {
                    // Cooperative cancellation: the body never runs. The
                    // task still terminates (legally) so in-flight counts
                    // — runtime-wide and group — stay balanced. The frame
                    // may hold an unfulfilled promise; dropping it under
                    // this reason faults the future with `Cancelled`
                    // instead of `BrokenPromise`.
                    task.transition(TaskState::Active);
                    task.transition(TaskState::Terminated);
                    fault::with_drop_reason(TaskError::Cancelled, move || drop(task));
                    inner.task_done();
                    if over_budget {
                        group.exit_over_budget();
                    } else {
                        group.exit_skipped();
                    }
                    // Dispatch bookkeeping stays honest: skipping is part
                    // of the search-to-search interval, charged to Σt_func
                    // by the next successful dispatch via `mark` (which
                    // must therefore re-measure its dispatch span instead
                    // of trusting the coarse estimate).
                    clock.discontinuity();
                    continue;
                }
                if inner.tracer.enabled() {
                    if let Some(victim) = steal_victim(&prov) {
                        inner
                            .tracer
                            .record(w, task.id, TraceEventKind::Steal { from: victim });
                    }
                    inner.tracer.record(w, task.id, TraceEventKind::PhaseStart);
                }
                task.transition(TaskState::Active);
                let mut ctx = TaskContext {
                    inner: &inner,
                    worker: w,
                    task_id: task.id,
                    phase: task.phases,
                    suspend_registration: None,
                    group: task.group.clone(),
                };

                #[cfg(feature = "fault-inject")]
                let injected = inner
                    .config
                    .fault_plan
                    .as_ref()
                    .map(|p| p.decide(task.id.0, task.phases))
                    .unwrap_or(grain_counters::FaultAction::None);
                #[cfg(feature = "fault-inject")]
                match injected {
                    grain_counters::FaultAction::Delay(d) => {
                        std::thread::sleep(d);
                        // The injected sleep sits between `mark` and the
                        // body; it belongs to Σt_func, so the coarse clock
                        // must re-measure rather than subtract a stale
                        // dispatch estimate.
                        clock.discontinuity();
                    }
                    grain_counters::FaultAction::SpuriousWake => inner.wake(),
                    _ => {}
                }

                let exec_start = clock.phase_start();
                // Isolate the phase: a panicking body must terminate only
                // this task. The scope arms the panic hook so the message
                // is captured (and not printed) and reachable by promise
                // drop glue running inside the unwind.
                let result = {
                    let _scope = fault::PhaseScope::enter();
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        #[cfg(feature = "fault-inject")]
                        if injected == grain_counters::FaultAction::Panic {
                            panic!("injected fault: task panic");
                        }
                        task.body.call(&mut ctx)
                    }))
                };
                let (exec_ns, now) = clock.phase_end(exec_start, mark);
                if inner.tracer.enabled() {
                    inner.tracer.record(w, task.id, TraceEventKind::PhaseEnd);
                }
                let registration = ctx.suspend_registration.take();

                task.phases += 1;
                task.exec_ns += exec_ns;
                counters.phases.incr(w);
                counters.exec_ns.add(w, exec_ns);
                counters.exec_histogram.record(exec_ns);
                if let Some(g) = &task.group {
                    g.add_exec_ns(exec_ns);
                }

                counters
                    .func_ns
                    .add(w, now.duration_since(mark).as_nanos() as u64);
                mark = now;

                match result {
                    Ok(Poll::Complete) => {
                        fault::take_captured_panic();
                        task.transition(TaskState::Terminated);
                        counters.tasks.incr(w);
                        let group = task.group.take();
                        drop(task); // free the frame before signalling idle
                        inner.task_done();
                        if let Some(g) = group {
                            g.exit_completed();
                        }
                    }
                    Ok(Poll::Yield) => {
                        fault::take_captured_panic();
                        task.transition(TaskState::Pending);
                        inner.scheduler.queues.push_pending(w, task);
                        inner.wake();
                    }
                    Ok(Poll::Suspend) => {
                        fault::take_captured_panic();
                        task.transition(TaskState::Suspended);
                        let registration = registration.expect(
                            "task returned Poll::Suspend without calling \
                             TaskContext::suspend_until first",
                        );
                        registration(Resumer {
                            inner: Arc::clone(&inner),
                            task: Some(task),
                        });
                    }
                    Err(payload) => {
                        // The panic is contained: this task faults, the
                        // worker carries on. `once` bodies already settled
                        // their promise during the unwind (with the
                        // captured message); phased bodies still hold
                        // theirs — the reasoned drop below faults it.
                        let message = fault::take_captured_panic()
                            .unwrap_or_else(|| fault::payload_message(payload.as_ref()));
                        drop(payload);
                        let error = TaskError::Panicked { message };
                        task.transition(TaskState::Faulted);
                        counters.faulted.incr(w);
                        let group = task.group.take();
                        fault::with_drop_reason(error.clone(), move || drop(task));
                        inner.task_done();
                        if let Some(g) = group {
                            g.exit_faulted(error);
                        }
                    }
                }
            }
            None => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Whatever happens next (spin, park, quiescent discard),
                // the next dispatch's search span is atypical — force a
                // precise re-measure.
                clock.discontinuity();
                failed_rounds += 1;
                if failed_rounds <= inner.config.spin_rounds {
                    std::hint::spin_loop();
                    continue;
                }
                failed_rounds = 0;
                if inner.in_flight.load(Ordering::SeqCst) == 0 {
                    // Quiescent runtime: discard the elapsed window so the
                    // counters don't drift while nothing is happening.
                    mark = Instant::now();
                }
                // The ticket predates this iteration's (empty) search: a
                // spawn that raced it bumped the generation and voids the
                // park — the lost-wakeup window is closed.
                inner.park(ticket);
                let now = Instant::now();
                if inner.in_flight.load(Ordering::SeqCst) > 0 {
                    // Genuine starvation: work exists but this worker can't
                    // get any. Charge the search + nap time to Σt_func (the
                    // paper: at coarse grain "cores have no work to do …
                    // but the thread scheduler continues to look for
                    // work").
                    counters
                        .func_ns
                        .add(w, now.duration_since(mark).as_nanos() as u64);
                }
                mark = now;
            }
        }
    }
    inner.unbind_worker();
}

/// Phase-timing policy (default build): exactly the paper's
/// three-reads-per-phase instrumentation — one `Instant::now()` before
/// the body (start of t_exec), one after (end of t_exec), one as the
/// Σt_func mark.
#[cfg(not(feature = "coarse-clock"))]
struct PhaseClock;

#[cfg(not(feature = "coarse-clock"))]
impl PhaseClock {
    fn new() -> Self {
        PhaseClock
    }

    #[inline]
    fn phase_start(&mut self) -> Instant {
        Instant::now()
    }

    #[inline]
    fn phase_end(&mut self, exec_start: Instant, _mark: Instant) -> (u64, Instant) {
        let exec_ns = exec_start.elapsed().as_nanos() as u64;
        (exec_ns, Instant::now())
    }

    #[inline]
    fn discontinuity(&mut self) {}
}

/// Phase-timing policy (feature `coarse-clock`): one `Instant::now()`
/// per executed phase in steady state.
///
/// The trick: Σt_func needs only the end-of-phase read (`now - mark`,
/// both real reads — *exact*, always). t_exec is then derived by
/// subtracting a cached estimate `d̂` of the dispatch span (end of
/// previous phase → start of body: search, convert, dequeue, state
/// transitions). The estimate is re-measured precisely — the
/// three-read path — every [`PhaseClock::CALIBRATE_EVERY`] phases, and
/// after every schedule discontinuity (park, throttle, group-skip,
/// injected delay), where the span between `mark` and the body is not
/// a plain dispatch.
///
/// Error bound (documented contract, DESIGN.md §15): per coarse phase,
/// |t_exec_reported − t_exec_true| = |d − d̂| ≤ the dispatch-span
/// drift within one calibration window; Σt_func is exact, so the
/// idle-rate (Eq. 1) error is at most `CALIBRATE_EVERY · max|d − d̂| /
/// Σt_func` over any window. Discontinuity spans are always measured
/// precisely, so parks and quiescent windows can never be
/// misattributed to t_exec.
#[cfg(feature = "coarse-clock")]
struct PhaseClock {
    /// Next phase must use the precise three-read path (startup, or a
    /// schedule discontinuity made the pending span non-representative).
    force_precise: bool,
    /// Coarse phases since the estimate was last refreshed.
    since_calibration: u32,
    /// Cached dispatch-span estimate `d̂`, nanoseconds.
    dispatch_est_ns: u64,
    /// Whether `dispatch_est_ns` holds at least one real sample.
    calibrated: bool,
}

#[cfg(feature = "coarse-clock")]
impl PhaseClock {
    /// Steady-state calibration cadence: one precise (three-read) phase
    /// per this many phases bounds estimate drift while amortizing the
    /// extra clock reads to < 2%.
    const CALIBRATE_EVERY: u32 = 64;

    fn new() -> Self {
        Self {
            force_precise: true,
            since_calibration: 0,
            dispatch_est_ns: 0,
            calibrated: false,
        }
    }

    #[inline]
    fn phase_start(&mut self) -> Option<Instant> {
        if self.force_precise || self.since_calibration >= Self::CALIBRATE_EVERY {
            Some(Instant::now())
        } else {
            None
        }
    }

    #[inline]
    fn phase_end(&mut self, exec_start: Option<Instant>, mark: Instant) -> (u64, Instant) {
        let now = Instant::now();
        match exec_start {
            Some(start) => {
                let exec_ns = now.duration_since(start).as_nanos() as u64;
                let dispatch = start.duration_since(mark).as_nanos() as u64;
                if !self.force_precise {
                    // Cadence calibration: a representative back-to-back
                    // dispatch span refreshes the estimate (EWMA, so one
                    // outlier page fault can't own it).
                    self.dispatch_est_ns = if self.calibrated {
                        (3 * self.dispatch_est_ns + dispatch) / 4
                    } else {
                        dispatch
                    };
                    self.calibrated = true;
                } else if !self.calibrated {
                    self.dispatch_est_ns = dispatch;
                    self.calibrated = true;
                }
                // Post-discontinuity spans (park, throttle, injected
                // sleep) are measured precisely for the counters but not
                // folded into the estimate — they are not dispatches.
                self.force_precise = false;
                self.since_calibration = 0;
                (exec_ns, now)
            }
            None => {
                self.since_calibration += 1;
                let total = now.duration_since(mark).as_nanos() as u64;
                (total.saturating_sub(self.dispatch_est_ns), now)
            }
        }
    }

    #[inline]
    fn discontinuity(&mut self) {
        self.force_precise = true;
    }
}

fn steal_victim(prov: &crate::scheduler::Provenance) -> Option<u32> {
    use crate::scheduler::Provenance as P;
    match prov {
        P::NumaStaged(p) | P::NumaPending(p) | P::RemoteStaged(p) | P::RemotePending(p) => {
            Some(*p as u32)
        }
        _ => None,
    }
}
