//! The worker loop: dispatch, timing, starvation accounting, parking.
//!
//! Timing follows the paper's counter semantics (§II-A):
//!
//! * `t_exec` — the closure time of each phase, accumulated into
//!   `Σt_exec` (`/threads/time/cumulative-exec`);
//! * `t_func` — "the total time to complete each HPX-thread": measured
//!   from the end of the previous dispatch (i.e. including the search
//!   for work, conversion, dequeue, state transitions) to the end of the
//!   current phase. Starvation while work exists *somewhere* is flushed
//!   into `Σt_func` before a worker parks, so coarse-grained runs show
//!   the rising idle-rate of Fig. 4/5's right-hand side. Time spent
//!   while the whole runtime is quiescent (no task in flight) is *not*
//!   charged — otherwise the counters would drift between benchmark runs.
//!
//! Every phase runs under `catch_unwind`: a panicking body terminates
//! only its task (→ `Faulted`, promise settled with
//! [`TaskError::Panicked`], group notified), never the worker. The one
//! deliberate exception is the `Poll::Suspend`-without-registration
//! programming error below, which stays worker-fatal — the dead-worker
//! detection in [`crate::Runtime`] exists to surface exactly that class
//! of bug loudly instead of hanging.

#![deny(clippy::unwrap_used)]

use crate::fault::{self, TaskError};
use crate::runtime::{Inner, Resumer, TaskContext};
use crate::task::{Poll, TaskState};
use crate::trace::TraceEventKind;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

pub(crate) fn worker_loop(inner: Arc<Inner>, w: usize) {
    inner.bind_worker(w);
    let counters = &inner.counters;
    let mut mark = Instant::now();
    let mut failed_rounds: u32 = 0;

    loop {
        // Eventcount ticket, taken before any probe of this iteration:
        // any wake() fired after this point (spawn, resume, throttle
        // change, shutdown) makes a later park() of this iteration
        // return immediately instead of sleeping through the event.
        let ticket = inner.park_ticket();
        if w >= inner.active_limit.load(Ordering::SeqCst) {
            if inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // Throttled: park without taking work; throttled time is
            // deliberate and never charged as starvation.
            inner.park_throttled(ticket);
            mark = Instant::now();
            failed_rounds = 0;
            continue;
        }
        match inner.scheduler.find_work(w, counters) {
            Some((mut task, prov)) => {
                failed_rounds = 0;
                let skip = task.group.as_ref().and_then(|g| {
                    if g.is_cancelled() {
                        Some((std::sync::Arc::clone(g), false))
                    } else if g.budget_exhausted() {
                        // Deadline budget propagation: the job this task
                        // belongs to has already spent its deadline, so
                        // running the body would be work nobody collects.
                        Some((std::sync::Arc::clone(g), true))
                    } else {
                        None
                    }
                });
                if let Some((group, over_budget)) = skip {
                    // Cooperative cancellation: the body never runs. The
                    // task still terminates (legally) so in-flight counts
                    // — runtime-wide and group — stay balanced. The frame
                    // may hold an unfulfilled promise; dropping it under
                    // this reason faults the future with `Cancelled`
                    // instead of `BrokenPromise`.
                    task.transition(TaskState::Active);
                    task.transition(TaskState::Terminated);
                    fault::with_drop_reason(TaskError::Cancelled, move || drop(task));
                    inner.task_done();
                    if over_budget {
                        group.exit_over_budget();
                    } else {
                        group.exit_skipped();
                    }
                    // Dispatch bookkeeping stays honest: skipping is part
                    // of the search-to-search interval, charged to Σt_func
                    // by the next successful dispatch via `mark`.
                    continue;
                }
                if inner.tracer.enabled() {
                    if let Some(victim) = steal_victim(&prov) {
                        inner
                            .tracer
                            .record(w, task.id, TraceEventKind::Steal { from: victim });
                    }
                    inner.tracer.record(w, task.id, TraceEventKind::PhaseStart);
                }
                task.transition(TaskState::Active);
                let mut ctx = TaskContext {
                    inner: &inner,
                    worker: w,
                    task_id: task.id,
                    phase: task.phases,
                    suspend_registration: None,
                    group: task.group.clone(),
                };

                #[cfg(feature = "fault-inject")]
                let injected = inner
                    .config
                    .fault_plan
                    .as_ref()
                    .map(|p| p.decide(task.id.0, task.phases))
                    .unwrap_or(grain_counters::FaultAction::None);
                #[cfg(feature = "fault-inject")]
                match injected {
                    grain_counters::FaultAction::Delay(d) => std::thread::sleep(d),
                    grain_counters::FaultAction::SpuriousWake => inner.wake(),
                    _ => {}
                }

                let exec_start = Instant::now();
                // Isolate the phase: a panicking body must terminate only
                // this task. The scope arms the panic hook so the message
                // is captured (and not printed) and reachable by promise
                // drop glue running inside the unwind.
                let result = {
                    let _scope = fault::PhaseScope::enter();
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        #[cfg(feature = "fault-inject")]
                        if injected == grain_counters::FaultAction::Panic {
                            panic!("injected fault: task panic");
                        }
                        (task.body)(&mut ctx)
                    }))
                };
                let exec_ns = exec_start.elapsed().as_nanos() as u64;
                if inner.tracer.enabled() {
                    inner.tracer.record(w, task.id, TraceEventKind::PhaseEnd);
                }
                let registration = ctx.suspend_registration.take();

                task.phases += 1;
                task.exec_ns += exec_ns;
                counters.phases.incr(w);
                counters.exec_ns.add(w, exec_ns);
                counters.exec_histogram.record(exec_ns);
                if let Some(g) = &task.group {
                    g.add_exec_ns(exec_ns);
                }

                let now = Instant::now();
                counters
                    .func_ns
                    .add(w, now.duration_since(mark).as_nanos() as u64);
                mark = now;

                match result {
                    Ok(Poll::Complete) => {
                        fault::take_captured_panic();
                        task.transition(TaskState::Terminated);
                        counters.tasks.incr(w);
                        let group = task.group.take();
                        drop(task); // free the frame before signalling idle
                        inner.task_done();
                        if let Some(g) = group {
                            g.exit_completed();
                        }
                    }
                    Ok(Poll::Yield) => {
                        fault::take_captured_panic();
                        task.transition(TaskState::Pending);
                        inner.scheduler.queues.push_pending(w, task);
                        inner.wake();
                    }
                    Ok(Poll::Suspend) => {
                        fault::take_captured_panic();
                        task.transition(TaskState::Suspended);
                        let registration = registration.expect(
                            "task returned Poll::Suspend without calling \
                             TaskContext::suspend_until first",
                        );
                        registration(Resumer {
                            inner: Arc::clone(&inner),
                            task: Some(task),
                        });
                    }
                    Err(payload) => {
                        // The panic is contained: this task faults, the
                        // worker carries on. `once` bodies already settled
                        // their promise during the unwind (with the
                        // captured message); phased bodies still hold
                        // theirs — the reasoned drop below faults it.
                        let message = fault::take_captured_panic()
                            .unwrap_or_else(|| fault::payload_message(payload.as_ref()));
                        drop(payload);
                        let error = TaskError::Panicked { message };
                        task.transition(TaskState::Faulted);
                        counters.faulted.incr(w);
                        let group = task.group.take();
                        fault::with_drop_reason(error.clone(), move || drop(task));
                        inner.task_done();
                        if let Some(g) = group {
                            g.exit_faulted(error);
                        }
                    }
                }
            }
            None => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                failed_rounds += 1;
                if failed_rounds <= inner.config.spin_rounds {
                    std::hint::spin_loop();
                    continue;
                }
                failed_rounds = 0;
                if inner.in_flight.load(Ordering::SeqCst) == 0 {
                    // Quiescent runtime: discard the elapsed window so the
                    // counters don't drift while nothing is happening.
                    mark = Instant::now();
                }
                // The ticket predates this iteration's (empty) search: a
                // spawn that raced it bumped the generation and voids the
                // park — the lost-wakeup window is closed.
                inner.park(ticket);
                let now = Instant::now();
                if inner.in_flight.load(Ordering::SeqCst) > 0 {
                    // Genuine starvation: work exists but this worker can't
                    // get any. Charge the search + nap time to Σt_func (the
                    // paper: at coarse grain "cores have no work to do …
                    // but the thread scheduler continues to look for
                    // work").
                    counters
                        .func_ns
                        .add(w, now.duration_since(mark).as_nanos() as u64);
                }
                mark = now;
            }
        }
    }
    inner.unbind_worker();
}

fn steal_victim(prov: &crate::scheduler::Provenance) -> Option<u32> {
    use crate::scheduler::Provenance as P;
    match prov {
        P::NumaStaged(p) | P::NumaPending(p) | P::RemoteStaged(p) | P::RemotePending(p) => {
            Some(*p as u32)
        }
        _ => None,
    }
}
