//! Parallel algorithms with an explicit grain-size knob.
//!
//! The stencil controls granularity through its partition size; these
//! helpers expose the same knob for arbitrary index-space loops — the
//! shape HPX gives to `hpx::for_each` with a static chunk size. They are
//! what the adaptive layer would re-chunk, and they make the
//! overhead-vs-granularity trade-off measurable on any workload:
//!
//! ```
//! use grain_runtime::{algorithms, Runtime};
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let rt = Runtime::with_workers(2);
//! let hits = Arc::new(AtomicU64::new(0));
//! let h = Arc::clone(&hits);
//! algorithms::parallel_for(&rt, 0..1000, 64, move |i| {
//!     h.fetch_add(i as u64, Ordering::Relaxed);
//! })
//! .get();
//! assert_eq!(hits.load(Ordering::Relaxed), 999 * 1000 / 2);
//! ```

use crate::future::{channel, when_all, SharedFuture};
use crate::runtime::Runtime;
use std::ops::Range;
use std::sync::Arc;

/// Apply `body` to every index in `range`, one task per `grain`-sized
/// chunk. Returns a future that completes when every chunk has run.
///
/// `grain` is the task size: `range.len() / grain` tasks are created.
/// A zero `grain` is treated as 1.
pub fn parallel_for(
    rt: &Runtime,
    range: Range<usize>,
    grain: usize,
    body: impl Fn(usize) + Send + Sync + 'static,
) -> SharedFuture<()> {
    let body = Arc::new(body);
    let grain = grain.max(1);
    // The fan-out width is known up front — size the handle list once
    // instead of letting it double its way up through reallocations.
    let mut chunks = Vec::with_capacity(range.end.saturating_sub(range.start).div_ceil(grain));
    let mut lo = range.start;
    while lo < range.end {
        let hi = (lo + grain).min(range.end);
        let body = Arc::clone(&body);
        chunks.push(rt.async_call(move |_| {
            for i in lo..hi {
                body(i);
            }
        }));
        lo = hi;
    }
    let (promise, done) = channel();
    when_all(&chunks).on_settled(move |outcome| match outcome {
        Ok(_) => promise.set(()),
        // A panicking chunk faults the whole loop's future with the
        // chunk's error as the cause chain.
        Err(e) => promise.fail(e.clone()),
    });
    done
}

/// Map-reduce over an index range with an explicit grain size: `map`
/// runs on every index inside `grain`-sized chunk tasks, partial results
/// fold with `reduce` (which must be associative), starting from
/// `identity` in every chunk.
pub fn parallel_reduce<T>(
    rt: &Runtime,
    range: Range<usize>,
    grain: usize,
    identity: T,
    map: impl Fn(usize) -> T + Send + Sync + 'static,
    reduce: impl Fn(T, T) -> T + Send + Sync + 'static,
) -> SharedFuture<T>
where
    T: Clone + Send + Sync + 'static,
{
    let map = Arc::new(map);
    let reduce = Arc::new(reduce);
    let grain = grain.max(1);
    // Known fan-out width, as in `parallel_for`.
    let mut chunks = Vec::with_capacity(range.end.saturating_sub(range.start).div_ceil(grain));
    let mut lo = range.start;
    while lo < range.end {
        let hi = (lo + grain).min(range.end);
        let map = Arc::clone(&map);
        let reduce = Arc::clone(&reduce);
        let id = identity.clone();
        chunks.push(rt.async_call(move |_| {
            let mut acc = id;
            for i in lo..hi {
                acc = reduce(acc, map(i));
            }
            acc
        }));
        lo = hi;
    }
    let (promise, out) = channel();
    let reduce2 = Arc::clone(&reduce);
    when_all(&chunks).on_settled(move |outcome| match outcome {
        Ok(parts) => {
            let mut acc = identity;
            for p in parts.iter() {
                acc = reduce2(acc, (**p).clone());
            }
            promise.set(acc);
        }
        Err(e) => promise.fail(e.clone()),
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn parallel_for_visits_every_index_once() {
        let rt = Runtime::with_workers(3);
        let n = 10_000;
        let seen: Arc<Vec<AtomicUsize>> = Arc::new((0..n).map(|_| AtomicUsize::new(0)).collect());
        let s = Arc::clone(&seen);
        parallel_for(&rt, 0..n, 128, move |i| {
            s[i].fetch_add(1, Ordering::Relaxed);
        })
        .get();
        assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_range_completes() {
        let rt = Runtime::with_workers(1);
        parallel_for(&rt, 5..5, 8, |_| panic!("must not run")).get();
    }

    #[test]
    fn parallel_for_grain_bigger_than_range_is_one_task() {
        let rt = Runtime::with_workers(2);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        parallel_for(&rt, 0..10, 1_000, move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        })
        .get();
        rt.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 10);
        assert_eq!(rt.counters().tasks.sum(), 1, "single chunk expected");
    }

    #[test]
    fn parallel_for_zero_grain_is_clamped() {
        let rt = Runtime::with_workers(2);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        parallel_for(&rt, 0..16, 0, move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        })
        .get();
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn grain_size_controls_task_count() {
        let rt = Runtime::with_workers(2);
        parallel_for(&rt, 0..1024, 16, |_| {}).get();
        rt.wait_idle();
        let fine = rt.counters().tasks.sum();
        rt.reset_counters();
        parallel_for(&rt, 0..1024, 256, |_| {}).get();
        rt.wait_idle();
        let coarse = rt.counters().tasks.sum();
        assert_eq!(fine, 64);
        assert_eq!(coarse, 4);
    }

    #[test]
    fn parallel_reduce_sums() {
        let rt = Runtime::with_workers(3);
        let sum = parallel_reduce(&rt, 0..1_000, 37, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(*sum.get(), 999 * 1000 / 2);
    }

    #[test]
    fn parallel_reduce_max() {
        let rt = Runtime::with_workers(2);
        let m = parallel_reduce(
            &rt,
            0..500,
            64,
            i64::MIN,
            |i| ((i as i64) * 7919) % 1000,
            i64::max,
        );
        let expect = (0..500).map(|i| ((i as i64) * 7919) % 1000).max().unwrap();
        assert_eq!(*m.get(), expect);
    }

    #[test]
    fn parallel_reduce_empty_range_is_identity() {
        let rt = Runtime::with_workers(1);
        let v = parallel_reduce(&rt, 3..3, 4, 42u64, |_| 0, |a, b| a + b);
        assert_eq!(*v.get(), 42);
    }
}
