//! # grain-runtime — an HPX-like M:N task runtime with first-class counters
//!
//! This crate is the substrate of the reproduction of Grubel et al.,
//! *"The Performance Implication of Task Size for Applications on the HPX
//! Runtime System"* (IEEE CLUSTER 2015): a from-scratch user-level task
//! runtime whose scheduling structure matches the system the paper
//! characterizes.
//!
//! ## What matches the paper
//!
//! * **Tasks are first-class** ([`task::Task`]) with the five lifecycle
//!   states of §I-B: *staged → pending → active → (suspended ⇄ pending) →
//!   terminated*. `spawn` only creates a cheap *staged* description; the
//!   scheduler *converts* it (allocating the execution frame) on the way
//!   to a pending queue.
//! * **M:N cooperative scheduling**: a pool of OS worker threads runs many
//!   lightweight tasks; nothing is ever preempted — tasks end a *thread
//!   phase* by completing, yielding or suspending on a future.
//! * **The Priority Local-FIFO policy** ([`scheduler::Scheduler`]): one
//!   staged + one pending lock-free FIFO per worker, configurable
//!   high-priority dual queues, one low-priority queue, and the six-step
//!   NUMA-aware search order of Fig. 1.
//! * **Futures and dataflow** ([`future`], [`Runtime::dataflow`]): HPX-style
//!   shared futures with continuations, `when_all` composition, and
//!   `dataflow` that creates the dependent task only once its inputs are
//!   ready.
//! * **The performance monitoring system**: every scheduler event feeds
//!   sharded counters ([`ThreadCounters`]) registered under
//!   HPX-style symbolic paths (`/threads{locality#0/total}/idle-rate`, …)
//!   in a queryable [`grain_counters::Registry`], including the exact
//!   counters the paper's methodology uses: idle-rate (Eq. 1), average
//!   task duration (Eq. 2), average task overhead (Eq. 3), cumulative
//!   task/phase counts, and pending/staged queue accesses and misses.
//!
//! ## Example
//!
//! ```
//! use grain_runtime::{Runtime, RuntimeConfig};
//!
//! let rt = Runtime::new(RuntimeConfig::with_workers(2));
//!
//! // Fork a tree of tasks with `async_call`, join with `dataflow`.
//! let a = rt.async_call(|_| 2u64);
//! let b = rt.async_call(|_| 40u64);
//! let sum = rt.dataflow(&[a, b], |_, vals| *vals[0] + *vals[1]);
//! assert_eq!(*sum.get(), 42);
//!
//! rt.wait_idle();
//! let idle_rate = rt
//!     .registry()
//!     .query("/threads{locality#0/total}/idle-rate")
//!     .unwrap();
//! assert!((0.0..=1.0).contains(&idle_rate.value));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithms;
pub mod fault;
pub mod future;
pub mod group;
pub mod queue;
pub mod runtime;
pub mod scheduler;
#[cfg(feature = "task-slab")]
pub mod slab;
pub mod task;
pub mod trace;
mod worker;

pub use fault::{TaskError, WatchdogConfig};
pub use future::{channel, when_all, Promise, Settled, SharedFuture};
pub use grain_counters::threads::ThreadCounters;
pub use grain_counters::{FaultAction, FaultPlan};
pub use group::{CancelToken, TaskGroup};
pub use runtime::{Runtime, RuntimeConfig, TaskContext};
pub use scheduler::{Provenance, Scheduler, SchedulerKind, SearchStep};
pub use task::{Poll, Priority, TaskId, TaskState};
pub use trace::{Trace, TraceEvent, TraceEventKind};

/// Re-export of the counter crate for convenient path-based queries.
pub use grain_counters;
