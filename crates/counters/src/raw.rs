//! Primitive lock-free counters.
//!
//! Everything the scheduler touches on its hot path lives here: plain
//! monotone event counters and per-worker *sharded* counters whose shards
//! are padded to cache-line size so that two workers bumping "their" shard
//! never false-share.

use std::sync::atomic::{AtomicU64, Ordering};

/// One cache line on every architecture this project targets. 128 bytes
/// covers the adjacent-line prefetcher pairs on modern Intel parts.
const CACHE_LINE: usize = 128;

/// An `AtomicU64` padded out to a full cache line.
#[repr(align(128))]
#[derive(Debug)]
struct PaddedAtomicU64 {
    value: AtomicU64,
    _pad: [u8; CACHE_LINE - 8],
}

impl PaddedAtomicU64 {
    fn new(v: u64) -> Self {
        Self {
            value: AtomicU64::new(v),
            _pad: [0; CACHE_LINE - 8],
        }
    }
}

/// A single monotonically-increasing event counter.
///
/// All operations use relaxed ordering: counters are statistics, not
/// synchronization. Readers that need a consistent *set* of counters take a
/// [`crate::snapshot::Snapshot`] while the system is quiescent or accept
/// slight skew, exactly as HPX's monitoring system does.
#[derive(Debug, Default)]
pub struct RawCounter {
    value: AtomicU64,
}

impl RawCounter {
    /// New counter starting at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero (monitoring epoch boundary).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A counter sharded per worker thread.
///
/// Worker `w` increments shard `w` without any cross-core traffic; readers
/// can inspect an individual shard (per-worker counter instances, e.g.
/// `/threads{…/worker-thread#3}/count/pending-accesses`) or the sum over all
/// shards (the `…/total` instance).
#[derive(Debug)]
pub struct Sharded {
    shards: Box<[PaddedAtomicU64]>,
}

impl Sharded {
    /// Create a counter with `workers` shards. `workers` must be nonzero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "Sharded counter needs at least one shard");
        Self {
            shards: (0..workers).map(|_| PaddedAtomicU64::new(0)).collect(),
        }
    }

    /// Number of shards (== number of workers).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Add `n` to worker `w`'s shard.
    #[inline]
    pub fn add(&self, w: usize, n: u64) {
        self.shards[w].value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment worker `w`'s shard by one.
    #[inline]
    pub fn incr(&self, w: usize) {
        self.add(w, 1);
    }

    /// Value of worker `w`'s shard.
    #[inline]
    pub fn get(&self, w: usize) -> u64 {
        self.shards[w].value.load(Ordering::Relaxed)
    }

    /// Sum over all shards — the `total` counter instance.
    pub fn sum(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.value.load(Ordering::Relaxed))
            .sum()
    }

    /// Reset every shard to zero.
    pub fn reset(&self) {
        for s in self.shards.iter() {
            s.value.store(0, Ordering::Relaxed);
        }
    }

    /// Per-shard values, in worker order.
    pub fn values(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.value.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn raw_counter_basics() {
        let c = RawCounter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn padding_is_effective() {
        // Each shard must occupy its own cache line.
        assert!(std::mem::size_of::<PaddedAtomicU64>() >= CACHE_LINE);
        assert_eq!(std::mem::align_of::<PaddedAtomicU64>(), CACHE_LINE);
    }

    #[test]
    fn sharded_sum_and_per_worker() {
        let s = Sharded::new(4);
        s.add(0, 10);
        s.add(3, 5);
        s.incr(3);
        assert_eq!(s.get(0), 10);
        assert_eq!(s.get(3), 6);
        assert_eq!(s.get(1), 0);
        assert_eq!(s.sum(), 16);
        assert_eq!(s.values(), vec![10, 0, 0, 6]);
        s.reset();
        assert_eq!(s.sum(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn sharded_rejects_zero_workers() {
        let _ = Sharded::new(0);
    }

    #[test]
    fn sharded_concurrent_increments_are_lossless() {
        let s = Arc::new(Sharded::new(4));
        let mut handles = Vec::new();
        for w in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    s.incr(w);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.sum(), 40_000);
        for w in 0..4 {
            assert_eq!(s.get(w), 10_000);
        }
    }
}
