//! Typed counter samples.

use std::fmt;
use std::time::{SystemTime, UNIX_EPOCH};

/// Unit of a counter value. HPX encodes this implicitly in the counter
/// name; we carry it explicitly so that derived counters and the metric
/// layer can check dimensional sanity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// Plain event count.
    Count,
    /// Time in nanoseconds.
    Nanoseconds,
    /// Dimensionless ratio in `[0, 1]` (e.g. idle-rate).
    Ratio,
    /// Bytes.
    Bytes,
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Unit::Count => "count",
            Unit::Nanoseconds => "ns",
            Unit::Ratio => "ratio",
            Unit::Bytes => "bytes",
        };
        f.write_str(s)
    }
}

/// One sample of a performance counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterValue {
    /// The sampled value. Counts are exact integers represented in `f64`
    /// (counts in this project stay far below 2^53); times are nanoseconds;
    /// ratios are in `[0, 1]`.
    pub value: f64,
    /// Unit of `value`.
    pub unit: Unit,
    /// Wall-clock sample time, nanoseconds since the Unix epoch. Zero for
    /// values synthesized outside real time (e.g. by the simulator).
    pub timestamp_ns: u64,
}

impl CounterValue {
    /// A sample taken now.
    pub fn now(value: f64, unit: Unit) -> Self {
        let ts = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Self {
            value,
            unit,
            timestamp_ns: ts,
        }
    }

    /// A sample with no wall-clock timestamp (virtual-time producers).
    pub fn untimed(value: f64, unit: Unit) -> Self {
        Self {
            value,
            unit,
            timestamp_ns: 0,
        }
    }

    /// The value interpreted as an exact count.
    ///
    /// # Panics
    /// Panics in debug builds if the unit is not [`Unit::Count`].
    pub fn as_count(&self) -> u64 {
        debug_assert_eq!(self.unit, Unit::Count, "counter is not a count");
        self.value as u64
    }

    /// The value interpreted as seconds (from nanoseconds).
    ///
    /// # Panics
    /// Panics in debug builds if the unit is not [`Unit::Nanoseconds`].
    pub fn as_seconds(&self) -> f64 {
        debug_assert_eq!(self.unit, Unit::Nanoseconds, "counter is not a time");
        self.value * 1e-9
    }
}

impl fmt::Display for CounterValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.unit {
            Unit::Count | Unit::Bytes => write!(f, "{} {}", self.value as u64, self.unit),
            Unit::Nanoseconds => write!(f, "{:.3} us", self.value / 1e3),
            Unit::Ratio => write!(f, "{:.2}%", self.value * 100.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_has_timestamp() {
        let v = CounterValue::now(3.0, Unit::Count);
        assert!(v.timestamp_ns > 0);
        assert_eq!(v.as_count(), 3);
    }

    #[test]
    fn untimed_has_no_timestamp() {
        let v = CounterValue::untimed(1500.0, Unit::Nanoseconds);
        assert_eq!(v.timestamp_ns, 0);
        assert!((v.as_seconds() - 1.5e-6).abs() < 1e-15);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            CounterValue::untimed(42.0, Unit::Count).to_string(),
            "42 count"
        );
        assert_eq!(
            CounterValue::untimed(0.5, Unit::Ratio).to_string(),
            "50.00%"
        );
        assert_eq!(
            CounterValue::untimed(2500.0, Unit::Nanoseconds).to_string(),
            "2.500 us"
        );
    }
}
