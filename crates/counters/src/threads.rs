//! The runtime's counter surface.
//!
//! One [`ThreadCounters`] instance per runtime holds every sharded raw
//! counter the scheduler and workers bump, and knows how to register the
//! full HPX-style counter tree — per-worker instances, `total` aggregates
//! and the derived Eq. 1–3 counters — into a
//! [`crate::Registry`].

use crate::derived::{average_of, average_of_worker, ratio_of, ratio_of_worker, DerivedCounter};
use crate::path::CounterPath;
use crate::raw::Sharded;
use crate::registry::{Registry, RegistryError, ShardedTotal, ShardedWorker};
use crate::value::Unit;
use std::sync::Arc;

/// All raw event counters of one runtime, sharded per worker.
#[derive(Debug)]
pub struct ThreadCounters {
    /// Number of workers (shard count of every counter).
    workers: usize,
    /// Tasks completed (`/threads/count/cumulative`).
    pub tasks: Arc<Sharded>,
    /// Thread phases executed (`/threads/count/cumulative-phases`).
    pub phases: Arc<Sharded>,
    /// Σ t_exec in ns (`/threads/time/cumulative-exec`).
    pub exec_ns: Arc<Sharded>,
    /// Σ t_func in ns (`/threads/time/cumulative-func`).
    pub func_ns: Arc<Sharded>,
    /// Pending-queue probe count (`/threads/count/pending-accesses`).
    pub pending_accesses: Arc<Sharded>,
    /// Pending-queue probes that found nothing
    /// (`/threads/count/pending-misses`).
    pub pending_misses: Arc<Sharded>,
    /// Staged-queue probe count (`/threads/count/staged-accesses`).
    pub staged_accesses: Arc<Sharded>,
    /// Staged-queue probes that found nothing
    /// (`/threads/count/staged-misses`).
    pub staged_misses: Arc<Sharded>,
    /// Tasks taken from another worker's queues
    /// (`/threads/count/stolen`).
    pub stolen: Arc<Sharded>,
    /// Staged→pending conversions performed
    /// (`/threads/count/converted`).
    pub converted: Arc<Sharded>,
    /// Tasks spawned by code running on this worker.
    pub spawned: Arc<Sharded>,
    /// Tasks whose phase panicked and were isolated
    /// (`/threads/count/faulted`).
    pub faulted: Arc<Sharded>,
    /// Distribution of per-phase execution times, ns (log₂ buckets).
    pub exec_histogram: Arc<crate::histogram::LogHistogram>,
}

impl ThreadCounters {
    /// Fresh counters for `workers` workers.
    pub fn new(workers: usize) -> Self {
        let mk = || Arc::new(Sharded::new(workers));
        Self {
            workers,
            tasks: mk(),
            phases: mk(),
            exec_ns: mk(),
            func_ns: mk(),
            pending_accesses: mk(),
            pending_misses: mk(),
            staged_accesses: mk(),
            staged_misses: mk(),
            stolen: mk(),
            converted: mk(),
            spawned: mk(),
            faulted: mk(),
            exec_histogram: Arc::new(crate::histogram::LogHistogram::new()),
        }
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Idle-rate over everything recorded so far (Eq. 1):
    /// `(Σt_func − Σt_exec) / Σt_func`.
    pub fn idle_rate(&self) -> f64 {
        let func = self.func_ns.sum();
        if func == 0 {
            return 0.0;
        }
        let exec = self.exec_ns.sum().min(func);
        (func - exec) as f64 / func as f64
    }

    /// Average task duration t_d in ns (Eq. 2).
    pub fn task_duration_ns(&self) -> f64 {
        let n = self.tasks.sum();
        if n == 0 {
            0.0
        } else {
            self.exec_ns.sum() as f64 / n as f64
        }
    }

    /// Average task overhead t_o in ns (Eq. 3).
    pub fn task_overhead_ns(&self) -> f64 {
        let n = self.tasks.sum();
        if n == 0 {
            return 0.0;
        }
        let func = self.func_ns.sum();
        let exec = self.exec_ns.sum().min(func);
        (func - exec) as f64 / n as f64
    }

    /// Register the whole counter tree into `registry` under locality 0
    /// (the single-locality convention). See
    /// [`ThreadCounters::register_at`].
    pub fn register(&self, registry: &Registry) -> Result<(), RegistryError> {
        self.register_at(registry, 0)
    }

    /// Register the whole counter tree into `registry` under the given
    /// locality id.
    ///
    /// Registered paths (`<T>` = `{locality#L/total}`,
    /// `<w>` = `{locality#L/worker-thread#w}` for every worker):
    ///
    /// * `/threads<T>/count/cumulative`, `…/count/cumulative-phases`
    /// * `/threads<T>/time/cumulative-exec`, `…/time/cumulative-func`
    /// * `/threads<T>/time/average`, `…/time/average-overhead`
    /// * `/threads<T>/time/average-phase`, `…/time/average-phase-overhead`
    /// * `/threads<T>/idle-rate`
    /// * `/threads<T>/count/pending-accesses`, `…/pending-misses`,
    ///   `…/staged-accesses`, `…/staged-misses`, `…/stolen`, `…/converted`
    /// * per-worker: `idle-rate`, `time/average`, `count/cumulative`,
    ///   `count/pending-accesses`, `count/pending-misses`
    pub fn register_at(&self, registry: &Registry, locality: usize) -> Result<(), RegistryError> {
        let t = CounterPath::total_instance_for(locality);
        let total = |name: &str| format!("/threads{{{t}}}/{name}");

        let counts: &[(&str, &Arc<Sharded>)] = &[
            ("count/cumulative", &self.tasks),
            ("count/cumulative-phases", &self.phases),
            ("count/pending-accesses", &self.pending_accesses),
            ("count/pending-misses", &self.pending_misses),
            ("count/staged-accesses", &self.staged_accesses),
            ("count/staged-misses", &self.staged_misses),
            ("count/stolen", &self.stolen),
            ("count/converted", &self.converted),
            ("count/spawned", &self.spawned),
            ("count/faulted", &self.faulted),
        ];
        for (name, c) in counts {
            registry.register(&total(name), ShardedTotal::new(Arc::clone(c), Unit::Count))?;
        }
        for (name, c) in [
            ("time/cumulative-exec", &self.exec_ns),
            ("time/cumulative-func", &self.func_ns),
        ] {
            registry.register(
                &total(name),
                ShardedTotal::new(Arc::clone(c), Unit::Nanoseconds),
            )?;
        }

        // Derived Eq. 1–3 counters plus their per-phase variants.
        registry.register(
            &total("idle-rate"),
            ratio_of(Arc::clone(&self.exec_ns), Arc::clone(&self.func_ns)),
        )?;
        registry.register(
            &total("time/average"),
            average_of(
                Arc::clone(&self.exec_ns),
                Arc::clone(&self.tasks),
                Unit::Nanoseconds,
            ),
        )?;
        let exec = Arc::clone(&self.exec_ns);
        let func = Arc::clone(&self.func_ns);
        let tasks = Arc::clone(&self.tasks);
        registry.register(
            &total("time/average-overhead"),
            DerivedCounter::new(Unit::Nanoseconds, move || {
                let n = tasks.sum();
                if n == 0 {
                    return 0.0;
                }
                let f = func.sum();
                let e = exec.sum().min(f);
                (f - e) as f64 / n as f64
            }),
        )?;
        registry.register(
            &total("time/average-phase"),
            average_of(
                Arc::clone(&self.exec_ns),
                Arc::clone(&self.phases),
                Unit::Nanoseconds,
            ),
        )?;
        let exec = Arc::clone(&self.exec_ns);
        let func = Arc::clone(&self.func_ns);
        let phases = Arc::clone(&self.phases);
        registry.register(
            &total("time/average-phase-overhead"),
            DerivedCounter::new(Unit::Nanoseconds, move || {
                let n = phases.sum();
                if n == 0 {
                    return 0.0;
                }
                let f = func.sum();
                let e = exec.sum().min(f);
                (f - e) as f64 / n as f64
            }),
        )?;

        // The execution-time histogram: exposed as its sample count, and
        // hooked into reset_all through this registration.
        {
            struct HistView(Arc<crate::histogram::LogHistogram>);
            impl crate::registry::Counter for HistView {
                fn value(&self) -> crate::value::CounterValue {
                    crate::value::CounterValue::now(self.0.count() as f64, Unit::Count)
                }
                fn reset(&self) {
                    self.0.reset();
                }
            }
            registry.register(
                &total("count/exec-samples"),
                HistView(Arc::clone(&self.exec_histogram)),
            )?;
        }

        // Per-worker instances.
        for w in 0..self.workers {
            let inst = CounterPath::worker_instance_for(locality, w);
            let path = |name: &str| format!("/threads{{{inst}}}/{name}");
            registry.register(
                &path("idle-rate"),
                ratio_of_worker(Arc::clone(&self.exec_ns), Arc::clone(&self.func_ns), w),
            )?;
            registry.register(
                &path("time/average"),
                average_of_worker(
                    Arc::clone(&self.exec_ns),
                    Arc::clone(&self.tasks),
                    w,
                    Unit::Nanoseconds,
                ),
            )?;
            registry.register(
                &path("count/cumulative"),
                ShardedWorker::new(Arc::clone(&self.tasks), w, Unit::Count),
            )?;
            registry.register(
                &path("count/pending-accesses"),
                ShardedWorker::new(Arc::clone(&self.pending_accesses), w, Unit::Count),
            )?;
            registry.register(
                &path("count/pending-misses"),
                ShardedWorker::new(Arc::clone(&self.pending_misses), w, Unit::Count),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_match_equations() {
        let c = ThreadCounters::new(2);
        // Two tasks on worker 0: exec 100+200, func 400 total.
        c.tasks.add(0, 2);
        c.exec_ns.add(0, 300);
        c.func_ns.add(0, 400);
        // One task on worker 1: exec 100, func 200.
        c.tasks.add(1, 1);
        c.exec_ns.add(1, 100);
        c.func_ns.add(1, 200);

        // Eq. 1: (600-400)/600.
        assert!((c.idle_rate() - 200.0 / 600.0).abs() < 1e-12);
        // Eq. 2: 400/3.
        assert!((c.task_duration_ns() - 400.0 / 3.0).abs() < 1e-12);
        // Eq. 3: 200/3.
        assert!((c.task_overhead_ns() - 200.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_counters_yield_zero_metrics() {
        let c = ThreadCounters::new(1);
        assert_eq!(c.idle_rate(), 0.0);
        assert_eq!(c.task_duration_ns(), 0.0);
        assert_eq!(c.task_overhead_ns(), 0.0);
    }

    #[test]
    fn registration_exposes_paper_counters() {
        let c = ThreadCounters::new(2);
        let reg = Registry::new();
        c.register(&reg).unwrap();

        c.tasks.add(0, 4);
        c.exec_ns.add(0, 1_000);
        c.func_ns.add(0, 2_000);
        c.phases.add(0, 8);
        c.pending_accesses.add(1, 5);
        c.pending_misses.add(1, 3);

        let q = |p: &str| reg.query(p).unwrap().value;
        assert_eq!(q("/threads{locality#0/total}/count/cumulative"), 4.0);
        assert_eq!(q("/threads{locality#0/total}/idle-rate"), 0.5);
        assert_eq!(q("/threads{locality#0/total}/time/average"), 250.0);
        assert_eq!(q("/threads{locality#0/total}/time/average-overhead"), 250.0);
        assert_eq!(q("/threads{locality#0/total}/time/average-phase"), 125.0);
        assert_eq!(
            q("/threads{locality#0/total}/time/average-phase-overhead"),
            125.0
        );
        assert_eq!(q("/threads{locality#0/total}/count/pending-accesses"), 5.0);
        assert_eq!(
            q("/threads{locality#0/worker-thread#1}/count/pending-misses"),
            3.0
        );
        assert_eq!(q("/threads{locality#0/worker-thread#0}/idle-rate"), 0.5);
        assert_eq!(q("/threads{locality#0/worker-thread#1}/idle-rate"), 0.0);
    }

    #[test]
    fn registration_under_nonzero_locality() {
        let c = ThreadCounters::new(2);
        let reg = Registry::new();
        c.register_at(&reg, 5).unwrap();
        c.tasks.add(1, 3);
        let q = |p: &str| reg.query(p).unwrap().value;
        assert_eq!(q("/threads{locality#5/total}/count/cumulative"), 3.0);
        assert_eq!(
            q("/threads{locality#5/worker-thread#1}/count/cumulative"),
            3.0
        );
        // Nothing leaked under the locality-0 namespace.
        assert!(reg
            .query("/threads{locality#0/total}/count/cumulative")
            .is_err());
    }

    #[test]
    fn discovery_finds_the_counter_tree() {
        let c = ThreadCounters::new(1);
        let reg = Registry::new();
        c.register(&reg).unwrap();
        let counts = reg.discover("/threads/count/*").unwrap();
        assert!(counts.len() >= 9, "found {counts:?}");
        let all = reg.discover("/threads/*").unwrap();
        assert!(all.len() >= 15);
    }
}
